/// \file server_test.cc
/// \brief Server front end: wire codec, admission gate, concurrent
/// sessions over one shared Database.
///
/// The load-bearing test is ConcurrentSessionsBitIdenticalToSerial: the
/// deterministic draw scheme means N clients hammering the same sampling
/// query concurrently must every one of them get byte-for-byte the rows a
/// serial in-process session computes. Catalogue-race tests rely on the
/// ASan/TSan CI jobs to surface data races they provoke.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/server/client.h"
#include "src/server/wire.h"
#include "src/sql/session.h"

namespace pip {
namespace {

using server::AdmissionGate;
using server::Client;
using server::DecodeResponse;
using server::EncodeResponse;
using server::Server;
using server::ServerOptions;
using server::WireResponse;

// ---------------------------------------------------------------------------
// Admission gate.
// ---------------------------------------------------------------------------

TEST(AdmissionGateTest, BoundsConcurrency) {
  AdmissionGate gate(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 25; ++j) {
        AdmissionGate::Ticket ticket = gate.Acquire().value();
        int now = in_flight.fetch_add(1) + 1;
        int seen = max_seen.load();
        while (now > seen && !max_seen.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::yield();
        in_flight.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_seen.load(), 2);
  AdmissionGate::Stats stats = gate.stats();
  EXPECT_EQ(stats.admitted, 200u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GT(stats.queued, 0u);  // 8 threads over 2 slots must queue.
}

TEST(AdmissionGateTest, ZeroCapacityIsUnlimited) {
  AdmissionGate gate(0);
  AdmissionGate::Ticket a = gate.Acquire().value();
  AdmissionGate::Ticket b = gate.Acquire().value();
  EXPECT_EQ(a.wait_us(), 0u);
  EXPECT_EQ(gate.stats().in_flight, 2u);
}

TEST(AdmissionGateTest, MovedTicketReleasesOnce) {
  AdmissionGate gate(1);
  {
    AdmissionGate::Ticket a = gate.Acquire().value();
    AdmissionGate::Ticket b = std::move(a);
    EXPECT_EQ(gate.stats().in_flight, 1u);
  }
  EXPECT_EQ(gate.stats().in_flight, 0u);
}

TEST(AdmissionGateTest, WeightedTicketsShareTheWindow) {
  AdmissionGate gate(4);
  AdmissionGate::Ticket heavy = gate.Acquire(3).value();
  AdmissionGate::Ticket light = gate.Acquire(1).value();  // Fits alongside.
  EXPECT_EQ(heavy.weight(), 3u);
  EXPECT_EQ(light.weight(), 1u);
  AdmissionGate::Stats stats = gate.stats();
  EXPECT_EQ(stats.in_flight, 2u);
  EXPECT_EQ(stats.in_flight_weight, 4u);
  EXPECT_EQ(stats.admitted_weight, 4u);
}

TEST(AdmissionGateTest, OversizedWeightClampsToCapacity) {
  AdmissionGate gate(2);
  // A statement heavier than the whole window must still run (alone)
  // instead of deadlocking.
  AdmissionGate::Ticket huge = gate.Acquire(100).value();
  EXPECT_EQ(huge.weight(), 2u);
  EXPECT_EQ(gate.stats().in_flight_weight, 2u);
}

TEST(AdmissionGateTest, HeavyReleaseUnblocksMultipleLight) {
  AdmissionGate gate(3);
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  {
    AdmissionGate::Ticket heavy = gate.Acquire(3).value();  // Fills the window.
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&] {
        AdmissionGate::Ticket light = gate.Acquire(1).value();
        done.fetch_add(1);
      });
    }
    // The lights cannot pass while the heavy ticket holds all units.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(done.load(), 0);
  }
  for (auto& t : threads) t.join();  // One release admits all three.
  EXPECT_EQ(done.load(), 3);
  EXPECT_EQ(gate.stats().in_flight_weight, 0u);
}

TEST(AdmissionGateTest, WeightedBoundHoldsUnderContention) {
  AdmissionGate gate(4);
  std::atomic<int> weight_in_flight{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      size_t weight = 1 + static_cast<size_t>(i % 3);
      for (int j = 0; j < 25; ++j) {
        AdmissionGate::Ticket ticket = gate.Acquire(weight).value();
        int now = weight_in_flight.fetch_add(static_cast<int>(weight)) +
                  static_cast<int>(weight);
        int seen = max_seen.load();
        while (now > seen && !max_seen.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::yield();
        weight_in_flight.fetch_sub(static_cast<int>(weight));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_seen.load(), 4);
  EXPECT_EQ(gate.stats().in_flight_weight, 0u);
}

// ---------------------------------------------------------------------------
// Statement weight estimation.
// ---------------------------------------------------------------------------

TEST(EstimateSampleVolumeTest, ScalesWithRowsAndSamples) {
  Database db(7);
  sql::Session session(&db);
  session.Execute("CREATE TABLE small (v)");
  session.Execute("INSERT INTO small VALUES (Normal(0, 1))");
  session.Execute("CREATE TABLE big (v)");
  for (int i = 0; i < 4; ++i) {
    session.Execute(
        "INSERT INTO big VALUES (Normal(0, 1)), (Normal(0, 1)), "
        "(Normal(0, 1)), (Normal(0, 1))");
  }
  SamplingOptions options;
  options.fixed_samples = 100;
  // Non-sampling statements carry no volume at all.
  EXPECT_EQ(sql::EstimateSampleVolume(db, "SELECT v FROM big", options), 0u);
  // 1 row x 100 draws vs 16 rows x 100 draws.
  EXPECT_EQ(sql::EstimateSampleVolume(
                db, "SELECT expected_sum(v) FROM small", options),
            100u);
  EXPECT_EQ(sql::EstimateSampleVolume(
                db, "SELECT expected_sum(v) FROM big", options),
            1600u);
  // Multi-table FROM sums the named tables' rows.
  EXPECT_EQ(sql::EstimateSampleVolume(
                db, "SELECT expected_sum(v) FROM small, big", options),
            1700u);
  // Unknown tables fall back to the 1-row floor.
  EXPECT_EQ(sql::EstimateSampleVolume(
                db, "SELECT expected_sum(v) FROM nope", options),
            100u);
  // Adaptive mode uses the sampling floor as the per-row estimate.
  options.fixed_samples = 0;
  options.min_samples = 30;
  EXPECT_EQ(sql::EstimateSampleVolume(
                db, "SELECT expected_sum(v) FROM big", options),
            480u);
}

// ---------------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------------

TEST(WireCodecTest, CellEscapingRoundTrips) {
  for (const std::string cell :
       {std::string("plain"), std::string("tab\there"),
        std::string("line\nbreak"), std::string("back\\slash"),
        std::string("\t\n\\"), std::string("")}) {
    EXPECT_EQ(server::UnescapeCell(server::EscapeCell(cell)), cell);
  }
  // Escaped cells never contain structural bytes.
  EXPECT_EQ(server::EscapeCell("a\tb\nc").find('\t'), std::string::npos);
  EXPECT_EQ(server::EscapeCell("a\tb\nc").find('\n'), std::string::npos);
}

TEST(WireCodecTest, ErrorCodesRoundTripForEveryCategory) {
  // One representative Status per wire category, INTERNAL included —
  // the codec must round-trip all of them identically.
  const std::pair<Status, sql::WireErrorCode> cases[] = {
      {Status::ParseError("p"), sql::WireErrorCode::kParse},
      {Status::NotFound("n"), sql::WireErrorCode::kNotFound},
      {Status::InvalidArgument("i"), sql::WireErrorCode::kInvalidArg},
      {Status::AlreadyExists("a"), sql::WireErrorCode::kInvalidArg},
      {Status::Unimplemented("u"), sql::WireErrorCode::kCapability},
      {Status::Internal("x"), sql::WireErrorCode::kInternal},
  };
  for (const auto& [status, code] : cases) {
    sql::SqlResult result = sql::SqlResult::FromStatus(status);
    EXPECT_EQ(result.error.code, code);
    auto decoded = DecodeResponse(EncodeResponse(result, 0));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded.value().kind, WireResponse::Kind::kError);
    EXPECT_EQ(decoded.value().code, code);
    EXPECT_EQ(decoded.value().message, status.message());
    // ToString names the same code the wire carries.
    EXPECT_NE(result.ToString().find(sql::WireErrorCodeName(code)),
              std::string::npos);
  }
}

TEST(WireCodecTest, TableResponseRoundTrips) {
  Table t(Schema({"name", "x"}));
  ASSERT_TRUE(t.Append({Value("joe"), Value(0.1)}).ok());
  ASSERT_TRUE(t.Append({Value("sue\tmarie"), Value(int64_t{7})}).ok());
  sql::SqlResult result = sql::SqlResult::FromTable(std::move(t));
  auto decoded = DecodeResponse(EncodeResponse(result, 42));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const WireResponse& r = decoded.value();
  EXPECT_EQ(r.kind, WireResponse::Kind::kTable);
  EXPECT_EQ(r.queue_us, 42u);
  ASSERT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.columns[0].name, "name");
  EXPECT_EQ(r.columns[0].kind, sql::ColumnKind::kText);
  EXPECT_EQ(r.columns[1].kind, sql::ColumnKind::kNumeric);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0], "joe");
  EXPECT_EQ(r.rows[1][0], "sue\tmarie");  // Tab survives the wire.
  EXPECT_EQ(r.rows[1][1], "7");
  // 17-significant-digit doubles are bit-exact through the text form.
  EXPECT_EQ(r.rows[0][1], "0.10000000000000001");
}

TEST(WireCodecTest, MalformedPayloadsRejected) {
  for (const std::string bad :
       {std::string(""), std::string("WAT 0"), std::string("ERR NOPE\nmsg"),
        std::string("TBL 0 2 1\nnum\tv\nonly-one-row"),
        std::string("ACK notanumber\nm")}) {
    EXPECT_FALSE(DecodeResponse(bad).ok()) << bad;
  }
}

// ---------------------------------------------------------------------------
// End-to-end server.
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : db_(909), server_(&db_, ServerOptions{}) {
    PIP_CHECK(server_.Start().ok());
  }

  Client Connect() {
    Client client;
    PIP_CHECK(client.Connect("127.0.0.1", server_.port()).ok());
    return client;
  }

  WireResponse Run(Client& client, const std::string& stmt) {
    auto r = client.Execute(stmt);
    PIP_CHECK_MSG(r.ok(), r.status().ToString());
    return std::move(r).value();
  }

  Database db_;
  Server server_;
};

TEST_F(ServerTest, GreetingCarriesProtocolVersion) {
  Client client = Connect();
  EXPECT_EQ(client.greeting().rfind(server::kProtocolVersion, 0), 0u);
}

TEST_F(ServerTest, StatementsExecuteOverTheWire) {
  Client client = Connect();
  WireResponse ack = Run(client, "CREATE TABLE t (name, v)");
  EXPECT_EQ(ack.kind, WireResponse::Kind::kAck);
  EXPECT_EQ(ack.message, "CREATE TABLE t");

  Run(client, "INSERT INTO t VALUES ('a', 1), ('b', Uniform(0, 1))");
  WireResponse sym = Run(client, "SELECT * FROM t");
  EXPECT_EQ(sym.kind, WireResponse::Kind::kCTable);
  ASSERT_EQ(sym.rows.size(), 2u);
  // C-table rows carry the trailing condition cell.
  ASSERT_EQ(sym.rows[0].size(), 3u);
  EXPECT_EQ(sym.rows[0][0], "a");

  Run(client, "SET FIXED_SAMPLES = 1000");
  WireResponse det = Run(client, "SELECT expected_sum(v) AS s FROM t");
  EXPECT_EQ(det.kind, WireResponse::Kind::kTable);
  ASSERT_EQ(det.rows.size(), 1u);
  double s = std::stod(det.rows[0][0]);
  EXPECT_GT(s, 1.0);
  EXPECT_LT(s, 2.0);
}

TEST_F(ServerTest, WireErrorCategoriesEndToEnd) {
  Client client = Connect();
  Run(client, "CREATE TABLE t (a)");
  const std::pair<const char*, sql::WireErrorCode> cases[] = {
      {"DELETE FROM t", sql::WireErrorCode::kParse},
      {"SELECT a FROM missing", sql::WireErrorCode::kNotFound},
      {"SET epsilon = 7", sql::WireErrorCode::kInvalidArg},
      {"SELECT a FROM t GROUP BY a", sql::WireErrorCode::kCapability},
      {"SELECT DISTINCT a FROM t", sql::WireErrorCode::kCapability},
  };
  for (const auto& [stmt, code] : cases) {
    WireResponse r = Run(client, stmt);
    EXPECT_EQ(r.kind, WireResponse::Kind::kError) << stmt;
    EXPECT_EQ(r.code, code) << stmt;
    EXPECT_FALSE(r.message.empty()) << stmt;
  }
  // The connection survives every error.
  EXPECT_EQ(Run(client, "SELECT a FROM t").kind, WireResponse::Kind::kCTable);
}

TEST_F(ServerTest, SessionKnobsAreConnectionLocal) {
  Client a = Connect();
  Client b = Connect();
  Run(a, "SET FIXED_SAMPLES = 7");
  WireResponse knobs_b = Run(b, "SHOW KNOBS");
  for (const auto& row : knobs_b.rows) {
    if (row[0] == "FIXED_SAMPLES") {
      EXPECT_NE(row[1], "7");  // B still has the database default.
    }
  }
  WireResponse knobs_a = Run(a, "SHOW KNOBS");
  bool found = false;
  for (const auto& row : knobs_a.rows) {
    if (row[0] == "FIXED_SAMPLES") {
      EXPECT_EQ(row[1], "7");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ServerTest, NamedVariablesAreSharedAcrossConnections) {
  Client a = Connect();
  Client b = Connect();
  Run(a, "CREATE VARIABLE demand AS Poisson(140)");
  Run(b, "CREATE TABLE p (units)");
  // B reuses A's named variable; no new variable is allocated.
  WireResponse r = Run(b, "INSERT INTO p VALUES (demand)");
  EXPECT_EQ(r.kind, WireResponse::Kind::kAck);
  EXPECT_EQ(db_.pool()->num_variables(), 1u);
  WireResponse dup = Run(b, "CREATE VARIABLE demand AS Normal(0, 1)");
  EXPECT_EQ(dup.kind, WireResponse::Kind::kError);
  EXPECT_EQ(dup.code, sql::WireErrorCode::kInvalidArg);
}

TEST_F(ServerTest, ConcurrentSessionsBitIdenticalToSerial) {
  // Create all data serially FIRST: variable allocation commutes with
  // nothing, so determinism is only promised for a fixed pool state.
  {
    Client setup = Connect();
    Run(setup, "CREATE TABLE m (label, v)");
    Run(setup,
        "INSERT INTO m VALUES ('a', Normal(10, 2)), ('b', Normal(20, 3)), "
        "('c', Uniform(0, 50)), ('d', Exponential(0.1))");
  }

  // Serial baseline: an in-process session with the same knobs, rendered
  // through the same codec (queue_us excluded from comparison by
  // construction: we compare decoded rows).
  std::vector<std::string> queries = {
      "SELECT expected_sum(v) AS s, expected_avg(v) AS a FROM m WHERE v > 8",
      "SELECT label, expectation(v), conf() FROM m WHERE v > 8",
      "SELECT * FROM m",
  };
  std::vector<std::vector<std::vector<std::string>>> baseline;
  {
    sql::Session session(&db_);
    PIP_CHECK(session.Execute("SET FIXED_SAMPLES = 4000").ok());
    for (const std::string& q : queries) {
      sql::SqlResult result = session.Execute(q);
      PIP_CHECK_MSG(result.ok(), result.ToString());
      auto decoded = DecodeResponse(EncodeResponse(result, 0));
      PIP_CHECK(decoded.ok());
      baseline.push_back(decoded.value().rows);
    }
  }

  constexpr int kClients = 6;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Client client = Connect();
      if (!client.Execute("SET FIXED_SAMPLES = 4000").ok()) {
        mismatches.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto resp = client.Execute(queries[q]);
          if (!resp.ok() || !resp.value().ok() ||
              resp.value().rows != baseline[q]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ServerTest, ConcurrentCatalogueMutationIsSafe) {
  // DDL + DML + SELECT race across connections; correctness bar: no
  // crash/race (ASan job) and no lost INSERT.
  Client setup = Connect();
  Run(setup, "CREATE TABLE shared (v)");

  constexpr int kClients = 6;
  constexpr int kInsertsPerClient = 20;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client = Connect();
      for (int i = 0; i < kInsertsPerClient; ++i) {
        if (!client.Execute("INSERT INTO shared VALUES (" +
                            std::to_string(c * 1000 + i) + ")")
                 .ok()) {
          errors.fetch_add(1);
        }
        // Interleave reads and private DDL to stress the catalogue.
        auto r = client.Execute("SELECT * FROM shared");
        if (!r.ok() || !r.value().ok()) errors.fetch_add(1);
        if (i == 0) {
          client.Execute("CREATE TABLE priv_" + std::to_string(c) + " (x)");
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);

  WireResponse all = Run(setup, "SELECT * FROM shared");
  EXPECT_EQ(all.rows.size(),
            static_cast<size_t>(kClients * kInsertsPerClient));
}

TEST_F(ServerTest, SnapshotSurvivesConcurrentReplacement) {
  // A session's SELECT result must come from a consistent snapshot even
  // while another connection replaces rows mid-flight. (The shared_ptr
  // snapshot either sees the row or not — never a torn table.)
  Client writer = Connect();
  Run(writer, "CREATE TABLE t (v)");
  Run(writer, "INSERT INTO t VALUES (1), (2)");
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    Client m = Connect();
    while (!stop.load()) {
      m.Execute("INSERT INTO t VALUES (3)");
    }
  });
  Client reader = Connect();
  for (int i = 0; i < 50; ++i) {
    WireResponse r = Run(reader, "SELECT * FROM t");
    EXPECT_GE(r.rows.size(), 2u);
    for (const auto& row : r.rows) {
      ASSERT_EQ(row.size(), 2u);  // v + condition; never torn.
    }
  }
  stop.store(true);
  mutator.join();
}

TEST(ServerAdmissionTest, SamplingStatementsAreGated) {
  Database db(909);
  ServerOptions options;
  options.max_sampling = 1;
  Server srv(&db, options);
  ASSERT_TRUE(srv.Start().ok());
  {
    Client setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", srv.port()).ok());
    ASSERT_TRUE(setup.Execute("CREATE TABLE t (v)").value().ok());
    ASSERT_TRUE(
        setup.Execute("INSERT INTO t VALUES (Normal(0, 1)), (Uniform(0, 9))")
            .value()
            .ok());
  }

  constexpr int kClients = 4;
  constexpr int kQueries = 6;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", srv.port()).ok()) {
        errors.fetch_add(1);
        return;
      }
      client.Execute("SET FIXED_SAMPLES = 20000");
      for (int q = 0; q < kQueries; ++q) {
        auto r = client.Execute("SELECT expected_sum(v) FROM t");
        if (!r.ok() || !r.value().ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);

  AdmissionGate::Stats stats = srv.admission_stats();
  // Every sampling statement took a ticket; the SETs/DDL took none.
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kClients * kQueries));
  EXPECT_EQ(stats.in_flight, 0u);
  srv.Stop();
}

TEST(ServerLifecycleTest, StopUnblocksLiveConnections) {
  Database db(1);
  Server srv(&db, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  ASSERT_TRUE(client.Execute("SHOW DISTRIBUTIONS").ok());
  srv.Stop();  // Must not hang on the idle connection.
  EXPECT_FALSE(client.Execute("SHOW DISTRIBUTIONS").ok());
}

}  // namespace
}  // namespace pip
