/// \file stress_test.cc
/// \brief Randomized cross-validation of the full sampling stack.
///
/// For randomly generated conditions over randomly parameterized
/// variables, the engine's Confidence/Expectation — whatever strategy mix
/// it picks (exact CDF, windows, rejection, quadrature) — must agree with
/// brute-force Monte Carlo over unconstrained joint draws. Also verifies
/// the consistency checker's soundness: whenever brute force finds a
/// satisfying sample, the checker must not have declared the condition
/// inconsistent.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/running_stats.h"
#include "src/constraints/consistency.h"
#include "src/sampling/expectation.h"

namespace pip {
namespace {

class RandomConditionStressTest : public ::testing::TestWithParam<int> {};

struct RandomModel {
  VariablePool pool;
  std::vector<VarRef> vars;
  Condition condition;
  ExprPtr target;

  explicit RandomModel(uint64_t seed) : pool(seed) {}
};

/// Builds a random model: 2-4 variables from assorted families, 1-3 atoms
/// mixing var-vs-const and var-vs-var comparisons, and a random
/// low-degree target expression. Constructed so P[condition] is rarely
/// microscopic (atoms threshold near distribution quantiles).
std::unique_ptr<RandomModel> MakeModel(uint64_t seed) {
  auto model = std::make_unique<RandomModel>(seed * 7919 + 13);
  Rng rng(seed);
  size_t num_vars = 2 + rng.NextBounded(3);
  for (size_t i = 0; i < num_vars; ++i) {
    switch (rng.NextBounded(5)) {
      case 0:
        model->vars.push_back(
            model->pool
                .Create("Normal", {rng.NextUniform(-5, 5),
                                   rng.NextUniform(0.5, 3.0)})
                .value());
        break;
      case 1:
        model->vars.push_back(
            model->pool
                .Create("Uniform",
                        {0.0, rng.NextUniform(1.0, 10.0)})
                .value());
        break;
      case 2:
        model->vars.push_back(
            model->pool.Create("Exponential", {rng.NextUniform(0.2, 2.0)})
                .value());
        break;
      case 3:
        model->vars.push_back(
            model->pool.Create("Poisson", {rng.NextUniform(1.0, 8.0)})
                .value());
        break;
      default:
        model->vars.push_back(
            model->pool
                .Create("Gamma", {rng.NextUniform(1.0, 4.0),
                                  rng.NextUniform(0.5, 2.0)})
                .value());
        break;
    }
  }

  size_t num_atoms = 1 + rng.NextBounded(3);
  for (size_t i = 0; i < num_atoms; ++i) {
    VarRef v = model->vars[rng.NextBounded(model->vars.size())];
    CmpOp op = rng.NextBounded(2) == 0 ? CmpOp::kGt : CmpOp::kLt;
    if (rng.NextBounded(3) == 0 && model->vars.size() >= 2) {
      // var-vs-var atom (forces joint sampling of a group).
      VarRef w = model->vars[rng.NextBounded(model->vars.size())];
      if (!(w == v)) {
        model->condition.AddAtom(ConstraintAtom(
            Expr::Var(v), op, Expr::Var(w)));
        continue;
      }
    }
    // var-vs-const near a moderate quantile so the condition stays
    // reasonably likely.
    double q = rng.NextUniform(0.15, 0.85);
    double threshold = model->pool.HasInverseCdf(v)
                           ? model->pool.InverseCdf(v, q).value()
                           : rng.NextUniform(-2, 6);
    model->condition.AddAtom(
        ConstraintAtom(Expr::Var(v), op, Expr::Constant(threshold)));
  }

  // Target: sum/product of up to two variables plus a constant.
  VarRef t1 = model->vars[rng.NextBounded(model->vars.size())];
  VarRef t2 = model->vars[rng.NextBounded(model->vars.size())];
  if (rng.NextBounded(2) == 0) {
    model->target = Expr::Var(t1) + Expr::Var(t2) + Expr::Constant(1.0);
  } else {
    model->target =
        Expr::Var(t1) * Expr::Constant(rng.NextUniform(0.5, 2.0)) +
        Expr::Constant(rng.NextUniform(-3, 3));
  }
  return model;
}

/// Brute-force estimate of (P[cond], E[target | cond]) by joint sampling.
void BruteForce(const RandomModel& model, size_t n, double* prob,
                double* conditional_mean, bool* found_satisfying) {
  RunningStats accepted;
  size_t hits = 0;
  std::vector<double> joint;
  Assignment world;
  for (size_t i = 0; i < n; ++i) {
    world.Clear();
    for (const VarRef& v : model.vars) {
      PIP_CHECK(model.pool
                    .GenerateJoint(v.var_id, /*sample_index=*/i,
                                   /*attempt=*/0xbf0fceULL, &joint)
                    .ok());
      world.Set(v, joint[0]);
    }
    auto sat = model.condition.Eval(world);
    PIP_CHECK(sat.ok());
    if (!sat.value()) continue;
    ++hits;
    auto value = model.target->EvalDouble(world);
    PIP_CHECK(value.ok());
    accepted.Add(value.value());
  }
  *prob = static_cast<double>(hits) / static_cast<double>(n);
  *conditional_mean = accepted.count() > 0 ? accepted.mean() : 0.0;
  *found_satisfying = hits > 0;
}

TEST_P(RandomConditionStressTest, EngineAgreesWithBruteForce) {
  auto model = MakeModel(static_cast<uint64_t>(GetParam()));
  double bf_prob = 0, bf_mean = 0;
  bool satisfiable = false;
  const size_t kBruteSamples = 120000;
  BruteForce(*model, kBruteSamples, &bf_prob, &bf_mean, &satisfiable);

  // Consistency soundness: a witnessed-satisfiable condition must never be
  // declared inconsistent.
  ConsistencyResult consistency =
      CheckConsistency(model->condition, model->pool);
  if (satisfiable) {
    EXPECT_FALSE(consistency.inconsistent()) << model->condition.ToString();
  }

  SamplingOptions opts;
  opts.fixed_samples = 60000;
  SamplingEngine engine(&model->pool, opts);
  auto r = engine.Expectation(model->target, model->condition, true);
  ASSERT_TRUE(r.ok()) << r.status();

  if (bf_prob < 0.005) return;  // Too rare to cross-validate reliably.
  double prob_tol = 5.0 * std::sqrt(bf_prob / kBruteSamples) + 0.01;
  EXPECT_NEAR(r.value().probability, bf_prob, prob_tol)
      << model->condition.ToString();
  double scale = std::max(1.0, std::fabs(bf_mean));
  EXPECT_NEAR(r.value().expectation, bf_mean, 0.08 * scale)
      << "target " << model->target->ToString() << " given "
      << model->condition.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConditionStressTest,
                         ::testing::Range(1, 41));

// ---------------------------------------------------------------------------
// RunningStats unit coverage.
// ---------------------------------------------------------------------------

TEST(RunningStatsTest, MomentsOfKnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);        // Population variance.
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_TRUE(std::isinf(s.standard_error()));
  s.Add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStatsTest, NumericallyStableAroundLargeOffset) {
  // Welford must not cancel catastrophically: variance of {1e9, 1e9+1,
  // 1e9+2} is 2/3.
  RunningStats s;
  s.Add(1e9);
  s.Add(1e9 + 1);
  s.Add(1e9 + 2);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(NormalizedRmsErrorTest, KnownValues) {
  EXPECT_NEAR(NormalizedRmsError({12.0, 8.0}, 10.0), 0.2, 1e-12);
  EXPECT_EQ(NormalizedRmsError({}, 10.0), 0.0);
  // Zero truth: un-normalized RMS.
  EXPECT_NEAR(NormalizedRmsError({1.0, -1.0}, 0.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace pip
