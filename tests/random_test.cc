#include "src/common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pip {
namespace {

TEST(RandomStreamTest, DeterministicReplay) {
  RandomStream a(1, 2, 3, 4);
  RandomStream b(1, 2, 3, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextBits(), b.NextBits());
  }
}

TEST(RandomStreamTest, DifferentCoordinatesDiffer) {
  // Any single-coordinate change must produce a different stream.
  uint64_t base = RandomStream(1, 2, 3, 4).NextBits();
  EXPECT_NE(base, RandomStream(9, 2, 3, 4).NextBits());
  EXPECT_NE(base, RandomStream(1, 9, 3, 4).NextBits());
  EXPECT_NE(base, RandomStream(1, 2, 9, 4).NextBits());
  EXPECT_NE(base, RandomStream(1, 2, 3, 9).NextBits());
}

TEST(RandomStreamTest, UniformInUnitInterval) {
  RandomStream s(7, 1, 0, 0);
  for (int i = 0; i < 10000; ++i) {
    double u = s.NextUniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStreamTest, OpenUniformNeverZero) {
  RandomStream s(7, 1, 0, 0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(s.NextOpenUniform(), 0.0);
  }
}

TEST(RandomStreamTest, UniformMeanNearHalf) {
  RandomStream s(11, 3, 0, 5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += s.NextUniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RandomStreamTest, GaussianMoments) {
  RandomStream s(13, 5, 0, 0);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = s.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RandomStreamTest, BoundedStaysInRange) {
  RandomStream s(17, 0, 0, 0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = s.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values hit in 1000 draws.
}

TEST(MixBitsTest, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t a = MixBits(1, 2, 3, 4);
  uint64_t b = MixBits(1, 2, 3, 5);
  int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.NextBits(), b.NextBits());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextBits(), b.NextBits());
}

TEST(RngTest, UniformRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    double u = r.NextUniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng r(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ExponentialMean) {
  Rng r(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng r(8);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = r.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

}  // namespace
}  // namespace pip
