#include "src/common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pip {
namespace {

TEST(RandomStreamTest, DeterministicReplay) {
  RandomStream a(1, 2, 3, 4);
  RandomStream b(1, 2, 3, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextBits(), b.NextBits());
  }
}

TEST(RandomStreamTest, DifferentCoordinatesDiffer) {
  // Any single-coordinate change must produce a different stream.
  uint64_t base = RandomStream(1, 2, 3, 4).NextBits();
  EXPECT_NE(base, RandomStream(9, 2, 3, 4).NextBits());
  EXPECT_NE(base, RandomStream(1, 9, 3, 4).NextBits());
  EXPECT_NE(base, RandomStream(1, 2, 9, 4).NextBits());
  EXPECT_NE(base, RandomStream(1, 2, 3, 9).NextBits());
}

TEST(RandomStreamTest, UniformInUnitInterval) {
  RandomStream s(7, 1, 0, 0);
  for (int i = 0; i < 10000; ++i) {
    double u = s.NextUniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStreamTest, OpenUniformNeverZero) {
  RandomStream s(7, 1, 0, 0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(s.NextOpenUniform(), 0.0);
  }
}

TEST(RandomStreamTest, UniformMeanNearHalf) {
  RandomStream s(11, 3, 0, 5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += s.NextUniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RandomStreamTest, GaussianMoments) {
  RandomStream s(13, 5, 0, 0);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = s.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RandomStreamTest, BoundedStaysInRange) {
  RandomStream s(17, 0, 0, 0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = s.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values hit in 1000 draws.
}

TEST(RandomStreamTest, FillBitsMatchesScalarNextBits) {
  RandomStream scalar(11, 22, 33, 44);
  std::vector<uint64_t> expect(100);
  for (auto& w : expect) w = scalar.NextBits();
  RandomStream block(11, 22, 33, 44);
  std::vector<uint64_t> got(100);
  block.FillBits(got.data(), got.size());
  EXPECT_EQ(got, expect);
}

TEST(RandomStreamTest, FillUniformsMatchesScalarNextUniform) {
  RandomStream scalar(5, 6, 7, 8);
  std::vector<double> expect(100);
  for (auto& u : expect) u = scalar.NextUniform();
  RandomStream block(5, 6, 7, 8);
  std::vector<double> got(100);
  block.FillUniforms(got.data(), got.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expect[i]);
}

TEST(RandomStreamTest, BlockAndScalarCallsInterleaveOnOneCounter) {
  // Fills advance the same counter NextBits uses, so a consumer can mix
  // block and scalar reads freely and still replay the stream.
  RandomStream reference(3, 1, 4, 1);
  std::vector<uint64_t> expect(20);
  for (auto& w : expect) w = reference.NextBits();

  RandomStream mixed(3, 1, 4, 1);
  std::vector<uint64_t> got;
  uint64_t buf[8];
  mixed.FillBits(buf, 5);  // Words 0..4.
  got.insert(got.end(), buf, buf + 5);
  got.push_back(mixed.NextBits());  // Word 5.
  mixed.FillBits(buf, 0);           // Empty fill: counter untouched.
  mixed.FillBits(buf, 8);           // Words 6..13.
  got.insert(got.end(), buf, buf + 8);
  for (int i = 0; i < 6; ++i) got.push_back(mixed.NextBits());  // 14..19.
  EXPECT_EQ(got, expect);
}

TEST(MixBitsTest, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  uint64_t a = MixBits(1, 2, 3, 4);
  uint64_t b = MixBits(1, 2, 3, 5);
  int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.NextBits(), b.NextBits());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextBits(), b.NextBits());
}

TEST(RngTest, UniformRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    double u = r.NextUniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng r(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ExponentialMean) {
  Rng r(7);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng r(8);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = r.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

}  // namespace
}  // namespace pip
