#include "src/sampling/expectation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/special_math.h"

namespace pip {
namespace {

/// Mean of a Normal(mu, sigma) truncated to [a, b].
double TruncatedNormalMean(double mu, double sigma, double a, double b) {
  double alpha = (a - mu) / sigma, beta = (b - mu) / sigma;
  double z = NormalCdf(beta) - NormalCdf(alpha);
  return mu + sigma * (NormalPdf(alpha) - NormalPdf(beta)) / z;
}

class ExpectationTest : public ::testing::Test {
 protected:
  VariablePool pool_{2024};
};

TEST_F(ExpectationTest, DeterministicExpressionShortCircuits) {
  SamplingEngine engine(&pool_);
  auto r = engine.Expectation(Expr::Constant(3.5), Condition::True(), true)
               .value();
  EXPECT_EQ(r.expectation, 3.5);
  EXPECT_EQ(r.probability, 1.0);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.samples_used, 0u);
}

TEST_F(ExpectationTest, KnownFalseConditionYieldsNanZero) {
  SamplingEngine engine(&pool_);
  auto r =
      engine.Expectation(Expr::Constant(1.0), Condition::False(), true).value();
  EXPECT_TRUE(std::isnan(r.expectation));
  EXPECT_EQ(r.probability, 0.0);
}

TEST_F(ExpectationTest, UnsatisfiableContinuousConditionYieldsNanZero) {
  VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
  SamplingEngine engine(&pool_);
  Condition c(Expr::Var(u) > Expr::Constant(2.0));
  auto r = engine.Expectation(Expr::Var(u), c, true).value();
  EXPECT_TRUE(std::isnan(r.expectation));
  EXPECT_EQ(r.probability, 0.0);
}

TEST_F(ExpectationTest, UnconstrainedMeanIsIntegratedExactly) {
  // Single-variable targets sidestep sampling entirely via quadrature.
  VarRef x = pool_.Create("Normal", {5.0, 2.0}).value();
  SamplingEngine engine(&pool_);
  auto r = engine.Expectation(Expr::Var(x), Condition::True(), false).value();
  EXPECT_NEAR(r.expectation, 5.0, 1e-8);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.samples_used, 0u);
}

TEST_F(ExpectationTest, UnconstrainedMeanMatchesDistribution) {
  VarRef x = pool_.Create("Normal", {5.0, 2.0}).value();
  SamplingOptions opts;
  opts.fixed_samples = 20000;
  opts.use_numeric_integration = false;  // Exercise the sampling path.
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(x), Condition::True(), false).value();
  EXPECT_NEAR(r.expectation, 5.0, 0.06);
  EXPECT_EQ(r.samples_used, 20000u);
}

// Paper Example 4.1: Normal variable with condition (Y > -3) AND (Y < 2).
// With sigma = 10 the condition probability is ~0.17 (the paper's number);
// PIP computes it *exactly* via the CDF, and the conditional expectation
// matches the truncated-normal closed form.
TEST_F(ExpectationTest, PaperExample41) {
  VarRef y = pool_.Create("Normal", {5.0, 10.0}).value();
  Condition c;
  c.AddAtom(Expr::Var(y) > Expr::Constant(-3.0));
  c.AddAtom(Expr::Var(y) < Expr::Constant(2.0));

  SamplingOptions opts;
  opts.fixed_samples = 30000;
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(y), c, true).value();

  double exact_p = NormalCdf((2.0 - 5.0) / 10.0) - NormalCdf((-3.0 - 5.0) / 10.0);
  EXPECT_NEAR(exact_p, 0.17, 0.001);          // The paper's ~0.17.
  EXPECT_NEAR(r.probability, exact_p, 1e-12);  // Exact via CDF window.
  double exact_mean = TruncatedNormalMean(5.0, 10.0, -3.0, 2.0);
  EXPECT_NEAR(r.expectation, exact_mean, 0.05);
}

TEST_F(ExpectationTest, CdfConstrainedSamplingWastesNoSamples) {
  // With inverse-CDF windows, every draw lands inside the bounds: attempts
  // == accepted samples even for a 1-in-a-million condition.
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(y) > Expr::Constant(4.75));  // P ~ 1e-6.
  SamplingOptions opts;
  opts.fixed_samples = 2000;
  opts.use_numeric_integration = false;  // Exercise the CDF-window sampler.
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(y), c, true).value();
  EXPECT_EQ(r.samples_used, 2000u);
  EXPECT_EQ(r.attempts, 2000u);  // Zero rejections.
  EXPECT_GE(r.expectation, 4.75);
  double exact_p = 1.0 - NormalCdf(4.75);
  EXPECT_NEAR(r.probability, exact_p, 1e-9);
}

TEST_F(ExpectationTest, CdfSamplingDisabledFallsBackToRejection) {
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(y) > Expr::Constant(1.0));  // P ~ 0.159.
  SamplingOptions opts;
  opts.fixed_samples = 500;
  opts.use_cdf_sampling = false;
  opts.use_exact_cdf = false;
  opts.use_metropolis = false;
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(y), c, true).value();
  EXPECT_GT(r.attempts, r.samples_used * 4);  // ~6.3 attempts per sample.
  double exact_mean = TruncatedNormalMean(0.0, 1.0, 1.0, 100.0);
  EXPECT_NEAR(r.expectation, exact_mean, 0.1);
  EXPECT_NEAR(r.probability, 1.0 - NormalCdf(1.0), 0.05);
}

// The paper's Example 3.1 / introduction: the profit variable is
// independent of the shipping time, so PIP samples the profit
// unconstrained while the shipping-time group is integrated exactly.
TEST_F(ExpectationTest, IndependenceDecouplesTargetFromCondition) {
  VarRef price = pool_.Create("Normal", {100.0, 10.0}).value();
  VarRef duration = pool_.Create("Normal", {5.0, 1.0}).value();
  Condition c(Expr::Var(duration) >= Expr::Constant(7.0));
  SamplingOptions opts;
  opts.fixed_samples = 5000;
  opts.use_numeric_integration = false;  // Exercise group decomposition.
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(price), c, true).value();
  // E[price | duration >= 7] = E[price] by independence.
  EXPECT_NEAR(r.expectation, 100.0, 1.0);
  // P[duration >= 7] = 1 - Phi(2), exactly (separate group, CDF path).
  EXPECT_NEAR(r.probability, 1.0 - NormalCdf(2.0), 1e-12);
  // No sampling effort wasted on the rare condition.
  EXPECT_EQ(r.attempts, 5000u);
}

TEST_F(ExpectationTest, TwoVariableAtomForcesJointSampling) {
  // X, Y iid N(0,1): E[X | X > Y] = 1/sqrt(pi).
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) > Expr::Var(y));
  SamplingOptions opts;
  opts.fixed_samples = 40000;
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(x), c, true).value();
  EXPECT_NEAR(r.expectation, 1.0 / std::sqrt(M_PI), 0.02);
  EXPECT_NEAR(r.probability, 0.5, 0.02);
}

TEST_F(ExpectationTest, MetropolisKicksInForTinyAcceptance) {
  // X - Y > 5.5 for iid N(0,1): acceptance ~5e-5; rejection sampling
  // would need ~20k attempts per sample. The Metropolis switch makes this
  // tractable; the conditional mean of X - Y is ~5.83.
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(5.5));
  SamplingOptions opts;
  opts.fixed_samples = 3000;
  SamplingEngine engine(&pool_, opts);
  auto r =
      engine.Expectation(Expr::Var(x) - Expr::Var(y), c, false).value();
  EXPECT_EQ(r.samples_used, 3000u);
  EXPECT_NEAR(r.expectation, 5.83, 0.25);
}

TEST_F(ExpectationTest, MetropolisDisabledStillSoundViaRejection) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(2.0));
  SamplingOptions opts;
  opts.fixed_samples = 2000;
  opts.use_metropolis = false;
  SamplingEngine engine(&pool_, opts);
  auto r =
      engine.Expectation(Expr::Var(x) - Expr::Var(y), c, true).value();
  // E[X - Y | X - Y > 2] for N(0, sqrt(2)).
  double sigma = std::sqrt(2.0);
  double exact = TruncatedNormalMean(0.0, sigma, 2.0, 1e9);
  EXPECT_NEAR(r.expectation, exact, 0.1);
  EXPECT_NEAR(r.probability, 1.0 - NormalCdf(2.0 / sigma), 0.02);
}

TEST_F(ExpectationTest, PoissonExactTailProbabilities) {
  // Strictness on the integer lattice: P[X > 7] != P[X >= 7].
  VarRef p = pool_.Create("Poisson", {4.0}).value();
  SamplingEngine engine(&pool_);
  auto gt = engine.Confidence(Condition(Expr::Var(p) > Expr::Constant(7.0)))
                .value();
  auto ge = engine.Confidence(Condition(Expr::Var(p) >= Expr::Constant(7.0)))
                .value();
  EXPECT_TRUE(gt.exact);
  EXPECT_TRUE(ge.exact);
  EXPECT_NEAR(gt.probability, 1.0 - PoissonCdf(4.0, 7.0), 1e-12);
  EXPECT_NEAR(ge.probability, 1.0 - PoissonCdf(4.0, 6.0), 1e-12);
  EXPECT_GT(ge.probability, gt.probability);
}

TEST_F(ExpectationTest, PoissonEqualityUsesPmf) {
  VarRef p = pool_.Create("Poisson", {4.0}).value();
  SamplingEngine engine(&pool_);
  auto eq = engine.Confidence(Condition(Expr::Var(p) == Expr::Constant(3.0)))
                .value();
  EXPECT_TRUE(eq.exact);
  EXPECT_NEAR(eq.probability, std::exp(PoissonLogPmf(4.0, 3)), 1e-12);
}

TEST_F(ExpectationTest, ConfidenceOfConjunctionAcrossGroups) {
  // Independent groups multiply: P[X > 0] * P[U < 0.25].
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
  Condition c;
  c.AddAtom(Expr::Var(x) > Expr::Constant(0.0));
  c.AddAtom(Expr::Var(u) < Expr::Constant(0.25));
  SamplingEngine engine(&pool_);
  auto r = engine.Confidence(c).value();
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.probability, 0.5 * 0.25, 1e-12);
}

TEST_F(ExpectationTest, AdaptiveStoppingUsesFewerSamplesForEasyQueries) {
  VarRef x = pool_.Create("Normal", {100.0, 0.1}).value();  // Tiny CV.
  SamplingOptions opts;
  opts.delta = 0.01;
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(x), Condition::True(), false).value();
  EXPECT_NEAR(r.expectation, 100.0, 0.1);
  EXPECT_LT(r.samples_used, 200u);  // Converges almost immediately.
}

TEST_F(ExpectationTest, ResultsAreReplayDeterministic) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) > Expr::Constant(0.5));
  SamplingOptions opts;
  opts.fixed_samples = 500;
  SamplingEngine a(&pool_, opts), b(&pool_, opts);
  auto ra = a.Expectation(Expr::Var(x), c, true).value();
  auto rb = b.Expectation(Expr::Var(x), c, true).value();
  EXPECT_EQ(ra.expectation, rb.expectation);
  EXPECT_EQ(ra.probability, rb.probability);
}

TEST_F(ExpectationTest, SampleOffsetGivesFreshDraws) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  SamplingOptions opts;
  opts.fixed_samples = 100;
  opts.use_numeric_integration = false;
  SamplingEngine a(&pool_, opts);
  opts.sample_offset = 1000000;
  SamplingEngine b(&pool_, opts);
  auto ra = a.Expectation(Expr::Var(x), Condition::True(), false).value();
  auto rb = b.Expectation(Expr::Var(x), Condition::True(), false).value();
  EXPECT_NE(ra.expectation, rb.expectation);
}

TEST_F(ExpectationTest, MultivariateCorrelationSurvivesConditioning) {
  // (A, B) bivariate normal with strong positive correlation; E[B | A > 1]
  // must be pulled up even though the atom only mentions A.
  VarRef a =
      pool_.Create("MVNormal", {2.0, 0.0, 0.0, 1.0, 0.9, 0.9, 1.0}).value();
  VarRef b = pool_.Component(a, 1).value();
  Condition c(Expr::Var(a) > Expr::Constant(1.0));
  SamplingOptions opts;
  opts.fixed_samples = 20000;
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(b), c, true).value();
  // E[B | A > 1] = rho * E[A | A > 1] = 0.9 * phi(1)/Q(1) ~ 0.9 * 1.5251.
  double expected = 0.9 * NormalPdf(1.0) / (1.0 - NormalCdf(1.0));
  EXPECT_NEAR(r.expectation, expected, 0.05);
  EXPECT_NEAR(r.probability, 1.0 - NormalCdf(1.0), 0.01);
}

TEST_F(ExpectationTest, SampleConditionalRespectsCondition) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c;
  c.AddAtom(Expr::Var(x) > Expr::Constant(0.5));
  c.AddAtom(Expr::Var(x) < Expr::Constant(1.5));
  SamplingEngine engine(&pool_);
  auto samples = engine.SampleConditional(Expr::Var(x), c, 500).value();
  ASSERT_EQ(samples.size(), 500u);
  for (double s : samples) {
    EXPECT_GT(s, 0.5);
    EXPECT_LT(s, 1.5);
  }
}

TEST_F(ExpectationTest, SampleConditionalUnsatisfiableIsEmpty) {
  VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
  Condition c(Expr::Var(u) > Expr::Constant(5.0));
  SamplingEngine engine(&pool_);
  EXPECT_TRUE(engine.SampleConditional(Expr::Var(u), c, 10).value().empty());
}

TEST_F(ExpectationTest, JointConfidenceComplementaryHalves) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  std::vector<Condition> disjuncts = {
      Condition(Expr::Var(x) > Expr::Constant(0.0)),
      Condition(Expr::Var(x) < Expr::Constant(0.0))};
  SamplingEngine engine(&pool_);
  EXPECT_NEAR(engine.JointConfidence(disjuncts).value(), 1.0, 1e-9);
}

TEST_F(ExpectationTest, JointConfidenceInclusionExclusion) {
  // P[X > 0 or Y > 0] = 0.75 for independent standard normals.
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  std::vector<Condition> disjuncts = {
      Condition(Expr::Var(x) > Expr::Constant(0.0)),
      Condition(Expr::Var(y) > Expr::Constant(0.0))};
  SamplingEngine engine(&pool_);
  EXPECT_NEAR(engine.JointConfidence(disjuncts).value(), 0.75, 1e-9);
}

TEST_F(ExpectationTest, JointConfidenceManyDisjunctsMonteCarlo) {
  // 8 disjuncts forces the MC path: X > k for k = 0..7 reduces to X > 0.
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  std::vector<Condition> disjuncts;
  for (int k = 0; k < 8; ++k) {
    disjuncts.emplace_back(Expr::Var(x) >
                           Expr::Constant(static_cast<double>(k)));
  }
  SamplingOptions opts;
  opts.fixed_samples = 20000;
  SamplingEngine engine(&pool_, opts);
  EXPECT_NEAR(engine.JointConfidence(disjuncts).value(), 0.5, 0.02);
}

TEST_F(ExpectationTest, JointConfidenceEdgeCases) {
  SamplingEngine engine(&pool_);
  EXPECT_EQ(engine.JointConfidence({}).value(), 0.0);
  EXPECT_EQ(engine.JointConfidence({Condition::False()}).value(), 0.0);
  EXPECT_EQ(engine.JointConfidence({Condition::True(), Condition::False()})
                .value(),
            1.0);
}

TEST_F(ExpectationTest, BetaVariableExactTail) {
  VarRef b = pool_.Create("Beta", {2.0, 3.0}).value();
  SamplingEngine engine(&pool_);
  auto r = engine.Confidence(Condition(Expr::Var(b) > Expr::Constant(0.5)))
               .value();
  EXPECT_TRUE(r.exact);
  // P[Beta(2,3) > 0.5] = 1 - I_{0.5}(2,3) = 1 - 11/16.
  EXPECT_NEAR(r.probability, 1.0 - 11.0 / 16.0, 1e-9);
}

TEST_F(ExpectationTest, StudentTSymmetricTails) {
  VarRef t = pool_.Create("StudentT", {5.0}).value();
  SamplingEngine engine(&pool_);
  auto upper =
      engine.Confidence(Condition(Expr::Var(t) > Expr::Constant(2.0)))
          .value();
  auto lower =
      engine.Confidence(Condition(Expr::Var(t) < Expr::Constant(-2.0)))
          .value();
  EXPECT_TRUE(upper.exact);
  EXPECT_NEAR(upper.probability, lower.probability, 1e-10);
  // t_{0.95, 5} ~ 2.015: P[T > 2.0] slightly above 0.05.
  EXPECT_NEAR(upper.probability, 0.0510, 0.001);
}

TEST_F(ExpectationTest, MaxTotalAttemptsBudgetGivesNan) {
  // A satisfiable-but-astronomically-rare two-variable condition exhausts
  // the attempt budget and must report (NAN, 0) rather than hang: both
  // variables lack a PDF-free fallback here because we disable Metropolis.
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(14.0));
  SamplingOptions opts;
  opts.fixed_samples = 10;
  opts.use_metropolis = false;
  opts.max_total_attempts = 20000;
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(x), c, true).value();
  EXPECT_TRUE(std::isnan(r.expectation));
  EXPECT_EQ(r.probability, 0.0);
}

TEST_F(ExpectationTest, ConfidenceOfTrueConditionIsOne) {
  SamplingEngine engine(&pool_);
  auto r = engine.Confidence(Condition::True()).value();
  EXPECT_EQ(r.probability, 1.0);
  EXPECT_TRUE(r.exact);
}

TEST_F(ExpectationTest, ExpressionOverConditionedAndFreeVariables) {
  // Target mixes a conditioned variable and a free one: X * U with
  // X | X > 1 and U unconstrained uniform. E = E[X | X>1] * E[U].
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef u = pool_.Create("Uniform", {0.0, 2.0}).value();
  Condition c(Expr::Var(x) > Expr::Constant(1.0));
  SamplingOptions opts;
  opts.fixed_samples = 30000;
  SamplingEngine engine(&pool_, opts);
  auto r =
      engine.Expectation(Expr::Var(x) * Expr::Var(u), c, false).value();
  double ex = TruncatedNormalMean(0.0, 1.0, 1.0, 1e9);
  EXPECT_NEAR(r.expectation, ex * 1.0, 0.05);
}

}  // namespace
}  // namespace pip
