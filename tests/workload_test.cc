#include <gtest/gtest.h>

#include <cmath>

#include "src/common/running_stats.h"
#include "src/workload/iceberg.h"
#include "src/workload/queries.h"
#include "src/workload/tpch.h"

namespace pip {
namespace workload {
namespace {

TpchConfig SmallConfig() {
  TpchConfig config;
  config.num_customers = 40;
  config.num_suppliers = 8;
  config.num_parts = 30;
  return config;
}

TEST(TpchTest, GeneratorIsDeterministic) {
  TpchData a = GenerateTpch(SmallConfig());
  TpchData b = GenerateTpch(SmallConfig());
  ASSERT_EQ(a.orders.num_rows(), b.orders.num_rows());
  for (size_t i = 0; i < a.orders.num_rows(); ++i) {
    EXPECT_EQ(a.orders.row(i), b.orders.row(i));
  }
}

TEST(TpchTest, SchemaShapes) {
  TpchData data = GenerateTpch(SmallConfig());
  EXPECT_EQ(data.customer.num_rows(), 40u);
  EXPECT_EQ(data.supplier.num_rows(), 8u);
  EXPECT_EQ(data.part.num_rows(), 30u);
  EXPECT_GT(data.orders.num_rows(), 40u * 2 * 4 - 1);
  // Every part references a valid supplier.
  for (const auto& row : data.part.rows()) {
    EXPECT_LT(row[1].int_value(), 8);
  }
}

TEST(TpchTest, RevenueSummaryPositiveRates) {
  TpchData data = GenerateTpch(SmallConfig());
  auto revenue = SummarizeRevenue(data);
  EXPECT_EQ(revenue.size(), 40u);
  for (const auto& r : revenue) {
    EXPECT_GT(r.increase_lambda, 0.0);
    EXPECT_GT(r.avg_order_price, 0.0);
    EXPECT_GT(r.revenue_year1, 0.0);
  }
}

TEST(QueriesTest, Q1EnginesAgreeWithTruth) {
  TpchData data = GenerateTpch(SmallConfig());
  double truth = Q1Truth(data);
  SamplingOptions opts;
  opts.fixed_samples = 1000;
  TimedResult pip = RunQ1Pip(data, 1, opts).value();
  TimedResult sf = RunQ1SampleFirst(data, 1000, 1).value();
  EXPECT_NEAR(pip.value, truth, 0.05 * truth);
  EXPECT_NEAR(sf.value, truth, 0.05 * truth);
}

TEST(QueriesTest, Q2EnginesAgree) {
  TpchData data = GenerateTpch(SmallConfig());
  SamplingOptions opts;
  TimedResult pip = RunQ2Pip(data, 2, opts, /*world_samples=*/4000).value();
  TimedResult sf = RunQ2SampleFirst(data, 4000, 2).value();
  ASSERT_GT(pip.value, 0.0);
  EXPECT_NEAR(pip.value, sf.value, 0.05 * pip.value);
}

TEST(QueriesTest, Q3MatchesClosedForm) {
  TpchData data = GenerateTpch(SmallConfig());
  double truth = Q3Truth(data);
  SamplingOptions opts;
  opts.fixed_samples = 1000;
  TimedResult pip = RunQ3Pip(data, 3, opts).value();
  EXPECT_NEAR(pip.value, truth, 0.05 * truth);
  TimedResult sf = RunQ3SampleFirst(data, 10000, 3).value();
  EXPECT_NEAR(sf.value, truth, 0.15 * truth);  // SF noisier at fixed worlds.
}

TEST(QueriesTest, Q3SelectivityInPaperRange) {
  TpchData data = GenerateTpch(SmallConfig());
  double sel = Q3AverageSelectivity(data);
  EXPECT_GT(sel, 0.02);
  EXPECT_LT(sel, 0.4);  // Paper: ~10% dissatisfied on average.
}

TEST(QueriesTest, Q4PipTracksTruthAtLowSelectivity) {
  TpchData data = GenerateTpch(SmallConfig());
  const double selectivity = 0.005;
  SamplingOptions opts;
  opts.fixed_samples = 1000;
  SeriesResult pip = RunQ4Pip(data, selectivity, 4, opts).value();
  std::vector<double> truth = Q4Truth(data, selectivity);
  ASSERT_EQ(pip.per_item.size(), truth.size());
  double rms = NormalizedRmsError(pip.per_item, 0.0);  // Placeholder use.
  (void)rms;
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(pip.per_item[i], truth[i], 0.15 * truth[i]) << "part " << i;
  }
}

TEST(QueriesTest, Q4SampleFirstDegradesAtLowSelectivity) {
  // The headline contrast of Fig. 7(a): at selectivity 0.005 with 1000
  // worlds, Sample-First keeps ~5 worlds per part and its per-part error
  // is far larger than PIP's.
  TpchData data = GenerateTpch(SmallConfig());
  const double selectivity = 0.005;
  SamplingOptions opts;
  opts.fixed_samples = 1000;
  SeriesResult pip = RunQ4Pip(data, selectivity, 5, opts).value();
  SeriesResult sf = RunQ4SampleFirst(data, selectivity, 1000, 5).value();
  std::vector<double> truth = Q4Truth(data, selectivity);
  double pip_err = 0.0, sf_err = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    pip_err += std::fabs(pip.per_item[i] - truth[i]) / truth[i];
    sf_err += std::fabs(sf.per_item[i] - truth[i]) / truth[i];
  }
  pip_err /= truth.size();
  sf_err /= truth.size();
  EXPECT_LT(pip_err, 0.1);
  EXPECT_GT(sf_err, 3.0 * pip_err);
}

TEST(QueriesTest, Q5SelectivitySolverInvertsCorrectly) {
  for (double lambda : {1.0, 3.0, 8.0}) {
    for (double target : {0.25, 0.05, 0.01}) {
      double rate = Q5SupplyRate(lambda, target);
      EXPECT_NEAR(Q5Selectivity(lambda, rate), target, 1e-6)
          << "lambda=" << lambda << " target=" << target;
    }
  }
}

TEST(QueriesTest, Q5ConditionalShortfallSanity) {
  // Conditioned on undersupply, the shortfall is positive and below the
  // demand mean.
  double rate = Q5SupplyRate(4.0, 0.05);
  double shortfall = Q5ConditionalShortfall(4.0, rate);
  EXPECT_GT(shortfall, 0.0);
  EXPECT_LT(shortfall, 10.0);
}

TEST(QueriesTest, Q5PipMatchesSeriesTruth) {
  TpchConfig config = SmallConfig();
  config.num_parts = 10;  // Rejection sampling is the costly path here.
  TpchData data = GenerateTpch(config);
  const double selectivity = 0.05;
  SamplingOptions opts;
  opts.fixed_samples = 2000;
  SeriesResult pip = RunQ5Pip(data, selectivity, 6, opts).value();
  std::vector<double> truth = Q5Truth(data, selectivity);
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(pip.per_item[i], truth[i], 0.12 * truth[i]) << "part " << i;
  }
}

TEST(QueriesTest, Q5SampleFirstNoisierThanPip) {
  TpchConfig config = SmallConfig();
  config.num_parts = 10;
  TpchData data = GenerateTpch(config);
  const double selectivity = 0.05;
  std::vector<double> truth = Q5Truth(data, selectivity);
  // 30-trial RMS comparison at 200 worlds/samples (a miniature Fig. 7b).
  double pip_err = 0.0, sf_err = 0.0;
  for (uint64_t trial = 0; trial < 10; ++trial) {
    SamplingOptions opts;
    opts.fixed_samples = 200;
    opts.sample_offset = trial * 1000000;
    SeriesResult pip = RunQ5Pip(data, selectivity, 100 + trial, opts).value();
    SeriesResult sf =
        RunQ5SampleFirst(data, selectivity, 200, 100 + trial).value();
    for (size_t i = 0; i < truth.size(); ++i) {
      pip_err += std::pow((pip.per_item[i] - truth[i]) / truth[i], 2);
      sf_err += std::pow((sf.per_item[i] - truth[i]) / truth[i], 2);
    }
  }
  EXPECT_LT(pip_err, sf_err);
}

TEST(IcebergTest, GeneratorShapes) {
  IcebergConfig config;
  config.num_icebergs = 20;
  config.num_ships = 10;
  IcebergData data = GenerateIceberg(config);
  EXPECT_EQ(data.sightings.num_rows(), 20u);
  EXPECT_EQ(data.ships.num_rows(), 10u);
  for (const auto& row : data.sightings.rows()) {
    EXPECT_GT(row[4].double_value(), 0.0);          // sigma
    EXPECT_GT(row[5].double_value(), 0.0);          // danger
    EXPECT_LE(row[5].double_value(), 1.0);
  }
}

TEST(IcebergTest, PipIsExactAndMatchesTruth) {
  IcebergConfig config;
  config.num_icebergs = 25;
  config.num_ships = 8;
  IcebergData data = GenerateIceberg(config);
  SeriesResult pip = RunIcebergPip(data, config, 7).value();
  std::vector<double> truth = IcebergTruth(data, config);
  ASSERT_EQ(pip.per_item.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(pip.per_item[i], truth[i], 1e-9) << "ship " << i;
  }
}

TEST(IcebergTest, SampleFirstHasVisibleError) {
  IcebergConfig config;
  config.num_icebergs = 25;
  config.num_ships = 8;
  IcebergData data = GenerateIceberg(config);
  std::vector<double> truth = IcebergTruth(data, config);
  const size_t kWorlds = 2000;
  SeriesResult sf = RunIcebergSampleFirst(data, config, kWorlds, 7).value();
  // Acceptance window from the estimator's own statistics instead of
  // hard-coded constants: each per-ship estimate is a binomial proportion
  // over kWorlds worlds, so its relative standard error is
  // sigma_i = sqrt((1 - t_i) / (t_i * kWorlds)). The max over ships of
  // |err| / t_i should be on the order of the largest such sigma — well
  // above a small fraction of it (sampling noise is visible, the point of
  // the figure) and well below a many-sigma blowout (the estimator is
  // unbiased). The window is wide enough to absorb the max-statistic over
  // 8 correlated ships without going flaky, yet scales correctly if
  // kWorlds or the workload shape changes.
  double max_rel_err = 0.0;
  double max_sigma = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] > 1e-6) {
      max_rel_err = std::max(
          max_rel_err, std::fabs(sf.per_item[i] - truth[i]) / truth[i]);
      max_sigma = std::max(
          max_sigma, std::sqrt((1.0 - truth[i]) /
                               (truth[i] * static_cast<double>(kWorlds))));
    }
  }
  ASSERT_GT(max_sigma, 0.0);
  EXPECT_GT(max_rel_err, 0.05 * max_sigma);  // Counting noise is visible...
  EXPECT_LT(max_rel_err, 6.0 * max_sigma);   // ...but unbiased: no blowout.
}

}  // namespace
}  // namespace workload
}  // namespace pip
