#include "src/samplefirst/sf_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/samplefirst/sf_table.h"

namespace pip {
namespace samplefirst {
namespace {

using CE = ColExpr;

Table MakeParams() {
  Table t(Schema({"key", "mu", "sigma"}));
  PIP_CHECK(t.Append({Value(int64_t{0}), Value(10.0), Value(1.0)}).ok());
  PIP_CHECK(t.Append({Value(int64_t{1}), Value(20.0), Value(2.0)}).ok());
  return t;
}

TEST(SFTableTest, FromTableLifts) {
  SFTable t = SFTable::FromTable(MakeParams(), 128);
  EXPECT_EQ(t.num_tuples(), 2u);
  EXPECT_EQ(t.num_worlds(), 128u);
  for (size_t w = 0; w < 128; ++w) {
    EXPECT_TRUE(t.tuple(0).PresentIn(w));
  }
  EXPECT_EQ(t.tuple(0).PresenceCount(), 128u);
}

TEST(SFTableTest, PresenceBitmapTailMasked) {
  SFTable t = SFTable::FromTable(MakeParams(), 70);  // Not a multiple of 64.
  EXPECT_EQ(t.tuple(0).PresenceCount(), 70u);
}

TEST(SFTableTest, SetAbsentClearsBit) {
  SFTable t = SFTable::FromTable(MakeParams(), 64);
  SFTuple tuple = t.tuple(0);
  tuple.SetAbsent(17);
  EXPECT_FALSE(tuple.PresentIn(17));
  EXPECT_TRUE(tuple.PresentIn(16));
  EXPECT_EQ(tuple.PresenceCount(), 63u);
}

TEST(SFTableTest, ParametrizeColumnDrawsFromDistribution) {
  SFTable base = SFTable::FromTable(MakeParams(), 20000);
  SFTable with_x =
      ParametrizeColumn(base, "x", "Normal", {"mu", "sigma"}, 7).value();
  ASSERT_EQ(with_x.schema().size(), 4u);
  const auto& arr = std::get<std::vector<double>>(with_x.tuple(0).cells[3]);
  ASSERT_EQ(arr.size(), 20000u);
  double mean = 0;
  for (double v : arr) mean += v;
  mean /= arr.size();
  EXPECT_NEAR(mean, 10.0, 0.05);
  // Second tuple has its own parameters.
  const auto& arr2 = std::get<std::vector<double>>(with_x.tuple(1).cells[3]);
  double mean2 = 0;
  for (double v : arr2) mean2 += v;
  mean2 /= arr2.size();
  EXPECT_NEAR(mean2, 20.0, 0.1);
}

TEST(SFTableTest, ParametrizeIsDeterministicGivenSeed) {
  SFTable base = SFTable::FromTable(MakeParams(), 100);
  SFTable a = ParametrizeColumn(base, "x", "Normal", {"mu", "sigma"}, 7).value();
  SFTable b = ParametrizeColumn(base, "x", "Normal", {"mu", "sigma"}, 7).value();
  SFTable c = ParametrizeColumn(base, "x", "Normal", {"mu", "sigma"}, 8).value();
  EXPECT_EQ(std::get<std::vector<double>>(a.tuple(0).cells[3]),
            std::get<std::vector<double>>(b.tuple(0).cells[3]));
  EXPECT_NE(std::get<std::vector<double>>(a.tuple(0).cells[3]),
            std::get<std::vector<double>>(c.tuple(0).cells[3]));
}

TEST(SFTableTest, ParametrizeRejectsInvalidParams) {
  Table params(Schema({"lo"}));
  PIP_CHECK(params.Append({Value(100.0)}).ok());
  SFTable base = SFTable::FromTable(params, 100);
  // lo == hi is invalid for Uniform: validation propagates as Status.
  EXPECT_FALSE(ParametrizeColumn(base, "w", "Uniform", {"lo", "lo"}, 0).ok());
}

TEST(SFTableTest, ParametrizeWithStochasticParamsChainsModels) {
  // A sampled column feeding a downstream distribution (per-world
  // parameters) — the chained-model case of MCDB's VG functions. Location
  // mu ~ Uniform(0, 10) feeds X ~ Normal(mu, 0.1): E[X] = 5 and
  // Var[X] ~ Var[mu] = 100/12 (the chain inherits the parameter spread).
  Table params(Schema({"lo", "hi", "sigma"}));
  PIP_CHECK(params.Append({Value(0.0), Value(10.0), Value(0.1)}).ok());
  SFTable base = SFTable::FromTable(params, 40000);
  SFTable with_mu =
      ParametrizeColumn(base, "mu", "Uniform", {"lo", "hi"}, 5).value();
  SFTable with_x =
      ParametrizeColumn(with_mu, "x", "Normal", {"mu", "sigma"}, 6).value();
  const auto& mu = std::get<std::vector<double>>(with_x.tuple(0).cells[3]);
  const auto& x = std::get<std::vector<double>>(with_x.tuple(0).cells[4]);
  double mean = 0, var = 0, track = 0;
  for (size_t w = 0; w < x.size(); ++w) {
    mean += x[w];
    track += std::fabs(x[w] - mu[w]);
  }
  mean /= x.size();
  for (double v : x) var += (v - mean) * (v - mean);
  var /= x.size();
  track /= x.size();
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 100.0 / 12.0, 0.3);
  // Each world's x hugs its own world's mu (sigma = 0.1 << spread of mu).
  EXPECT_LT(track, 0.15);
}

TEST(SFOpsTest, EvalColExprMixesConstantsAndArrays) {
  SFTable base = SFTable::FromTable(MakeParams(), 50);
  SFTable t = ParametrizeColumn(base, "x", "Normal", {"mu", "sigma"}, 3).value();
  auto expr = CE::Column("x") - CE::Column("mu");
  for (size_t w = 0; w < 5; ++w) {
    double direct = std::get<std::vector<double>>(t.tuple(0).cells[3])[w];
    Value v = EvalColExpr(*expr, t, t.tuple(0), w).value();
    EXPECT_NEAR(v.double_value(), direct - 10.0, 1e-12);
  }
}

TEST(SFOpsTest, EmbedRejected) {
  SFTable base = SFTable::FromTable(MakeParams(), 4);
  auto expr = CE::Embed(Expr::Var(VarRef{1, 0}));
  EXPECT_FALSE(EvalColExpr(*expr, base, base.tuple(0), 0).ok());
}

TEST(SFOpsTest, FilterDeterministicDropsTuples) {
  SFTable base = SFTable::FromTable(MakeParams(), 16);
  SFTable out =
      Filter(base, ColPredicate{CE::Column("mu") > CE::Literal(15.0)}).value();
  ASSERT_EQ(out.num_tuples(), 1u);
  EXPECT_EQ(std::get<Value>(out.tuple(0).cells[0]), Value(int64_t{1}));
}

TEST(SFOpsTest, FilterStochasticClearsWorldBits) {
  SFTable base = SFTable::FromTable(MakeParams(), 20000);
  SFTable t = ParametrizeColumn(base, "x", "Normal", {"mu", "sigma"}, 3).value();
  SFTable out =
      Filter(t, ColPredicate{CE::Column("x") > CE::Column("mu")}).value();
  // About half the worlds survive per tuple.
  for (const auto& tuple : out.tuples()) {
    double frac = static_cast<double>(tuple.PresenceCount()) / 20000.0;
    EXPECT_NEAR(frac, 0.5, 0.02);
  }
}

TEST(SFOpsTest, MapKeepsDeterministicCellsConstant) {
  SFTable base = SFTable::FromTable(MakeParams(), 8);
  SFTable out = Map(base, {{"key", CE::Column("key")},
                           {"mu2", CE::Column("mu") * CE::Literal(2.0)}})
                    .value();
  EXPECT_FALSE(IsStochastic(out.tuple(0).cells[0]));
  EXPECT_FALSE(IsStochastic(out.tuple(0).cells[1]));
  EXPECT_EQ(std::get<Value>(out.tuple(0).cells[1]), Value(20.0));
}

TEST(SFOpsTest, JoinAlignsWorlds) {
  Table lt(Schema({"k"}));
  PIP_CHECK(lt.Append({Value(int64_t{1})}).ok());
  Table rt(Schema({"k2"}));
  PIP_CHECK(rt.Append({Value(int64_t{1})}).ok());
  SFTable l = SFTable::FromTable(lt, 64);
  SFTable r = SFTable::FromTable(rt, 64);
  // Clear some worlds on each side; the join intersects presence.
  SFTuple lt0 = l.tuple(0);
  SFTable l2(l.schema(), 64);
  lt0.SetAbsent(0);
  lt0.SetAbsent(1);
  PIP_CHECK(l2.Append(lt0).ok());
  SFTuple rt0 = r.tuple(0);
  SFTable r2(r.schema(), 64);
  rt0.SetAbsent(1);
  rt0.SetAbsent(2);
  PIP_CHECK(r2.Append(rt0).ok());
  SFTable joined =
      Join(l2, r2, ColPredicate{CE::Column("k") == CE::Column("k2")}).value();
  ASSERT_EQ(joined.num_tuples(), 1u);
  EXPECT_EQ(joined.tuple(0).PresenceCount(), 61u);  // 64 - worlds {0,1,2}.
}

TEST(SFOpsTest, JoinWorldCountMismatchRejected) {
  SFTable l(Schema({"a"}), 10), r(Schema({"b"}), 20);
  EXPECT_FALSE(Join(l, r, {}).ok());
}

TEST(SFOpsTest, GroupByPartitions) {
  Table t(Schema({"g", "v"}));
  PIP_CHECK(t.Append({Value("a"), Value(1.0)}).ok());
  PIP_CHECK(t.Append({Value("b"), Value(2.0)}).ok());
  PIP_CHECK(t.Append({Value("a"), Value(3.0)}).ok());
  SFTable sf = SFTable::FromTable(t, 4);
  auto groups = GroupBy(sf, {"g"}).value();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].rows.num_tuples(), 2u);
}

TEST(SFOpsTest, PerWorldAggregates) {
  Table t(Schema({"v"}));
  PIP_CHECK(t.Append({Value(3.0)}).ok());
  PIP_CHECK(t.Append({Value(5.0)}).ok());
  SFTable sf = SFTable::FromTable(t, 8);
  auto sums = PerWorldSums(sf, "v").value();
  ASSERT_EQ(sums.size(), 8u);
  for (double s : sums) EXPECT_EQ(s, 8.0);
  auto counts = PerWorldCounts(sf);
  for (double c : counts) EXPECT_EQ(c, 2.0);
  auto maxima = PerWorldMax(sf, "v").value();
  for (double m : maxima) EXPECT_EQ(m, 5.0);
  EXPECT_EQ(MeanOverWorlds(sums), 8.0);
}

TEST(SFOpsTest, PerWorldMaxEmptyWorldsGetDefault) {
  Table t(Schema({"v"}));
  PIP_CHECK(t.Append({Value(5.0)}).ok());
  SFTable sf = SFTable::FromTable(t, 4);
  SFTuple tuple = sf.tuple(0);
  tuple.SetAbsent(2);
  SFTable sf2(sf.schema(), 4);
  PIP_CHECK(sf2.Append(tuple).ok());
  auto maxima = PerWorldMax(sf2, "v", -1.0).value();
  EXPECT_EQ(maxima[2], -1.0);
  EXPECT_EQ(maxima[0], 5.0);
}

TEST(SFOpsTest, SampleFirstSelectivityPathology) {
  // The core phenomenon of the paper: after a selective filter, the
  // number of usable worlds collapses, so downstream estimates rest on
  // very few samples.
  Table t(Schema({"mu", "sigma"}));
  PIP_CHECK(t.Append({Value(0.0), Value(1.0)}).ok());
  SFTable base = SFTable::FromTable(t, 1000);
  SFTable sf = ParametrizeColumn(base, "x", "Normal", {"mu", "sigma"}, 11).value();
  // Keep only worlds where x > 2.3 (P ~ 0.0107).
  SFTable filtered =
      Filter(sf, ColPredicate{CE::Column("x") > CE::Literal(2.3)}).value();
  ASSERT_EQ(filtered.num_tuples(), 1u);
  size_t kept = filtered.tuple(0).PresenceCount();
  EXPECT_LT(kept, 40u);  // ~11 expected out of 1000.
  EXPECT_GT(kept, 0u);
}

}  // namespace
}  // namespace samplefirst
}  // namespace pip
