#include "src/ctable/algebra.h"

#include <gtest/gtest.h>

#include "src/ctable/ctable.h"

namespace pip {
namespace {

using CE = ColExpr;

VarRef X1{101, 0};
VarRef X2{102, 0};
VarRef X3{103, 0};
VarRef X4{104, 0};

/// The running example of the paper: Order(Cust, ShipTo, Price) and
/// Shipping(Dest, Duration) with variable prices and durations.
CTable MakeOrderTable() {
  CTable t(Schema({"Cust", "ShipTo", "Price"}));
  PIP_CHECK(t.Append({Expr::String("Joe"), Expr::String("NY"), Expr::Var(X1)})
                .ok());
  PIP_CHECK(t.Append({Expr::String("Bob"), Expr::String("LA"), Expr::Var(X3)})
                .ok());
  return t;
}

CTable MakeShippingTable() {
  CTable t(Schema({"Dest", "Duration"}));
  PIP_CHECK(t.Append({Expr::String("NY"), Expr::Var(X2)}).ok());
  PIP_CHECK(t.Append({Expr::String("LA"), Expr::Var(X4)}).ok());
  return t;
}

TEST(CTableTest, FromTableLiftsDeterministically) {
  Table t(Schema({"a", "b"}));
  ASSERT_TRUE(t.Append({Value(int64_t{1}), Value("x")}).ok());
  CTable ct = CTable::FromTable(t);
  EXPECT_EQ(ct.num_rows(), 1u);
  EXPECT_TRUE(ct.row(0).IsDeterministic());
  EXPECT_TRUE(ct.row(0).condition.IsTrue());
}

TEST(CTableTest, AppendDropsKnownFalseRows) {
  CTable t(Schema({"a"}));
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}, Condition::False()).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(CTableTest, InstantiatePossibleWorld) {
  CTable t(Schema({"p"}));
  Condition c(Expr::Var(X2) >= Expr::Constant(7.0));
  ASSERT_TRUE(t.Append({Expr::Var(X1)}, c).ok());
  Assignment world;
  world.Set(X1, 42.0);
  world.Set(X2, 9.0);
  Table w = t.Instantiate(world).value();
  ASSERT_EQ(w.num_rows(), 1u);
  EXPECT_EQ(w.row(0)[0], Value(42.0));
  world.Set(X2, 3.0);
  EXPECT_EQ(t.Instantiate(world).value().num_rows(), 0u);
}

// The full Example 2.1 pipeline:
//   pi_Price(sigma_{ShipTo=Dest}(sigma_{Cust='Joe'}(Order) x
//            sigma_{Duration>=7}(Shipping)))
TEST(AlgebraTest, RunningExampleProducesExpectedCTable) {
  CTable orders = MakeOrderTable();
  CTable shipping = MakeShippingTable();

  CTable joe = Select(orders, ColPredicate{CE::Column("Cust") ==
                                           CE::Literal("Joe")})
                   .value();
  ASSERT_EQ(joe.num_rows(), 1u);  // Deterministic filter applied eagerly.

  CTable late =
      Select(shipping,
             ColPredicate{CE::Column("Duration") >= CE::Literal(7.0)})
          .value();
  ASSERT_EQ(late.num_rows(), 2u);  // Probabilistic: both rows conditioned.
  EXPECT_EQ(late.row(0).condition.size(), 1u);

  CTable product = Product(joe, late).value();
  ASSERT_EQ(product.num_rows(), 2u);

  CTable matched =
      Select(product,
             ColPredicate{CE::Column("ShipTo") == CE::Column("Dest")})
          .value();
  // ShipTo and Dest are constants: 'NY'='NY' keeps row 1, 'NY'='LA' drops
  // row 2.
  ASSERT_EQ(matched.num_rows(), 1u);

  CTable prices =
      Project(matched, {{"Price", CE::Column("Price")}}).value();
  ASSERT_EQ(prices.num_rows(), 1u);
  EXPECT_EQ(prices.schema().ToString(), "(Price)");
  // The surviving row is (X1 | X2 >= 7) — the paper's result table R.
  EXPECT_TRUE(prices.row(0).cells[0]->Equals(*Expr::Var(X1)));
  ASSERT_EQ(prices.row(0).condition.size(), 1u);
  EXPECT_EQ(prices.row(0).condition.atoms()[0].ToString(), "X102 >= 7");
}

TEST(AlgebraTest, SelectBindsRowCellsIntoAtoms) {
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(X1)}).ok());
  CTable sel =
      Select(t, ColPredicate{CE::Column("v") * CE::Literal(2.0) >
                             CE::Literal(10.0)})
          .value();
  ASSERT_EQ(sel.num_rows(), 1u);
  EXPECT_EQ(sel.row(0).condition.atoms()[0].ToString(), "(X101 * 2) > 10");
}

TEST(AlgebraTest, ProjectComputesArithmeticTargets) {
  CTable t(Schema({"a", "b"}));
  ASSERT_TRUE(t.Append({Expr::Constant(3.0), Expr::Var(X1)}).ok());
  CTable p = Project(t, {{"sum", CE::Column("a") + CE::Column("b")},
                         {"double_a", CE::Column("a") * CE::Literal(2.0)}})
                 .value();
  EXPECT_EQ(p.row(0).cells[1]->value(), Value(6.0));  // Folded constant.
  Assignment a;
  a.Set(X1, 4.0);
  EXPECT_EQ(p.row(0).cells[0]->EvalDouble(a).value(), 7.0);
}

TEST(AlgebraTest, ProductConjoinsConditions) {
  CTable l(Schema({"a"})), r(Schema({"b"}));
  ASSERT_TRUE(l.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X1) > Expr::Constant(0.0)))
                  .ok());
  ASSERT_TRUE(r.Append({Expr::Constant(2.0)},
                       Condition(Expr::Var(X2) > Expr::Constant(0.0)))
                  .ok());
  CTable prod = Product(l, r).value();
  ASSERT_EQ(prod.num_rows(), 1u);
  EXPECT_EQ(prod.row(0).condition.size(), 2u);
}

TEST(AlgebraTest, UnionPreservesBagSemantics) {
  CTable l(Schema({"a"})), r(Schema({"a"}));
  ASSERT_TRUE(l.Append({Expr::Constant(1.0)}).ok());
  ASSERT_TRUE(r.Append({Expr::Constant(1.0)}).ok());
  CTable u = Union(l, r).value();
  EXPECT_EQ(u.num_rows(), 2u);  // Duplicates preserved.
}

TEST(AlgebraTest, UnionArityMismatchRejected) {
  CTable l(Schema({"a"})), r(Schema({"a", "b"}));
  EXPECT_FALSE(Union(l, r).ok());
}

TEST(AlgebraTest, DistinctCoalescesIdenticalRowsSameCondition) {
  CTable t(Schema({"a"}));
  Condition c(Expr::Var(X1) > Expr::Constant(0.0));
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}, c).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}, c).ok());
  CTable d = Distinct(t).value();
  EXPECT_EQ(d.num_rows(), 1u);
}

TEST(AlgebraTest, DistinctKeepsDisjunctsSeparate) {
  // Same data, different conditions: bag-encoded disjunction survives.
  CTable t(Schema({"a"}));
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X1) > Expr::Constant(0.0)))
                  .ok());
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X2) > Expr::Constant(0.0)))
                  .ok());
  CTable d = Distinct(t).value();
  EXPECT_EQ(d.num_rows(), 2u);
}

TEST(AlgebraTest, DifferenceWithUnconditionalRhsRemovesRow) {
  CTable l(Schema({"a"})), r(Schema({"a"}));
  ASSERT_TRUE(l.Append({Expr::Constant(1.0)}).ok());
  ASSERT_TRUE(l.Append({Expr::Constant(2.0)}).ok());
  ASSERT_TRUE(r.Append({Expr::Constant(1.0)}).ok());
  CTable d = Difference(l, r).value();
  ASSERT_EQ(d.num_rows(), 1u);
  EXPECT_EQ(d.row(0).cells[0]->value(), Value(2.0));
}

TEST(AlgebraTest, DifferenceNegatesConditionalRhs) {
  // L has unconditional (1); R has (1 | X1 > 0). Result: (1 | X1 <= 0).
  CTable l(Schema({"a"})), r(Schema({"a"}));
  ASSERT_TRUE(l.Append({Expr::Constant(1.0)}).ok());
  ASSERT_TRUE(r.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X1) > Expr::Constant(0.0)))
                  .ok());
  CTable d = Difference(l, r).value();
  ASSERT_EQ(d.num_rows(), 1u);
  Assignment a;
  a.Set(X1, -1.0);
  EXPECT_TRUE(d.row(0).condition.Eval(a).value());
  a.Set(X1, 1.0);
  EXPECT_FALSE(d.row(0).condition.Eval(a).value());
}

/// Property: for every operator, instantiating the symbolic result in a
/// possible world equals applying the deterministic operator to the
/// instantiated inputs (Fig. 1 correctness), checked over random worlds.
class AlgebraWorldEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraWorldEquivalenceTest, SelectProductProjectCommuteWithWorlds) {
  CTable orders = MakeOrderTable();
  CTable shipping = MakeShippingTable();
  CTable joined =
      Join(orders, shipping,
           ColPredicate{CE::Column("ShipTo") == CE::Column("Dest"),
                        CE::Column("Duration") >= CE::Literal(7.0)})
          .value();
  CTable projected =
      Project(joined, {{"Price", CE::Column("Price")}}).value();

  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Assignment world;
    world.Set(X1, rng.NextUniform(0, 100));
    world.Set(X2, rng.NextUniform(0, 14));
    world.Set(X3, rng.NextUniform(0, 100));
    world.Set(X4, rng.NextUniform(0, 14));

    // Deterministic evaluation in the world.
    Table det_orders = orders.Instantiate(world).value();
    Table det_shipping = shipping.Instantiate(world).value();
    std::vector<double> expected;
    for (const auto& orow : det_orders.rows()) {
      for (const auto& srow : det_shipping.rows()) {
        if (orow[1] == srow[0] && srow[1].AsDouble().value() >= 7.0) {
          expected.push_back(orow[2].AsDouble().value());
        }
      }
    }
    // Symbolic-then-instantiate.
    Table actual = projected.Instantiate(world).value();
    ASSERT_EQ(actual.num_rows(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual.row(i)[0].AsDouble().value(), expected[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraWorldEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(AlgebraTest, DifferenceAgainstDisjunctiveRhs) {
  // R = {(1)}, S = {(1 | X>0), (1 | Y>0)} (bag-encoded disjunction):
  // surviving condition is NOT(X>0) AND NOT(Y>0).
  CTable l(Schema({"a"})), r(Schema({"a"}));
  ASSERT_TRUE(l.Append({Expr::Constant(1.0)}).ok());
  ASSERT_TRUE(r.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X1) > Expr::Constant(0.0)))
                  .ok());
  ASSERT_TRUE(r.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X2) > Expr::Constant(0.0)))
                  .ok());
  CTable d = Difference(l, r).value();
  for (double x : {-1.0, 1.0}) {
    for (double y : {-1.0, 1.0}) {
      Assignment world;
      world.Set(X1, x);
      world.Set(X2, y);
      size_t present = 0;
      for (const auto& row : d.rows()) {
        if (row.condition.Eval(world).value()) ++present;
      }
      bool expect_present = !(x > 0.0) && !(y > 0.0);
      EXPECT_EQ(present, expect_present ? 1u : 0u) << x << "," << y;
    }
  }
}

TEST(AlgebraTest, DifferenceConditionalLhsKeepsItsCondition) {
  // R = {(1 | X1 > 0)}, S = {(1 | X1 > 5)}: survivor needs X1 > 0 AND
  // NOT(X1 > 5), i.e. 0 < X1 <= 5.
  CTable l(Schema({"a"})), r(Schema({"a"}));
  ASSERT_TRUE(l.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X1) > Expr::Constant(0.0)))
                  .ok());
  ASSERT_TRUE(r.Append({Expr::Constant(1.0)},
                       Condition(Expr::Var(X1) > Expr::Constant(5.0)))
                  .ok());
  CTable d = Difference(l, r).value();
  for (double x : {-1.0, 3.0, 7.0}) {
    Assignment world;
    world.Set(X1, x);
    size_t present = 0;
    for (const auto& row : d.rows()) {
      if (row.condition.Eval(world).value()) ++present;
    }
    EXPECT_EQ(present, (x > 0.0 && x <= 5.0) ? 1u : 0u) << "x=" << x;
  }
}

TEST(AlgebraTest, SelectOnEmptyTable) {
  CTable t(Schema({"a"}));
  CTable out = Select(t, ColPredicate{CE::Column("a") > CE::Literal(0.0)})
                   .value();
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(AlgebraTest, ProjectMissingColumnFails) {
  CTable t(Schema({"a"}));
  PIP_CHECK(t.Append({Expr::Constant(1.0)}).ok());
  EXPECT_FALSE(Project(t, {{"z", CE::Column("zz")}}).ok());
}

TEST(AlgebraTest, ProductOfEmptyIsEmpty) {
  CTable l(Schema({"a"})), r(Schema({"b"}));
  PIP_CHECK(l.Append({Expr::Constant(1.0)}).ok());
  CTable out = Product(l, r).value();
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.schema().size(), 2u);
}

TEST(AlgebraTest, GroupByPartitionsOnConstants) {
  CTable t(Schema({"g", "v"}));
  ASSERT_TRUE(t.Append({Expr::String("a"), Expr::Var(X1)}).ok());
  ASSERT_TRUE(t.Append({Expr::String("b"), Expr::Var(X2)}).ok());
  ASSERT_TRUE(t.Append({Expr::String("a"), Expr::Var(X3)}).ok());
  auto groups = GroupBy(t, {"g"}).value();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key[0], Value("a"));
  EXPECT_EQ(groups[0].rows.num_rows(), 2u);
  EXPECT_EQ(groups[1].key[0], Value("b"));
  EXPECT_EQ(groups[1].rows.num_rows(), 1u);
}

TEST(AlgebraTest, GroupByRejectsProbabilisticKey) {
  CTable t(Schema({"g"}));
  ASSERT_TRUE(t.Append({Expr::Var(X1)}).ok());
  EXPECT_FALSE(GroupBy(t, {"g"}).ok());
}

TEST(AlgebraTest, ExplodeDiscreteEnumeratesValuations) {
  VariablePool pool;
  VarRef b = pool.Create("Bernoulli", {0.5}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(
      t.Append({Expr::Var(b) * Expr::Constant(10.0)}).ok());
  CTable e = ExplodeDiscrete(t, pool).value();
  ASSERT_EQ(e.num_rows(), 2u);
  // Cells are substituted to constants; conditions carry the X = v guard.
  EXPECT_EQ(e.row(0).cells[0]->value(), Value(0.0));
  EXPECT_EQ(e.row(1).cells[0]->value(), Value(10.0));
  EXPECT_EQ(e.row(0).condition.size(), 1u);
}

TEST(AlgebraTest, ExplodeDiscretePrunesContradictoryRows) {
  VariablePool pool;
  VarRef d = pool.Create("DiscreteUniform", {1.0, 3.0}).value();
  CTable t(Schema({"v"}));
  Condition c(Expr::Var(d) >= Expr::Constant(2.0));
  ASSERT_TRUE(t.Append({Expr::Var(d)}, c).ok());
  CTable e = ExplodeDiscrete(t, pool).value();
  // Valuation d=1 contradicts d >= 2 and is dropped.
  EXPECT_EQ(e.num_rows(), 2u);
}

TEST(AlgebraTest, ExplodeLeavesContinuousAlone) {
  VariablePool pool;
  VarRef n = pool.Create("Normal", {0.0, 1.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(n)}).ok());
  CTable e = ExplodeDiscrete(t, pool).value();
  EXPECT_EQ(e.num_rows(), 1u);
  EXPECT_FALSE(e.row(0).cells[0]->IsConstant());
}

TEST(AlgebraTest, ExplodeRespectsExpansionCap) {
  VariablePool pool;
  VarRef d = pool.Create("DiscreteUniform", {0.0, 99.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(d)}).ok());
  CTable e = ExplodeDiscrete(t, pool, /*max_expansion=*/10).value();
  EXPECT_EQ(e.num_rows(), 1u);  // Too large: left unexploded.
}

TEST(AlgebraTest, WorldEquivalenceOfExplosion) {
  // Explosion must not change possible-world semantics.
  VariablePool pool;
  VarRef d = pool.Create("DiscreteUniform", {0.0, 2.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(d) * Expr::Constant(2.0)},
                       Condition(Expr::Var(d) > Expr::Constant(0.0)))
                  .ok());
  CTable e = ExplodeDiscrete(t, pool).value();
  for (double val : {0.0, 1.0, 2.0}) {
    Assignment world;
    world.Set(d, val);
    Table before = t.Instantiate(world).value();
    Table after = e.Instantiate(world).value();
    ASSERT_EQ(before.num_rows(), after.num_rows()) << "val=" << val;
    for (size_t i = 0; i < before.num_rows(); ++i) {
      EXPECT_EQ(before.row(i)[0], after.row(i)[0]);
    }
  }
}

}  // namespace
}  // namespace pip
