#include "src/common/status.h"

#include <gtest/gtest.h>

namespace pip {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad param");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad param");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad param");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Inconsistent("x").code(), StatusCode::kInconsistent);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueOnSuccess) {
  StatusOr<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssign(int x, int* out) {
  PIP_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssign(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseAssign(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status UseReturnIf(bool fail) {
  PIP_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIf(false).ok());
  EXPECT_EQ(UseReturnIf(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace pip
