/// \file dist_plugin_test.cc
/// \brief End-to-end tests of the distribution-plugin API.
///
/// Exercises the pluggability claims directly: a user-defined class
/// registered at runtime flows through Database::CreateVariable and SQL
/// distribution constructors, and the engine's strategy ladder (exact CDF
/// -> inverse-CDF window -> rejection -> Metropolis) is chosen from each
/// plugin's *declared* capabilities, never from its identity.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/dist/distribution.h"
#include "src/dist/variable_pool.h"
#include "src/engine/database.h"
#include "src/sql/session.h"

namespace pip {
namespace {

// ---------------------------------------------------------------------------
// Test plugins.
// ---------------------------------------------------------------------------

/// Full-capability user plugin: Triangular(lo, mode, hi). This mirrors the
/// README's "writing your own distribution" walkthrough.
class TriangularDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Triangular";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    if (p.size() != 3) {
      return Status::InvalidArgument("Triangular expects (lo, mode, hi)");
    }
    if (!(p[0] <= p[1] && p[1] <= p[2] && p[0] < p[2])) {
      return Status::InvalidArgument("Triangular requires lo <= mode <= hi");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, Quantile(p, stream.NextUniform()));
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    double a = p[0], c = p[1], b = p[2];
    if (x < a || x > b) return 0.0;
    if (x <= c) {
      return c == a ? 2.0 / (b - a) : 2.0 * (x - a) / ((b - a) * (c - a));
    }
    return c == b ? 2.0 / (b - a) : 2.0 * (b - x) / ((b - a) * (b - c));
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    double a = p[0], c = p[1], b = p[2];
    if (x <= a) return 0.0;
    if (x >= b) return 1.0;
    if (x <= c) return (x - a) * (x - a) / ((b - a) * (c - a));
    return 1.0 - (b - x) * (b - x) / ((b - a) * (b - c));
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return Quantile(p, q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return (p[0] + p[1] + p[2]) / 3.0;
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    double a = p[0], c = p[1], b = p[2];
    return (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0;
  }
  Interval Support(const std::vector<double>& p, uint32_t) const override {
    return Interval(p[0], p[2]);
  }

 private:
  static double Quantile(const std::vector<double>& p, double q) {
    double a = p[0], c = p[1], b = p[2];
    double split = (c - a) / (b - a);
    if (q <= split) return a + std::sqrt(q * (b - a) * (c - a));
    return b - std::sqrt((1.0 - q) * (b - a) * (b - c));
  }
};

/// U(0,1) exposing only Generate + CDF: exact integration works, but
/// neither quantile windows nor Metropolis are available.
class CdfOnlyUnitDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "CdfOnlyUnit";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override { return kGenerate | kCdf; }
  Status ValidateParams(const std::vector<double>& p) const override {
    return p.empty() ? Status::OK()
                     : Status::InvalidArgument("CdfOnlyUnit takes no params");
  }
  Status GenerateJoint(const std::vector<double>&, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, stream.NextUniform());
    return Status::OK();
  }
  StatusOr<double> Cdf(const std::vector<double>&, uint32_t,
                       double x) const override {
    return std::min(1.0, std::max(0.0, x));
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval(0.0, 1.0);
  }
};

/// U(0,1) exposing Generate only — the deepest degradation tier: every
/// constrained query must run plain rejection sampling.
class GenOnlyUnitDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "GenOnlyUnit";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  Status ValidateParams(const std::vector<double>& p) const override {
    return p.empty() ? Status::OK()
                     : Status::InvalidArgument("GenOnlyUnit takes no params");
  }
  Status GenerateJoint(const std::vector<double>&, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, stream.NextUniform());
    return Status::OK();
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval(0.0, 1.0);
  }
};

/// U(0,1) with Generate + PDF: no CDF machinery, but the PDF qualifies it
/// for the Metropolis fallback when rejection collapses.
class PdfOnlyUnitDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "PdfOnlyUnit";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override { return kGenerate | kPdf; }
  Status ValidateParams(const std::vector<double>& p) const override {
    return p.empty() ? Status::OK()
                     : Status::InvalidArgument("PdfOnlyUnit takes no params");
  }
  Status GenerateJoint(const std::vector<double>&, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, stream.NextUniform());
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>&, uint32_t,
                       double x) const override {
    return (x >= 0.0 && x <= 1.0) ? 1.0 : 0.0;
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval(0.0, 1.0);
  }
};

/// U(0,1) plugin whose declared capabilities are chosen at construction;
/// two instances sharing one class name model a plugin upgrade that swaps
/// capabilities behind an unchanged name — the scenario the registry
/// generation counter (and the plan cache keying on it) exists for.
class SwappableUnitDist : public Distribution {
 public:
  SwappableUnitDist(std::string name, bool with_cdf)
      : name_(std::move(name)), with_cdf_(with_cdf) {}
  const std::string& name() const override { return name_; }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return with_cdf_ ? (kGenerate | kCdf) : kGenerate;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    return p.empty() ? Status::OK()
                     : Status::InvalidArgument(name_ + " takes no params");
  }
  Status GenerateJoint(const std::vector<double>&, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, stream.NextUniform());
    return Status::OK();
  }
  StatusOr<double> Cdf(const std::vector<double>&, uint32_t,
                       double x) const override {
    if (!with_cdf_) return Status::Unimplemented(name_ + ": no Cdf");
    return std::min(1.0, std::max(0.0, x));
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval(0.0, 1.0);
  }

 private:
  std::string name_;
  bool with_cdf_;
};

/// Registers the test plugins into the process registry once per binary.
void EnsureTestPlugins() {
  static const bool done = [] {
    auto& reg = DistributionRegistry::Global();
    PIP_CHECK(reg.Register(std::make_unique<TriangularDist>()).ok());
    PIP_CHECK(reg.Register(std::make_unique<CdfOnlyUnitDist>()).ok());
    PIP_CHECK(reg.Register(std::make_unique<GenOnlyUnitDist>()).ok());
    PIP_CHECK(reg.Register(std::make_unique<PdfOnlyUnitDist>()).ok());
    return true;
  }();
  (void)done;
}

// Triangular(0, 1, 4) conditional closed forms for X > 2.
constexpr double kTriTailProb = 1.0 / 3.0;       // 1 - Cdf(2) = 4/12.
constexpr double kTriTailMean = 8.0 / 3.0;       // E[X | X > 2].

// ---------------------------------------------------------------------------
// Registry behavior.
// ---------------------------------------------------------------------------

TEST(PluginRegistryTest, RuntimeRegistrationResolvesByName) {
  EnsureTestPlugins();
  auto d = DistributionRegistry::Global().Lookup("Triangular");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value()->name(), "Triangular");
  EXPECT_TRUE(d.value()->HasCdf());
  EXPECT_TRUE(DistributionRegistry::Global().Contains("Triangular"));
}

TEST(PluginRegistryTest, DuplicateUserRegistrationRejected) {
  EnsureTestPlugins();
  EXPECT_EQ(DistributionRegistry::Global()
                .Register(std::make_unique<TriangularDist>())
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(PluginRegistryTest, GenerationCountsSuccessfulRegistrations) {
  DistributionRegistry local;
  const uint64_t g0 = local.generation();
  ASSERT_TRUE(
      local.Register(std::make_unique<SwappableUnitDist>("SwapA", true))
          .ok());
  EXPECT_EQ(local.generation(), g0 + 1);
  // Failed registrations must not bump: plan caches keyed on the counter
  // would otherwise discard valid skeletons for nothing.
  EXPECT_FALSE(local.Register(nullptr).ok());
  EXPECT_FALSE(
      local.Register(std::make_unique<SwappableUnitDist>("SwapA", true))
          .ok());
  EXPECT_EQ(local.generation(), g0 + 1);
  ASSERT_TRUE(local
                  .RegisterOrReplace(
                      std::make_unique<SwappableUnitDist>("SwapA", false))
                  .ok());
  EXPECT_EQ(local.generation(), g0 + 2);
  // RegisterOrReplace of a brand-new name registers and bumps too.
  ASSERT_TRUE(local
                  .RegisterOrReplace(
                      std::make_unique<SwappableUnitDist>("SwapB", true))
                  .ok());
  EXPECT_EQ(local.generation(), g0 + 3);
}

TEST(PluginRegistryTest, RegisterOrReplaceRetiresButKeepsOldInstance) {
  DistributionRegistry local;
  ASSERT_TRUE(
      local.Register(std::make_unique<SwappableUnitDist>("Swap", true)).ok());
  const Distribution* v1 = local.Lookup("Swap").value();
  ASSERT_TRUE(v1->Capabilities() & kCdf);
  ASSERT_TRUE(
      local
          .RegisterOrReplace(std::make_unique<SwappableUnitDist>("Swap", false))
          .ok());
  const Distribution* v2 = local.Lookup("Swap").value();
  EXPECT_NE(v1, v2);
  EXPECT_FALSE(v2->Capabilities() & kCdf);
  // The displaced instance must stay alive: variables created before the
  // swap hold VariableInfo::dist pointers into it.
  EXPECT_EQ(v1->name(), "Swap");
  EXPECT_TRUE(v1->Capabilities() & kCdf);
}

TEST(PluginRegistryTest, NamesListsBuiltinsAndPlugins) {
  EnsureTestPlugins();
  auto names = DistributionRegistry::Global().Names();
  for (const char* expected : {"Normal", "Zipf", "Tukey", "UniformSum",
                               "Triangular"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(PluginRegistryTest, PoolHonorsItsOwnRegistry) {
  EnsureTestPlugins();
  // An isolated registry with only builtins: the global "Triangular"
  // plugin must be invisible to a pool bound to it.
  DistributionRegistry local;
  PIP_CHECK(RegisterBuiltinDistributions(&local).ok());
  VariablePool pool(7, &local);
  EXPECT_EQ(pool.Create("Triangular", {0.0, 1.0, 4.0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(pool.Create("Normal", {0.0, 1.0}).ok());
}

// ---------------------------------------------------------------------------
// Capability queries through the pool.
// ---------------------------------------------------------------------------

TEST(PluginCapabilityTest, PoolQueriesReflectDeclaredMasks) {
  EnsureTestPlugins();
  VariablePool pool(3);
  VarRef tri = pool.Create("Triangular", {0.0, 1.0, 4.0}).value();
  VarRef cdf_only = pool.Create("CdfOnlyUnit", {}).value();
  VarRef gen_only = pool.Create("GenOnlyUnit", {}).value();
  VarRef tukey = pool.Create("Tukey", {0.14}).value();
  VarRef usum = pool.Create("UniformSum", {3.0}).value();
  VarRef zipf = pool.Create("Zipf", {1.1, 50.0}).value();

  EXPECT_TRUE(pool.HasPdf(tri));
  EXPECT_TRUE(pool.HasCdf(tri));
  EXPECT_TRUE(pool.HasInverseCdf(tri));

  EXPECT_TRUE(pool.HasCdf(cdf_only));
  EXPECT_FALSE(pool.HasPdf(cdf_only));
  EXPECT_FALSE(pool.HasInverseCdf(cdf_only));

  EXPECT_FALSE(pool.HasCdf(gen_only));
  EXPECT_FALSE(pool.HasPdf(gen_only));
  EXPECT_FALSE(pool.HasInverseCdf(gen_only));

  // Tukey's lambda is quantile-defined: inverse CDF without a CDF.
  EXPECT_TRUE(pool.HasInverseCdf(tukey));
  EXPECT_FALSE(pool.HasCdf(tukey));

  EXPECT_FALSE(pool.HasCdf(usum));
  EXPECT_TRUE(pool.IsFiniteDiscrete(zipf.var_id));
  EXPECT_FALSE(pool.IsFiniteDiscrete(usum.var_id));

  // Optional methods without the capability fail as Unimplemented rather
  // than crashing or lying.
  EXPECT_EQ(pool.InverseCdf(cdf_only, 0.5).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(pool.Pdf(gen_only, 0.5).status().code(),
            StatusCode::kUnimplemented);
}

TEST(PluginCapabilityTest, ZipfPrefixTableCoherence) {
  // The memoized prefix-sum table must keep CDF, quantile, generation and
  // moments mutually consistent (and fast at large n).
  EnsureTestPlugins();
  VariablePool pool(17);
  VarRef z = pool.Create("Zipf", {1.1, 1000000.0}).value();
  for (double q = 0.05; q < 1.0; q += 0.05) {
    double k = pool.InverseCdf(z, q).value();
    EXPECT_GE(pool.Cdf(z, k).value() + 1e-12, q);
    if (k > 1.0) EXPECT_LT(pool.Cdf(z, k - 1.0).value(), q);
  }
  double mean = pool.Mean(z).value();
  double acc = 0.0;
  const int n = 20000;
  for (uint64_t i = 0; i < n; ++i) acc += pool.Generate(z, i).value();
  // Heavy tail (s = 1.1): generous relative band.
  EXPECT_NEAR(acc / n, mean, 0.15 * mean);
}

// ---------------------------------------------------------------------------
// Strategy selection follows capabilities.
// ---------------------------------------------------------------------------

TEST(StrategySelectionTest, CdfCapablePluginGetsExactTier) {
  EnsureTestPlugins();
  VariablePool pool(21);
  VarRef x = pool.Create("CdfOnlyUnit", {}).value();
  SamplingEngine engine(&pool);
  auto r = engine
               .Confidence(Condition(Expr::Var(x) < Expr::Constant(0.25)))
               .value();
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.samples_used, 0u);
  EXPECT_NEAR(r.probability, 0.25, 1e-12);
}

TEST(StrategySelectionTest, DisablingExactCdfForcesSampling) {
  EnsureTestPlugins();
  VariablePool pool(21);
  VarRef x = pool.Create("CdfOnlyUnit", {}).value();
  SamplingOptions opts;
  opts.use_exact_cdf = false;
  opts.fixed_samples = 20000;
  SamplingEngine engine(&pool, opts);
  auto r = engine
               .Confidence(Condition(Expr::Var(x) < Expr::Constant(0.25)))
               .value();
  EXPECT_FALSE(r.exact);
  EXPECT_NEAR(r.probability, 0.25, 0.02);
}

TEST(StrategySelectionTest, FullCapsPluginIntegratesExpectationExactly) {
  EnsureTestPlugins();
  Database db(11);
  VarRef x = db.CreateVariable("Triangular", {0.0, 1.0, 4.0}).value();
  SamplingEngine engine = db.MakeEngine();
  auto r = engine
               .Expectation(Expr::Var(x),
                            Condition(Expr::Var(x) > Expr::Constant(2.0)),
                            /*compute_probability=*/true)
               .value();
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.samples_used, 0u);
  EXPECT_NEAR(r.expectation, kTriTailMean, 1e-6);
  EXPECT_NEAR(r.probability, kTriTailProb, 1e-9);
}

TEST(StrategySelectionTest, InverseCdfWindowSamplesWithoutRejection) {
  EnsureTestPlugins();
  VariablePool pool(31);
  VarRef x = pool.Create("Triangular", {0.0, 1.0, 4.0}).value();
  SamplingOptions opts;
  opts.use_numeric_integration = false;  // Force the sampling loop.
  opts.fixed_samples = 4000;
  SamplingEngine engine(&pool, opts);
  Condition cond(Expr::Var(x) > Expr::Constant(2.0));
  auto r = engine.Expectation(Expr::Var(x), cond, false).value();
  // CDF + inverse CDF => every draw comes from the [Cdf(2), 1] quantile
  // window and is accepted on the first attempt.
  EXPECT_EQ(r.attempts, r.samples_used);
  EXPECT_NEAR(r.expectation, kTriTailMean, 0.05);
}

TEST(StrategySelectionTest, MissingInverseCdfDegradesToRejection) {
  EnsureTestPlugins();
  VariablePool pool(31);
  VarRef x = pool.Create("CdfOnlyUnit", {}).value();
  SamplingOptions opts;
  opts.fixed_samples = 4000;
  SamplingEngine engine(&pool, opts);
  Condition cond(Expr::Var(x) < Expr::Constant(0.25));
  auto r = engine.Expectation(Expr::Var(x), cond, false).value();
  // No quantile window available: ~4 natural draws per accepted sample.
  EXPECT_FALSE(r.exact);
  EXPECT_GT(r.attempts, 2 * r.samples_used);
  EXPECT_NEAR(r.expectation, 0.125, 0.01);
}

TEST(StrategySelectionTest, GenOnlyPluginRunsPlainRejection) {
  EnsureTestPlugins();
  VariablePool pool(41);
  VarRef x = pool.Create("GenOnlyUnit", {}).value();
  SamplingOptions opts;
  opts.fixed_samples = 20000;
  SamplingEngine engine(&pool, opts);
  auto r = engine
               .Confidence(Condition(Expr::Var(x) < Expr::Constant(0.2)))
               .value();
  EXPECT_FALSE(r.exact);
  EXPECT_NEAR(r.probability, 0.2, 0.02);
}

TEST(StrategySelectionTest, PdfUnlocksMetropolisWhenRejectionCollapses) {
  EnsureTestPlugins();
  VariablePool pool(51);
  VarRef x = pool.Create("PdfOnlyUnit", {}).value();
  Condition cond(Expr::Var(x) < Expr::Constant(0.05));
  auto run = [&](bool use_metropolis) {
    SamplingOptions opts;
    opts.fixed_samples = 4000;
    opts.use_metropolis = use_metropolis;
    opts.metropolis_threshold = 0.5;  // 95% rejection crosses easily.
    opts.metropolis_check_after = 64;
    SamplingEngine engine(&pool, opts);
    return engine.Expectation(Expr::Var(x), cond, false).value();
  };
  ExpectationResult with = run(true);
  ExpectationResult without = run(false);
  // The chain replaces ~20-attempts-per-sample rejection.
  EXPECT_LT(with.attempts, 10000u);
  EXPECT_GT(without.attempts, 50000u);
  EXPECT_NEAR(with.expectation, 0.025, 0.01);
  EXPECT_NEAR(without.expectation, 0.025, 0.005);
}

// ---------------------------------------------------------------------------
// Seed-stream determinism.
// ---------------------------------------------------------------------------

TEST(SeedDeterminismTest, SamePoolSeedSameDraws) {
  EnsureTestPlugins();
  VariablePool p1(5), p2(5);
  VarRef a = p1.Create("Triangular", {0.0, 1.0, 4.0}).value();
  VarRef b = p2.Create("Triangular", {0.0, 1.0, 4.0}).value();
  for (uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(p1.Generate(a, i).value(), p2.Generate(b, i).value());
    EXPECT_EQ(p1.Generate(a, i, 9).value(), p2.Generate(b, i, 9).value());
  }
  // Attempt index opens a distinct stream (rejection retries are fresh).
  EXPECT_NE(p1.Generate(a, 0, 0).value(), p1.Generate(a, 0, 1).value());
}

TEST(SeedDeterminismTest, SampleOffsetReplaysAndRefreshes) {
  EnsureTestPlugins();
  VariablePool pool(99);
  VarRef x = pool.Create("Triangular", {0.0, 1.0, 4.0}).value();
  Condition cond(Expr::Var(x) > Expr::Constant(2.0));
  auto run = [&](uint64_t offset) {
    SamplingOptions opts;
    opts.fixed_samples = 500;
    opts.use_numeric_integration = false;
    opts.sample_offset = offset;
    SamplingEngine engine(&pool, opts);
    return engine.Expectation(Expr::Var(x), cond, false)
        .value()
        .expectation;
  };
  double base1 = run(0);
  double base2 = run(0);
  double fresh = run(1u << 20);
  // Identical offsets replay bit-for-bit; distinct offsets give a
  // statistically fresh estimate of the same quantity.
  EXPECT_EQ(base1, base2);
  EXPECT_NE(base1, fresh);
  EXPECT_NEAR(fresh, base1, 0.1);
}

// ---------------------------------------------------------------------------
// End-to-end: user plugin through Database and SQL.
// ---------------------------------------------------------------------------

TEST(PluginEndToEndTest, SqlInsertConstructsUserDistribution) {
  EnsureTestPlugins();
  Database db(909);
  sql::Session session(&db);
  session.mutable_options()->fixed_samples = 20000;
  auto run = [&](const std::string& stmt) {
    sql::SqlResult r = session.Execute(stmt);
    PIP_CHECK_MSG(r.ok(), r.ToString());
    return r;
  };
  run("CREATE TABLE m (v)");
  run("INSERT INTO m VALUES (Triangular(0, 1, 4))");
  EXPECT_EQ(db.pool()->num_variables(), 1u);

  sql::SqlResult r =
      run("SELECT expectation(v) AS ev, conf() FROM m WHERE v > 2");
  ASSERT_EQ(r.kind, sql::SqlResult::Kind::kTable);
  ASSERT_EQ(r.table.num_rows(), 1u);
  EXPECT_NEAR(r.table.Get(0, "E[ev]").value().double_value(), kTriTailMean,
              0.02);
  EXPECT_NEAR(r.table.Get(0, "conf").value().double_value(), kTriTailProb,
              0.01);
}

TEST(PluginEndToEndTest, ReplacedPluginInvalidatesCachedPlansAcrossSqlInsert) {
  // One engine held open across a RegisterOrReplace. The skeleton cached
  // while "SwappableSql" declared a CDF says the condition shape is
  // exact-CDF-eligible; after the swap to a generate-only version, a
  // variable of the SAME class name arriving via SQL INSERT must not be
  // served that stale skeleton (the exact tier would route Cdf calls into
  // a plugin without one). The registry generation folded into the shape
  // key forces a fresh plan.
  auto& reg = DistributionRegistry::Global();
  ASSERT_TRUE(
      reg.RegisterOrReplace(
             std::make_unique<SwappableUnitDist>("SwappableSql", true))
          .ok());
  Database db(909);
  sql::Session session(&db);
  auto run = [&](const std::string& stmt) {
    sql::SqlResult r = session.Execute(stmt);
    PIP_CHECK_MSG(r.ok(), r.ToString());
  };
  run("CREATE TABLE m (v)");

  SamplingOptions opts;
  opts.fixed_samples = 20000;
  SamplingEngine engine = db.MakeEngine(opts);

  run("INSERT INTO m VALUES (SwappableSql())");
  VarRef x1{db.pool()->num_variables(), 0};  // Ids count up from 1.
  auto r1 = engine.Confidence(Condition(Expr::Var(x1) < Expr::Constant(0.25)))
                .value();
  EXPECT_TRUE(r1.exact);  // CDF-capable version: exact tier, plan cached.
  EXPECT_NEAR(r1.probability, 0.25, 1e-12);

  ASSERT_TRUE(
      reg.RegisterOrReplace(
             std::make_unique<SwappableUnitDist>("SwappableSql", false))
          .ok());
  run("INSERT INTO m VALUES (SwappableSql())");
  VarRef x2{db.pool()->num_variables(), 0};
  auto r2 = engine.Confidence(Condition(Expr::Var(x2) < Expr::Constant(0.25)));
  ASSERT_TRUE(r2.ok()) << r2.status().message();  // Stale plan errors here.
  EXPECT_FALSE(r2.value().exact);
  EXPECT_NEAR(r2.value().probability, 0.25, 0.02);

  // The pre-swap variable still answers through its retired instance
  // (conservatively via sampling if the new same-shape skeleton governs).
  auto r3 = engine.Confidence(Condition(Expr::Var(x1) < Expr::Constant(0.25)));
  ASSERT_TRUE(r3.ok()) << r3.status().message();
  EXPECT_NEAR(r3.value().probability, 0.25, 0.02);
}

TEST(PluginEndToEndTest, SqlRejectsUnknownAndInvalidConstructors) {
  EnsureTestPlugins();
  Database db(909);
  sql::Session session(&db);
  PIP_CHECK(session.Execute("CREATE TABLE m (v)").ok());
  EXPECT_FALSE(
      session.Execute("INSERT INTO m VALUES (NoSuchDist(1))").ok());
  // Mode outside [lo, hi]: the plugin's own ValidateParams fires through
  // the SQL path.
  EXPECT_FALSE(
      session.Execute("INSERT INTO m VALUES (Triangular(0, 9, 4))").ok());
}

}  // namespace
}  // namespace pip
