#include "src/sampling/metropolis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/running_stats.h"
#include "src/common/special_math.h"

namespace pip {
namespace {

class MetropolisTest : public ::testing::Test {
 protected:
  VariablePool pool_{99};

  ConsistencyResult Check(const Condition& c) {
    return CheckConsistency(c, pool_);
  }
};

TEST_F(MetropolisTest, CanHandleRequiresPdf) {
  VarRef n = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef mv =
      pool_.Create("MVNormal", {2.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0}).value();
  EXPECT_TRUE(MetropolisSampler::CanHandle(pool_, {n}));
  // Multivariate components are excluded (no joint PDF exposed).
  EXPECT_FALSE(MetropolisSampler::CanHandle(pool_, {mv}));
}

TEST_F(MetropolisTest, InitFailsOnUnreachableRegion) {
  VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
  std::vector<ConstraintAtom> atoms = {
      ConstraintAtom(Expr::Var(u), CmpOp::kGt, Expr::Constant(2.0))};
  MetropolisOptions opts;
  opts.start_point_attempts = 200;
  MetropolisSampler sampler(&pool_, {u}, atoms, ConsistencyResult{}, 1, opts);
  EXPECT_EQ(sampler.Init().code(), StatusCode::kInconsistent);
}

TEST_F(MetropolisTest, NextSampleRequiresInit) {
  VarRef n = pool_.Create("Normal", {0.0, 1.0}).value();
  MetropolisSampler sampler(&pool_, {n}, {}, ConsistencyResult{}, 1);
  Assignment a;
  EXPECT_EQ(sampler.NextSample(&a).code(), StatusCode::kInternal);
}

TEST_F(MetropolisTest, SamplesRespectConstraints) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(3.0));
  std::vector<ConstraintAtom> atoms(c.atoms().begin(), c.atoms().end());
  MetropolisSampler sampler(&pool_, {x, y}, atoms, Check(c), 7);
  ASSERT_TRUE(sampler.Init().ok());
  for (int i = 0; i < 500; ++i) {
    Assignment a;
    ASSERT_TRUE(sampler.NextSample(&a).ok());
    EXPECT_GT(*a.Get(x) - *a.Get(y), 3.0);
  }
}

TEST_F(MetropolisTest, ChainTargetsTruncatedDistribution) {
  // One-dimensional truncated normal: the chain's long-run mean must match
  // the closed form mu + sigma * phi(a)/Q(a).
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) > Expr::Constant(1.5));
  std::vector<ConstraintAtom> atoms(c.atoms().begin(), c.atoms().end());
  MetropolisOptions opts;
  opts.burn_in = 2000;
  opts.steps_per_sample = 5;
  MetropolisSampler sampler(&pool_, {x}, atoms, Check(c), 3, opts);
  ASSERT_TRUE(sampler.Init().ok());
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    Assignment a;
    ASSERT_TRUE(sampler.NextSample(&a).ok());
    stats.Add(*a.Get(x));
  }
  double expected = NormalPdf(1.5) / (1.0 - NormalCdf(1.5));
  EXPECT_NEAR(stats.mean(), 1.5 + (expected - 1.5), 0.05);
  EXPECT_NEAR(stats.mean(), expected, 0.05);
}

TEST_F(MetropolisTest, DeterministicGivenChainKey) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) > Expr::Constant(1.0));
  std::vector<ConstraintAtom> atoms(c.atoms().begin(), c.atoms().end());
  auto run = [&](uint64_t key) {
    MetropolisSampler sampler(&pool_, {x}, atoms, Check(c), key);
    PIP_CHECK(sampler.Init().ok());
    std::vector<double> values;
    for (int i = 0; i < 20; ++i) {
      Assignment a;
      PIP_CHECK(sampler.NextSample(&a).ok());
      values.push_back(*a.Get(x));
    }
    return values;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST_F(MetropolisTest, StepsTakenAccumulates) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  MetropolisOptions opts;
  opts.burn_in = 100;
  opts.steps_per_sample = 10;
  MetropolisSampler sampler(&pool_, {x}, {}, ConsistencyResult{}, 1, opts);
  ASSERT_TRUE(sampler.Init().ok());
  Assignment a;
  ASSERT_TRUE(sampler.NextSample(&a).ok());
  EXPECT_EQ(sampler.steps_taken(), 110u);
}

TEST_F(MetropolisTest, BoundedVariableStaysInSupport) {
  // Uniform variable with a sub-interval constraint: chain must respect
  // both support and constraint.
  VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
  Condition c;
  c.AddAtom(Expr::Var(u) > Expr::Constant(0.8));
  std::vector<ConstraintAtom> atoms(c.atoms().begin(), c.atoms().end());
  MetropolisSampler sampler(&pool_, {u}, atoms, Check(c), 11);
  ASSERT_TRUE(sampler.Init().ok());
  for (int i = 0; i < 300; ++i) {
    Assignment a;
    ASSERT_TRUE(sampler.NextSample(&a).ok());
    EXPECT_GT(*a.Get(u), 0.8);
    EXPECT_LE(*a.Get(u), 1.0);
  }
}

}  // namespace
}  // namespace pip
