#include "src/engine/query.h"

#include <gtest/gtest.h>

#include "src/sampling/aggregates.h"

namespace pip {
namespace {

using CE = ColExpr;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : db_(4242) {
    Table orders(Schema({"cust", "dest", "price"}));
    PIP_CHECK(orders.Append({Value("Joe"), Value("NY"), Value(100.0)}).ok());
    PIP_CHECK(orders.Append({Value("Bob"), Value("LA"), Value(250.0)}).ok());
    PIP_CHECK(db_.RegisterTable("orders", orders).ok());
  }
  Database db_;
};

TEST_F(EngineTest, RegisterAndScan) {
  EXPECT_TRUE(db_.HasTable("orders"));
  EXPECT_FALSE(db_.HasTable("nope"));
  CTable t = Query::Scan("orders").Execute(db_).value();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_FALSE(Query::Scan("nope").Execute(db_).ok());
}

TEST_F(EngineTest, DuplicateRegistrationRejected) {
  Table t(Schema({"a"}));
  EXPECT_EQ(db_.RegisterTable("orders", t).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, MaterializeViewReplaces) {
  CTable view(Schema({"v"}));
  PIP_CHECK(view.Append({Expr::Constant(1.0)}).ok());
  db_.MaterializeView("orders", view);
  CTable t = Query::Scan("orders").Execute(db_).value();
  EXPECT_EQ(t.schema().ToString(), "(v)");
}

TEST_F(EngineTest, WhereMovesDeterministicFilters) {
  CTable t = Query::Scan("orders")
                 .Where({CE::Column("cust") == CE::Literal("Joe")})
                 .Execute(db_)
                 .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.row(0).condition.IsTrue());
}

TEST_F(EngineTest, WhereMovesProbabilisticAtomsIntoConditions) {
  VarRef noise = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  CTable t = Query::Scan("orders")
                 .SelectCols({{"cust", CE::Column("cust")},
                              {"noisy_price",
                               CE::Column("price") + CE::Embed(Expr::Var(noise))}})
                 .Where({CE::Column("noisy_price") > CE::Literal(150.0)})
                 .Execute(db_)
                 .value();
  ASSERT_EQ(t.num_rows(), 2u);
  // The atom over the probabilistic column became a row condition (the
  // paper's CTYPE rewriting); deterministic evaluation is deferred.
  EXPECT_EQ(t.row(0).condition.size(), 1u);
}

TEST_F(EngineTest, ChainedPlanProducesExpectedRows) {
  Table shipping(Schema({"dest", "days"}));
  PIP_CHECK(shipping.Append({Value("NY"), Value(3.0)}).ok());
  PIP_CHECK(shipping.Append({Value("LA"), Value(9.0)}).ok());
  PIP_CHECK(db_.RegisterTable("shipping", shipping).ok());
  CTable t = Query::Scan("orders")
                 .JoinOn(Query::Scan("shipping"),
                         {CE::Column("dest") == CE::Column("dest_2")}, "")
                 .Where({CE::Column("days") > CE::Literal(5.0)})
                 .SelectCols({{"cust", CE::Column("cust")}})
                 .Execute(db_)
                 .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0).cells[0]->value(), Value("Bob"));
}

TEST_F(EngineTest, UnionDistinctExceptRoundTrip) {
  Query q = Query::Scan("orders");
  CTable doubled = q.UnionAll(q).Execute(db_).value();
  EXPECT_EQ(doubled.num_rows(), 4u);
  CTable dedup = q.UnionAll(q).DistinctRows().Execute(db_).value();
  EXPECT_EQ(dedup.num_rows(), 2u);
  CTable none = q.Except(q).Execute(db_).value();
  EXPECT_EQ(none.num_rows(), 0u);
}

TEST_F(EngineTest, ValuesLeafAndToString) {
  CTable inline_table(Schema({"x"}));
  PIP_CHECK(inline_table.Append({Expr::Constant(7.0)}).ok());
  Query q = Query::Values(inline_table).Where({CE::Column("x") >
                                               CE::Literal(0.0)});
  EXPECT_EQ(q.Execute(db_).value().num_rows(), 1u);
  std::string plan = q.ToString();
  EXPECT_NE(plan.find("Where"), std::string::npos);
  EXPECT_NE(plan.find("Values"), std::string::npos);
}

TEST_F(EngineTest, ExplodePlanNode) {
  VarRef coin = db_.CreateVariable("Bernoulli", {0.5}).value();
  CTable t(Schema({"v"}));
  PIP_CHECK(t.Append({Expr::Var(coin)}).ok());
  CTable exploded = Query::Values(t).Explode().Execute(db_).value();
  EXPECT_EQ(exploded.num_rows(), 2u);
}

TEST_F(EngineTest, AnalyzeProducesExpectationsAndConfidence) {
  VarRef price = db_.CreateVariable("Normal", {100.0, 5.0}).value();
  VarRef u = db_.CreateVariable("Uniform", {0.0, 1.0}).value();
  CTable t(Schema({"name", "price"}));
  PIP_CHECK(t.Append({Expr::String("widget"), Expr::Var(price)},
                     Condition(Expr::Var(u) < Expr::Constant(0.25)))
                .ok());
  SamplingOptions opts;
  opts.fixed_samples = 20000;
  SamplingEngine engine = db_.MakeEngine(opts);
  AnalyzeSpec spec;
  spec.passthrough_columns = {"name"};
  spec.expectation_columns = {"price"};
  Table out = Analyze(t, engine, spec).value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, "name").value(), Value("widget"));
  EXPECT_NEAR(out.Get(0, "E[price]").value().double_value(), 100.0, 0.5);
  EXPECT_NEAR(out.Get(0, "conf").value().double_value(), 0.25, 1e-9);
}

TEST_F(EngineTest, AnalyzeDropsUnsatisfiableRows) {
  VarRef u = db_.CreateVariable("Uniform", {0.0, 1.0}).value();
  CTable t(Schema({"v"}));
  PIP_CHECK(t.Append({Expr::Constant(1.0)},
                     Condition(Expr::Var(u) > Expr::Constant(2.0)))
                .ok());
  PIP_CHECK(t.Append({Expr::Constant(2.0)}).ok());
  SamplingEngine engine = db_.MakeEngine();
  AnalyzeSpec spec;
  spec.expectation_columns = {"v"};
  Table out = Analyze(t, engine, spec).value();
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, "E[v]").value().double_value(), 2.0);
}

TEST_F(EngineTest, AnalyzeConfidenceOnlyMode) {
  VarRef u = db_.CreateVariable("Uniform", {0.0, 1.0}).value();
  CTable t(Schema({"tag"}));
  PIP_CHECK(t.Append({Expr::String("a")},
                     Condition(Expr::Var(u) < Expr::Constant(0.4)))
                .ok());
  SamplingEngine engine = db_.MakeEngine();
  AnalyzeSpec spec;
  spec.passthrough_columns = {"tag"};
  Table out = Analyze(t, engine, spec).value();
  EXPECT_NEAR(out.Get(0, "conf").value().double_value(), 0.4, 1e-9);
}

TEST_F(EngineTest, AnalyzeJointConfidenceGroupsDisjuncts) {
  // Two rows with identical data and complementary conditions: aconf = 1.
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  CTable t(Schema({"tag"}));
  PIP_CHECK(t.Append({Expr::String("a")},
                     Condition(Expr::Var(x) > Expr::Constant(0.0)))
                .ok());
  PIP_CHECK(t.Append({Expr::String("a")},
                     Condition(Expr::Var(x) < Expr::Constant(0.0)))
                .ok());
  PIP_CHECK(t.Append({Expr::String("b")},
                     Condition(Expr::Var(x) > Expr::Constant(1.0)))
                .ok());
  SamplingEngine engine = db_.MakeEngine();
  Table out = AnalyzeJointConfidence(t, engine).value();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_NEAR(out.Get(0, "aconf").value().double_value(), 1.0, 1e-9);
  EXPECT_NEAR(out.Get(1, "aconf").value().double_value(),
              1.0 - 0.8413447460685429, 1e-6);
}

TEST_F(EngineTest, RunningExampleEndToEnd) {
  // The paper's introduction query, through the full engine:
  //   expected loss from late deliveries to Joe.
  Database db(99);
  VarRef price = db.CreateVariable("Normal", {100.0, 15.0}).value();
  VarRef duration_ny = db.CreateVariable("Normal", {5.0, 1.0}).value();
  VarRef price_bob = db.CreateVariable("Normal", {300.0, 20.0}).value();
  VarRef duration_la = db.CreateVariable("Normal", {4.0, 2.0}).value();

  CTable orders(Schema({"cust", "ship_to", "price"}));
  PIP_CHECK(orders.Append({Expr::String("Joe"), Expr::String("NY"),
                           Expr::Var(price)})
                .ok());
  PIP_CHECK(orders.Append({Expr::String("Bob"), Expr::String("LA"),
                           Expr::Var(price_bob)})
                .ok());
  CTable shipping(Schema({"dest", "duration"}));
  PIP_CHECK(shipping.Append({Expr::String("NY"), Expr::Var(duration_ny)}).ok());
  PIP_CHECK(shipping.Append({Expr::String("LA"), Expr::Var(duration_la)}).ok());
  PIP_CHECK(db.RegisterCTable("orders", orders).ok());
  PIP_CHECK(db.RegisterCTable("shipping", shipping).ok());

  CTable result = Query::Scan("orders")
                      .JoinOn(Query::Scan("shipping"),
                              {CE::Column("ship_to") == CE::Column("dest"),
                               CE::Column("duration") >= CE::Literal(7.0)})
                      .Where({CE::Column("cust") == CE::Literal("Joe")})
                      .SelectCols({{"price", CE::Column("price")}})
                      .Execute(db)
                      .value();
  ASSERT_EQ(result.num_rows(), 1u);

  SamplingOptions opts;
  opts.fixed_samples = 5000;
  SamplingEngine engine = db.MakeEngine(opts);
  AggregateEvaluator agg(&engine);
  double loss = agg.ExpectedSum(result, "price").value();
  // E[price] * P[duration >= 7] = 100 * (1 - Phi(2)); price independent.
  double expected = 100.0 * (1.0 - 0.9772498680518208);
  EXPECT_NEAR(loss, expected, 0.3);
}

}  // namespace
}  // namespace pip
