#include "src/common/special_math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pip {
namespace {

TEST(ErfInvTest, RoundTripsThroughErf) {
  for (double x = -0.999; x < 1.0; x += 0.01) {
    EXPECT_NEAR(std::erf(ErfInv(x)), x, 1e-12) << "x=" << x;
  }
}

TEST(ErfInvTest, Endpoints) {
  EXPECT_EQ(ErfInv(0.0), 0.0);
  EXPECT_TRUE(std::isinf(ErfInv(1.0)));
  EXPECT_TRUE(std::isinf(ErfInv(-1.0)));
  EXPECT_LT(ErfInv(-1.0), 0.0);
}

TEST(ErfInvTest, TailAccuracy) {
  // Deep tails exercise the second and third polynomial branches.
  for (double x : {0.9999, 0.999999, 0.99999999}) {
    EXPECT_NEAR(std::erf(ErfInv(x)), x, 1e-10) << "x=" << x;
  }
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145705, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
}

TEST(NormalCdfTest, Symmetry) {
  for (double x = 0.0; x < 5.0; x += 0.25) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-14);
  }
}

TEST(NormalPdfTest, PeakAndSymmetry) {
  EXPECT_NEAR(NormalPdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-15);
  EXPECT_NEAR(NormalPdf(1.3), NormalPdf(-1.3), 1e-15);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.001) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-11) << "p=" << p;
  }
}

TEST(NormalQuantileTest, MedianAndEndpoints) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-15);
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
}

TEST(RegularizedGammaTest, PAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 100.0}) {
    for (double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(RegularizedGammaTest, Monotonic) {
  double prev = -1.0;
  for (double x = 0.0; x < 20.0; x += 0.1) {
    double p = RegularizedGammaP(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(InverseRegularizedGammaTest, RoundTrip) {
  for (double a : {0.5, 1.0, 2.0, 7.5, 40.0}) {
    for (double p = 0.02; p < 1.0; p += 0.02) {
      double x = InverseRegularizedGammaP(a, p);
      EXPECT_NEAR(RegularizedGammaP(a, x), p, 1e-8)
          << "a=" << a << " p=" << p;
    }
  }
}

TEST(RegularizedBetaTest, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    EXPECT_NEAR(RegularizedBeta(1.0, 1.0, x), x, 1e-12);
  }
  // I_x(2, 1) = x^2.
  EXPECT_NEAR(RegularizedBeta(2.0, 1.0, 0.5), 0.25, 1e-12);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_NEAR(RegularizedBeta(2.5, 4.0, x),
                1.0 - RegularizedBeta(4.0, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(RegularizedBetaTest, Endpoints) {
  EXPECT_EQ(RegularizedBeta(3.0, 2.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedBeta(3.0, 2.0, 1.0), 1.0);
  EXPECT_EQ(RegularizedBeta(3.0, 2.0, -0.5), 0.0);
  EXPECT_EQ(RegularizedBeta(3.0, 2.0, 1.5), 1.0);
}

TEST(InverseRegularizedBetaTest, RoundTrip) {
  for (double a : {0.5, 1.0, 2.0, 8.0}) {
    for (double b : {0.5, 1.5, 5.0}) {
      for (double p = 0.05; p < 1.0; p += 0.05) {
        double x = InverseRegularizedBeta(a, b, p);
        EXPECT_NEAR(RegularizedBeta(a, b, x), p, 1e-9)
            << "a=" << a << " b=" << b << " p=" << p;
      }
    }
  }
}

TEST(PoissonCdfTest, MatchesDirectSummation) {
  double lambda = 4.2;
  double acc = 0.0;
  for (int k = 0; k < 20; ++k) {
    acc += std::exp(PoissonLogPmf(lambda, k));
    EXPECT_NEAR(PoissonCdf(lambda, k), acc, 1e-10) << "k=" << k;
  }
}

TEST(PoissonCdfTest, NegativeIsZero) {
  EXPECT_EQ(PoissonCdf(3.0, -1.0), 0.0);
  EXPECT_EQ(PoissonCdf(3.0, -0.5), 0.0);
}

TEST(PoissonCdfTest, NonIntegerArgumentFloors) {
  EXPECT_NEAR(PoissonCdf(3.0, 2.7), PoissonCdf(3.0, 2.0), 1e-15);
}

TEST(PoissonLogPmfTest, SumsToOne) {
  double lambda = 6.0;
  double acc = 0.0;
  for (int k = 0; k < 60; ++k) acc += std::exp(PoissonLogPmf(lambda, k));
  EXPECT_NEAR(acc, 1.0, 1e-10);
}

TEST(PoissonLogPmfTest, NegativeKIsZeroMass) {
  EXPECT_TRUE(std::isinf(PoissonLogPmf(2.0, -1)));
}

}  // namespace
}  // namespace pip
