/// \file batch_sampling_test.cc
/// \brief The batch-draw contract (README "Batch draws"): GenerateBatch is
/// bit-identical to the per-sample GenerateJoint loop for every builtin,
/// the engine's batched sampling loops reproduce the scalar path
/// word-for-word across thread counts and chunk sizes, each builtin's
/// per-draw word-consumption schedule is pinned as a regression surface,
/// and the uniform endpoints feeding logs / inverse CDFs stay finite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/dist/distribution.h"
#include "src/dist/variable_pool.h"
#include "src/engine/database.h"
#include "src/expr/condition.h"
#include "src/expr/expr.h"
#include "src/sampling/expectation.h"

namespace pip {
namespace {

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// ---------------------------------------------------------------------------
// GenerateBatch == scalar GenerateJoint, bitwise, for every builtin
// ---------------------------------------------------------------------------

struct BuiltinCase {
  const char* cls;
  std::vector<double> params;
};

std::vector<BuiltinCase> AllBuiltins() {
  return {
      {"Normal", {5.0, 2.0}},
      {"Uniform", {-1.0, 3.0}},
      {"Exponential", {0.5}},
      {"Gamma", {2.0, 1.5}},
      {"Lognormal", {0.0, 0.5}},
      {"Beta", {2.0, 3.0}},
      {"StudentT", {4.0}},
      {"Tukey", {0.14}},
      {"UniformSum", {3.0}},
      {"MVNormal", {2.0, 0.0, 0.0, 1.0, 0.5, 0.5, 1.0}},
      {"Poisson", {3.5}},
      {"Bernoulli", {0.3}},
      {"Categorical", {0.5, 0.3, 0.2}},
      {"DiscreteUniform", {1.0, 6.0}},
      {"Zipf", {1.1, 50.0}},
  };
}

TEST(GenerateBatchTest, BitIdenticalToScalarForEveryBuiltin) {
  VariablePool pool(1234);
  constexpr uint64_t kMarker = 0xE571ULL << 32;  // Estimate-loop attempt key.
  for (const BuiltinCase& c : AllBuiltins()) {
    SCOPED_TRACE(c.cls);
    VarRef v = pool.Create(c.cls, c.params).value();
    const VariableInfo* info = pool.Info(v.var_id).value();
    const uint64_t d = info->num_components;
    for (uint64_t attempt : {uint64_t{0}, kMarker}) {
      for (uint64_t begin : {uint64_t{0}, uint64_t{1000}}) {
        const uint64_t n = 64;
        std::vector<double> batch;
        ASSERT_TRUE(pool.GenerateBatch(v.var_id, begin, n, attempt, &batch)
                        .ok());
        ASSERT_EQ(batch.size(), n * d);
        std::vector<double> joint;
        for (uint64_t s = 0; s < n; ++s) {
          ASSERT_TRUE(
              pool.GenerateJoint(v.var_id, begin + s, attempt, &joint).ok());
          ASSERT_EQ(joint.size(), d);
          for (uint64_t comp = 0; comp < d; ++comp) {
            EXPECT_EQ(Bits(batch[s * d + comp]), Bits(joint[comp]))
                << "sample " << begin + s << " comp " << comp;
          }
        }
      }
    }
  }
}

TEST(GenerateBatchTest, SplitBatchesConcatenateToOneBatch) {
  // A chunked caller slicing [0, 64) into [0, 17) + [17, 64) must see the
  // exact words of one whole-range call: batches address the sample-index
  // space, not any internal stream position.
  VariablePool pool(99);
  for (const BuiltinCase& c : AllBuiltins()) {
    SCOPED_TRACE(c.cls);
    VarRef v = pool.Create(c.cls, c.params).value();
    std::vector<double> whole, lo, hi;
    ASSERT_TRUE(pool.GenerateBatch(v.var_id, 0, 64, 0, &whole).ok());
    ASSERT_TRUE(pool.GenerateBatch(v.var_id, 0, 17, 0, &lo).ok());
    ASSERT_TRUE(pool.GenerateBatch(v.var_id, 17, 47, 0, &hi).ok());
    ASSERT_EQ(lo.size() + hi.size(), whole.size());
    for (size_t i = 0; i < lo.size(); ++i) {
      EXPECT_EQ(Bits(lo[i]), Bits(whole[i]));
    }
    for (size_t i = 0; i < hi.size(); ++i) {
      EXPECT_EQ(Bits(hi[i]), Bits(whole[lo.size() + i]));
    }
  }
}

// ---------------------------------------------------------------------------
// Engine loops: batch toggle is bitwise invisible
// ---------------------------------------------------------------------------

class EngineBatchTest : public ::testing::Test {
 protected:
  SamplingOptions Opts(bool batch, size_t threads, size_t chunk) const {
    SamplingOptions o;
    o.fixed_samples = 2048;
    o.num_threads = threads;
    o.chunk_samples = chunk;
    o.use_batch_generation = batch;
    o.use_numeric_integration = false;
    return o;
  }

  Database db_{777};
};

TEST_F(EngineBatchTest, ExpectationBitIdenticalAcrossToggle) {
  VarRef x = db_.pool()->Create("Normal", {5.0, 2.0}).value();
  VarRef y = db_.pool()->Create("Exponential", {1.0}).value();
  ExprPtr expr = Expr::Var(x) + Expr::Var(y);
  for (size_t chunk : {size_t{16}, size_t{64}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("chunk=" + std::to_string(chunk) +
                   " threads=" + std::to_string(threads));
      auto scalar = db_.MakeEngine(Opts(false, threads, chunk))
                        .Expectation(expr, Condition::True(), false)
                        .value();
      auto batched = db_.MakeEngine(Opts(true, threads, chunk))
                         .Expectation(expr, Condition::True(), false)
                         .value();
      EXPECT_EQ(Bits(scalar.expectation), Bits(batched.expectation));
      EXPECT_EQ(scalar.samples_used, batched.samples_used);
      EXPECT_EQ(scalar.attempts, batched.attempts);
    }
  }
}

TEST_F(EngineBatchTest, SampleConditionalBitIdenticalAcrossToggle) {
  VarRef x = db_.pool()->Create("Normal", {0.0, 1.0}).value();
  VarRef y = db_.pool()->Create("Uniform", {-1.0, 3.0}).value();
  ExprPtr expr = Expr::Var(x) * Expr::Var(y);
  for (size_t chunk : {size_t{16}, size_t{64}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("chunk=" + std::to_string(chunk) +
                   " threads=" + std::to_string(threads));
      auto scalar = db_.MakeEngine(Opts(false, threads, chunk))
                        .SampleConditional(expr, Condition::True(), 512)
                        .value();
      auto batched = db_.MakeEngine(Opts(true, threads, chunk))
                         .SampleConditional(expr, Condition::True(), 512)
                         .value();
      ASSERT_EQ(scalar.size(), batched.size());
      for (size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_EQ(Bits(scalar[i]), Bits(batched[i])) << "sample " << i;
      }
    }
  }
}

TEST_F(EngineBatchTest, ConfidenceEstimatorBitIdenticalAcrossToggle) {
  // A two-variable atom is neither exact-CDF-eligible nor window-backed,
  // so EstimateGroupProbability runs its Monte Carlo loop with natural
  // draws — the pre-drawn batch path.
  VarRef x = db_.pool()->Create("Normal", {5.0, 2.0}).value();
  VarRef y = db_.pool()->Create("Normal", {3.0, 1.0}).value();
  Condition c(Expr::Var(x) + Expr::Var(y) < Expr::Constant(8.0));
  for (size_t chunk : {size_t{16}, size_t{64}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("chunk=" + std::to_string(chunk) +
                   " threads=" + std::to_string(threads));
      auto scalar =
          db_.MakeEngine(Opts(false, threads, chunk)).Confidence(c).value();
      auto batched =
          db_.MakeEngine(Opts(true, threads, chunk)).Confidence(c).value();
      EXPECT_EQ(Bits(scalar.probability), Bits(batched.probability));
      EXPECT_EQ(scalar.attempts, batched.attempts);
    }
  }
}

TEST_F(EngineBatchTest, JointConfidenceBitIdenticalAcrossToggle) {
  // More than 6 live disjuncts forces the joint Monte Carlo path (the
  // inclusion-exclusion branch below that threshold never batch-draws).
  VarRef x = db_.pool()->Create("Normal", {0.0, 1.0}).value();
  VarRef y = db_.pool()->Create("Exponential", {1.0}).value();
  std::vector<Condition> disjuncts;
  for (int i = 0; i < 7; ++i) {
    disjuncts.emplace_back(Expr::Var(x) + Expr::Var(y) <
                           Expr::Constant(-1.5 + 0.3 * i));
  }
  for (size_t chunk : {size_t{16}, size_t{64}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("chunk=" + std::to_string(chunk) +
                   " threads=" + std::to_string(threads));
      double scalar = db_.MakeEngine(Opts(false, threads, chunk))
                          .JointConfidence(disjuncts)
                          .value();
      double batched = db_.MakeEngine(Opts(true, threads, chunk))
                           .JointConfidence(disjuncts)
                           .value();
      EXPECT_EQ(Bits(scalar), Bits(batched));
    }
  }
}

// ---------------------------------------------------------------------------
// Word-consumption schedule: one test per builtin family pins how many
// raw words a draw consumes, in what order, and through which transform.
// Any change here silently reshuffles every stored sample, so the exact
// schedule is a regression surface, not an implementation detail.
// ---------------------------------------------------------------------------

class WordScheduleTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kSeed = 4242;

  /// The per-draw stream the pool hands a distribution: SampleContext's
  /// mixed seed at (var_id, component 0, sample_index).
  RandomStream DrawStream(VarRef v, uint64_t sample_index,
                          uint64_t attempt = 0) {
    SampleContext ctx{kSeed, v.var_id, sample_index, attempt};
    return ctx.StreamFor(0);
  }

  double Draw(VarRef v, uint64_t sample_index, uint64_t attempt = 0) {
    std::vector<double> joint;
    Status s = pool_.GenerateJoint(v.var_id, sample_index, attempt, &joint);
    EXPECT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(joint.size(), 1u);
    return joint.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : joint[0];
  }

  VariablePool pool_{kSeed};
};

TEST_F(WordScheduleTest, NormalConsumesTwoWordsClampedFirstCosineBranch) {
  VarRef v = pool_.Create("Normal", {5.0, 2.0}).value();
  for (uint64_t k = 0; k < 32; ++k) {
    RandomStream s = DrawStream(v, k);
    double u1 = ClampUnitOpen(s.NextUniform());  // Word 0, pinned off 0.
    double u2 = s.NextUniform();                 // Word 1.
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    EXPECT_EQ(Bits(Draw(v, k)), Bits(5.0 + 2.0 * z));
  }
}

TEST_F(WordScheduleTest, LognormalIsExpOfTheNormalSchedule) {
  VarRef v = pool_.Create("Lognormal", {0.0, 0.5}).value();
  for (uint64_t k = 0; k < 32; ++k) {
    RandomStream s = DrawStream(v, k);
    double u1 = ClampUnitOpen(s.NextUniform());
    double u2 = s.NextUniform();
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    EXPECT_EQ(Bits(Draw(v, k)), Bits(std::exp(0.0 + 0.5 * z)));
  }
}

TEST_F(WordScheduleTest, UniformConsumesOneClosedWord) {
  VarRef v = pool_.Create("Uniform", {-1.0, 3.0}).value();
  for (uint64_t k = 0; k < 32; ++k) {
    double u = DrawStream(v, k).NextUniform();
    EXPECT_EQ(Bits(Draw(v, k)), Bits(-1.0 + (3.0 - -1.0) * u));
  }
}

TEST_F(WordScheduleTest, ExponentialConsumesOneWordViaLog1p) {
  VarRef v = pool_.Create("Exponential", {0.5}).value();
  for (uint64_t k = 0; k < 32; ++k) {
    double u = DrawStream(v, k).NextUniform();
    EXPECT_EQ(Bits(Draw(v, k)), Bits(-std::log1p(-u) / 0.5));
  }
}

TEST_F(WordScheduleTest, QuantileBuiltinsConsumeOneOpenWord) {
  // Gamma, Beta, StudentT, Tukey, and Zipf all invert one open uniform
  // through their own quantile function (open: u = 0 is pinned to 2^-53
  // so the inverse CDF never sees an endpoint).
  struct QCase {
    const char* cls;
    std::vector<double> params;
  };
  for (const QCase& c : std::vector<QCase>{{"Gamma", {2.0, 1.5}},
                                           {"Beta", {2.0, 3.0}},
                                           {"StudentT", {4.0}},
                                           {"Tukey", {0.14}},
                                           {"Zipf", {1.1, 50.0}}}) {
    SCOPED_TRACE(c.cls);
    VarRef v = pool_.Create(c.cls, c.params).value();
    for (uint64_t k = 0; k < 16; ++k) {
      double u = DrawStream(v, k).NextOpenUniform();
      double x = pool_.InverseCdf(v, u).value();
      EXPECT_EQ(Bits(Draw(v, k)), Bits(x));
    }
  }
}

TEST_F(WordScheduleTest, PoissonConsumesOneClosedWordThroughQuantile) {
  VarRef v = pool_.Create("Poisson", {3.5}).value();
  for (uint64_t k = 0; k < 32; ++k) {
    double u = DrawStream(v, k).NextUniform();
    EXPECT_EQ(Bits(Draw(v, k)), Bits(pool_.InverseCdf(v, u).value()));
  }
}

TEST_F(WordScheduleTest, BernoulliConsumesOneWordStrictThreshold) {
  VarRef v = pool_.Create("Bernoulli", {0.3}).value();
  for (uint64_t k = 0; k < 64; ++k) {
    double u = DrawStream(v, k).NextUniform();
    EXPECT_EQ(Draw(v, k), u < 0.3 ? 1.0 : 0.0);
  }
}

TEST_F(WordScheduleTest, CategoricalConsumesOneWordRunningSumScan) {
  // The scalar scan accepts the first k with u < sum(p[0..k]), summed in
  // index order — the convention the batched prefix-sum search must match
  // exactly (note: CategoricalTable's lower_bound quantile is a different
  // convention and is NOT the generation path).
  const std::vector<double> p = {0.5, 0.3, 0.2};
  VarRef v = pool_.Create("Categorical", p).value();
  for (uint64_t k = 0; k < 64; ++k) {
    double u = DrawStream(v, k).NextUniform();
    double acc = 0.0, expect = static_cast<double>(p.size() - 1);
    for (size_t j = 0; j < p.size(); ++j) {
      acc += p[j];
      if (u < acc) {
        expect = static_cast<double>(j);
        break;
      }
    }
    EXPECT_EQ(Draw(v, k), expect);
  }
}

TEST_F(WordScheduleTest, DiscreteUniformPowerOfTwoRangeConsumesOneWord) {
  // Lemire multiply-shift rejects only when (word * n) mod 2^64 < n; a
  // power-of-two n never rejects, so exactly one word per draw and the
  // value is the high half of word * n.
  VarRef v = pool_.Create("DiscreteUniform", {0.0, 7.0}).value();
  for (uint64_t k = 0; k < 64; ++k) {
    uint64_t w = DrawStream(v, k).NextBits();
    uint64_t hi = static_cast<uint64_t>(
        (static_cast<__uint128_t>(w) * 8) >> 64);
    EXPECT_EQ(Draw(v, k), static_cast<double>(hi));
  }
}

TEST_F(WordScheduleTest, UniformSumConsumesNWordsInOrder) {
  VarRef v = pool_.Create("UniformSum", {3.0}).value();
  for (uint64_t k = 0; k < 32; ++k) {
    RandomStream s = DrawStream(v, k);
    double sum = s.NextUniform() + s.NextUniform() + s.NextUniform();
    EXPECT_EQ(Bits(Draw(v, k)), Bits(sum));
  }
}

TEST_F(WordScheduleTest, MVNormalConsumesTwoWordsPerDimensionOneStream) {
  // Diagonal covariance: component i is mu_i + sqrt(var_i) * z_i where
  // all z come from ONE stream at component 0, two words per gaussian.
  VarRef v = pool_.Create("MVNormal", {2.0, 1.0, -1.0, 4.0, 0.0, 0.0, 9.0})
                 .value();
  for (uint64_t k = 0; k < 16; ++k) {
    RandomStream s = DrawStream(v, k);
    double z0 = s.NextGaussian();
    double z1 = s.NextGaussian();
    std::vector<double> joint;
    ASSERT_TRUE(pool_.GenerateJoint(v.var_id, k, 0, &joint).ok());
    ASSERT_EQ(joint.size(), 2u);
    EXPECT_EQ(Bits(joint[0]), Bits(1.0 + 2.0 * z0));
    EXPECT_EQ(Bits(joint[1]), Bits(-1.0 + 3.0 * z1));
  }
}

// ---------------------------------------------------------------------------
// Endpoint hazards: uniforms feeding logs / inverse CDFs
// ---------------------------------------------------------------------------

TEST(EndpointTest, ClampUnitOpenPinsBothEndpointsInside) {
  const double ulp = 0x1.0p-53;
  EXPECT_EQ(ClampUnitOpen(0.0), ulp);
  EXPECT_EQ(ClampUnitOpen(1.0), 1.0 - ulp);
  EXPECT_GT(ClampUnitOpen(0.0), 0.0);
  EXPECT_LT(ClampUnitOpen(1.0), 1.0);
  EXPECT_EQ(ClampUnitOpen(0.5), 0.5);
}

TEST(EndpointTest, InverseCdfFiniteAtPinnedEndpoints) {
  // The open-uniform protocol delivers u in [2^-53, 1 - 2^-53] (exactly
  // 2^-53 at the pinned zero word; NextUniform tops out at 1 - 2^-53
  // because it keeps 53 bits). Every inverse-CDF-capable builtin must map
  // both extremes to finite values — a draw must never be inf/NaN.
  const double lo = 0x1.0p-53;
  const double hi = 1.0 - 0x1.0p-53;
  VariablePool pool(7);
  struct ICase {
    const char* cls;
    std::vector<double> params;
  };
  for (const ICase& c : std::vector<ICase>{{"Normal", {5.0, 2.0}},
                                           {"Uniform", {-1.0, 3.0}},
                                           {"Exponential", {0.5}},
                                           {"Gamma", {2.0, 1.5}},
                                           {"Gamma", {0.5, 1.0}},
                                           {"Lognormal", {0.0, 0.5}},
                                           {"Beta", {2.0, 3.0}},
                                           {"Beta", {0.5, 0.5}},
                                           {"StudentT", {4.0}},
                                           {"Tukey", {0.14}},
                                           {"Poisson", {3.5}},
                                           {"Bernoulli", {0.3}},
                                           {"Categorical", {0.5, 0.3, 0.2}},
                                           {"DiscreteUniform", {1.0, 6.0}},
                                           {"Zipf", {1.1, 50.0}}}) {
    SCOPED_TRACE(std::string(c.cls) + "(" + std::to_string(c.params[0]) +
                 ", ...)");
    VarRef v = pool.Create(c.cls, c.params).value();
    auto at_lo = pool.InverseCdf(v, lo);
    auto at_hi = pool.InverseCdf(v, hi);
    ASSERT_TRUE(at_lo.ok()) << at_lo.status().message();
    ASSERT_TRUE(at_hi.ok()) << at_hi.status().message();
    EXPECT_TRUE(std::isfinite(at_lo.value())) << at_lo.value();
    EXPECT_TRUE(std::isfinite(at_hi.value())) << at_hi.value();
  }
}

TEST(EndpointTest, GeneratedDrawsAreAlwaysFinite) {
  // Belt-and-braces over the generation path itself: no builtin may emit
  // inf/NaN from any sample index (the log(0)/InverseCdf(0) hazards).
  VariablePool pool(31337);
  for (const BuiltinCase& c : AllBuiltins()) {
    SCOPED_TRACE(c.cls);
    VarRef v = pool.Create(c.cls, c.params).value();
    std::vector<double> joint;
    for (uint64_t k = 0; k < 512; ++k) {
      ASSERT_TRUE(pool.GenerateJoint(v.var_id, k, 0, &joint).ok());
      for (double x : joint) EXPECT_TRUE(std::isfinite(x)) << "sample " << k;
    }
  }
}

TEST(EndpointTest, ExponentialInverseCdfAtExactEndpoints) {
  // At the true closed endpoints the quantile is allowed to hit the
  // support boundary (infinity at q = 1 for unbounded support) — only
  // the generation path must stay off them.
  VariablePool pool(7);
  VarRef e = pool.Create("Exponential", {0.5}).value();
  EXPECT_EQ(pool.InverseCdf(e, 0.0).value(), 0.0);
  EXPECT_TRUE(std::isinf(pool.InverseCdf(e, 1.0).value()));
  VarRef p = pool.Create("Poisson", {3.5}).value();
  EXPECT_EQ(pool.InverseCdf(p, 0.0).value(), 0.0);
  EXPECT_TRUE(std::isinf(pool.InverseCdf(p, 1.0).value()));
}

}  // namespace
}  // namespace pip
