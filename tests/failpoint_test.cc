/// \file failpoint_test.cc
/// \brief Fault-injection harness: spec parsing, deterministic firing,
/// the determinism contract at every injection site, and the SHOW
/// FAILPOINTS surface.
///
/// The load-bearing property is the contract: an injected fault decides
/// *whether* an operation completes, never *what* a completed operation
/// computes. Tests arm a site, observe categorized failures, disarm, and
/// require results bit-identical to a never-armed run.

#include "src/common/failpoints.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/engine/database.h"
#include "src/sql/session.h"

namespace pip {
namespace {

/// Every test leaves the process-global registry clean; a leaked arming
/// would poison unrelated tests in this binary.
class FailpointTest : public ::testing::Test {
 protected:
  FailpointTest() { failpoints::DisarmAll(); }
  ~FailpointTest() override { failpoints::DisarmAll(); }
};

TEST_F(FailpointTest, DisabledFastPathReportsOff) {
  EXPECT_FALSE(failpoints::Enabled());
  EXPECT_EQ(PIP_FAILPOINT("nothing.armed"), failpoints::ActionKind::kOff);
  EXPECT_EQ(failpoints::FireCount("nothing.armed"), 0u);
}

TEST_F(FailpointTest, ArmFireDisarmRoundTrip) {
  failpoints::Action action;
  action.kind = failpoints::ActionKind::kError;
  ASSERT_TRUE(failpoints::Arm("unit.site", action).ok());
  EXPECT_TRUE(failpoints::Enabled());
  // probability defaults to 1: every consult fires.
  EXPECT_EQ(PIP_FAILPOINT("unit.site"), failpoints::ActionKind::kError);
  EXPECT_EQ(PIP_FAILPOINT("unit.site"), failpoints::ActionKind::kError);
  EXPECT_EQ(failpoints::FireCount("unit.site"), 2u);
  // Other sites stay off while the registry is hot.
  EXPECT_EQ(PIP_FAILPOINT("other.site"), failpoints::ActionKind::kOff);
  failpoints::Disarm("unit.site");
  EXPECT_FALSE(failpoints::Enabled());
  EXPECT_EQ(PIP_FAILPOINT("unit.site"), failpoints::ActionKind::kOff);
}

TEST_F(FailpointTest, SpecParsingArmsEverySiteOrNone) {
  ASSERT_TRUE(
      failpoints::ArmFromSpec("a.x=error(0.5);b.y=short;c.z=sleep(1,0.25)")
          .ok());
  auto sites = failpoints::ActiveSites();
  ASSERT_EQ(sites.size(), 3u);  // Sorted by site name.
  EXPECT_EQ(sites[0].site, "a.x");
  EXPECT_EQ(sites[1].site, "b.y");
  EXPECT_EQ(sites[2].site, "c.z");
  failpoints::DisarmAll();

  // All-or-nothing: one malformed element must arm nothing.
  for (const char* bad :
       {"a.x=error(0.5);b.y=", "a.x=explode", "a.x=error(2)",
        "a.x=error(0.5;b.y=short", "a.x=sleep", "=error", "a.x"}) {
    EXPECT_FALSE(failpoints::ArmFromSpec(bad).ok()) << bad;
    EXPECT_TRUE(failpoints::ActiveSites().empty()) << bad;
  }
}

TEST_F(FailpointTest, ProbabilisticFiringIsDeterministic) {
  failpoints::Action action;
  action.kind = failpoints::ActionKind::kError;
  action.probability = 0.3;

  // Two armings of the same site replay one fire schedule: firing hashes
  // the per-site consult counter, which re-arming resets.
  std::string first, second;
  ASSERT_TRUE(failpoints::Arm("sched.site", action).ok());
  for (int i = 0; i < 64; ++i) {
    first += PIP_FAILPOINT("sched.site") == failpoints::ActionKind::kError
                 ? '1'
                 : '0';
  }
  failpoints::DisarmAll();
  ASSERT_TRUE(failpoints::Arm("sched.site", action).ok());
  for (int i = 0; i < 64; ++i) {
    second += PIP_FAILPOINT("sched.site") == failpoints::ActionKind::kError
                  ? '1'
                  : '0';
  }
  EXPECT_EQ(first, second);
  // Roughly the armed probability — a loose bound, and the schedule is
  // fixed rather than random, so this can never flake.
  size_t fires =
      static_cast<size_t>(std::count(first.begin(), first.end(), '1'));
  EXPECT_GT(fires, 8u);
  EXPECT_LT(fires, 32u);
}

TEST_F(FailpointTest, DrawSiteFailsStatementsThenLeavesNoTrace) {
  Database db(4242);
  sql::Session session(&db);
  ASSERT_TRUE(session.Execute("CREATE TABLE t (u, v)").ok());
  ASSERT_TRUE(session
                  .Execute("INSERT INTO t VALUES "
                           "(Normal(10, 2), Uniform(0, 5)), "
                           "(Uniform(1, 3), Normal(4, 1))")
                  .ok());
  ASSERT_TRUE(session.Execute("SET FIXED_SAMPLES = 500").ok());
  // Force the engine off every draw-free path: a two-variable product
  // defeats closed-form integration, and the expectation index is off so
  // repeats genuinely recompute.
  ASSERT_TRUE(session.Execute("SET INDEX_ENABLED = 0").ok());
  const std::string query = "SELECT expected_sum(u * v) AS s FROM t";

  sql::SqlResult before = session.Execute(query);
  ASSERT_TRUE(before.ok()) << before.ToString();

  ASSERT_TRUE(failpoints::ArmFromSpec("dist.generate=error").ok());
  sql::SqlResult injected = session.Execute(query);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.error.code, sql::WireErrorCode::kInternal);
  EXPECT_NE(injected.error.message.find("dist.generate"), std::string::npos);
  EXPECT_GT(failpoints::FireCount("dist.generate"), 0u);
  failpoints::DisarmAll();

  // The contract: the failed statement perturbed nothing. Same session,
  // same statement, bit-identical rendering.
  sql::SqlResult after = session.Execute(query);
  ASSERT_TRUE(after.ok()) << after.ToString();
  EXPECT_EQ(after.ToString(), before.ToString());
}

TEST_F(FailpointTest, SleepSiteStallsButCompletesIdentically) {
  Database db(99);
  sql::Session session(&db);
  ASSERT_TRUE(session.Execute("CREATE TABLE t (u, v)").ok());
  ASSERT_TRUE(
      session.Execute("INSERT INTO t VALUES (Normal(0, 1), Uniform(2, 4))")
          .ok());
  ASSERT_TRUE(session.Execute("SET FIXED_SAMPLES = 200").ok());
  ASSERT_TRUE(session.Execute("SET INDEX_ENABLED = 0").ok());
  const std::string query = "SELECT expected_sum(u * v) AS s FROM t";
  sql::SqlResult clean = session.Execute(query);
  ASSERT_TRUE(clean.ok());

  // Sleep fires are invisible to callers (kOff) and to results.
  ASSERT_TRUE(failpoints::ArmFromSpec("dist.generate=sleep(1,0.05)").ok());
  sql::SqlResult slow = session.Execute(query);
  failpoints::DisarmAll();
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow.ToString(), clean.ToString());
}

TEST_F(FailpointTest, IndexInsertSiteDropsBackfillsButStaysCorrect) {
  Database db(7);
  sql::Session session(&db);
  session.mutable_options()->index_enabled = true;
  ASSERT_TRUE(session.Execute("CREATE TABLE t (v)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (Normal(5, 1))").ok());
  ASSERT_TRUE(session.Execute("SET FIXED_SAMPLES = 300").ok());
  const std::string query = "SELECT expectation(v) FROM t";

  ASSERT_TRUE(failpoints::ArmFromSpec("index.insert_alloc=error").ok());
  sql::SqlResult first = session.Execute(query);
  ASSERT_TRUE(first.ok()) << first.ToString();  // Query itself unharmed.
  // Repeats recompute (the backfill was dropped) yet stay identical.
  sql::SqlResult second = session.Execute(query);
  failpoints::DisarmAll();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ToString(), first.ToString());
  EXPECT_GT(db.result_index_stats().insert_failures, 0u);
  EXPECT_EQ(db.result_index_stats().entries, 0u);

  // With the site disarmed the index fills again.
  sql::SqlResult third = session.Execute(query);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.ToString(), first.ToString());
  EXPECT_GT(db.result_index_stats().entries, 0u);
}

TEST_F(FailpointTest, ShowFailpointsListsArmedSites) {
  Database db(1);
  sql::Session session(&db);
  sql::SqlResult empty = session.Execute("SHOW FAILPOINTS");
  ASSERT_TRUE(empty.ok()) << empty.ToString();
  EXPECT_EQ(empty.table.num_rows(), 0u);

  ASSERT_TRUE(
      failpoints::ArmFromSpec("wire.send_error=error(0.5);pool.task=sleep(2)")
          .ok());
  sql::SqlResult listed = session.Execute("SHOW FAILPOINTS");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.table.num_rows(), 2u);
  // Sorted by site; action rendering round-trips the armed spec.
  EXPECT_EQ(listed.table.rows()[0][0].string_value(), "pool.task");
  EXPECT_EQ(listed.table.rows()[1][0].string_value(), "wire.send_error");
  EXPECT_NE(listed.table.rows()[1][1].string_value().find("error"),
            std::string::npos);
  failpoints::DisarmAll();
}

}  // namespace
}  // namespace pip
