#include "src/sql/session.h"

#include <gtest/gtest.h>

#include "src/common/special_math.h"
#include "src/sql/lexer.h"

namespace pip {
namespace sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesMixedStatement) {
  auto tokens =
      Tokenize("SELECT a, b*2 FROM t WHERE x >= 7.5 AND name = 'joe'")
          .value();
  // SELECT a , b * 2 FROM t WHERE x >= 7.5 AND name = 'joe' <end>
  EXPECT_EQ(tokens.size(), 17u);
  EXPECT_TRUE(tokens[0].Is("SELECT"));
  EXPECT_EQ(tokens[4].kind, TokenKind::kSymbol);
  EXPECT_EQ(tokens[5].number, 2.0);
  EXPECT_EQ(tokens[10].text, ">=");
  EXPECT_EQ(tokens[15].kind, TokenKind::kString);
  EXPECT_EQ(tokens[15].text, "joe");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select SeLeCt SELECT").value();
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(tokens[i].Is("SELECT"));
}

TEST(LexerTest, EscapedQuotes) {
  auto tokens = Tokenize("'it''s'").value();
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, ScientificNotation) {
  auto tokens = Tokenize("1.5e-3").value();
  EXPECT_NEAR(tokens[0].number, 0.0015, 1e-12);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

// ---------------------------------------------------------------------------
// Session: DDL + DML.
// ---------------------------------------------------------------------------

class SqlSessionTest : public ::testing::Test {
 protected:
  SqlSessionTest() : db_(909), session_(&db_) {
    SamplingOptions* opts = session_.mutable_options();
    opts->fixed_samples = 20000;
  }

  SqlResult Run(const std::string& stmt) {
    SqlResult r = session_.Execute(stmt);
    PIP_CHECK_MSG(r.ok(), r.ToString());
    return r;
  }

  Database db_;
  Session session_;
};

TEST_F(SqlSessionTest, CreateInsertSelectRoundTrip) {
  Run("CREATE TABLE t (a, b)");
  Run("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  SqlResult r = Run("SELECT * FROM t");
  EXPECT_EQ(r.kind, SqlResult::Kind::kCTable);
  EXPECT_EQ(r.ctable.num_rows(), 2u);
}

TEST_F(SqlSessionTest, CreateDuplicateTableFails) {
  Run("CREATE TABLE t (a)");
  EXPECT_FALSE(session_.Execute("CREATE TABLE t (a)").ok());
}

TEST_F(SqlSessionTest, InsertIntoMissingTableFails) {
  EXPECT_FALSE(session_.Execute("INSERT INTO nope VALUES (1)").ok());
}

TEST_F(SqlSessionTest, InsertArityMismatchFails) {
  Run("CREATE TABLE t (a, b)");
  EXPECT_FALSE(session_.Execute("INSERT INTO t VALUES (1)").ok());
}

TEST_F(SqlSessionTest, DistributionConstructorAllocatesVariable) {
  Run("CREATE TABLE m (v)");
  Run("INSERT INTO m VALUES (Normal(10, 2))");
  SqlResult r = Run("SELECT * FROM m");
  ASSERT_EQ(r.ctable.num_rows(), 1u);
  EXPECT_FALSE(r.ctable.row(0).cells[0]->IsConstant());
  EXPECT_EQ(db_.pool()->num_variables(), 1u);
}

TEST_F(SqlSessionTest, UnknownDistributionRejected) {
  Run("CREATE TABLE m (v)");
  EXPECT_FALSE(session_.Execute("INSERT INTO m VALUES (Zeta(2))").ok());
}

TEST_F(SqlSessionTest, DistributionParamsMustBeConstant) {
  Run("CREATE TABLE m (v)");
  EXPECT_FALSE(
      session_.Execute("INSERT INTO m VALUES (Normal(v, 1))").ok());
}

// ---------------------------------------------------------------------------
// Session: symbolic SELECT.
// ---------------------------------------------------------------------------

TEST_F(SqlSessionTest, WhereSplitsDeterministicAndProbabilistic) {
  Run("CREATE TABLE orders (cust, price)");
  Run("INSERT INTO orders VALUES ('Joe', Normal(100, 10)), "
      "('Bob', Normal(250, 20))");
  SqlResult r =
      Run("SELECT price FROM orders WHERE cust = 'Joe' AND price > 90");
  ASSERT_EQ(r.ctable.num_rows(), 1u);           // Bob filtered eagerly.
  EXPECT_EQ(r.ctable.row(0).condition.size(), 1u);  // price > 90 deferred.
}

TEST_F(SqlSessionTest, SelectArithmeticTargetsAndAliases) {
  Run("CREATE TABLE t (a, b)");
  Run("INSERT INTO t VALUES (3, 4)");
  SqlResult r = Run("SELECT a + b AS total, a * 2, sqrt(b) FROM t");
  EXPECT_EQ(r.ctable.schema().name(0), "total");
  EXPECT_EQ(r.ctable.row(0).cells[0]->value(), Value(7.0));
  EXPECT_EQ(r.ctable.row(0).cells[1]->value(), Value(6.0));
  EXPECT_EQ(r.ctable.row(0).cells[2]->value(), Value(2.0));
}

TEST_F(SqlSessionTest, CrossProductFrom) {
  Run("CREATE TABLE l (a)");
  Run("CREATE TABLE r (b)");
  Run("INSERT INTO l VALUES (1), (2)");
  Run("INSERT INTO r VALUES (10), (20)");
  SqlResult res = Run("SELECT a, b FROM l, r WHERE a * 10 = b");
  EXPECT_EQ(res.ctable.num_rows(), 2u);
}

// ---------------------------------------------------------------------------
// Session: probability-removing operators.
// ---------------------------------------------------------------------------

TEST_F(SqlSessionTest, ExpectedSumAggregates) {
  Run("CREATE TABLE m (v)");
  Run("INSERT INTO m VALUES (Normal(10, 2)), (Normal(30, 5)), (2)");
  SqlResult r = Run("SELECT expected_sum(v) FROM m");
  ASSERT_EQ(r.kind, SqlResult::Kind::kTable);
  ASSERT_EQ(r.table.num_rows(), 1u);
  EXPECT_NEAR(r.table.row(0)[0].double_value(), 42.0, 0.5);
}

TEST_F(SqlSessionTest, SelectiveExpectedSumUsesConditions) {
  // The paper's headline query shape, end to end through SQL.
  Run("CREATE TABLE orders (cust, price, days)");
  Run("INSERT INTO orders VALUES ('Joe', Normal(100, 10), Normal(5, 1))");
  SqlResult r =
      Run("SELECT expected_sum(price) FROM orders WHERE days >= 7");
  double expected = 100.0 * (1.0 - NormalCdf(2.0));
  EXPECT_NEAR(r.table.row(0)[0].double_value(), expected, 0.2);
}

TEST_F(SqlSessionTest, ShowDistributionsListsRegistry) {
  SqlResult r = Run("SHOW DISTRIBUTIONS");
  ASSERT_EQ(r.kind, SqlResult::Kind::kTable);
  EXPECT_EQ(r.table.schema().columns(),
            (std::vector<std::string>{"distribution"}));
  std::vector<std::string> expected = DistributionRegistry::Global().Names();
  ASSERT_EQ(r.table.num_rows(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.table.row(i)[0].string_value(), expected[i]);
  }
  // The builtin library is pre-seeded, so the listing is never empty.
  EXPECT_GE(expected.size(), 10u);
}

TEST_F(SqlSessionTest, ShowTopics) {
  EXPECT_FALSE(session_.Execute("SHOW").ok());
  EXPECT_FALSE(session_.Execute("SHOW NONSENSE").ok());

  Run("CREATE TABLE zeta (a)");
  Run("CREATE TABLE alpha (a)");
  SqlResult tables = Run("SHOW TABLES");
  ASSERT_EQ(tables.table.num_rows(), 2u);
  // Sorted by name regardless of creation order.
  EXPECT_EQ(tables.table.row(0)[0], Value("alpha"));
  EXPECT_EQ(tables.table.row(1)[0], Value("zeta"));

  SqlResult knobs = Run("SHOW KNOBS");
  EXPECT_EQ(knobs.table.schema().size(), 3u);
  bool saw_epsilon = false;
  for (const Row& row : knobs.table.rows()) {
    if (row[0] == Value("EPSILON")) saw_epsilon = true;
  }
  EXPECT_TRUE(saw_epsilon);
}

TEST_F(SqlSessionTest, ShowPoolReportsSchedulerCounters) {
  // Drive at least one fanned-out batch through the shared pool, then
  // read the scheduler counters back over SQL.
  Run("CREATE TABLE pool_t (v)");
  Run("INSERT INTO pool_t VALUES (Normal(10, 2)), (Normal(20, 3))");
  Run("SET num_threads = 4");
  Run("SET fixed_samples = 200");
  Run("SELECT expected_sum(v) FROM pool_t WHERE v > 5");

  SqlResult r = Run("SHOW POOL");
  ASSERT_EQ(r.kind, SqlResult::Kind::kTable);
  EXPECT_EQ(r.table.schema().columns(),
            (std::vector<std::string>{"metric", "value"}));
  ASSERT_EQ(r.table.num_rows(), 9u);
  bool saw_threads = false;
  bool saw_nested = false;
  bool saw_joiner = false;
  for (const Row& row : r.table.rows()) {
    if (row[0] == Value("threads")) {
      saw_threads = true;
      EXPECT_GE(row[1].double_value(), 1.0);
    }
    if (row[0] == Value("nested_tasks")) saw_nested = true;
    if (row[0] == Value("joiner_tasks")) saw_joiner = true;
  }
  EXPECT_TRUE(saw_threads);
  EXPECT_TRUE(saw_nested);
  EXPECT_TRUE(saw_joiner);

  // POOL joined the SHOW topic list (and the error names it).
  SqlResult bad = session_.Execute("SHOW NONSENSE");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error.message.find("POOL"), std::string::npos);
}

TEST_F(SqlSessionTest, ShowKnobsReflectsSet) {
  Run("SET fixed_samples = 321");
  SqlResult knobs = Run("SHOW KNOBS");
  bool found = false;
  for (const Row& row : knobs.table.rows()) {
    if (row[0] == Value("FIXED_SAMPLES")) {
      EXPECT_EQ(row[1], Value("321"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SqlSessionTest, CreateVariableNamedReuse) {
  Run("CREATE VARIABLE demand AS Poisson(140)");
  EXPECT_EQ(db_.pool()->num_variables(), 1u);

  // Reusing the name in two statements references the SAME variable (no
  // fresh allocation), unlike inline constructors.
  Run("CREATE TABLE p (label, units)");
  Run("INSERT INTO p VALUES ('a', demand), ('b', demand * 2)");
  EXPECT_EQ(db_.pool()->num_variables(), 1u);

  SqlResult vars = Run("SHOW VARIABLES");
  ASSERT_EQ(vars.table.num_rows(), 1u);
  EXPECT_EQ(vars.table.row(0)[0], Value("demand"));
  EXPECT_EQ(vars.table.row(0)[1], Value("Poisson"));

  // Duplicate names and bad constructors are rejected.
  EXPECT_FALSE(session_.Execute("CREATE VARIABLE demand AS Normal(0, 1)").ok());
  EXPECT_FALSE(session_.Execute("CREATE VARIABLE v2 AS NoSuchDist(1)").ok());
  // The failed CREATE VARIABLE must not leak a reserved name.
  Run("CREATE VARIABLE v2 AS Normal(0, 1)");
}

TEST_F(SqlSessionTest, ExpectedCountStar) {
  Run("CREATE TABLE m (v)");
  Run("INSERT INTO m VALUES (Uniform(0, 1)), (Uniform(0, 1))");
  SqlResult r = Run("SELECT expected_count(*) FROM m WHERE v < 0.25");
  EXPECT_NEAR(r.table.row(0)[0].double_value(), 0.5, 1e-9);  // Exact CDF.
}

TEST_F(SqlSessionTest, MultipleAggregatesInOneSelect) {
  Run("CREATE TABLE m (v)");
  Run("INSERT INTO m VALUES (Uniform(0, 10)), (4)");
  SqlResult r = Run(
      "SELECT expected_sum(v) AS s, expected_count(*) AS n, "
      "expected_avg(v) AS a FROM m");
  EXPECT_EQ(r.table.schema().columns(),
            (std::vector<std::string>{"s", "n", "a"}));
  EXPECT_NEAR(r.table.row(0)[0].double_value(), 9.0, 0.2);
  EXPECT_NEAR(r.table.row(0)[1].double_value(), 2.0, 1e-9);
  EXPECT_NEAR(r.table.row(0)[2].double_value(), 4.5, 0.1);
}

TEST_F(SqlSessionTest, ExpectedMaxAggregate) {
  Run("CREATE TABLE m (v)");
  Run("INSERT INTO m VALUES (5), (9)");
  SqlResult r = Run("SELECT expected_max(v) FROM m");
  EXPECT_NEAR(r.table.row(0)[0].double_value(), 9.0, 1e-9);
}

TEST_F(SqlSessionTest, PerRowExpectationAndConf) {
  Run("CREATE TABLE m (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(10, 1)), ('b', Normal(20, 1))");
  SqlResult r =
      Run("SELECT tag, expectation(v) AS ev, conf() FROM m WHERE v > 0");
  ASSERT_EQ(r.kind, SqlResult::Kind::kTable);
  ASSERT_EQ(r.table.num_rows(), 2u);
  EXPECT_NEAR(r.table.Get(0, "E[ev]").value().double_value(), 10.0, 0.2);
  EXPECT_NEAR(r.table.Get(1, "E[ev]").value().double_value(), 20.0, 0.2);
  EXPECT_NEAR(r.table.Get(0, "conf").value().double_value(), 1.0, 1e-6);
}

TEST_F(SqlSessionTest, MixingTableWideAndPerRowRejected) {
  Run("CREATE TABLE m (v)");
  Run("INSERT INTO m VALUES (1)");
  EXPECT_FALSE(
      session_.Execute("SELECT expected_sum(v), conf() FROM m").ok());
  EXPECT_FALSE(session_.Execute("SELECT expected_sum(v), v FROM m").ok());
}

TEST_F(SqlSessionTest, ParseErrorsCarryParseCode) {
  for (const char* bad :
       {"SELECT", "SELECT FROM t", "CREATE TABLE", "INSERT INTO",
        "SELECT a FROM t WHERE", "DELETE FROM t", "SELECT a FROM t extra"}) {
    auto r = session_.Execute(bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.error.code, WireErrorCode::kParse) << bad;
  }
}

TEST_F(SqlSessionTest, ErrorCodesByCategory) {
  Run("CREATE TABLE t (a)");
  // NOT_FOUND: missing table.
  EXPECT_EQ(session_.Execute("INSERT INTO nope VALUES (1)").error.code,
            WireErrorCode::kNotFound);
  // INVALID_ARG: well-formed statement with invalid content.
  EXPECT_EQ(session_.Execute("SET epsilon = 7").error.code,
            WireErrorCode::kInvalidArg);
  EXPECT_EQ(session_.Execute("CREATE TABLE t (a)").error.code,
            WireErrorCode::kInvalidArg);  // AlreadyExists maps here.
  // CAPABILITY: recognized SQL the engine declines.
  EXPECT_EQ(session_.Execute("SELECT DISTINCT a FROM t").error.code,
            WireErrorCode::kCapability);
  EXPECT_EQ(session_.Execute("SELECT a FROM t GROUP BY a").error.code,
            WireErrorCode::kCapability);
  EXPECT_EQ(session_.Execute("SELECT a FROM t ORDER BY a").error.code,
            WireErrorCode::kCapability);
  // Messages render with the same code names the wire uses.
  SqlResult err = session_.Execute("SELECT a FROM t LIMIT 5");
  EXPECT_NE(err.ToString().find("ERROR CAPABILITY:"), std::string::npos);
}

TEST_F(SqlSessionTest, ResultColumnMetadata) {
  Run("CREATE TABLE m (label, v)");
  Run("INSERT INTO m VALUES ('a', Uniform(0, 1)), ('b', 2)");
  SqlResult sym = Run("SELECT * FROM m");
  ASSERT_EQ(sym.columns.size(), 2u);
  EXPECT_EQ(sym.columns[0].name, "label");
  EXPECT_EQ(sym.columns[0].kind, ColumnKind::kText);
  EXPECT_EQ(sym.columns[1].kind, ColumnKind::kSymbolic);

  SqlResult det = Run("SELECT expected_sum(v) AS s FROM m");
  ASSERT_EQ(det.columns.size(), 1u);
  EXPECT_EQ(det.columns[0].name, "s");
  EXPECT_EQ(det.columns[0].kind, ColumnKind::kNumeric);
}

TEST_F(SqlSessionTest, StatementMaySampleClassification) {
  EXPECT_TRUE(StatementMaySample("SELECT expected_sum(v) FROM t"));
  EXPECT_TRUE(StatementMaySample("SELECT expectation(v), conf() FROM t"));
  EXPECT_TRUE(StatementMaySample("select EXPECTED_MAX(v) from t"));
  EXPECT_FALSE(StatementMaySample("SELECT v FROM t"));
  EXPECT_FALSE(StatementMaySample("INSERT INTO t VALUES (Normal(0, 1))"));
  // String literals cannot fake a match (lexer-accurate scan).
  EXPECT_FALSE(StatementMaySample("INSERT INTO t VALUES ('conf()')"));
  // Unparseable text classifies as non-sampling.
  EXPECT_FALSE(StatementMaySample("'unterminated"));
}

TEST_F(SqlSessionTest, TrailingSemicolonAccepted) {
  Run("CREATE TABLE t (a);");
  Run("INSERT INTO t VALUES (1);");
  SqlResult r = Run("SELECT * FROM t;");
  EXPECT_EQ(r.ctable.num_rows(), 1u);
}

TEST_F(SqlSessionTest, ResultToStringRenders) {
  Run("CREATE TABLE t (a)");
  Run("INSERT INTO t VALUES (Exponential(2))");
  EXPECT_FALSE(Run("SELECT * FROM t").ToString().empty());
  EXPECT_FALSE(Run("SELECT expected_sum(a) FROM t").ToString().empty());
}

}  // namespace
}  // namespace sql
}  // namespace pip
