#include "src/sampling/aggregates.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/special_math.h"

namespace pip {
namespace {

class AggregatesTest : public ::testing::Test {
 protected:
  AggregatesTest() : engine_(&pool_) {}

  /// A row whose condition (U < p) holds with probability exactly p.
  Condition WithProbability(double p) {
    VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
    return Condition(Expr::Var(u) < Expr::Constant(p));
  }

  VariablePool pool_{31337};
  SamplingEngine engine_;
};

TEST_F(AggregatesTest, ExpectedSumWeighsRowsByConfidence) {
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Constant(10.0)}, WithProbability(0.5)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(20.0)}, WithProbability(0.25)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(40.0)}).ok());  // Always present.
  AggregateEvaluator agg(&engine_);
  // 10*0.5 + 20*0.25 + 40 = 50, all probabilities exact via CDF.
  EXPECT_NEAR(agg.ExpectedSum(t, "v").value(), 50.0, 1e-9);
}

TEST_F(AggregatesTest, ExpectedSumWithProbabilisticValues) {
  VarRef x = pool_.Create("Normal", {7.0, 2.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(x)}, WithProbability(0.5)).ok());
  SamplingOptions opts;
  opts.fixed_samples = 20000;
  SamplingEngine engine(&pool_, opts);
  AggregateEvaluator agg(&engine);
  // E[X] * P = 7 * 0.5 (value and condition are independent).
  EXPECT_NEAR(agg.ExpectedSum(t, "v").value(), 3.5, 0.1);
}

TEST_F(AggregatesTest, ExpectedSumSkipsUnsatisfiableRows) {
  VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Constant(100.0)},
                       Condition(Expr::Var(u) > Expr::Constant(2.0)))
                  .ok());
  ASSERT_TRUE(t.Append({Expr::Constant(5.0)}).ok());
  AggregateEvaluator agg(&engine_);
  EXPECT_NEAR(agg.ExpectedSum(t, "v").value(), 5.0, 1e-9);
}

TEST_F(AggregatesTest, ExpectedCountSumsConfidences) {
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}, WithProbability(0.3)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}, WithProbability(0.6)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}).ok());
  AggregateEvaluator agg(&engine_);
  EXPECT_NEAR(agg.ExpectedCount(t).value(), 1.9, 1e-9);
}

TEST_F(AggregatesTest, ExpectedAvgIsSumOverCount) {
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Constant(10.0)}).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(20.0)}).ok());
  AggregateEvaluator agg(&engine_);
  EXPECT_NEAR(agg.ExpectedAvg(t, "v").value(), 15.0, 1e-9);
}

TEST_F(AggregatesTest, ExpectedAvgEmptyTableErrors) {
  CTable t(Schema({"v"}));
  AggregateEvaluator agg(&engine_);
  EXPECT_EQ(agg.ExpectedAvg(t, "v").status().code(),
            StatusCode::kInconsistent);
}

// Example 4.4: constants 5, 4, 1, 0 present with probabilities
// 0.7, 0.8, 0.3, 0.6. E[max] with empty worlds contributing 0.
TEST_F(AggregatesTest, ExpectedMaxExample44) {
  CTable t(Schema({"A"}));
  ASSERT_TRUE(t.Append({Expr::Constant(5.0)}, WithProbability(0.7)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(4.0)}, WithProbability(0.8)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}, WithProbability(0.3)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(0.0)}, WithProbability(0.6)).ok());
  AggregateEvaluator agg(&engine_);
  double expected = 5.0 * 0.7 + 4.0 * 0.3 * 0.8 + 1.0 * 0.3 * 0.2 * 0.3 +
                    0.0 * 0.3 * 0.2 * 0.7 * 0.6;
  EXPECT_NEAR(agg.ExpectedMax(t, "A").value(), expected, 1e-9);
}

TEST_F(AggregatesTest, ExpectedMaxEarlyTerminationStaysWithinPrecision) {
  CTable t(Schema({"A"}));
  // First row almost always present: later rows barely matter.
  ASSERT_TRUE(t.Append({Expr::Constant(100.0)}, WithProbability(0.999)).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        t.Append({Expr::Constant(50.0 - i)}, WithProbability(0.5)).ok());
  }
  AggregateOptions opts;
  opts.max_precision = 0.1;
  AggregateEvaluator loose(&engine_, opts);
  AggregateOptions tight_opts;
  tight_opts.max_precision = 1e-12;
  AggregateEvaluator tight(&engine_, tight_opts);
  double a = loose.ExpectedMax(t, "A").value();
  double b = tight.ExpectedMax(t, "A").value();
  EXPECT_NEAR(a, b, 0.1);
}

TEST_F(AggregatesTest, ExpectedMaxSortsUnorderedInput) {
  CTable t(Schema({"A"}));
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}, WithProbability(0.5)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(9.0)}, WithProbability(0.5)).ok());
  AggregateEvaluator agg(&engine_);
  // E[max] = 9*0.5 + 1*0.5*0.5 = 4.75.
  EXPECT_NEAR(agg.ExpectedMax(t, "A").value(), 4.75, 1e-9);
}

TEST_F(AggregatesTest, ExpectedMaxEmptyTableIsEmptyValue) {
  CTable t(Schema({"A"}));
  AggregateEvaluator agg(&engine_);
  EXPECT_EQ(agg.ExpectedMax(t, "A", -1.0).value(), -1.0);
}

TEST_F(AggregatesTest, ExpectedMaxVariableCellsFallsBackToWorlds) {
  VarRef x = pool_.Create("Uniform", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Uniform", {0.0, 1.0}).value();
  CTable t(Schema({"A"}));
  ASSERT_TRUE(t.Append({Expr::Var(x)}).ok());
  ASSERT_TRUE(t.Append({Expr::Var(y)}).ok());
  AggregateOptions opts;
  opts.world_samples = 30000;
  AggregateEvaluator agg(&engine_, opts);
  // E[max(U1, U2)] = 2/3.
  EXPECT_NEAR(agg.ExpectedMax(t, "A").value(), 2.0 / 3.0, 0.01);
}

TEST_F(AggregatesTest, ExpectedMaxSharedVariableFallsBackToWorlds) {
  // Both rows conditioned on the same variable: the independence-based
  // product formula does not apply and must not be used.
  VarRef u = pool_.Create("Uniform", {0.0, 1.0}).value();
  CTable t(Schema({"A"}));
  Condition present(Expr::Var(u) < Expr::Constant(0.5));
  Condition absent(Expr::Var(u) >= Expr::Constant(0.5));
  ASSERT_TRUE(t.Append({Expr::Constant(10.0)}, present).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(4.0)}, absent).ok());
  AggregateOptions opts;
  opts.world_samples = 30000;
  AggregateEvaluator agg(&engine_, opts);
  // Exactly one row per world: E[max] = 0.5*10 + 0.5*4 = 7.
  EXPECT_NEAR(agg.ExpectedMax(t, "A").value(), 7.0, 0.1);
}

TEST_F(AggregatesTest, HistogramsApproximateExpectedSum) {
  VarRef x = pool_.Create("Normal", {10.0, 1.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(x)}).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(5.0)}, WithProbability(0.5)).ok());
  AggregateOptions opts;
  opts.world_samples = 20000;
  AggregateEvaluator agg(&engine_, opts);
  auto hist = agg.ExpectedSumHist(t, "v").value();
  ASSERT_EQ(hist.size(), 20000u);
  double mean = 0;
  for (double h : hist) mean += h;
  mean /= hist.size();
  EXPECT_NEAR(mean, 10.0 + 2.5, 0.1);
}

TEST_F(AggregatesTest, MaxHistMatchesExpectedMax) {
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Constant(3.0)}, WithProbability(0.5)).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(1.0)}).ok());
  AggregateOptions opts;
  opts.world_samples = 20000;
  AggregateEvaluator agg(&engine_, opts);
  auto hist = agg.ExpectedMaxHist(t, "v").value();
  double mean = 0;
  for (double h : hist) mean += h;
  mean /= hist.size();
  EXPECT_NEAR(mean, agg.ExpectedMax(t, "v").value(), 0.05);
}

TEST_F(AggregatesTest, SampleWorldsSharedVariableConsistency) {
  // One variable appearing in two rows must take the same value within
  // each world (the c-table replay guarantee).
  VarRef x = pool_.Create("Uniform", {0.0, 1.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(x)}).ok());
  ASSERT_TRUE(t.Append({Expr::Neg(Expr::Var(x))}).ok());
  AggregateOptions opts;
  opts.world_samples = 100;
  AggregateEvaluator agg(&engine_, opts);
  auto sums = agg.ExpectedSumHist(t, "v").value();
  for (double s : sums) EXPECT_NEAR(s, 0.0, 1e-12);  // X + (-X) = 0.
}

TEST_F(AggregatesTest, ExpectedStdDevOfIdenticalValuesIsZero) {
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Constant(5.0)}).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(5.0)}).ok());
  AggregateEvaluator agg(&engine_);
  EXPECT_NEAR(agg.ExpectedStdDev(t, "v").value(), 0.0, 1e-12);
}

TEST_F(AggregatesTest, ExpectedStdDevAcrossUniformRows) {
  // Two constants 0 and 10 always present: population stddev = 5 in every
  // world.
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Constant(0.0)}).ok());
  ASSERT_TRUE(t.Append({Expr::Constant(10.0)}).ok());
  AggregateOptions opts;
  opts.world_samples = 100;
  AggregateEvaluator agg(&engine_, opts);
  EXPECT_NEAR(agg.ExpectedStdDev(t, "v").value(), 5.0, 1e-12);
}

TEST_F(AggregatesTest, SumStdDevMatchesTheory) {
  // Sum of two iid Normal(0, 3): stddev of the sum is 3*sqrt(2).
  VarRef a = pool_.Create("Normal", {0.0, 3.0}).value();
  VarRef b = pool_.Create("Normal", {0.0, 3.0}).value();
  CTable t(Schema({"v"}));
  ASSERT_TRUE(t.Append({Expr::Var(a)}).ok());
  ASSERT_TRUE(t.Append({Expr::Var(b)}).ok());
  AggregateOptions opts;
  opts.world_samples = 30000;
  AggregateEvaluator agg(&engine_, opts);
  EXPECT_NEAR(agg.SumStdDev(t, "v").value(), 3.0 * std::sqrt(2.0), 0.1);
}

TEST_F(AggregatesTest, GroupedExpectedSum) {
  // Two groups; each group's rows weighted by their own confidences.
  CTable t(Schema({"region", "v"}));
  ASSERT_TRUE(
      t.Append({Expr::String("east"), Expr::Constant(10.0)}, WithProbability(0.5))
          .ok());
  ASSERT_TRUE(t.Append({Expr::String("east"), Expr::Constant(4.0)}).ok());
  ASSERT_TRUE(
      t.Append({Expr::String("west"), Expr::Constant(8.0)}, WithProbability(0.25))
          .ok());
  AggregateEvaluator agg(&engine_);
  Table out = GroupedAggregate(agg, t, {"region"}, "v",
                               GroupAggregate::kExpectedSum)
                  .value();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_NEAR(out.Get(0, "expected_sum(v)").value().double_value(), 9.0,
              1e-9);
  EXPECT_NEAR(out.Get(1, "expected_sum(v)").value().double_value(), 2.0,
              1e-9);
}

TEST_F(AggregatesTest, GroupedCountAndMax) {
  CTable t(Schema({"g", "v"}));
  ASSERT_TRUE(
      t.Append({Expr::String("a"), Expr::Constant(3.0)}, WithProbability(0.5))
          .ok());
  ASSERT_TRUE(t.Append({Expr::String("a"), Expr::Constant(1.0)}).ok());
  AggregateEvaluator agg(&engine_);
  Table counts =
      GroupedAggregate(agg, t, {"g"}, "v", GroupAggregate::kExpectedCount)
          .value();
  EXPECT_NEAR(counts.row(0)[1].double_value(), 1.5, 1e-9);
  Table maxima =
      GroupedAggregate(agg, t, {"g"}, "v", GroupAggregate::kExpectedMax)
          .value();
  // E[max] = 3*0.5 + 1*0.5 = 2.
  EXPECT_NEAR(maxima.row(0)[1].double_value(), 2.0, 1e-9);
}

TEST_F(AggregatesTest, GroupedAggregateRejectsProbabilisticKeys) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  CTable t(Schema({"g", "v"}));
  ASSERT_TRUE(t.Append({Expr::Var(x), Expr::Constant(1.0)}).ok());
  AggregateEvaluator agg(&engine_);
  EXPECT_FALSE(
      GroupedAggregate(agg, t, {"g"}, "v", GroupAggregate::kExpectedSum)
          .ok());
}

TEST(HistogramTest, BuildsCountsCorrectly) {
  std::vector<double> samples = {0.0, 0.1, 0.2, 0.9, 1.0};
  Histogram h = BuildHistogram(samples, 2);
  EXPECT_EQ(h.lo, 0.0);
  EXPECT_EQ(h.hi, 1.0);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 3u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(BuildHistogram({}, 4).counts.empty());
  Histogram h = BuildHistogram({2.0, 2.0}, 3);
  EXPECT_EQ(h.total(), 2u);  // Degenerate range widened internally.
}

TEST(HistogramTest, ToStringRenders) {
  Histogram h = BuildHistogram({1.0, 2.0, 3.0}, 3);
  EXPECT_FALSE(h.ToString().empty());
}

}  // namespace
}  // namespace pip
