#include "src/constraints/consistency.h"

#include <gtest/gtest.h>

#include "src/constraints/independence.h"

namespace pip {
namespace {

class ConsistencyTest : public ::testing::Test {
 protected:
  VariablePool pool_{77};
  VarRef NewNormal(double mu = 0, double sigma = 1) {
    return pool_.Create("Normal", {mu, sigma}).value();
  }
  VarRef NewPoisson(double lambda = 3) {
    return pool_.Create("Poisson", {lambda}).value();
  }
  VarRef NewUniform(double lo = 0, double hi = 1) {
    return pool_.Create("Uniform", {lo, hi}).value();
  }
};

TEST_F(ConsistencyTest, EmptyConditionIsConsistent) {
  ConsistencyResult r = CheckConsistency(Condition::True(), pool_);
  EXPECT_EQ(r.verdict, ConsistencyVerdict::kConsistent);
}

TEST_F(ConsistencyTest, KnownFalseIsInconsistent) {
  ConsistencyResult r = CheckConsistency(Condition::False(), pool_);
  EXPECT_TRUE(r.inconsistent());
}

TEST_F(ConsistencyTest, DiscreteDoubleEqualityContradiction) {
  // Rule 2: X = c1 AND X = c2 with c1 != c2.
  VarRef x = NewPoisson();
  Condition c;
  c.AddAtom(Expr::Var(x) == Expr::Constant(1.0));
  c.AddAtom(Expr::Var(x) == Expr::Constant(2.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, DiscreteSameEqualityIsFine) {
  VarRef x = NewPoisson();
  Condition c;
  c.AddAtom(Expr::Var(x) == Expr::Constant(2.0));
  c.AddAtom(Expr::Constant(2.0) == Expr::Var(x));  // Flipped form.
  EXPECT_FALSE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, DiscreteEqNeConflict) {
  VarRef x = NewPoisson();
  Condition c;
  c.AddAtom(Expr::Var(x) == Expr::Constant(2.0));
  c.AddAtom(Expr::Var(x) != Expr::Constant(2.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, ContinuousEqualityIsZeroMass) {
  // Rule 3: equality over a continuous variable is treated as inconsistent.
  VarRef y = NewNormal();
  Condition c(Expr::Var(y) == Expr::Constant(1.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, ContinuousDisequalityIsIgnored) {
  VarRef y = NewNormal();
  Condition c(Expr::Var(y) != Expr::Constant(1.0));
  EXPECT_FALSE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, IdentityAtoms) {
  VarRef y = NewNormal();
  Condition eq(Expr::Var(y) == Expr::Var(y));
  EXPECT_FALSE(CheckConsistency(eq, pool_).inconsistent());
  Condition ne(Expr::Var(y) != Expr::Var(y));
  EXPECT_TRUE(CheckConsistency(ne, pool_).inconsistent());
  Condition lt(Expr::Var(y) < Expr::Var(y));
  EXPECT_TRUE(CheckConsistency(lt, pool_).inconsistent());
}

TEST_F(ConsistencyTest, LinearBoundsExtracted) {
  VarRef y = NewNormal();
  Condition c;
  c.AddAtom(Expr::Var(y) > Expr::Constant(-3.0));
  c.AddAtom(Expr::Var(y) < Expr::Constant(2.0));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_EQ(r.verdict, ConsistencyVerdict::kConsistent);
  Interval b = r.BoundsFor(y);
  EXPECT_EQ(b.lo, -3.0);
  EXPECT_EQ(b.hi, 2.0);
}

TEST_F(ConsistencyTest, ContradictoryLinearBounds) {
  VarRef y = NewNormal();
  Condition c;
  c.AddAtom(Expr::Var(y) > Expr::Constant(5.0));
  c.AddAtom(Expr::Var(y) < Expr::Constant(4.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, BoundPropagationThroughChain) {
  // X > 4, Y > X, Z > Y  ==>  Z > 4 after two propagation rounds.
  VarRef x = NewNormal(), y = NewNormal(), z = NewNormal();
  Condition c;
  c.AddAtom(Expr::Var(x) > Expr::Constant(4.0));
  c.AddAtom(Expr::Var(y) > Expr::Var(x));
  c.AddAtom(Expr::Var(z) > Expr::Var(y));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_EQ(r.verdict, ConsistencyVerdict::kConsistent);
  EXPECT_GE(r.BoundsFor(z).lo, 4.0);
}

TEST_F(ConsistencyTest, ChainContradictionDetected) {
  // X > 4 AND Y > X AND Y < 3 is unsatisfiable.
  VarRef x = NewNormal(), y = NewNormal();
  Condition c;
  c.AddAtom(Expr::Var(x) > Expr::Constant(4.0));
  c.AddAtom(Expr::Var(y) > Expr::Var(x));
  c.AddAtom(Expr::Var(y) < Expr::Constant(3.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, WeightedLinearAtom) {
  // 2*X + 3 <= 11  =>  X <= 4.
  VarRef x = NewNormal();
  Condition c(Expr::Constant(2.0) * Expr::Var(x) + Expr::Constant(3.0) <=
              Expr::Constant(11.0));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_NEAR(r.BoundsFor(x).hi, 4.0, 1e-12);
}

TEST_F(ConsistencyTest, NegativeCoefficientFlipsBound) {
  // -2*X <= -8  =>  X >= 4.
  VarRef x = NewNormal();
  Condition c(Expr::Constant(-2.0) * Expr::Var(x) <= Expr::Constant(-8.0));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_NEAR(r.BoundsFor(x).lo, 4.0, 1e-12);
}

TEST_F(ConsistencyTest, SupportSeedsBounds) {
  // Uniform(0,1) with X > 2 is unsatisfiable thanks to support seeding.
  VarRef u = NewUniform(0, 1);
  Condition c(Expr::Var(u) > Expr::Constant(2.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, SupportSeedingCanBeDisabled) {
  VarRef u = NewUniform(0, 1);
  Condition c(Expr::Var(u) > Expr::Constant(2.0));
  ConsistencyOptions opts;
  opts.use_distribution_support = false;
  EXPECT_FALSE(CheckConsistency(c, pool_, opts).inconsistent());
}

TEST_F(ConsistencyTest, NonlinearAtomsAreWeak) {
  VarRef x = NewNormal(), y = NewNormal();
  Condition c(Expr::Var(x) * Expr::Var(y) > Expr::Constant(0.0));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_EQ(r.verdict, ConsistencyVerdict::kWeaklyConsistent);
}

TEST_F(ConsistencyTest, NonlinearRefutationByInterval) {
  // X in [0,1] (support), X*X > 2 cannot hold.
  VarRef u = NewUniform(0, 1);
  Condition c(Expr::Var(u) * Expr::Var(u) > Expr::Constant(2.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, ExponentialSupportUsed) {
  // Exponential is nonnegative: X < -1 unsatisfiable.
  VarRef e = pool_.Create("Exponential", {1.0}).value();
  Condition c(Expr::Var(e) < Expr::Constant(-1.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, SoundnessNeverRefutesSatisfiable) {
  // Property sweep: random interval conditions that are satisfiable by
  // construction must never be declared inconsistent.
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    VarRef x = NewNormal(0, 10);
    double witness = rng.NextUniform(-20, 20);
    double lo = witness - rng.NextUniform(0.1, 5.0);
    double hi = witness + rng.NextUniform(0.1, 5.0);
    Condition c;
    c.AddAtom(Expr::Var(x) > Expr::Constant(lo));
    c.AddAtom(Expr::Var(x) < Expr::Constant(hi));
    ConsistencyResult r = CheckConsistency(c, pool_);
    EXPECT_FALSE(r.inconsistent()) << "witness=" << witness;
    EXPECT_TRUE(r.BoundsFor(x).Contains(witness));
  }
}

TEST(Tighten1Test, MatchesPaperFormula) {
  // Paper example: a*X + b*Y + c > 0 with a > 0 gives
  // X >= -(b*max(S[Y]) + c)/a.
  VarRef x{1, 0}, y{2, 0};
  LinearForm form;
  form.coefficients[x] = 2.0;
  form.coefficients[y] = -1.0;
  form.constant = 4.0;
  std::map<VarRef, Interval> bounds;
  bounds[y] = Interval(0.0, 6.0);
  // 2X - Y + 4 >= 0 => X >= (Y - 4)/2; worst case Y=6 gives X >= ... the
  // implied bound uses max of rest = max(-Y+4) over Y in [0,6] = 4, so
  // X >= -4/2 = -2.
  Interval r = Tighten1(form, CmpOp::kGe, x, bounds);
  EXPECT_EQ(r.lo, -2.0);
  EXPECT_TRUE(std::isinf(r.hi));
}

TEST(Tighten1Test, UnboundedRestGivesNoInformation) {
  VarRef x{1, 0}, y{2, 0};
  LinearForm form;
  form.coefficients[x] = 1.0;
  form.coefficients[y] = 1.0;
  std::map<VarRef, Interval> bounds;  // Y unbounded.
  EXPECT_TRUE(Tighten1(form, CmpOp::kGe, x, bounds).IsAll());
}

// ---------------------------------------------------------------------------
// tighten2: univariate quadratic atoms.
// ---------------------------------------------------------------------------

TEST_F(ConsistencyTest, QuadraticUpperBoundExtracted) {
  // X*X <= 4  =>  X in [-2, 2].
  VarRef x = NewNormal(0, 10);
  Condition c(Expr::Var(x) * Expr::Var(x) <= Expr::Constant(4.0));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_FALSE(r.inconsistent());
  Interval b = r.BoundsFor(x);
  EXPECT_NEAR(b.lo, -2.0, 1e-9);
  EXPECT_NEAR(b.hi, 2.0, 1e-9);
}

TEST_F(ConsistencyTest, QuadraticSegmentBetweenRoots) {
  // -X^2 + 5X - 6 >= 0  <=>  (X-2)(3-X) >= 0  =>  X in [2, 3].
  VarRef x = NewNormal(0, 10);
  ExprPtr q = Expr::Neg(Expr::Var(x) * Expr::Var(x)) +
              Expr::Constant(5.0) * Expr::Var(x) - Expr::Constant(6.0);
  Condition c(q >= Expr::Constant(0.0));
  ConsistencyResult r = CheckConsistency(c, pool_);
  Interval b = r.BoundsFor(x);
  EXPECT_NEAR(b.lo, 2.0, 1e-9);
  EXPECT_NEAR(b.hi, 3.0, 1e-9);
}

TEST_F(ConsistencyTest, QuadraticBranchSelectionWithPriorBound) {
  // X >= 0 AND X^2 >= 9: the negative branch is pruned, leaving X >= 3.
  VarRef x = NewNormal(0, 10);
  Condition c;
  c.AddAtom(Expr::Var(x) >= Expr::Constant(0.0));
  c.AddAtom(Expr::Var(x) * Expr::Var(x) >= Expr::Constant(9.0));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_NEAR(r.BoundsFor(x).lo, 3.0, 1e-9);
}

TEST_F(ConsistencyTest, QuadraticInconsistencyDetected) {
  // X^2 < -1 has no solution.
  VarRef x = NewNormal(0, 10);
  Condition c(Expr::Var(x) * Expr::Var(x) < Expr::Constant(-1.0));
  EXPECT_TRUE(CheckConsistency(c, pool_).inconsistent());
}

TEST_F(ConsistencyTest, QuadraticPlusLinearInteract) {
  // X^2 <= 4 AND X > 1  =>  X in (1, 2]; then Y > X gives Y > 1.
  VarRef x = NewNormal(0, 10), y = NewNormal(0, 10);
  Condition c;
  c.AddAtom(Expr::Var(x) * Expr::Var(x) <= Expr::Constant(4.0));
  c.AddAtom(Expr::Var(x) > Expr::Constant(1.0));
  c.AddAtom(Expr::Var(y) > Expr::Var(x));
  ConsistencyResult r = CheckConsistency(c, pool_);
  EXPECT_FALSE(r.inconsistent());
  EXPECT_NEAR(r.BoundsFor(x).hi, 2.0, 1e-9);
  EXPECT_GE(r.BoundsFor(y).lo, 1.0 - 1e-9);
}

TEST_F(ConsistencyTest, QuadraticHandledAtomsAreNotWeak) {
  VarRef x = NewNormal(0, 10);
  Condition c(Expr::Var(x) * Expr::Var(x) <= Expr::Constant(4.0));
  EXPECT_EQ(CheckConsistency(c, pool_).verdict,
            ConsistencyVerdict::kConsistent);
}

TEST(QuadraticExtractionTest, RecognizedShapes) {
  VarRef x{1, 0};
  ExprPtr xx = Expr::Var(x) * Expr::Var(x);
  auto q = ToUnivariateQuadratic(xx + Expr::Constant(2.0) * Expr::Var(x) -
                                 Expr::Constant(3.0));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->a, 1.0);
  EXPECT_EQ(q->b, 2.0);
  EXPECT_EQ(q->c, -3.0);
  // (x + 1) * (x - 2) expands to x^2 - x - 2.
  auto product = ToUnivariateQuadratic(
      (Expr::Var(x) + Expr::Constant(1.0)) *
      (Expr::Var(x) - Expr::Constant(2.0)));
  ASSERT_TRUE(product.has_value());
  EXPECT_EQ(product->a, 1.0);
  EXPECT_EQ(product->b, -1.0);
  EXPECT_EQ(product->c, -2.0);
}

TEST(QuadraticExtractionTest, RejectedShapes) {
  VarRef x{1, 0}, y{2, 0};
  // Two variables.
  EXPECT_FALSE(ToUnivariateQuadratic(Expr::Var(x) * Expr::Var(y)).has_value());
  // Degree 3.
  EXPECT_FALSE(ToUnivariateQuadratic(Expr::Var(x) * Expr::Var(x) *
                                     Expr::Var(x))
                   .has_value());
  // Pure linear (a == 0): tighten1's job.
  EXPECT_FALSE(ToUnivariateQuadratic(Expr::Var(x) + Expr::Constant(1.0))
                   .has_value());
  // Non-polynomial.
  EXPECT_FALSE(
      ToUnivariateQuadratic(Expr::Func(FuncKind::kExp, Expr::Var(x)))
          .has_value());
}

// ---------------------------------------------------------------------------
// Independence partition.
// ---------------------------------------------------------------------------

TEST(IndependenceTest, PaperExamplePartition) {
  // (Y1 > 4) AND (Y1*Y2 > Y3) AND (A < 6): {Y1,Y2,Y3} and {A}.
  VarRef y1{1, 0}, y2{2, 0}, y3{3, 0}, a{4, 0};
  Condition c;
  c.AddAtom(Expr::Var(y1) > Expr::Constant(4.0));
  c.AddAtom(Expr::Var(y1) * Expr::Var(y2) > Expr::Var(y3));
  c.AddAtom(Expr::Var(a) < Expr::Constant(6.0));
  auto groups = PartitionIndependent(c, {});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].vars.size(), 3u);
  EXPECT_EQ(groups[0].atom_indices.size(), 2u);
  EXPECT_EQ(groups[1].vars.size(), 1u);
  EXPECT_TRUE(groups[1].vars.count(a));
}

TEST(IndependenceTest, TargetVariablesFormGroups) {
  VarRef x{1, 0}, y{2, 0};
  Condition c(Expr::Var(x) > Expr::Constant(0.0));
  auto groups = PartitionIndependent(c, {y});
  ASSERT_EQ(groups.size(), 2u);
  // Group containing x has the atom; group containing y is target-only.
  bool found_target_only = false;
  for (const auto& g : groups) {
    if (g.vars.count(y)) {
      EXPECT_TRUE(g.touches_target);
      EXPECT_TRUE(g.atom_indices.empty());
      found_target_only = true;
    }
  }
  EXPECT_TRUE(found_target_only);
}

TEST(IndependenceTest, TargetSharedWithConditionMerges) {
  VarRef x{1, 0};
  Condition c(Expr::Var(x) > Expr::Constant(0.0));
  auto groups = PartitionIndependent(c, {x});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].touches_target);
  EXPECT_EQ(groups[0].atom_indices.size(), 1u);
}

TEST(IndependenceTest, MultivariateComponentsInseparable) {
  // Components {5,0} and {5,1} share var_id 5: same group even though no
  // atom links them.
  VarRef a{5, 0}, b{5, 1}, other{6, 0};
  Condition c;
  c.AddAtom(Expr::Var(a) > Expr::Constant(0.0));
  c.AddAtom(Expr::Var(other) > Expr::Constant(0.0));
  auto groups = PartitionIndependent(c, {b});
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& g : groups) {
    if (g.vars.count(a)) {
      EXPECT_TRUE(g.vars.count(b));
      EXPECT_TRUE(g.touches_target);
    }
  }
}

TEST(IndependenceTest, ChainOfSharedVariablesMergesTransitively) {
  VarRef x{1, 0}, y{2, 0}, z{3, 0};
  Condition c;
  c.AddAtom(Expr::Var(x) > Expr::Var(y));
  c.AddAtom(Expr::Var(y) > Expr::Var(z));
  auto groups = PartitionIndependent(c, {});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].vars.size(), 3u);
  EXPECT_EQ(groups[0].atom_indices.size(), 2u);
}

TEST(IndependenceTest, EmptyConditionNoTargetsEmptyPartition) {
  EXPECT_TRUE(PartitionIndependent(Condition::True(), {}).empty());
}

}  // namespace
}  // namespace pip
