/// \file parallel_sampling_test.cc
/// \brief The parallel sampling engine's determinism contract, the
/// RunningStats merge, the plan-shape cache, and the per-plan
/// memoization of distribution tables.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "src/common/row_parallel.h"
#include "src/common/running_stats.h"
#include "src/common/special_math.h"
#include "src/common/thread_pool.h"
#include "src/engine/database.h"
#include "src/sql/session.h"

namespace pip {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryChunkOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ThreadPool::For(hits.size(), 8, [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkersRunConcurrentlyWithCaller) {
  // Chunk 0 spins until chunk 1 runs: completes only if two executors
  // make progress concurrently (OS timeslicing suffices — this holds
  // even on a single hardware core, unlike a wall-clock speedup test).
  std::atomic<bool> other_ran{false};
  ThreadPool::For(2, 2, [&](size_t i) {
    if (i == 1) {
      other_ran = true;
    } else {
      while (!other_ran) std::this_thread::yield();
    }
  });
  EXPECT_TRUE(other_ran.load());
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  std::vector<int> order;
  ThreadPool::For(5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// RunningStats::Merge
// ---------------------------------------------------------------------------

TEST(RunningStatsMergeTest, MergeMatchesSequentialAccumulation) {
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    double x = std::sin(0.1 * i) * 3.0 + 0.5 * i;
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12 * std::fabs(all.mean()));
  EXPECT_NEAR(left.variance(), all.variance(),
              1e-10 * std::fabs(all.variance()));
}

TEST(RunningStatsMergeTest, StableForTinyMeans) {
  // The regime of workload_test's SampleFirstHasVisibleError: estimating
  // a ~1e-3 probability from indicator samples. The merged moments must
  // agree with a direct two-pass computation to near machine precision.
  const double p = 1.25e-3;
  const int n = 200000;
  std::vector<RunningStats> shards(16);
  RunningStats serial;
  double sum = 0.0;
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Deterministic indicator stream with rate ~p.
    double x = (i * 2654435761u % 1000000) < p * 1000000 ? 1.0 : 0.0;
    xs.push_back(x);
    serial.Add(x);
    shards[i % 16].Add(x);
    sum += x;
  }
  RunningStats merged;
  for (auto& s : shards) merged.Merge(s);
  double mean = sum / n;
  double sq = 0.0;
  for (double x : xs) sq += (x - mean) * (x - mean);
  EXPECT_NEAR(merged.mean(), mean, 1e-15);
  EXPECT_NEAR(serial.mean(), mean, 1e-15);
  EXPECT_NEAR(merged.variance(), sq / n, 1e-10 * (sq / n));
  EXPECT_EQ(merged.count(), serial.count());
}

TEST(RunningStatsMergeTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  b.Add(2.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.mean(), 3.0);
  RunningStats c;
  a.Merge(c);  // No-op.
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.mean(), 3.0);
}

// ---------------------------------------------------------------------------
// Engine determinism across num_threads
// ---------------------------------------------------------------------------

class ParallelEngineTest : public ::testing::Test {
 protected:
  SamplingOptions ThreadedOptions(size_t threads) {
    SamplingOptions opts;
    opts.num_threads = threads;
    return opts;
  }

  Database db_{777};
};

TEST_F(ParallelEngineTest, FixedSamplesExpectationBitIdentical) {
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) > Expr::Constant(0.5));
  std::vector<ExpectationResult> results;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.fixed_samples = 1000;
    opts.use_numeric_integration = false;  // Force the sampling path.
    SamplingEngine engine = db_.MakeEngine(opts);
    results.push_back(engine.Expectation(Expr::Var(x), c, true).value());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].expectation, results[0].expectation);
    EXPECT_EQ(results[i].probability, results[0].probability);
    EXPECT_EQ(results[i].samples_used, results[0].samples_used);
    EXPECT_EQ(results[i].attempts, results[0].attempts);
  }
  EXPECT_EQ(results[0].samples_used, 1000u);
}

TEST_F(ParallelEngineTest, RejectionPathBitIdentical) {
  // Two-variable atom: no CDF window, plain rejection over joint draws.
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  VarRef y = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) > Expr::Var(y));
  std::vector<ExpectationResult> results;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.fixed_samples = 2000;
    SamplingEngine engine = db_.MakeEngine(opts);
    results.push_back(engine.Expectation(Expr::Var(x), c, true).value());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].expectation, results[0].expectation);
    EXPECT_EQ(results[i].probability, results[0].probability);
    EXPECT_EQ(results[i].attempts, results[0].attempts);
  }
  EXPECT_NEAR(results[0].expectation, 1.0 / std::sqrt(M_PI), 0.05);
}

TEST_F(ParallelEngineTest, AdaptiveModeBitIdenticalAtChunkBarriers) {
  // Adaptive stopping is evaluated at chunk barriers only, so serial and
  // parallel runs accept the same index set — results are bit-identical,
  // not merely statistically consistent.
  VarRef x = db_.CreateVariable("Normal", {50.0, 4.0}).value();
  std::vector<ExpectationResult> results;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.use_numeric_integration = false;
    opts.delta = 0.005;
    SamplingEngine engine = db_.MakeEngine(opts);
    results.push_back(
        engine.Expectation(Expr::Var(x), Condition::True(), false).value());
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].expectation, results[0].expectation);
    EXPECT_EQ(results[i].samples_used, results[0].samples_used);
  }
  EXPECT_GT(results[0].samples_used, 0u);
  EXPECT_NEAR(results[0].expectation, 50.0, 1.0);
}

TEST_F(ParallelEngineTest, ConfidenceBitIdentical) {
  // A two-variable atom sends the group through the Monte Carlo
  // probability estimator (no exact CDF, no free acceptance rate).
  VarRef x = db_.CreateVariable("Uniform", {0.0, 1.0}).value();
  VarRef y = db_.CreateVariable("Uniform", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) + Expr::Var(y) < Expr::Constant(1.0));
  std::vector<double> probs;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.fixed_samples = 4000;
    SamplingEngine engine = db_.MakeEngine(opts);
    probs.push_back(engine.Confidence(c).value().probability);
  }
  EXPECT_EQ(probs[1], probs[0]);
  EXPECT_EQ(probs[2], probs[0]);
  EXPECT_NEAR(probs[0], 0.5, 0.05);
}

TEST_F(ParallelEngineTest, SampleConditionalBitIdentical) {
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  Condition c;
  c.AddAtom(Expr::Var(x) > Expr::Constant(0.25));
  c.AddAtom(Expr::Var(x) < Expr::Constant(2.0));
  std::vector<std::vector<double>> draws;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    SamplingEngine engine = db_.MakeEngine(opts);
    draws.push_back(
        engine.SampleConditional(Expr::Var(x), c, 999).value());
  }
  ASSERT_EQ(draws[0].size(), 999u);
  EXPECT_EQ(draws[1], draws[0]);
  EXPECT_EQ(draws[2], draws[0]);
  for (double v : draws[0]) {
    EXPECT_GT(v, 0.25);
    EXPECT_LT(v, 2.0);
  }
}

TEST_F(ParallelEngineTest, JointConfidenceMonteCarloBitIdentical) {
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  std::vector<Condition> disjuncts;
  for (int k = 0; k < 8; ++k) {
    disjuncts.emplace_back(Expr::Var(x) >
                           Expr::Constant(static_cast<double>(k)));
  }
  std::vector<double> probs;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.fixed_samples = 20000;
    SamplingEngine engine = db_.MakeEngine(opts);
    probs.push_back(engine.JointConfidence(disjuncts).value());
  }
  EXPECT_EQ(probs[1], probs[0]);
  EXPECT_EQ(probs[2], probs[0]);
  EXPECT_NEAR(probs[0], 0.5, 0.02);
}

TEST_F(ParallelEngineTest, MetropolisPathDeterministicAcrossThreads) {
  // A forced Metropolis switch flips the pilot shard into chain mode;
  // the remaining chunks then run serially on the chain, so the result
  // is identical for every num_threads by construction. (Threshold and
  // check window are forced low to make the switch seed-robust.)
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  VarRef y = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(4.0));
  std::vector<ExpectationResult> results;
  for (size_t threads : {1, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.fixed_samples = 1500;
    opts.metropolis_threshold = 0.5;
    opts.metropolis_check_after = 64;
    SamplingEngine engine = db_.MakeEngine(opts);
    results.push_back(
        engine.Expectation(Expr::Var(x) - Expr::Var(y), c, false).value());
  }
  EXPECT_EQ(results[1].expectation, results[0].expectation);
  EXPECT_EQ(results[0].samples_used, 1500u);
  // E[X - Y | X - Y > 4] for N(0, sqrt(2)) is ~4.45.
  EXPECT_GT(results[0].expectation, 4.0);
  EXPECT_LT(results[0].expectation, 5.0);
}

TEST_F(ParallelEngineTest, BudgetCollapseYieldsNanAtEveryThreadCount) {
  // Effectively unsatisfiable without Metropolis: every shard's budget
  // collapses, the first collapse cancels the rest, and the visible
  // result is the paper's (NAN, 0) regardless of num_threads.
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  VarRef y = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(14.0));
  for (size_t threads : {1, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.fixed_samples = 300;  // Several chunks.
    opts.use_metropolis = false;
    opts.max_total_attempts = 200000;
    SamplingEngine engine = db_.MakeEngine(opts);
    auto r = engine.Expectation(Expr::Var(x), c, true).value();
    EXPECT_TRUE(std::isnan(r.expectation)) << "threads=" << threads;
    EXPECT_EQ(r.probability, 0.0);
  }
}

TEST_F(ParallelEngineTest, ParallelAggregatesMatchSerial) {
  // ExpectedMax over probabilistic cells goes through the
  // world-instantiated path, whose world space is sharded too.
  CTable table(Schema({"v"}));
  for (int i = 0; i < 20; ++i) {
    VarRef x =
        db_.CreateVariable("Normal", {static_cast<double>(i), 1.0}).value();
    ASSERT_TRUE(table.Append({Expr::Var(x)}).ok());
  }
  std::vector<double> maxima;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    SamplingEngine engine = db_.MakeEngine(opts);
    AggregateEvaluator agg(&engine);
    maxima.push_back(agg.ExpectedMax(table, "v").value());
  }
  EXPECT_EQ(maxima[1], maxima[0]);
  EXPECT_EQ(maxima[2], maxima[0]);
  EXPECT_NEAR(maxima[0], 19.0, 1.0);
}

// ---------------------------------------------------------------------------
// Plan-shape cache
// ---------------------------------------------------------------------------

TEST_F(ParallelEngineTest, PlanCacheHitsAcrossRowsSharingAShape) {
  SamplingOptions opts;
  opts.fixed_samples = 64;
  SamplingEngine engine = db_.MakeEngine(opts);
  // 10 "rows": same condition shape (fresh Normal > constant), distinct
  // variables and constants.
  for (int i = 0; i < 10; ++i) {
    VarRef x =
        db_.CreateVariable("Normal", {0.0, 1.0 + 0.1 * i}).value();
    Condition c(Expr::Var(x) > Expr::Constant(0.1 * i));
    ASSERT_TRUE(engine.Expectation(Expr::Var(x), c, true).ok());
  }
  PlanCache::Stats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 9u);
}

TEST_F(ParallelEngineTest, PlanCacheDistinguishesShapes) {
  SamplingOptions opts;
  opts.fixed_samples = 64;
  SamplingEngine engine = db_.MakeEngine(opts);
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  VarRef u = db_.CreateVariable("Uniform", {0.0, 1.0}).value();
  // Different atom operator, different class, different variable-sharing
  // pattern: all distinct shapes.
  ASSERT_TRUE(engine
                  .Expectation(Expr::Var(x),
                               Condition(Expr::Var(x) > Expr::Constant(0.0)),
                               false)
                  .ok());
  ASSERT_TRUE(engine
                  .Expectation(Expr::Var(x),
                               Condition(Expr::Var(x) < Expr::Constant(0.0)),
                               false)
                  .ok());
  ASSERT_TRUE(engine
                  .Expectation(Expr::Var(u),
                               Condition(Expr::Var(u) > Expr::Constant(0.5)),
                               false)
                  .ok());
  ASSERT_TRUE(engine
                  .Expectation(Expr::Var(x),
                               Condition(Expr::Var(x) > Expr::Var(u)), false)
                  .ok());
  EXPECT_EQ(engine.plan_cache_stats().misses, 4u);
}

TEST_F(ParallelEngineTest, CachedPlansProduceIdenticalResults) {
  VarRef x = db_.CreateVariable("Normal", {1.0, 2.0}).value();
  Condition c(Expr::Var(x) > Expr::Constant(0.5));
  SamplingOptions opts;
  opts.fixed_samples = 500;
  opts.use_numeric_integration = false;
  // Fresh engine (cold cache) vs an engine that planned this shape
  // before: same bits.
  SamplingEngine cold = db_.MakeEngine(opts);
  SamplingEngine warm = db_.MakeEngine(opts);
  auto warmup = warm.Expectation(Expr::Var(x), c, true).value();
  auto from_cold = cold.Expectation(Expr::Var(x), c, true).value();
  auto from_warm = warm.Expectation(Expr::Var(x), c, true).value();
  EXPECT_EQ(from_warm.expectation, from_cold.expectation);
  EXPECT_EQ(from_warm.probability, from_cold.probability);
  EXPECT_EQ(warmup.expectation, from_warm.expectation);
  EXPECT_GE(warm.plan_cache_stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// Per-plan memoization micro-test (one computation per plan, not per
// attempt)
// ---------------------------------------------------------------------------

/// A finite discrete law (values 0..3, uniform) that counts every
/// capability call, so tests can prove the engine touches the
/// distribution O(domain) times per *plan* instead of per attempt.
class CountingDist : public Distribution {
 public:
  static std::atomic<size_t> pdf_calls, cdf_calls, inverse_cdf_calls,
      domain_calls;

  static void ResetCounters() {
    pdf_calls = cdf_calls = inverse_cdf_calls = domain_calls = 0;
  }

  const std::string& name() const override {
    static const std::string n = "CountingUniform4";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kDiscrete; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kFiniteDomain;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    return p.empty() ? Status::OK()
                     : Status::InvalidArgument(name() + ": no parameters");
  }
  Status GenerateJoint(const std::vector<double>&, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, std::floor(stream.NextUniform() * 4.0));
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>&, uint32_t,
                       double x) const override {
    ++pdf_calls;
    return (x == std::floor(x) && x >= 0.0 && x <= 3.0) ? 0.25 : 0.0;
  }
  StatusOr<double> Cdf(const std::vector<double>&, uint32_t,
                       double x) const override {
    ++cdf_calls;
    if (x < 0.0) return 0.0;
    return std::min(1.0, (std::floor(x) + 1.0) * 0.25);
  }
  StatusOr<double> InverseCdf(const std::vector<double>&, uint32_t,
                              double q) const override {
    ++inverse_cdf_calls;
    return std::min(3.0, std::max(0.0, std::ceil(q * 4.0) - 1.0));
  }
  StatusOr<std::vector<double>> DomainValues(
      const std::vector<double>&) const override {
    ++domain_calls;
    return std::vector<double>{0.0, 1.0, 2.0, 3.0};
  }
  StatusOr<size_t> DomainSize(const std::vector<double>&) const override {
    return 4;
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval(0.0, 3.0);
  }
};

std::atomic<size_t> CountingDist::pdf_calls{0};
std::atomic<size_t> CountingDist::cdf_calls{0};
std::atomic<size_t> CountingDist::inverse_cdf_calls{0};
std::atomic<size_t> CountingDist::domain_calls{0};

TEST_F(ParallelEngineTest, QuantileTableBuiltOncePerPlanNotPerAttempt) {
  auto status =
      DistributionRegistry::Global().Register(std::make_unique<CountingDist>());
  // AlreadyExists is fine when multiple tests in this binary register it.
  ASSERT_TRUE(status.ok() || status.code() == StatusCode::kAlreadyExists);

  VarRef x = db_.CreateVariable("CountingUniform4", {}).value();
  Condition c(Expr::Var(x) >= Expr::Constant(1.0));

  SamplingOptions opts;
  opts.fixed_samples = 512;
  opts.use_numeric_integration = false;  // Force the sampling loop.
  SamplingEngine engine = db_.MakeEngine(opts);

  CountingDist::ResetCounters();
  auto r = engine.Expectation(Expr::Var(x), c, true).value();
  EXPECT_EQ(r.samples_used, 512u);
  EXPECT_NEAR(r.expectation, 2.0, 0.1);
  EXPECT_EQ(r.probability, 0.75);

  // One plan: the quantile table costs O(domain) Pdf calls and the
  // window/exact-probability evaluation a handful of Cdf calls — none of
  // them scale with the 512 samples, and the per-attempt InverseCdf is
  // gone entirely.
  EXPECT_EQ(CountingDist::inverse_cdf_calls.load(), 0u);
  EXPECT_LE(CountingDist::pdf_calls.load(), 16u);
  EXPECT_LE(CountingDist::cdf_calls.load(), 8u);
  EXPECT_LE(CountingDist::domain_calls.load(), 2u);
}

// ---------------------------------------------------------------------------
// num_threads plumbing: Database defaults and SQL SET
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Nesting-aware scheduling: the parallelism budget
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ChunkBodiesRunUnderUnitBudget) {
  // Outside any parallel region the budget is unlimited; inside a chunk
  // body (on workers and on the participating caller alike) it is 1, so
  // nested parallel regions degrade to inline serial execution.
  EXPECT_GT(ThreadPool::ParallelismBudget(), 1u);
  std::vector<size_t> budgets(6, 0);
  ThreadPool::For(budgets.size(), 4, [&](size_t i) {
    budgets[i] = ThreadPool::ParallelismBudget();
  });
  for (size_t b : budgets) EXPECT_EQ(b, 1u);
}

TEST(ThreadPoolTest, BudgetScopeShrinksAndRestores) {
  size_t outer = ThreadPool::ParallelismBudget();
  {
    ThreadPool::BudgetScope cap(3);
    EXPECT_EQ(ThreadPool::ParallelismBudget(), 3u);
    // A nested scope can only shrink the cap, never re-expand it.
    ThreadPool::BudgetScope wider(8);
    EXPECT_EQ(ThreadPool::ParallelismBudget(), 3u);
  }
  EXPECT_EQ(ThreadPool::ParallelismBudget(), outer);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineUnderUnitBudget) {
  // A nested loop inside a chunk body must execute on the same thread
  // (inline), not fan back into the pool.
  std::atomic<bool> all_inline{true};
  ThreadPool::For(4, 4, [&](size_t) {
    std::thread::id outer_id = std::this_thread::get_id();
    ThreadPool::For(4, 4, [&](size_t) {
      if (std::this_thread::get_id() != outer_id) all_inline = false;
    });
  });
  EXPECT_TRUE(all_inline.load());
}

TEST(ThreadPoolTest, DegradedLoopKeepsBudgetForItsBody) {
  // A single-chunk (or single-worker) loop is not a parallel region: its
  // body keeps the inherited budget so deeper calls may still fan out.
  size_t seen = 0;
  ThreadPool::For(1, 8, [&](size_t) { seen = ThreadPool::ParallelismBudget(); });
  EXPECT_GT(seen, 1u);
}

// ---------------------------------------------------------------------------
// Fractional budget splits and join-stealing
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, FractionalSplitDividesBudgetAmongBodies) {
  // A 2-chunk region on an 8-wide request uses 2 executors and hands each
  // body max(1, 8 / 2) = 4 — the leftover width, so nested regions can
  // still fan out instead of degrading inline.
  std::vector<size_t> budgets(2, 0);
  ThreadPool::For(2, 8,
                  [&](size_t i) { budgets[i] = ThreadPool::ParallelismBudget(); });
  EXPECT_EQ(budgets[0], 4u);
  EXPECT_EQ(budgets[1], 4u);
}

TEST(ThreadPoolTest, NestedRegionsFanOutAndCountNestedTasks) {
  // Private pool so the counters are isolated from other tests' use of
  // Shared(). Outer 2-chunk region at width 8 → bodies run at budget 4 →
  // each body's inner 4-chunk loop is a real region again (4 executors,
  // 3 helper tasks). nested_tasks counts *executed* helpers of regions
  // launched under a finite budget; every submitted helper runs (at
  // worst as a no-op drain) before its region's join returns, so the
  // total is exact once the outer loop returns.
  ThreadPool pool(4);
  std::atomic<size_t> leaves{0};
  pool.ParallelFor(2, 8, [&](size_t) {
    EXPECT_EQ(ThreadPool::ParallelismBudget(), 4u);
    pool.ParallelFor(4, 8, [&](size_t) { ++leaves; });
  });
  EXPECT_EQ(leaves.load(), 8u);
  const ThreadPool::SchedulerStats stats = pool.scheduler_stats();
  EXPECT_EQ(stats.regions, 3u);       // One outer + two nested.
  EXPECT_EQ(stats.nested_tasks, 6u);  // 3 helpers per nested region.
  EXPECT_EQ(stats.inline_regions, 0u);
}

TEST(ThreadPoolTest, JoinStealingCompletesRegionWithAllWorkersBlocked) {
  // The pool's only worker is parked inside a long task, so the region's
  // helper task can never run on a worker. The join must not block on it:
  // the joining caller steals the queued helper and runs it itself,
  // which is exactly the mechanism that makes nested fan-out
  // deadlock-free.
  ThreadPool pool(1);
  std::atomic<bool> blocked{false};
  std::atomic<bool> release{false};
  pool.Submit([&] {
    blocked = true;
    while (!release) std::this_thread::yield();
  });
  while (!blocked) std::this_thread::yield();
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(4, 2, [&](size_t i) { ++hits[i]; });
  release = true;
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  const ThreadPool::SchedulerStats stats = pool.scheduler_stats();
  EXPECT_GE(stats.joiner_tasks, 1u);
  EXPECT_GE(stats.steals, 1u);
}

TEST(ThreadPoolTest, NestedSaturationIsDeadlockFree) {
  // Three levels of nesting on a 3-worker pool: more live regions than
  // workers, every thread repeatedly inside some join. Completing at all
  // is the assertion — before join-stealing this shape could wedge with
  // all threads waiting on queued tasks nobody was left to run.
  ThreadPool pool(3);
  std::atomic<size_t> leaves{0};
  pool.ParallelFor(3, 16, [&](size_t) {
    pool.ParallelFor(3, 16, [&](size_t) {
      pool.ParallelFor(2, 16, [&](size_t) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 18u);
}

// ---------------------------------------------------------------------------
// Row-parallel batch evaluation (rows as the outer parallel axis)
// ---------------------------------------------------------------------------

class RowParallelTest : public ::testing::Test {
 protected:
  /// A c-table of `rows` rows: cell Normal(i, 1) under condition
  /// (cell > i - 1), plus one unsatisfiable row in the middle.
  CTable MakeBatch(int rows) {
    CTable t(Schema({"v"}));
    for (int i = 0; i < rows; ++i) {
      VarRef x =
          db_.CreateVariable("Normal", {static_cast<double>(i), 1.0}).value();
      Condition c(Expr::Var(x) > Expr::Constant(static_cast<double>(i) - 1.0));
      PIP_CHECK(t.Append({Expr::Var(x)}, c).ok());
      if (i == rows / 2) {
        VarRef u = db_.CreateVariable("Uniform", {0.0, 1.0}).value();
        PIP_CHECK(t.Append({Expr::Constant(1.0)},
                           Condition(Expr::Var(u) > Expr::Constant(2.0)))
                      .ok());
      }
    }
    return t;
  }

  SamplingOptions ThreadedOptions(size_t threads) {
    SamplingOptions opts;
    opts.num_threads = threads;
    opts.fixed_samples = 400;
    opts.use_numeric_integration = false;  // Force per-row sampling.
    return opts;
  }

  Database db_{4242};
};

TEST_F(RowParallelTest, AnalyzeBitIdenticalAcrossThreads) {
  CTable t = MakeBatch(12);
  AnalyzeSpec spec;
  spec.expectation_columns = {"v"};
  spec.with_confidence = true;
  std::vector<std::string> outputs;
  for (size_t threads : {1, 2, 8}) {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(threads));
    Table out = Analyze(t, engine, spec).value();
    EXPECT_EQ(out.num_rows(), 12u);  // The unsatisfiable row is dropped.
    outputs.push_back(out.ToString());
  }
  EXPECT_EQ(outputs[1], outputs[0]);
  EXPECT_EQ(outputs[2], outputs[0]);
}

TEST_F(RowParallelTest, ExpectedSumAndGroupedAggregatesBitIdentical) {
  CTable t = MakeBatch(10);
  std::vector<double> sums, counts, avgs;
  for (size_t threads : {1, 2, 8}) {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(threads));
    AggregateEvaluator agg(&engine);
    sums.push_back(agg.ExpectedSum(t, "v").value());
    counts.push_back(agg.ExpectedCount(t).value());
    avgs.push_back(agg.ExpectedAvg(t, "v").value());
  }
  for (size_t i = 1; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i], sums[0]);
    EXPECT_EQ(counts[i], counts[0]);
    EXPECT_EQ(avgs[i], avgs[0]);
  }
  // Exact-CDF row confidences: 10 satisfiable rows at P[N(i,1) > i-1]
  // each, plus the unsatisfiable row at 0.
  EXPECT_NEAR(counts[0], 10.0 * (1.0 - NormalCdf(-1.0)), 1e-6);
}

TEST_F(RowParallelTest, AconfGroupsBitIdenticalAcrossThreads) {
  // Several groups of bag-encoded disjuncts; the group loop is the
  // parallel axis.
  CTable t(Schema({"tag"}));
  for (int g = 0; g < 4; ++g) {
    for (int d = 0; d < 3; ++d) {
      VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
      Condition c(Expr::Var(x) >
                  Expr::Constant(static_cast<double>(g) - 1.0 + 0.3 * d));
      PIP_CHECK(
          t.Append({Expr::Constant(static_cast<double>(g))}, c).ok());
    }
  }
  std::vector<std::string> outputs;
  for (size_t threads : {1, 2, 8}) {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(threads));
    outputs.push_back(AnalyzeJointConfidence(t, engine).value().ToString());
  }
  EXPECT_EQ(outputs[1], outputs[0]);
  EXPECT_EQ(outputs[2], outputs[0]);
}

TEST_F(RowParallelTest, MiddleRowErrorSurfacesSameStatusAsSerial) {
  // Row 2's expectation target is a string constant: EvalDouble fails
  // inside the engine. The parallel batch must surface the same error
  // (the first in ROW order) as the serial loop, not whichever row
  // happened to fail first on the clock.
  CTable t(Schema({"v"}));
  for (int i = 0; i < 5; ++i) {
    if (i == 2) {
      PIP_CHECK(t.Append({Expr::String("oops")}).ok());
    } else {
      VarRef x = db_.CreateVariable("Normal", {1.0, 1.0}).value();
      PIP_CHECK(t.Append({Expr::Var(x)}).ok());
    }
  }
  AnalyzeSpec spec;
  spec.expectation_columns = {"v"};
  Status serial, parallel;
  {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(1));
    serial = Analyze(t, engine, spec).status();
  }
  {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(8));
    parallel = Analyze(t, engine, spec).status();
  }
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(parallel.code(), serial.code());
  EXPECT_EQ(parallel.message(), serial.message());
}

TEST_F(RowParallelTest, ProbabilisticPassthroughErrorMatchesSerial) {
  CTable t(Schema({"tag", "v"}));
  for (int i = 0; i < 5; ++i) {
    VarRef x = db_.CreateVariable("Normal", {1.0, 1.0}).value();
    ExprPtr tag = i == 2 ? Expr::Var(x) : Expr::Constant(static_cast<double>(i));
    PIP_CHECK(t.Append({tag, Expr::Var(x)}).ok());
  }
  AnalyzeSpec spec;
  spec.passthrough_columns = {"tag"};
  spec.expectation_columns = {"v"};
  Status serial, parallel;
  {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(1));
    serial = Analyze(t, engine, spec).status();
  }
  {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(8));
    parallel = Analyze(t, engine, spec).status();
  }
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(parallel.code(), serial.code());
  EXPECT_EQ(parallel.message(), serial.message());
}

TEST_F(RowParallelTest, AnalyzeNestedShapesBitIdenticalToSerial) {
  // The fractional-split scheduler's few-rows-many-threads shapes: with
  // rows < threads each row body gets a multi-executor budget share and
  // the sample axis fans out *inside* a row region. Every shape must
  // still be byte-identical to the serial row loop.
  for (int rows : {1, 2, 4}) {
    CTable t = MakeBatch(rows);
    AnalyzeSpec spec;
    spec.expectation_columns = {"v"};
    spec.with_confidence = true;
    std::string serial;
    for (size_t threads : {1, 3, 8}) {
      SamplingEngine engine = db_.MakeEngine(ThreadedOptions(threads));
      Table out = Analyze(t, engine, spec).value();
      if (threads == 1) {
        serial = out.ToString();
      } else {
        EXPECT_EQ(out.ToString(), serial)
            << "rows=" << rows << " threads=" << threads;
      }
    }
  }
}

TEST_F(RowParallelTest, AconfBitIdenticalAtOddThreadCounts) {
  // Odd thread counts make the fractional split uneven (budget / R
  // truncates); the fold must stay byte-identical regardless.
  CTable t(Schema({"tag"}));
  for (int g = 0; g < 5; ++g) {
    for (int d = 0; d < 2; ++d) {
      VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
      Condition c(Expr::Var(x) >
                  Expr::Constant(static_cast<double>(g) - 1.0 + 0.4 * d));
      PIP_CHECK(t.Append({Expr::Constant(static_cast<double>(g))}, c).ok());
    }
  }
  std::string serial;
  for (size_t threads : {1, 3, 5}) {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(threads));
    Table out = AnalyzeJointConfidence(t, engine).value();
    if (threads == 1) {
      serial = out.ToString();
    } else {
      EXPECT_EQ(out.ToString(), serial) << "threads=" << threads;
    }
  }
}

TEST_F(RowParallelTest, GroupedAggregateNestedShapesBitIdenticalToSerial) {
  // Grouped aggregation nests three levels deep (groups → rows →
  // samples); run it across the nested-shape grid, including group
  // counts below the thread count.
  for (int groups : {1, 2, 4}) {
    CTable t(Schema({"g", "v"}));
    for (int g = 0; g < groups; ++g) {
      for (int d = 0; d < 2; ++d) {
        VarRef x = db_.CreateVariable(
                          "Normal", {static_cast<double>(g + d), 1.0})
                       .value();
        Condition c(Expr::Var(x) > Expr::Constant(static_cast<double>(g) - 1.0));
        PIP_CHECK(t.Append({Expr::Constant(static_cast<double>(g)),
                            Expr::Var(x)},
                           c)
                      .ok());
      }
    }
    std::string serial;
    for (size_t threads : {1, 3, 8}) {
      SamplingEngine engine = db_.MakeEngine(ThreadedOptions(threads));
      AggregateEvaluator agg(&engine);
      Table out = GroupedAggregate(agg, t, {"g"}, "v",
                                   GroupAggregate::kExpectedSum)
                      .value();
      if (threads == 1) {
        serial = out.ToString();
      } else {
        EXPECT_EQ(out.ToString(), serial)
            << "groups=" << groups << " threads=" << threads;
      }
    }
  }
}

TEST_F(RowParallelTest, AnalyzeBitIdenticalAtOddThreadCounts) {
  CTable t = MakeBatch(7);
  AnalyzeSpec spec;
  spec.expectation_columns = {"v"};
  spec.with_confidence = true;
  std::string serial;
  for (size_t threads : {1, 3, 5}) {
    SamplingEngine engine = db_.MakeEngine(ThreadedOptions(threads));
    Table out = Analyze(t, engine, spec).value();
    if (threads == 1) {
      serial = out.ToString();
    } else {
      EXPECT_EQ(out.ToString(), serial) << "threads=" << threads;
    }
  }
}

TEST_F(RowParallelTest, LaterRowObservesCancellationAfterEarlierFailure) {
  // The mid-body cancellation protocol: a row dispatched before an
  // earlier row recorded its failure sees the flag flip live through its
  // RowBatchContext and can bail out mid-body. The surfaced error is
  // still the first in ROW order — the cancelled row's own status is
  // shadowed, exactly as if a serial loop had never reached it.
  std::atomic<bool> row1_started{false};
  std::atomic<bool> observed_cancel{false};
  Status result = ParallelRows(
      2, 2, [&](size_t row, const RowBatchContext& ctx) -> Status {
        if (row == 1) {
          EXPECT_FALSE(ctx.Cancelled());  // No failure recorded yet.
          row1_started = true;
          while (!ctx.Cancelled()) std::this_thread::yield();
          observed_cancel = true;
          return Status::Cancelled("row 1 bailed early");
        }
        // Row 0 waits until row 1 is live mid-body, then fails: the
        // cancellation below is necessarily a *mid-body* abort, not the
        // pre-dispatch skip.
        while (!row1_started) std::this_thread::yield();
        return Status::InvalidArgument("row 0 failed");
      });
  EXPECT_EQ(result.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.message(), "row 0 failed");
  EXPECT_TRUE(observed_cancel.load());
}

TEST_F(RowParallelTest, SerialRowLoopNeverReportsCancellation) {
  // The serial path hands bodies a default RowBatchContext that is never
  // cancelled: a serial loop stops at the first error by itself, so row
  // bodies after a failure simply don't run.
  std::vector<size_t> ran;
  Status result = ParallelRows(
      3, 1, [&](size_t row, const RowBatchContext& ctx) -> Status {
        EXPECT_FALSE(ctx.Cancelled());
        ran.push_back(row);
        if (row == 1) return Status::InvalidArgument("row 1 failed");
        return Status::OK();
      });
  EXPECT_EQ(result.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ran, (std::vector<size_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// The shared pilot/chain/budget chunk driver (Expectation and
// SampleConditional collapse semantics stay unchanged)
// ---------------------------------------------------------------------------

TEST_F(ParallelEngineTest, SampleConditionalTruncationBitIdentical) {
  // Effectively unsatisfiable two-variable condition with Metropolis
  // off: shard budgets collapse and the result is a truncated prefix.
  // The shared chunk driver must keep that prefix bit-identical across
  // thread counts (the serial engine's collapse behavior).
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  VarRef y = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(14.0));
  std::vector<std::vector<double>> draws;
  for (size_t threads : {1, 2, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.use_metropolis = false;
    opts.max_total_attempts = 200000;
    SamplingEngine engine = db_.MakeEngine(opts);
    draws.push_back(
        engine.SampleConditional(Expr::Var(x) - Expr::Var(y), c, 300).value());
  }
  EXPECT_LT(draws[0].size(), 300u);
  EXPECT_EQ(draws[1], draws[0]);
  EXPECT_EQ(draws[2], draws[0]);
}

TEST_F(ParallelEngineTest, SampleConditionalMetropolisChainUnchanged) {
  // A forced Metropolis switch sends SampleConditional down the shared
  // driver's chain-serial path; every thread count follows the same
  // chain, so the draws are identical by construction.
  VarRef x = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  VarRef y = db_.CreateVariable("Normal", {0.0, 1.0}).value();
  Condition c(Expr::Var(x) - Expr::Var(y) > Expr::Constant(4.0));
  std::vector<std::vector<double>> draws;
  for (size_t threads : {1, 8}) {
    SamplingOptions opts = ThreadedOptions(threads);
    opts.metropolis_threshold = 0.5;
    opts.metropolis_check_after = 64;
    SamplingEngine engine = db_.MakeEngine(opts);
    draws.push_back(
        engine.SampleConditional(Expr::Var(x) - Expr::Var(y), c, 500).value());
  }
  ASSERT_EQ(draws[0].size(), 500u);
  EXPECT_EQ(draws[1], draws[0]);
  for (double v : draws[0]) EXPECT_GT(v, 4.0);
}

TEST(OptionsPlumbingTest, DatabaseDefaultsReachSessions) {
  Database db(123);
  SamplingOptions defaults;
  defaults.num_threads = 3;
  defaults.fixed_samples = 77;
  db.set_default_options(defaults);
  EXPECT_EQ(db.MakeEngine().options().num_threads, 3u);

  sql::Session session(&db);
  EXPECT_EQ(session.mutable_options()->num_threads, 3u);
  EXPECT_EQ(session.mutable_options()->fixed_samples, 77u);
}

TEST(OptionsPlumbingTest, SqlSetUpdatesSessionOptions) {
  Database db(123);
  sql::Session session(&db);
  EXPECT_TRUE(session.Execute("SET num_threads = 4").ok());
  EXPECT_EQ(session.mutable_options()->num_threads, 4u);
  EXPECT_TRUE(session.Execute("SET FIXED_SAMPLES = 256;").ok());
  EXPECT_EQ(session.mutable_options()->fixed_samples, 256u);
  EXPECT_TRUE(session.Execute("SET delta = 0.1").ok());
  EXPECT_EQ(session.mutable_options()->delta, 0.1);

  EXPECT_FALSE(session.Execute("SET nonsense = 1").ok());
  EXPECT_FALSE(session.Execute("SET num_threads = 1.5").ok());
  EXPECT_FALSE(session.Execute("SET num_threads = -2").ok());
  EXPECT_FALSE(session.Execute("SET epsilon = 1.5").ok());
  EXPECT_FALSE(session.Execute("SET epsilon = 0").ok());
  EXPECT_FALSE(session.Execute("SET delta = -0.1").ok());
}

TEST(OptionsPlumbingTest, SqlSetThreadsKeepsQueriesDeterministic) {
  // The same query under different SET NUM_THREADS values returns the
  // same numbers — the knob is a throughput knob, not a semantics knob.
  auto run = [](size_t threads) {
    Database db(2026);
    sql::Session session(&db);
    PIP_CHECK(session.Execute("CREATE TABLE t (v)").ok());
    PIP_CHECK(session.Execute("INSERT INTO t VALUES (Normal(10, 2)), "
                              "(Normal(20, 3)), (Normal(30, 4))")
                  .ok());
    PIP_CHECK(session
                  .Execute("SET num_threads = " + std::to_string(threads))
                  .ok());
    PIP_CHECK(session.Execute("SET fixed_samples = 500").ok());
    auto r = session.Execute("SELECT expected_sum(v) FROM t WHERE v > 12");
    PIP_CHECK(r.ok());
    return r.table.ToString();
  };
  std::string serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

}  // namespace
}  // namespace pip
