#include "src/common/interval.h"

#include <gtest/gtest.h>

namespace pip {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IntervalTest, DefaultIsAll) {
  Interval i;
  EXPECT_TRUE(i.IsAll());
  EXPECT_FALSE(i.IsEmpty());
  EXPECT_FALSE(i.IsBounded());
  EXPECT_TRUE(i.Contains(0.0));
  EXPECT_TRUE(i.Contains(1e300));
}

TEST(IntervalTest, EmptyProperties) {
  Interval e = Interval::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.Contains(0.0));
  EXPECT_EQ(e.Width(), 0.0);
}

TEST(IntervalTest, PointAndHalfLines) {
  EXPECT_TRUE(Interval::Point(3.0).Contains(3.0));
  EXPECT_EQ(Interval::Point(3.0).Width(), 0.0);
  EXPECT_TRUE(Interval::AtLeast(2.0).Contains(1e9));
  EXPECT_FALSE(Interval::AtLeast(2.0).Contains(1.9));
  EXPECT_TRUE(Interval::AtMost(2.0).Contains(-1e9));
  EXPECT_FALSE(Interval::AtMost(2.0).Contains(2.1));
}

TEST(IntervalTest, Intersect) {
  Interval a(0, 10), b(5, 20);
  EXPECT_EQ(a.Intersect(b), Interval(5, 10));
  EXPECT_TRUE(Interval(0, 1).Intersect(Interval(2, 3)).IsEmpty());
  EXPECT_EQ(a.Intersect(Interval::All()), a);
  EXPECT_TRUE(a.Intersect(Interval::Empty()).IsEmpty());
}

TEST(IntervalTest, Hull) {
  EXPECT_EQ(Interval(0, 1).Hull(Interval(3, 4)), Interval(0, 4));
  EXPECT_EQ(Interval::Empty().Hull(Interval(1, 2)), Interval(1, 2));
}

TEST(IntervalArithmeticTest, Add) {
  EXPECT_EQ(Add(Interval(1, 2), Interval(10, 20)), Interval(11, 22));
  EXPECT_EQ(Add(Interval::AtLeast(0), Interval::Point(5)),
            Interval::AtLeast(5));
  EXPECT_TRUE(Add(Interval::Empty(), Interval(0, 1)).IsEmpty());
}

TEST(IntervalArithmeticTest, SubAndNeg) {
  EXPECT_EQ(Sub(Interval(5, 7), Interval(1, 2)), Interval(3, 6));
  EXPECT_EQ(Neg(Interval(1, 2)), Interval(-2, -1));
  EXPECT_EQ(Neg(Interval::AtLeast(3)), Interval::AtMost(-3));
}

TEST(IntervalArithmeticTest, MulSigns) {
  EXPECT_EQ(Mul(Interval(2, 3), Interval(4, 5)), Interval(8, 15));
  EXPECT_EQ(Mul(Interval(-3, -2), Interval(4, 5)), Interval(-15, -8));
  EXPECT_EQ(Mul(Interval(-2, 3), Interval(4, 5)), Interval(-10, 15));
  EXPECT_EQ(Mul(Interval(-2, 3), Interval(-5, 4)), Interval(-15, 12));
}

TEST(IntervalArithmeticTest, MulZeroTimesUnboundedWidens) {
  // 0 * inf is indeterminate: result must stay sound (widen to All).
  Interval z(0, 0);
  EXPECT_TRUE(Mul(z, Interval::All()).IsAll());
  EXPECT_TRUE(Mul(Interval(-1, 1), Interval::AtLeast(0)).IsAll());
}

TEST(IntervalArithmeticTest, DivByStrictlyPositive) {
  EXPECT_EQ(Div(Interval(4, 8), Interval(2, 4)), Interval(1, 4));
}

TEST(IntervalArithmeticTest, DivByIntervalContainingZeroWidens) {
  EXPECT_TRUE(Div(Interval(1, 2), Interval(-1, 1)).IsAll());
}

TEST(IntervalArithmeticTest, PowEvenOdd) {
  EXPECT_EQ(Pow(Interval(-2, 3), 2), Interval(0, 9));
  EXPECT_EQ(Pow(Interval(2, 3), 2), Interval(4, 9));
  EXPECT_EQ(Pow(Interval(-2, 3), 3), Interval(-8, 27));
  EXPECT_EQ(Pow(Interval(-3, -2), 2), Interval(4, 9));
  EXPECT_EQ(Pow(Interval(5, 7), 0), Interval::Point(1.0));
}

TEST(IntervalArithmeticTest, SoundnessUnderRandomSampling) {
  // Property: for random intervals and random points inside them, the
  // arithmetic result contains the pointwise result.
  uint64_t state = 42;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / (1ULL << 53) * 20.0 - 10.0;
  };
  for (int trial = 0; trial < 500; ++trial) {
    double a1 = next(), a2 = next(), b1 = next(), b2 = next();
    Interval a(std::min(a1, a2), std::max(a1, a2));
    Interval b(std::min(b1, b2), std::max(b1, b2));
    double x = a.lo + (a.hi - a.lo) * 0.37;
    double y = b.lo + (b.hi - b.lo) * 0.61;
    EXPECT_TRUE(Add(a, b).Contains(x + y));
    EXPECT_TRUE(Sub(a, b).Contains(x - y));
    EXPECT_TRUE(Mul(a, b).Contains(x * y));
    if (!b.Contains(0.0)) EXPECT_TRUE(Div(a, b).Contains(x / y));
    EXPECT_TRUE(Pow(a, 2).Contains(x * x));
    EXPECT_TRUE(Pow(a, 3).Contains(x * x * x));
  }
  (void)kInf;
}

}  // namespace
}  // namespace pip
