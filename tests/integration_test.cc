/// \file integration_test.cc
/// \brief Cross-module integration and property tests.
///
/// Three pillars:
///   1. Possible-world equivalence: for discrete-variable databases the
///      full distribution is enumerable, so symbolic query + expectation
///      operators can be checked *exactly* against brute-force enumeration
///      over all worlds.
///   2. Strategy agreement: the same conditional expectation computed via
///      exact CDF, CDF-window sampling, plain rejection and Metropolis
///      must agree within Monte Carlo tolerance (parameterized sweep
///      across distributions and selectivities).
///   3. Engine cross-validation: PIP and Sample-First answer the same
///      query with statistically consistent results.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/special_math.h"
#include "src/ctable/algebra.h"
#include "src/engine/query.h"
#include "src/samplefirst/sf_ops.h"
#include "src/sampling/aggregates.h"

namespace pip {
namespace {

using CE = ColExpr;

// ---------------------------------------------------------------------------
// 1. Exact possible-world enumeration for finite discrete databases.
// ---------------------------------------------------------------------------

/// Enumerates all worlds of a set of finite discrete variables with their
/// probabilities and folds a callback over them.
void ForEachWorld(
    const VariablePool& pool, const std::vector<VarRef>& vars,
    const std::function<void(const Assignment&, double)>& fn) {
  std::vector<std::vector<double>> domains;
  std::vector<std::vector<double>> masses;
  for (const VarRef& v : vars) {
    const VariableInfo* info = pool.Info(v.var_id).value();
    auto domain = info->dist->DomainValues(info->params).value();
    std::vector<double> mass;
    for (double x : domain) {
      mass.push_back(info->dist->Pdf(info->params, 0, x).value());
    }
    domains.push_back(std::move(domain));
    masses.push_back(std::move(mass));
  }
  std::vector<size_t> cursor(vars.size(), 0);
  while (true) {
    Assignment world;
    double prob = 1.0;
    for (size_t i = 0; i < vars.size(); ++i) {
      world.Set(vars[i], domains[i][cursor[i]]);
      prob *= masses[i][cursor[i]];
    }
    fn(world, prob);
    size_t d = 0;
    while (d < cursor.size()) {
      if (++cursor[d] < domains[d].size()) break;
      cursor[d] = 0;
      ++d;
    }
    if (d == cursor.size()) break;
  }
}

class DiscreteWorldTest : public ::testing::Test {
 protected:
  VariablePool pool_{555};
};

TEST_F(DiscreteWorldTest, ExpectedSumMatchesEnumeration) {
  // Three dice-like variables feeding a conditioned sum.
  VarRef d1 = pool_.Create("DiscreteUniform", {1.0, 6.0}).value();
  VarRef d2 = pool_.Create("DiscreteUniform", {1.0, 6.0}).value();
  VarRef coin = pool_.Create("Bernoulli", {0.3}).value();

  CTable t(Schema({"v"}));
  // Row 1: d1, present when coin = 1.
  PIP_CHECK(t.Append({Expr::Var(d1)},
                     Condition(Expr::Var(coin) == Expr::Constant(1.0)))
                .ok());
  // Row 2: d1 + d2, present when d2 >= 4.
  PIP_CHECK(t.Append({Expr::Var(d1) + Expr::Var(d2)},
                     Condition(Expr::Var(d2) >= Expr::Constant(4.0)))
                .ok());

  // Brute-force: expected sum over all 6*6*2 worlds.
  double exact = 0.0;
  ForEachWorld(pool_, {d1, d2, coin}, [&](const Assignment& w, double p) {
    Table world = t.Instantiate(w).value();
    double sum = 0.0;
    for (const auto& row : world.rows()) sum += row[0].AsDouble().value();
    exact += p * sum;
  });

  SamplingOptions opts;
  opts.fixed_samples = 60000;
  SamplingEngine engine(&pool_, opts);
  AggregateEvaluator agg(&engine);
  EXPECT_NEAR(agg.ExpectedSum(t, "v").value(), exact, 0.03 * exact);
}

TEST_F(DiscreteWorldTest, ConfidenceMatchesEnumeration) {
  VarRef d = pool_.Create("DiscreteUniform", {1.0, 10.0}).value();
  VarRef c = pool_.Create("Categorical", {0.5, 0.3, 0.2}).value();
  Condition cond;
  cond.AddAtom(Expr::Var(d) > Expr::Constant(7.0));
  cond.AddAtom(Expr::Var(c) != Expr::Constant(0.0));

  double exact = 0.0;
  ForEachWorld(pool_, {d, c}, [&](const Assignment& w, double p) {
    if (cond.Eval(w).value()) exact += p;
  });
  // Independent groups, each integrable exactly via CDF/PMF.
  SamplingEngine engine(&pool_);
  auto r = engine.Confidence(cond).value();
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.probability, exact, 1e-9);
}

TEST_F(DiscreteWorldTest, QueryPlusExplosionMatchesEnumeration) {
  // Full pipeline: query over a c-table with a discrete variable, exploded,
  // grouped, aggregated — vs enumeration. All variables live in the
  // database's pool (the engine resolves ids against it).
  Database db(31);
  VarRef quality = db.CreateVariable("Categorical", {0.2, 0.5, 0.3}).value();
  VarRef bonus = db.CreateVariable("DiscreteUniform", {0.0, 3.0}).value();
  CTable items(Schema({"label", "payoff"}));
  PIP_CHECK(items
                .Append({Expr::String("widget"),
                         Expr::Var(quality) * Expr::Constant(10.0) +
                             Expr::Var(bonus)})
                .ok());
  PIP_CHECK(items.Append({Expr::String("gadget"),
                          Expr::Var(bonus) * Expr::Constant(2.0)})
                .ok());
  db.MaterializeView("items", items);

  CTable result = Query::Scan("items")
                      .Where({CE::Column("payoff") > CE::Literal(4.0)})
                      .Execute(db)
                      .value();

  double exact = 0.0;
  ForEachWorld(*db.pool(), {quality, bonus},
               [&](const Assignment& w, double p) {
    Table world = items.Instantiate(w).value();
    for (const auto& row : world.rows()) {
      double payoff = row[1].AsDouble().value();
      if (payoff > 4.0) exact += p * payoff;
    }
  });

  SamplingOptions opts;
  opts.fixed_samples = 80000;
  SamplingEngine engine = db.MakeEngine(opts);
  AggregateEvaluator agg(&engine);
  double measured = agg.ExpectedSum(result, "payoff").value();
  EXPECT_NEAR(measured, exact, 0.03 * exact);
}

// ---------------------------------------------------------------------------
// 2. Strategy agreement across sampling techniques.
// ---------------------------------------------------------------------------

struct StrategyCase {
  const char* dist;
  std::vector<double> params;
  double lo, hi;  // Conditioning interval (quantile-ish range).
};

class StrategyAgreementTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyAgreementTest, AllStrategiesEstimateTheSameConditional) {
  const auto& c = GetParam();
  VariablePool pool(777);
  VarRef x = pool.Create(c.dist, c.params).value();
  Condition cond;
  cond.AddAtom(Expr::Var(x) > Expr::Constant(c.lo));
  cond.AddAtom(Expr::Var(x) < Expr::Constant(c.hi));

  auto run = [&](bool cdf, bool metropolis, uint64_t offset) {
    SamplingOptions opts;
    opts.fixed_samples = 40000;
    opts.use_cdf_sampling = cdf;
    opts.use_exact_cdf = false;  // Force actual sampling of the target.
    opts.use_metropolis = metropolis;
    opts.metropolis_threshold = metropolis ? 0.0 : 1.1;  // Force on/off.
    opts.metropolis_check_after = 64;
    opts.sample_offset = offset;
    SamplingEngine engine(&pool, opts);
    auto r = engine.Expectation(Expr::Var(x), cond, false);
    PIP_CHECK(r.ok());
    return r.value().expectation;
  };

  double via_window = run(true, false, 0);
  double via_rejection = run(false, false, 1u << 20);
  double via_metropolis = run(false, true, 2u << 20);

  // Monte Carlo agreement within a generous band scaled to the interval.
  double scale = std::max(1.0, std::fabs(via_window));
  EXPECT_NEAR(via_rejection, via_window, 0.04 * scale) << c.dist;
  EXPECT_NEAR(via_metropolis, via_window, 0.06 * scale) << c.dist;
}

INSTANTIATE_TEST_SUITE_P(
    Laws, StrategyAgreementTest,
    ::testing::Values(StrategyCase{"Normal", {0.0, 1.0}, 0.5, 2.0},
                      StrategyCase{"Normal", {10.0, 3.0}, 11.0, 14.0},
                      StrategyCase{"Exponential", {0.5}, 1.0, 5.0},
                      StrategyCase{"Gamma", {3.0, 2.0}, 4.0, 12.0},
                      StrategyCase{"Lognormal", {0.0, 0.5}, 1.0, 2.5},
                      StrategyCase{"Uniform", {0.0, 10.0}, 2.0, 4.0}));

/// Exact CDF integration agrees with the closed form across distributions
/// and selectivities (parameterized sweep of the Fig. 8 machinery).
class ExactTailTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ExactTailTest, NormalTailProbabilityExact) {
  auto [mu, quantile] = GetParam();
  VariablePool pool(888);
  VarRef x = pool.Create("Normal", {mu, 2.0}).value();
  double threshold = mu + 2.0 * NormalQuantile(quantile);
  SamplingEngine engine(&pool);
  auto r = engine.Confidence(Condition(Expr::Var(x) > Expr::Constant(threshold)))
               .value();
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.probability, 1.0 - quantile, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactTailTest,
    ::testing::Combine(::testing::Values(-5.0, 0.0, 100.0),
                       ::testing::Values(0.5, 0.9, 0.99, 0.999, 0.999999)));

// ---------------------------------------------------------------------------
// 3. Failure injection: a distribution whose Generate fails.
// ---------------------------------------------------------------------------

class FailingDistribution : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "FailingDist";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  Status ValidateParams(const std::vector<double>&) const override {
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>&, const SampleContext&,
                       std::vector<double>*) const override {
    return Status::Internal("injected generator failure");
  }
};

TEST(FailureInjectionTest, GeneratorErrorsPropagateAsStatus) {
  static bool registered = [] {
    PIP_CHECK(DistributionRegistry::Global()
                  .Register(std::make_unique<FailingDistribution>())
                  .ok());
    return true;
  }();
  (void)registered;
  VariablePool pool(1);
  VarRef x = pool.Create("FailingDist", {}).value();
  SamplingOptions opts;
  opts.fixed_samples = 10;
  SamplingEngine engine(&pool, opts);
  auto r = engine.Expectation(Expr::Var(x), Condition::True(), false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, EvalTypeErrorsPropagate) {
  // A string-typed cell reaching arithmetic is a TypeMismatch, not a crash.
  VariablePool pool(2);
  VarRef x = pool.Create("Normal", {0.0, 1.0}).value();
  ExprPtr bad = Expr::Add(Expr::String("oops"), Expr::Var(x));
  SamplingOptions opts;
  opts.fixed_samples = 4;
  SamplingEngine engine(&pool, opts);
  auto r = engine.Expectation(bad, Condition::True(), false);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

// ---------------------------------------------------------------------------
// 4. PIP vs Sample-First cross-validation on a shared query.
// ---------------------------------------------------------------------------

TEST(EngineCrossValidationTest, SelectiveSumAgreesAcrossEngines) {
  // Model: value ~ Normal(50, 10) per item, kept when value > 55.
  const size_t kItems = 20;
  // PIP side.
  VariablePool pool(4321);
  CTable ct(Schema({"v"}));
  for (size_t i = 0; i < kItems; ++i) {
    VarRef x = pool.Create("Normal", {50.0, 10.0}).value();
    PIP_CHECK(ct.Append({Expr::Var(x)},
                        Condition(Expr::Var(x) > Expr::Constant(55.0)))
                  .ok());
  }
  SamplingOptions opts;
  opts.fixed_samples = 20000;
  SamplingEngine engine(&pool, opts);
  AggregateEvaluator agg(&engine);
  double pip_sum = agg.ExpectedSum(ct, "v").value();

  // Sample-First side.
  Table params(Schema({"mu", "sigma"}));
  for (size_t i = 0; i < kItems; ++i) {
    PIP_CHECK(params.Append({Value(50.0), Value(10.0)}).ok());
  }
  auto base = samplefirst::SFTable::FromTable(params, 40000);
  auto sf = samplefirst::ParametrizeColumn(base, "v", "Normal",
                                           {"mu", "sigma"}, 9)
                .value();
  auto filtered =
      samplefirst::Filter(sf, ColPredicate{CE::Column("v") >
                                           CE::Literal(55.0)})
          .value();
  double sf_sum = samplefirst::MeanOverWorlds(
      samplefirst::PerWorldSums(filtered, "v").value());

  // Closed form: N * E[X * 1{X>55}] = N * (mu*Q + sigma*phi) at z=0.5.
  double z = 0.5;
  double exact =
      kItems * (50.0 * (1.0 - NormalCdf(z)) + 10.0 * NormalPdf(z));
  EXPECT_NEAR(pip_sum, exact, 0.02 * exact);
  EXPECT_NEAR(sf_sum, exact, 0.02 * exact);
}

}  // namespace
}  // namespace pip
