#include <gtest/gtest.h>

#include <cmath>

#include "src/common/running_stats.h"
#include "src/dist/distribution.h"
#include "src/dist/variable_pool.h"

namespace pip {
namespace {

const Distribution* Lookup(const std::string& name) {
  auto d = DistributionRegistry::Global().Lookup(name);
  PIP_CHECK(d.ok());
  return d.value();
}

TEST(RegistryTest, BuiltinsPresent) {
  for (const char* name :
       {"Normal", "Uniform", "Exponential", "Poisson", "Bernoulli",
        "DiscreteUniform", "Categorical", "Gamma", "Lognormal", "MVNormal",
        "Beta", "StudentT"}) {
    EXPECT_TRUE(DistributionRegistry::Global().Lookup(name).ok()) << name;
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_EQ(DistributionRegistry::Global().Lookup("Zeta").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  DistributionRegistry local;
  RegisterBuiltinDistributions(&local);
  class Dummy : public Distribution {
   public:
    const std::string& name() const override {
      static const std::string n = "Normal";
      return n;
    }
    DomainKind domain() const override { return DomainKind::kContinuous; }
    Status ValidateParams(const std::vector<double>&) const override {
      return Status::OK();
    }
    Status GenerateJoint(const std::vector<double>&, const SampleContext&,
                         std::vector<double>* out) const override {
      out->assign(1, 0.0);
      return Status::OK();
    }
  };
  EXPECT_EQ(local.Register(std::make_unique<Dummy>()).code(),
            StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------------------
// Parameter validation.
// ---------------------------------------------------------------------------

struct BadParamsCase {
  const char* dist;
  std::vector<double> params;
};

class ParamValidationTest : public ::testing::TestWithParam<BadParamsCase> {};

TEST_P(ParamValidationTest, Rejected) {
  const auto& c = GetParam();
  EXPECT_FALSE(Lookup(c.dist)->ValidateParams(c.params).ok())
      << c.dist;
}

INSTANTIATE_TEST_SUITE_P(
    BadParams, ParamValidationTest,
    ::testing::Values(
        BadParamsCase{"Normal", {0.0}},              // Missing sigma.
        BadParamsCase{"Normal", {0.0, 0.0}},         // Zero sigma.
        BadParamsCase{"Normal", {0.0, -1.0}},        // Negative sigma.
        BadParamsCase{"Uniform", {1.0, 1.0}},        // Empty interval.
        BadParamsCase{"Uniform", {2.0, 1.0}},        // Reversed.
        BadParamsCase{"Exponential", {0.0}},         // Zero rate.
        BadParamsCase{"Exponential", {-2.0}},        // Negative rate.
        BadParamsCase{"Poisson", {0.0}},             // Zero lambda.
        BadParamsCase{"Bernoulli", {1.5}},           // p > 1.
        BadParamsCase{"Bernoulli", {-0.1}},          // p < 0.
        BadParamsCase{"DiscreteUniform", {0.5, 2.0}},// Non-integer lo.
        BadParamsCase{"DiscreteUniform", {3.0, 1.0}},// Reversed.
        BadParamsCase{"Categorical", {0.5, 0.4}},    // Doesn't sum to 1.
        BadParamsCase{"Categorical", {}},            // Empty.
        BadParamsCase{"Gamma", {0.0, 1.0}},          // Zero shape.
        BadParamsCase{"Lognormal", {0.0, 0.0}},      // Zero sigma.
        BadParamsCase{"Beta", {0.0, 1.0}},          // Zero alpha.
        BadParamsCase{"StudentT", {0.0}},           // Zero nu.
        BadParamsCase{"MVNormal", {2.0, 0.0, 0.0, 1.0, 2.0, 2.0, 1.0}}
        // Covariance [[1,2],[2,1]] is not PSD.
        ));

// ---------------------------------------------------------------------------
// CDF/InverseCDF/PDF coherence, parameterized across distributions.
// ---------------------------------------------------------------------------

struct DistCase {
  const char* dist;
  std::vector<double> params;
  double mean;
  double variance;
};

class UnivariateLawTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(UnivariateLawTest, SampleMomentsMatchDeclaredMoments) {
  const auto& c = GetParam();
  const Distribution* d = Lookup(c.dist);
  ASSERT_TRUE(d->ValidateParams(c.params).ok());
  RunningStats stats;
  std::vector<double> out;
  for (uint64_t i = 0; i < 60000; ++i) {
    SampleContext ctx{/*seed=*/42, /*var_id=*/7, /*sample_index=*/i, 0};
    ASSERT_TRUE(d->GenerateJoint(c.params, ctx, &out).ok());
    stats.Add(out[0]);
  }
  double tol_mean = 4.0 * std::sqrt(c.variance / 60000.0) + 1e-9;
  EXPECT_NEAR(stats.mean(), c.mean, tol_mean) << c.dist;
  EXPECT_NEAR(stats.variance(), c.variance, 0.1 * c.variance + 1e-6)
      << c.dist;
  EXPECT_NEAR(d->Mean(c.params, 0).value(), c.mean, 1e-9);
  EXPECT_NEAR(d->Variance(c.params, 0).value(), c.variance, 1e-9);
}

TEST_P(UnivariateLawTest, InverseCdfRoundTrips) {
  const auto& c = GetParam();
  const Distribution* d = Lookup(c.dist);
  if (!d->HasInverseCdf() || !d->HasCdf()) GTEST_SKIP();
  for (double p = 0.05; p < 1.0; p += 0.05) {
    double x = d->InverseCdf(c.params, 0, p).value();
    double back = d->Cdf(c.params, 0, x).value();
    if (d->domain() == DomainKind::kContinuous) {
      EXPECT_NEAR(back, p, 1e-7) << c.dist << " p=" << p;
    } else {
      // Discrete: InverseCdf returns the smallest k with CDF(k) >= p.
      EXPECT_GE(back + 1e-12, p) << c.dist << " p=" << p;
      double below = d->Cdf(c.params, 0, x - 1.0).value();
      EXPECT_LT(below, p) << c.dist << " p=" << p;
    }
  }
}

TEST_P(UnivariateLawTest, CdfMonotoneWithinSupport) {
  const auto& c = GetParam();
  const Distribution* d = Lookup(c.dist);
  if (!d->HasCdf()) GTEST_SKIP();
  double lo = c.mean - 4.0 * std::sqrt(c.variance) - 1.0;
  double hi = c.mean + 4.0 * std::sqrt(c.variance) + 1.0;
  double prev = -1e-12;
  for (double x = lo; x <= hi; x += (hi - lo) / 200.0) {
    double f = d->Cdf(c.params, 0, x).value();
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_P(UnivariateLawTest, PdfIntegratesToCdfIncrement) {
  const auto& c = GetParam();
  const Distribution* d = Lookup(c.dist);
  if (!d->HasPdf() || !d->HasCdf()) GTEST_SKIP();
  if (d->domain() != DomainKind::kContinuous) GTEST_SKIP();
  // Trapezoidal integral of the PDF over +/-1 sd around the mean matches
  // the CDF difference.
  double sd = std::sqrt(c.variance);
  double a = c.mean - sd, b = c.mean + sd;
  const int n = 4000;
  double integral = 0.0;
  double h = (b - a) / n;
  for (int i = 0; i <= n; ++i) {
    double w = (i == 0 || i == n) ? 0.5 : 1.0;
    integral += w * d->Pdf(c.params, 0, a + i * h).value();
  }
  integral *= h;
  double expected =
      d->Cdf(c.params, 0, b).value() - d->Cdf(c.params, 0, a).value();
  EXPECT_NEAR(integral, expected, 1e-4) << c.dist;
}

TEST_P(UnivariateLawTest, GenerateIsReplayDeterministic) {
  const auto& c = GetParam();
  const Distribution* d = Lookup(c.dist);
  std::vector<double> a, b;
  SampleContext ctx{/*seed=*/5, /*var_id=*/3, /*sample_index=*/11, /*attempt=*/2};
  ASSERT_TRUE(d->GenerateJoint(c.params, ctx, &a).ok());
  ASSERT_TRUE(d->GenerateJoint(c.params, ctx, &b).ok());
  EXPECT_EQ(a, b);
  if (d->domain() == DomainKind::kContinuous) {
    // Different sample index: fresh draw (discrete laws can collide).
    SampleContext other{/*seed=*/5, /*var_id=*/3, /*sample_index=*/12, 2};
    ASSERT_TRUE(d->GenerateJoint(c.params, other, &b).ok());
    EXPECT_NE(a, b) << c.dist;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Laws, UnivariateLawTest,
    ::testing::Values(
        DistCase{"Normal", {5.0, 2.0}, 5.0, 4.0},
        DistCase{"Normal", {-3.0, 0.5}, -3.0, 0.25},
        DistCase{"Uniform", {2.0, 6.0}, 4.0, 16.0 / 12.0},
        DistCase{"Exponential", {0.5}, 2.0, 4.0},
        DistCase{"Poisson", {4.0}, 4.0, 4.0},
        DistCase{"Poisson", {0.3}, 0.3, 0.3},
        DistCase{"Bernoulli", {0.3}, 0.3, 0.21},
        DistCase{"DiscreteUniform", {1.0, 6.0}, 3.5, 35.0 / 12.0},
        DistCase{"Categorical", {0.2, 0.5, 0.3}, 1.1, 0.49},
        DistCase{"Gamma", {3.0, 2.0}, 6.0, 12.0},
        DistCase{"Lognormal", {0.0, 0.5},
                 std::exp(0.125), (std::exp(0.25) - 1.0) * std::exp(0.25)},
        DistCase{"Beta", {2.0, 5.0}, 2.0 / 7.0, 10.0 / (49.0 * 8.0)},
        DistCase{"Beta", {0.5, 0.5}, 0.5, 0.125},
        DistCase{"StudentT", {6.0}, 0.0, 1.5}));

// ---------------------------------------------------------------------------
// Distribution-specific edge cases.
// ---------------------------------------------------------------------------

TEST(PoissonDistTest, InverseCdfAtExtremes) {
  const Distribution* d = Lookup("Poisson");
  std::vector<double> params = {3.0};
  EXPECT_EQ(d->InverseCdf(params, 0, 0.0).value(), 0.0);
  EXPECT_TRUE(std::isinf(d->InverseCdf(params, 0, 1.0).value()));
  // Large lambda exercises the normal-approximation starting point.
  std::vector<double> big = {400.0};
  double median = d->InverseCdf(big, 0, 0.5).value();
  EXPECT_NEAR(median, 400.0, 2.0);
}

TEST(PoissonDistTest, PmfZeroOffLattice) {
  const Distribution* d = Lookup("Poisson");
  EXPECT_EQ(d->Pdf({3.0}, 0, 2.5).value(), 0.0);
  EXPECT_EQ(d->Pdf({3.0}, 0, -1.0).value(), 0.0);
}

TEST(BernoulliDistTest, ExtremeProbabilities) {
  const Distribution* d = Lookup("Bernoulli");
  std::vector<double> out;
  for (uint64_t i = 0; i < 100; ++i) {
    SampleContext ctx{1, 1, i, 0};
    ASSERT_TRUE(d->GenerateJoint({0.0}, ctx, &out).ok());
    EXPECT_EQ(out[0], 0.0);
    ASSERT_TRUE(d->GenerateJoint({1.0}, ctx, &out).ok());
    EXPECT_EQ(out[0], 1.0);
  }
}

TEST(CategoricalDistTest, DomainValuesSkipZeroProbability) {
  const Distribution* d = Lookup("Categorical");
  auto vals = d->DomainValues({0.5, 0.0, 0.5}).value();
  EXPECT_EQ(vals, (std::vector<double>{0.0, 2.0}));
}

TEST(DiscreteUniformDistTest, DomainValues) {
  const Distribution* d = Lookup("DiscreteUniform");
  auto vals = d->DomainValues({2.0, 5.0}).value();
  EXPECT_EQ(vals, (std::vector<double>{2.0, 3.0, 4.0, 5.0}));
}

TEST(MVNormalDistTest, CorrelationStructure) {
  // 2-d with correlation 0.8: sample correlation should match.
  std::vector<double> params = {2.0, 1.0, -1.0, 1.0, 0.8, 0.8, 1.0};
  const Distribution* d = Lookup("MVNormal");
  ASSERT_TRUE(d->ValidateParams(params).ok());
  EXPECT_EQ(d->NumComponents(params), 2u);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const int n = 60000;
  std::vector<double> out;
  for (uint64_t i = 0; i < n; ++i) {
    SampleContext ctx{9, 2, i, 0};
    ASSERT_TRUE(d->GenerateJoint(params, ctx, &out).ok());
    sx += out[0];
    sy += out[1];
    sxx += out[0] * out[0];
    syy += out[1] * out[1];
    sxy += out[0] * out[1];
  }
  double mx = sx / n, my = sy / n;
  double vx = sxx / n - mx * mx, vy = syy / n - my * my;
  double cov = sxy / n - mx * my;
  EXPECT_NEAR(mx, 1.0, 0.03);
  EXPECT_NEAR(my, -1.0, 0.03);
  EXPECT_NEAR(cov / std::sqrt(vx * vy), 0.8, 0.02);
}

TEST(MVNormalDistTest, MarginalCdfUsesDiagonal) {
  std::vector<double> params = {2.0, 0.0, 10.0, 4.0, 0.0, 0.0, 9.0};
  const Distribution* d = Lookup("MVNormal");
  EXPECT_NEAR(d->Cdf(params, 0, 0.0).value(), 0.5, 1e-12);
  EXPECT_NEAR(d->Cdf(params, 1, 10.0).value(), 0.5, 1e-12);
  EXPECT_EQ(d->Variance(params, 0).value(), 4.0);
  EXPECT_EQ(d->Variance(params, 1).value(), 9.0);
  EXPECT_FALSE(d->HasInverseCdf());  // Would break joint correlations.
}

// ---------------------------------------------------------------------------
// VariablePool.
// ---------------------------------------------------------------------------

TEST(VariablePoolTest, CreateAndResolve) {
  VariablePool pool(123);
  VarRef x = pool.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool.Create("Uniform", {0.0, 2.0}).value();
  EXPECT_NE(x.var_id, y.var_id);
  EXPECT_EQ(pool.Mean(x).value(), 0.0);
  EXPECT_EQ(pool.Mean(y).value(), 1.0);
  EXPECT_TRUE(pool.HasCdf(x));
  EXPECT_TRUE(pool.HasInverseCdf(y));
}

TEST(VariablePoolTest, CreateRejectsBadParams) {
  VariablePool pool;
  EXPECT_FALSE(pool.Create("Normal", {0.0, -1.0}).ok());
  EXPECT_FALSE(pool.Create("NoSuchDist", {}).ok());
}

TEST(VariablePoolTest, MultivariateComponents) {
  VariablePool pool;
  VarRef base =
      pool.Create("MVNormal", {2.0, 0.0, 0.0, 1.0, 0.5, 0.5, 1.0}).value();
  VarRef second = pool.Component(base, 1).value();
  EXPECT_EQ(second.component, 1u);
  EXPECT_FALSE(pool.Component(base, 2).ok());
}

TEST(VariablePoolTest, GenerateConsistencyAcrossCalls) {
  VariablePool pool(7);
  VarRef x = pool.Create("Normal", {0.0, 1.0}).value();
  double a = pool.Generate(x, 5).value();
  double b = pool.Generate(x, 5).value();
  double c = pool.Generate(x, 6).value();
  EXPECT_EQ(a, b);  // Same sample index: consistent value (c-table replay).
  EXPECT_NE(a, c);
}

TEST(VariablePoolTest, SeedChangesDraws) {
  VariablePool p1(1), p2(2);
  VarRef x1 = p1.Create("Normal", {0.0, 1.0}).value();
  VarRef x2 = p2.Create("Normal", {0.0, 1.0}).value();
  EXPECT_NE(p1.Generate(x1, 0).value(), p2.Generate(x2, 0).value());
}

TEST(VariablePoolTest, IsFiniteDiscrete) {
  VariablePool pool;
  VarRef b = pool.Create("Bernoulli", {0.5}).value();
  VarRef n = pool.Create("Normal", {0.0, 1.0}).value();
  VarRef p = pool.Create("Poisson", {2.0}).value();
  EXPECT_TRUE(pool.IsFiniteDiscrete(b.var_id));
  EXPECT_FALSE(pool.IsFiniteDiscrete(n.var_id));
  EXPECT_FALSE(pool.IsFiniteDiscrete(p.var_id));  // Infinite domain.
}

}  // namespace
}  // namespace pip
