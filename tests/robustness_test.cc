/// \file robustness_test.cc
/// \brief Failure-handling layer: statement deadlines (ERR TIMEOUT),
/// disconnect cancellation, and overload shedding (ERR OVERLOADED).
///
/// The load-bearing invariant is the determinism contract: deadlines and
/// cancellation decide *whether* a statement finishes, never *what* it
/// computes. A statement that completes under its deadline must be
/// byte-identical to one with no deadline at all, and a session that
/// just timed out must produce bit-identical results on its next
/// statement.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/sql/session.h"

namespace pip {
namespace {

using server::AdmissionGate;
using server::Client;
using server::Server;
using server::ServerOptions;
using server::WireResponse;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Statement deadlines (embedded sessions).
// ---------------------------------------------------------------------------

TEST(StatementDeadlineTest, TimeoutSurfacesAndSessionStaysUsable) {
  Database db(31);
  sql::Session session(&db);
  ASSERT_TRUE(session.Execute("CREATE TABLE t (u, v)").ok());
  ASSERT_TRUE(session
                  .Execute("INSERT INTO t VALUES "
                           "(Normal(10, 2), Uniform(0, 4)), "
                           "(Uniform(1, 5), Normal(20, 3))")
                  .ok());
  ASSERT_TRUE(session.Execute("SET FIXED_SAMPLES = 500").ok());
  // A two-variable product defeats the engine's closed-form integration,
  // and the index is off, so every execution genuinely samples — which is
  // what gives the deadline something to interrupt.
  ASSERT_TRUE(session.Execute("SET INDEX_ENABLED = 0").ok());
  const std::string query = "SELECT expected_sum(u * v) AS s FROM t";
  sql::SqlResult baseline = session.Execute(query);
  ASSERT_TRUE(baseline.ok()) << baseline.ToString();

  // A deadline far below the statement's runtime: the sampling loops hit
  // a chunk barrier within microseconds of the deadline passing, so the
  // statement must fail well within 2x the deadline.
  ASSERT_TRUE(session.Execute("SET STATEMENT_TIMEOUT_MS = 500").ok());
  ASSERT_TRUE(session.Execute("SET FIXED_SAMPLES = 200000000").ok());
  auto start = std::chrono::steady_clock::now();
  sql::SqlResult timed_out = session.Execute(query);
  double elapsed = ElapsedMs(start);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.error.code, sql::WireErrorCode::kTimeout);
  EXPECT_NE(timed_out.error.message.find("STATEMENT_TIMEOUT_MS"),
            std::string::npos);
  EXPECT_LT(elapsed, 1000.0);  // Within 2x the 500 ms deadline.

  // The session stays usable and bit-identical: the abandoned statement
  // left no residue in the session or the shared pool/caches.
  ASSERT_TRUE(session.Execute("SET FIXED_SAMPLES = 500").ok());
  ASSERT_TRUE(session.Execute("SET STATEMENT_TIMEOUT_MS = 0").ok());
  sql::SqlResult after = session.Execute(query);
  ASSERT_TRUE(after.ok()) << after.ToString();
  EXPECT_EQ(after.ToString(), baseline.ToString());

  sql::SqlResult fresh_result = [&] {
    sql::Session fresh(&db);
    EXPECT_TRUE(fresh.Execute("SET FIXED_SAMPLES = 500").ok());
    EXPECT_TRUE(fresh.Execute("SET INDEX_ENABLED = 0").ok());
    return fresh.Execute(query);
  }();
  EXPECT_EQ(fresh_result.ToString(), baseline.ToString());
}

TEST(StatementDeadlineTest, FinishingUnderDeadlineIsByteIdentical) {
  // A generous deadline must be invisible: the deadline composes into
  // cancel_check, which is excluded from the options fingerprint and
  // never alters chunk schedules — at any thread count.
  for (size_t threads : {size_t{1}, size_t{8}}) {
    Database db(1234);
    sql::Session setup(&db);
    ASSERT_TRUE(setup.Execute("CREATE TABLE m (label, u, v)").ok());
    ASSERT_TRUE(
        setup
            .Execute("INSERT INTO m VALUES "
                     "('a', Normal(10, 2), Uniform(0, 4)), "
                     "('b', Normal(20, 3), Uniform(1, 2)), "
                     "('c', Uniform(0, 50), Normal(5, 1)), "
                     "('d', Exponential(0.1), Uniform(3, 9))")
            .ok());
    const std::string knobs =
        "SET NUM_THREADS = " + std::to_string(threads);
    sql::Session plain(&db);
    ASSERT_TRUE(plain.Execute(knobs).ok());
    ASSERT_TRUE(plain.Execute("SET FIXED_SAMPLES = 3000").ok());
    ASSERT_TRUE(plain.Execute("SET INDEX_ENABLED = 0").ok());
    sql::Session deadlined(&db);
    ASSERT_TRUE(deadlined.Execute(knobs).ok());
    ASSERT_TRUE(deadlined.Execute("SET FIXED_SAMPLES = 3000").ok());
    ASSERT_TRUE(deadlined.Execute("SET INDEX_ENABLED = 0").ok());
    ASSERT_TRUE(
        deadlined.Execute("SET STATEMENT_TIMEOUT_MS = 600000").ok());
    for (const char* query :
         {"SELECT expected_sum(u * v) AS s FROM m",
          "SELECT label, expectation(u * v), conf() FROM m WHERE v > 2",
          "SELECT * FROM m"}) {
      sql::SqlResult want = plain.Execute(query);
      ASSERT_TRUE(want.ok()) << want.ToString();
      sql::SqlResult got = deadlined.Execute(query);
      ASSERT_TRUE(got.ok()) << got.ToString();
      EXPECT_EQ(got.ToString(), want.ToString())
          << "threads=" << threads << " query=" << query;
    }
  }
}

// ---------------------------------------------------------------------------
// Admission gate: bounded waits, shedding, shutdown.
// ---------------------------------------------------------------------------

TEST(AdmissionShedTest, TryAcquireForShedsWithDiagnosticsOnTimeout) {
  AdmissionGate gate(2);
  auto held = gate.Acquire(2);
  ASSERT_TRUE(held.ok());

  auto start = std::chrono::steady_clock::now();
  auto shed = gate.TryAcquireFor(1, 50);
  double elapsed = ElapsedMs(start);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  // Diagnostics name the occupancy and the queue depth.
  EXPECT_NE(shed.status().message().find("in-flight weight 2/2"),
            std::string::npos);
  EXPECT_NE(shed.status().message().find("queue depth"), std::string::npos);
  EXPECT_GE(elapsed, 45.0);    // Waited out the admission timeout...
  EXPECT_LT(elapsed, 5000.0);  // ...and not meaningfully longer.

  AdmissionGate::Stats stats = gate.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_weight, 1u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.in_flight_weight, 2u);

  // With capacity free again the same call admits instantly.
  held = AdmissionGate::Ticket();
  auto ok = gate.TryAcquireFor(1, 50);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().wait_us(), 0u);
}

TEST(AdmissionShedTest, ZeroTimeoutShedsImmediately) {
  AdmissionGate gate(1);
  auto held = gate.Acquire();
  ASSERT_TRUE(held.ok());
  auto start = std::chrono::steady_clock::now();
  auto shed = gate.TryAcquireFor(1, 0);
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_LT(ElapsedMs(start), 1000.0);
}

TEST(AdmissionShedTest, CloseFailsPendingAndFutureAcquires) {
  AdmissionGate gate(1);
  auto held = gate.Acquire();
  ASSERT_TRUE(held.ok());

  std::atomic<bool> blocked_started{false};
  Status pending = Status::OK();
  std::thread waiter([&] {
    blocked_started.store(true);
    auto r = gate.Acquire();  // Unbounded wait; only Close can end it.
    pending = r.status();
  });
  while (!blocked_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  gate.Close();
  waiter.join();
  EXPECT_EQ(pending.code(), StatusCode::kCancelled);
  // Future acquires fail too, bounded or not, even with capacity free.
  held = AdmissionGate::Ticket();
  EXPECT_EQ(gate.Acquire().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(gate.TryAcquireFor(1, 10).status().code(),
            StatusCode::kCancelled);
  EXPECT_TRUE(gate.closed());
}

// ---------------------------------------------------------------------------
// Over the wire: TIMEOUT / OVERLOADED / disconnect cancellation.
// ---------------------------------------------------------------------------

/// A protocol connection the test controls at the frame level — so it
/// can send a statement and then vanish without reading the response,
/// which Client's blocking Execute cannot do.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  std::string greeting;
  auto more = server::ReadFrame(fd, &greeting);
  if (!more.ok() || !more.value()) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Round-trips one statement on a raw connection.
bool RawRoundTrip(int fd, const std::string& stmt) {
  if (!server::WriteFrame(fd, stmt).ok()) return false;
  std::string response;
  auto more = server::ReadFrame(fd, &response);
  return more.ok() && more.value();
}

/// Polls the server's admission stats until `pred` holds or ~20 s pass.
template <typename Pred>
bool PollAdmission(Server& srv, Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred(srv.admission_stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(ServerRobustnessTest, TimeoutOverTheWireThenBitIdentical) {
  Database db(909);
  Server srv(&db, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port()).ok());
  auto run = [&](const std::string& stmt) {
    auto r = client.Execute(stmt);
    PIP_CHECK_MSG(r.ok(), r.status().ToString());
    return std::move(r).value();
  };
  ASSERT_TRUE(run("CREATE TABLE t (u, v)").ok());
  ASSERT_TRUE(run("INSERT INTO t VALUES (Normal(10, 2), Uniform(0, 9)), "
                  "(Exponential(0.5), Normal(3, 1))")
                  .ok());
  ASSERT_TRUE(run("SET FIXED_SAMPLES = 500").ok());
  ASSERT_TRUE(run("SET INDEX_ENABLED = 0").ok());
  const std::string query = "SELECT expected_sum(u * v) AS s FROM t";
  WireResponse baseline = run(query);
  ASSERT_TRUE(baseline.ok());

  ASSERT_TRUE(run("SET STATEMENT_TIMEOUT_MS = 500").ok());
  ASSERT_TRUE(run("SET FIXED_SAMPLES = 200000000").ok());
  auto start = std::chrono::steady_clock::now();
  WireResponse timed_out = run(query);
  double elapsed = ElapsedMs(start);
  EXPECT_EQ(timed_out.kind, WireResponse::Kind::kError);
  EXPECT_EQ(timed_out.code, sql::WireErrorCode::kTimeout);
  EXPECT_LT(elapsed, 1000.0);  // ERR TIMEOUT within 2x the deadline.

  // The timed-out statement released its admission weight.
  EXPECT_TRUE(PollAdmission(srv, [](const AdmissionGate::Stats& s) {
    return s.in_flight == 0 && s.in_flight_weight == 0;
  }));

  // Same connection, restored knobs: byte-identical to the baseline.
  ASSERT_TRUE(run("SET FIXED_SAMPLES = 500").ok());
  ASSERT_TRUE(run("SET STATEMENT_TIMEOUT_MS = 0").ok());
  WireResponse after = run(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.rows, baseline.rows);
  srv.Stop();
}

TEST(ServerRobustnessTest, DisconnectMidStatementFreesAdmissionWeight) {
  Database db(55);
  Server srv(&db, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  {
    Client setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", srv.port()).ok());
    ASSERT_TRUE(setup.Execute("CREATE TABLE t (u, v)").value().ok());
    ASSERT_TRUE(setup
                    .Execute("INSERT INTO t VALUES "
                             "(Normal(0, 1), Uniform(0, 9))")
                    .value()
                    .ok());
  }

  int fd = RawConnect(srv.port());
  ASSERT_GE(fd, 0);
  // A statement that would sample for minutes; never read its response.
  ASSERT_TRUE(RawRoundTrip(fd, "SET FIXED_SAMPLES = 200000000"));
  ASSERT_TRUE(
      server::WriteFrame(fd, "SELECT expected_sum(u * v) FROM t").ok());
  ASSERT_TRUE(PollAdmission(
      srv, [](const AdmissionGate::Stats& s) { return s.in_flight == 1; }));

  // Vanish. The peer-liveness probe sees EOF at a chunk barrier, the
  // statement cancels, and the RAII ticket frees the admission weight —
  // orders of magnitude before the statement could have finished.
  ::close(fd);
  EXPECT_TRUE(PollAdmission(srv, [](const AdmissionGate::Stats& s) {
    return s.in_flight == 0 && s.in_flight_weight == 0;
  }));
  srv.Stop();
}

TEST(ServerRobustnessTest, SaturatedGateShedsOverloadedWithinTimeout) {
  Database db(77);
  ServerOptions options;
  options.max_sampling = 1;
  Server srv(&db, options);
  ASSERT_TRUE(srv.Start().ok());
  {
    Client setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", srv.port()).ok());
    ASSERT_TRUE(setup.Execute("CREATE TABLE t (u, v)").value().ok());
    ASSERT_TRUE(setup
                    .Execute("INSERT INTO t VALUES "
                             "(Normal(0, 1), Uniform(0, 9))")
                    .value()
                    .ok());
  }

  // Saturate the window with a long-running statement.
  int holder = RawConnect(srv.port());
  ASSERT_GE(holder, 0);
  ASSERT_TRUE(RawRoundTrip(holder, "SET FIXED_SAMPLES = 200000000"));
  ASSERT_TRUE(
      server::WriteFrame(holder, "SELECT expected_sum(u * v) FROM t").ok());
  ASSERT_TRUE(PollAdmission(
      srv, [](const AdmissionGate::Stats& s) { return s.in_flight == 1; }));

  // A second session with a bounded admission wait is shed, promptly,
  // with the retryable category — not INTERNAL.
  Client shed_client;
  ASSERT_TRUE(shed_client.Connect("127.0.0.1", srv.port()).ok());
  ASSERT_TRUE(
      shed_client.Execute("SET ADMISSION_TIMEOUT_MS = 100").value().ok());
  ASSERT_TRUE(shed_client.Execute("SET FIXED_SAMPLES = 1000").value().ok());
  auto start = std::chrono::steady_clock::now();
  auto shed = shed_client.Execute("SELECT expected_sum(u * v) FROM t");
  double elapsed = ElapsedMs(start);
  ASSERT_TRUE(shed.ok()) << shed.status();  // Transport survived the shed.
  EXPECT_EQ(shed.value().kind, WireResponse::Kind::kError);
  EXPECT_EQ(shed.value().code, sql::WireErrorCode::kOverloaded);
  EXPECT_NE(shed.value().message.find("in-flight weight"), std::string::npos);
  EXPECT_GE(elapsed, 90.0);
  EXPECT_LT(elapsed, 5000.0);
  EXPECT_GE(srv.admission_stats().shed, 1u);

  // Once the holder disconnects and its weight drains, the same client
  // retries successfully — OVERLOADED really is transient.
  ::close(holder);
  ASSERT_TRUE(PollAdmission(srv, [](const AdmissionGate::Stats& s) {
    return s.in_flight == 0 && s.in_flight_weight == 0;
  }));
  auto retried = shed_client.Execute("SELECT expected_sum(u * v) FROM t");
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_TRUE(retried.value().ok()) << retried.value().message;
  srv.Stop();
}

TEST(ServerRobustnessTest, StopWithQueuedAcquirersDoesNotHang) {
  Database db(11);
  ServerOptions options;
  options.max_sampling = 1;
  Server srv(&db, options);
  ASSERT_TRUE(srv.Start().ok());
  {
    Client setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", srv.port()).ok());
    ASSERT_TRUE(setup.Execute("CREATE TABLE t (u, v)").value().ok());
    ASSERT_TRUE(setup
                    .Execute("INSERT INTO t VALUES "
                             "(Normal(0, 1), Uniform(0, 9))")
                    .value()
                    .ok());
  }
  // One statement holds the window; another queues behind it with an
  // unbounded admission wait. Stop() closes the gate first, so the
  // queued statement fails fast instead of deadlocking shutdown.
  int holder = RawConnect(srv.port());
  ASSERT_GE(holder, 0);
  ASSERT_TRUE(RawRoundTrip(holder, "SET FIXED_SAMPLES = 200000000"));
  ASSERT_TRUE(
      server::WriteFrame(holder, "SELECT expected_sum(u * v) FROM t").ok());
  ASSERT_TRUE(PollAdmission(
      srv, [](const AdmissionGate::Stats& s) { return s.in_flight == 1; }));
  int queued = RawConnect(srv.port());
  ASSERT_GE(queued, 0);
  ASSERT_TRUE(RawRoundTrip(queued, "SET FIXED_SAMPLES = 1000"));
  ASSERT_TRUE(
      server::WriteFrame(queued, "SELECT expected_sum(u * v) FROM t").ok());
  ASSERT_TRUE(PollAdmission(
      srv, [](const AdmissionGate::Stats& s) { return s.waiting == 1; }));

  srv.Stop();  // Must return promptly; the test harness is the timeout.
  ::close(holder);
  ::close(queued);
}

}  // namespace
}  // namespace pip
