#include "src/index/expectation_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/engine/database.h"
#include "src/sql/session.h"

namespace pip {
namespace {

// ---------------------------------------------------------------------------
// ExpectationIndex unit tests (no sampling involved).
// ---------------------------------------------------------------------------

IndexedValue MakeValue(double expectation) {
  IndexedValue v;
  v.expectation = expectation;
  v.probability = 0.5;
  v.samples_used = 100;
  return v;
}

TEST(ExpectationIndexTest, MissThenInsertThenHit) {
  ExpectationIndex index;
  EXPECT_FALSE(index.Lookup(1, 1, 1, "k").has_value());
  index.Insert(1, 1, 1, "k", MakeValue(3.5));
  auto hit = index.Lookup(1, 1, 1, "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->expectation, 3.5);
  ExpectationIndex::Stats stats = index.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ExpectationIndexTest, KeysSeparateRowsAndTables) {
  ExpectationIndex index;
  index.Insert(1, 1, 1, "k", MakeValue(1.0));
  EXPECT_FALSE(index.Lookup(1, 1, 2, "k").has_value());   // Other row.
  EXPECT_FALSE(index.Lookup(2, 1, 1, "k").has_value());   // Other table.
  EXPECT_FALSE(index.Lookup(1, 1, 1, "k2").has_value());  // Other query.
}

TEST(ExpectationIndexTest, GenerationBumpPurgesExactlyThatTable) {
  ExpectationIndex index;
  index.Insert(1, 1, 1, "k", MakeValue(1.0));
  index.Insert(1, 1, 2, "k", MakeValue(2.0));
  index.Insert(9, 1, 1, "k", MakeValue(9.0));
  index.BeginGeneration(1, 2);
  // Table 1's old-generation entries are gone; table 9 is untouched.
  EXPECT_FALSE(index.Lookup(1, 1, 1, "k").has_value());
  EXPECT_FALSE(index.Lookup(1, 1, 2, "k").has_value());
  EXPECT_TRUE(index.Lookup(9, 1, 1, "k").has_value());
  EXPECT_EQ(index.stats().invalidations, 2u);
}

TEST(ExpectationIndexTest, StaleBackfillRejected) {
  ExpectationIndex index;
  index.BeginGeneration(1, 3);
  index.Insert(1, 2, 1, "k", MakeValue(1.0));  // Older snapshot's backfill.
  EXPECT_FALSE(index.Lookup(1, 2, 1, "k").has_value());
  EXPECT_EQ(index.stats().stale_rejects, 1u);
  index.Insert(1, 3, 1, "k", MakeValue(2.0));  // Current generation lands.
  EXPECT_TRUE(index.Lookup(1, 3, 1, "k").has_value());
}

TEST(ExpectationIndexTest, LruEvictionUnderTinyBudget) {
  ExpectationIndex index(/*memory_budget=*/1);  // Nothing fits twice over.
  index.Insert(1, 1, 1, "k", MakeValue(1.0));
  index.Insert(1, 1, 2, "k", MakeValue(2.0));
  ExpectationIndex::Stats stats = index.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 1u);
}

TEST(ExpectationIndexTest, LruKeepsRecentlyTouchedEntry) {
  ExpectationIndex index(/*memory_budget=*/0);  // Unlimited while filling.
  index.Insert(1, 1, 1, "old", MakeValue(1.0));
  index.Insert(1, 1, 2, "new", MakeValue(2.0));
  // Touch the older entry, then shrink so only one survives: the
  // untouched one must be the victim.
  EXPECT_TRUE(index.Lookup(1, 1, 1, "old").has_value());
  ExpectationIndex::Stats full = index.stats();
  index.SetMemoryBudget(full.bytes - 1);
  EXPECT_TRUE(index.Lookup(1, 1, 1, "old").has_value());
  EXPECT_FALSE(index.Lookup(1, 1, 2, "new").has_value());
}

TEST(ExpectationIndexTest, ReinsertAttachesSummaryAndKeepsOneEntry) {
  ExpectationIndex index;
  index.Insert(1, 1, 1, "k", MakeValue(1.0));
  IndexedValue with_summary = MakeValue(1.0);
  auto summary = std::make_shared<IndexSummary>();
  summary->moment_count = 10;
  summary->mean = 1.0;
  with_summary.summary = summary;
  index.Insert(1, 1, 1, "k", with_summary);
  auto hit = index.Lookup(1, 1, 1, "k");
  ASSERT_TRUE(hit.has_value());
  ASSERT_NE(hit->summary, nullptr);
  EXPECT_EQ(hit->summary->moment_count, 10u);
  EXPECT_EQ(index.stats().entries, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end through SQL sessions.
// ---------------------------------------------------------------------------

class IndexSqlTest : public ::testing::Test {
 protected:
  IndexSqlTest() : db_(4242), session_(&db_) {
    session_.mutable_options()->fixed_samples = 500;
  }

  sql::SqlResult Run(const std::string& stmt) { return Run(&session_, stmt); }

  static sql::SqlResult Run(sql::Session* session, const std::string& stmt) {
    sql::SqlResult r = session->Execute(stmt);
    PIP_CHECK_MSG(r.ok(), r.ToString());
    return r;
  }

  std::vector<double> AnalyzeRow(sql::Session* session) {
    sql::SqlResult r = Run(
        session, "SELECT tag, expectation(v) AS ev, conf() FROM m WHERE v > 0");
    std::vector<double> values;
    for (size_t i = 0; i < r.table.num_rows(); ++i) {
      values.push_back(r.table.Get(i, "E[ev]").value().double_value());
      values.push_back(r.table.Get(i, "conf").value().double_value());
    }
    return values;
  }

  Database db_;
  sql::Session session_;
};

TEST_F(IndexSqlTest, HitServesBitIdenticalResultsAcrossThreadCounts) {
  Run("CREATE TABLE m (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(10, 1)), ('b', Exponential(0.5))");

  // Cold pass with the index off: the pure sampling answer.
  Run("SET index_enabled = 0");
  std::vector<double> cold = AnalyzeRow(&session_);
  uint64_t hits_before = db_.result_index_stats().hits;

  // Miss + backfill, then hits — all bit-identical to the cold pass,
  // whatever NUM_THREADS is (thread count is excluded from index keys
  // because the engine's draws are schedule-independent).
  Run("SET index_enabled = 1");
  EXPECT_EQ(AnalyzeRow(&session_), cold);  // Backfills.
  for (size_t threads : {1, 2, 8}) {
    Run("SET num_threads = " + std::to_string(threads));
    EXPECT_EQ(AnalyzeRow(&session_), cold) << "num_threads=" << threads;
  }
  EXPECT_GT(db_.result_index_stats().hits, hits_before);
}

TEST_F(IndexSqlTest, AggregatesShareIndexWithAnalyze) {
  Run("CREATE TABLE m (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(10, 1)), ('b', Normal(20, 1))");
  sql::SqlResult cold =
      Run("SELECT expected_sum(v) AS s, expected_avg(v) AS a FROM m");
  ExpectationIndex::Stats after_cold = db_.result_index_stats();
  sql::SqlResult warm =
      Run("SELECT expected_sum(v) AS s, expected_avg(v) AS a FROM m");
  ExpectationIndex::Stats after_warm = db_.result_index_stats();
  EXPECT_EQ(warm.table.row(0)[0].double_value(),
            cold.table.row(0)[0].double_value());
  EXPECT_EQ(warm.table.row(0)[1].double_value(),
            cold.table.row(0)[1].double_value());
  EXPECT_GT(after_warm.hits, after_cold.hits);
  EXPECT_EQ(after_warm.inserts, after_cold.inserts);  // Fully served.
}

TEST_F(IndexSqlTest, InsertInvalidatesExactlyTheWrittenTable) {
  Run("CREATE TABLE m (tag, v)");
  Run("CREATE TABLE other (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(10, 1))");
  Run("INSERT INTO other VALUES ('x', Normal(5, 1))");
  AnalyzeRow(&session_);  // Warm m's entries.
  Run(&session_,
      "SELECT tag, expectation(v) AS ev FROM other");  // Warm other's.
  ExpectationIndex::Stats warm = db_.result_index_stats();
  ASSERT_GT(warm.entries, 0u);

  Run("INSERT INTO m VALUES ('b', Normal(20, 1))");
  ExpectationIndex::Stats after = db_.result_index_stats();
  EXPECT_GT(after.invalidations, warm.invalidations);
  // The untouched table's entries survive the write.
  EXPECT_GT(after.entries, 0u);

  // Post-write answers are fresh (and the new row appears).
  std::vector<double> fresh = AnalyzeRow(&session_);
  EXPECT_EQ(fresh.size(), 4u);
  EXPECT_NEAR(fresh[0], 10.0, 0.5);
  EXPECT_NEAR(fresh[2], 20.0, 0.5);
}

TEST_F(IndexSqlTest, TinyBudgetEvictsThroughSqlKnob) {
  Run("CREATE TABLE m (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(1, 1)), ('b', Normal(2, 1)), "
      "('c', Normal(3, 1)), ('d', Normal(4, 1))");
  Run("SET index_memory_budget = 1");
  AnalyzeRow(&session_);
  ExpectationIndex::Stats stats = db_.result_index_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 1u);
  // Still answers correctly with the index effectively disabled by size.
  EXPECT_NEAR(AnalyzeRow(&session_)[0], 1.0, 0.5);
}

TEST_F(IndexSqlTest, ConcurrentSessionsAgreeAndShareEntries) {
  Run("CREATE TABLE m (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(10, 1)), ('b', Exponential(0.5))");
  constexpr int kSessions = 8;
  std::vector<std::vector<double>> results(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([this, i, &results] {
      sql::Session session(&db_);
      session.mutable_options()->fixed_samples = 500;
      results[i] = AnalyzeRow(&session);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kSessions; ++i) EXPECT_EQ(results[i], results[0]);
  // One session backfilled; later ones hit (exact interleaving varies,
  // but the racing inserts of one entry must collapse, not duplicate).
  ExpectationIndex::Stats stats = db_.result_index_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.entries, 4u);  // 2 rows x (expectation, conf).
}

TEST_F(IndexSqlTest, EagerBuildMaterializesAtInsert) {
  Run("SET index_eager_build = 1");
  Run("CREATE TABLE m (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(10, 1)), ('b', Exponential(0.5))");
  ExpectationIndex::Stats built = db_.result_index_stats();
  EXPECT_GT(built.entries, 0u);
  EXPECT_GT(built.inserts, 0u);

  // The eager sweep mirrors Analyze's conf()-bearing call pattern (the
  // first probabilistic cell carries P[condition]), so this query's
  // expectation targets resolve to the eagerly built entries.
  sql::SqlResult r = Run("SELECT tag, expectation(v) AS ev, conf() FROM m");
  EXPECT_NEAR(r.table.Get(0, "E[ev]").value().double_value(), 10.0, 0.5);
  ExpectationIndex::Stats after = db_.result_index_stats();
  EXPECT_GT(after.hits, built.hits);
}

TEST_F(IndexSqlTest, ShowIndexAndKnobsSurfaces) {
  sql::SqlResult knobs = Run("SHOW KNOBS");
  std::vector<std::string> names;
  for (const Row& row : knobs.table.rows()) {
    names.push_back(row[0].string_value());
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "INDEX_ENABLED"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "INDEX_EAGER_BUILD"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "INDEX_MEMORY_BUDGET"),
            names.end());

  sql::SqlResult index = Run("SHOW INDEX");
  EXPECT_EQ(index.table.schema().columns(),
            (std::vector<std::string>{"metric", "value"}));
  EXPECT_EQ(index.table.num_rows(), 10u);  // incl. insert_failures
  EXPECT_EQ(index.table.row(0)[0].string_value(), "entries");

  // Bad knob values are rejected; good ones round-trip through SHOW.
  EXPECT_FALSE(session_.Execute("SET index_enabled = 2").ok());
  Run("SET index_enabled = 0");
  sql::SqlResult shown = Run("SHOW KNOBS");
  for (const Row& row : shown.table.rows()) {
    if (row[0].string_value() == "INDEX_ENABLED") {
      EXPECT_EQ(row[1].string_value(), "0");
    }
  }
}

TEST_F(IndexSqlTest, DisabledIndexNeverTouchesCounters) {
  Run("CREATE TABLE m (tag, v)");
  Run("INSERT INTO m VALUES ('a', Normal(10, 1))");
  Run("SET index_enabled = 0");
  ExpectationIndex::Stats before = db_.result_index_stats();
  AnalyzeRow(&session_);
  AnalyzeRow(&session_);
  ExpectationIndex::Stats after = db_.result_index_stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.inserts, before.inserts);
}

}  // namespace
}  // namespace pip
