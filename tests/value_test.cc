#include "src/types/value.h"

#include <gtest/gtest.h>

#include "src/types/schema.h"
#include "src/types/table.h"

namespace pip {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, AsDouble) {
  EXPECT_EQ(Value(2.5).AsDouble().value(), 2.5);
  EXPECT_EQ(Value(int64_t{7}).AsDouble().value(), 7.0);
  EXPECT_EQ(Value(true).AsDouble().value(), 1.0);
  EXPECT_FALSE(Value("x").AsDouble().ok());
  EXPECT_FALSE(Value().AsDouble().ok());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.0), Value(int64_t{3}));
}

TEST(ValueTest, CrossTypeEqualValuesHashEqual) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, NullEqualsNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, DifferentTypesOrderByTag) {
  // Null < bool < numerics < string, and the order is total.
  EXPECT_LT(Value::Null(), Value(true));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(SchemaTest, IndexOfAndContains) {
  Schema s({"a", "b", "c"});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.IndexOf("b").value(), 1u);
  EXPECT_FALSE(s.IndexOf("z").ok());
  EXPECT_TRUE(s.Contains("c"));
  EXPECT_FALSE(s.Contains("z"));
}

TEST(SchemaTest, ConcatDisambiguatesCollisions) {
  Schema left({"id", "x"});
  Schema right({"id", "y"});
  Schema joined = left.Concat(right, "r");
  EXPECT_EQ(joined.size(), 4u);
  EXPECT_EQ(joined.name(0), "id");
  EXPECT_EQ(joined.name(2), "r.id");
  EXPECT_EQ(joined.name(3), "y");
}

TEST(SchemaTest, ConcatWithoutPrefixUsesCounter) {
  Schema left({"id"});
  Schema right({"id"});
  Schema joined = left.Concat(right);
  EXPECT_EQ(joined.name(1), "id_2");
}

TEST(SchemaTest, SelectSubset) {
  Schema s({"a", "b", "c"});
  Schema sub = s.Select({2, 0});
  EXPECT_EQ(sub.columns(), (std::vector<std::string>{"c", "a"}));
}

TEST(TableTest, AppendAndAccess) {
  Table t(Schema({"name", "score"}));
  ASSERT_TRUE(t.Append({Value("joe"), Value(1.5)}).ok());
  ASSERT_TRUE(t.Append({Value("bob"), Value(2.5)}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, "name").value(), Value("joe"));
  EXPECT_EQ(t.Get(1, "score").value(), Value(2.5));
}

TEST(TableTest, AppendArityMismatchRejected) {
  Table t(Schema({"a", "b"}));
  EXPECT_EQ(t.Append({Value(1.0)}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, GetOutOfRange) {
  Table t(Schema({"a"}));
  EXPECT_EQ(t.Get(0, "a").status().code(), StatusCode::kOutOfRange);
}

TEST(TableTest, ToStringRendersRows) {
  Table t(Schema({"a"}));
  ASSERT_TRUE(t.Append({Value(int64_t{1})}).ok());
  std::string s = t.ToString();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

}  // namespace
}  // namespace pip
