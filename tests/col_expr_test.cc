#include "src/ctable/col_expr.h"

#include <gtest/gtest.h>

namespace pip {
namespace {

using CE = ColExpr;

class ColExprTest : public ::testing::Test {
 protected:
  Schema schema_{{"a", "b", "name"}};
  std::vector<ExprPtr> cells_{Expr::Constant(2.0), Expr::Var(VarRef{9, 0}),
                              Expr::String("joe")};
};

TEST_F(ColExprTest, ColumnBindsCell) {
  ExprPtr bound = CE::Column("a")->Bind(schema_, cells_).value();
  EXPECT_EQ(bound->value(), Value(2.0));
  ExprPtr var = CE::Column("b")->Bind(schema_, cells_).value();
  EXPECT_EQ(var->op(), ExprOp::kVar);
}

TEST_F(ColExprTest, MissingColumnIsNotFound) {
  EXPECT_EQ(CE::Column("zz")->Bind(schema_, cells_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ColExprTest, LiteralAndEmbed) {
  EXPECT_EQ(CE::Literal(5.5)->Bind(schema_, cells_).value()->value(),
            Value(5.5));
  ExprPtr sym = Expr::Var(VarRef{3, 0});
  EXPECT_EQ(CE::Embed(sym)->Bind(schema_, cells_).value().get(), sym.get());
}

TEST_F(ColExprTest, ArithmeticFoldsThroughBind) {
  // (a * 3) binds to the constant 6 because a is a constant cell.
  ExprPtr bound =
      (CE::Column("a") * CE::Literal(3.0))->Bind(schema_, cells_).value();
  ASSERT_TRUE(bound->IsConstant());
  EXPECT_EQ(bound->value(), Value(6.0));
}

TEST_F(ColExprTest, ArithmeticStaysSymbolicOverVariables) {
  ExprPtr bound =
      (CE::Column("b") + CE::Literal(1.0))->Bind(schema_, cells_).value();
  EXPECT_FALSE(bound->IsConstant());
  Assignment a;
  a.Set(VarRef{9, 0}, 4.0);
  EXPECT_EQ(bound->EvalDouble(a).value(), 5.0);
}

TEST_F(ColExprTest, FunctionsBind) {
  ExprPtr bound = CE::Func(FuncKind::kSqrt, CE::Column("a"))
                      ->Bind(schema_, cells_)
                      .value();
  EXPECT_NEAR(bound->EvalDouble(Assignment()).value(), std::sqrt(2.0), 1e-12);
  ExprPtr two_arg = CE::Func(FuncKind::kMax, CE::Column("a"), CE::Literal(9.0))
                        ->Bind(schema_, cells_)
                        .value();
  EXPECT_EQ(two_arg->EvalDouble(Assignment()).value(), 9.0);
}

TEST_F(ColExprTest, NegationAndDivision) {
  ExprPtr neg = CE::Neg(CE::Column("a"))->Bind(schema_, cells_).value();
  EXPECT_EQ(neg->value(), Value(-2.0));
  ExprPtr div =
      (CE::Literal(10.0) / CE::Column("a"))->Bind(schema_, cells_).value();
  EXPECT_EQ(div->value(), Value(5.0));
}

TEST_F(ColExprTest, CollectColumns) {
  auto expr = (CE::Column("a") + CE::Column("b")) * CE::Column("a");
  std::vector<std::string> cols;
  expr->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b", "a"}));
}

TEST_F(ColExprTest, ToStringShapes) {
  EXPECT_EQ(CE::Column("a")->ToString(), "a");
  EXPECT_EQ((CE::Column("a") + CE::Literal(1.0))->ToString(), "(a + 1)");
  EXPECT_EQ(CE::Func(FuncKind::kExp, CE::Column("a"))->ToString(), "exp(a)");
  EXPECT_EQ(CE::Neg(CE::Column("a"))->ToString(), "-(a)");
}

TEST_F(ColExprTest, ColAtomBindsBothSides) {
  ColAtom atom = CE::Column("a") < CE::Column("b");
  ConstraintAtom bound = atom.Bind(schema_, cells_).value();
  EXPECT_EQ(bound.op(), CmpOp::kLt);
  EXPECT_TRUE(bound.lhs()->IsConstant());
  EXPECT_EQ(bound.rhs()->op(), ExprOp::kVar);
}

TEST_F(ColExprTest, AtomSugarCoversAllOperators) {
  EXPECT_EQ((CE::Column("a") < CE::Literal(1.0)).op, CmpOp::kLt);
  EXPECT_EQ((CE::Column("a") <= CE::Literal(1.0)).op, CmpOp::kLe);
  EXPECT_EQ((CE::Column("a") > CE::Literal(1.0)).op, CmpOp::kGt);
  EXPECT_EQ((CE::Column("a") >= CE::Literal(1.0)).op, CmpOp::kGe);
  EXPECT_EQ((CE::Column("a") == CE::Literal(1.0)).op, CmpOp::kEq);
  EXPECT_EQ((CE::Column("a") != CE::Literal(1.0)).op, CmpOp::kNe);
}

TEST_F(ColExprTest, PredicateBuilderAndToString) {
  ColPredicate pred;
  pred.And(CE::Column("a"), CmpOp::kGt, CE::Literal(0.0))
      .And(CE::Column("name") == CE::Literal("joe"));
  EXPECT_EQ(pred.atoms().size(), 2u);
  EXPECT_EQ(pred.ToString(), "a > 0 AND name = 'joe'");
  EXPECT_EQ(ColPredicate{}.ToString(), "TRUE");
}

}  // namespace
}  // namespace pip
