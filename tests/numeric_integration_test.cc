/// \file numeric_integration_test.cc
/// \brief The exact quadrature path of the expectation operator: when the
/// target depends on one univariate variable with PDF+CDF and its
/// constraints reduce to an interval, E[g(X) | a<=X<=b] is computed by
/// adaptive Simpson (continuous) or an exact lattice sum (discrete) —
/// "sidestepping" sampling entirely (paper §III-A).

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/special_math.h"
#include "src/sampling/expectation.h"

namespace pip {
namespace {

class NumericIntegrationTest : public ::testing::Test {
 protected:
  VariablePool pool_{12321};

  ExpectationResult Expect(const ExprPtr& e, const Condition& c,
                           bool prob = true) {
    SamplingEngine engine(&pool_);
    auto r = engine.Expectation(e, c, prob);
    PIP_CHECK(r.ok());
    return r.value();
  }
};

TEST_F(NumericIntegrationTest, TruncatedNormalMeanExact) {
  VarRef y = pool_.Create("Normal", {5.0, 10.0}).value();
  Condition c;
  c.AddAtom(Expr::Var(y) > Expr::Constant(-3.0));
  c.AddAtom(Expr::Var(y) < Expr::Constant(2.0));
  ExpectationResult r = Expect(Expr::Var(y), c);
  // Closed form: mu + sigma*(phi(a)-phi(b))/(Phi(b)-Phi(a)).
  double alpha = (-3.0 - 5.0) / 10.0, beta = (2.0 - 5.0) / 10.0;
  double z = NormalCdf(beta) - NormalCdf(alpha);
  double exact = 5.0 + 10.0 * (NormalPdf(alpha) - NormalPdf(beta)) / z;
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.samples_used, 0u);
  EXPECT_NEAR(r.expectation, exact, 1e-9);
  EXPECT_NEAR(r.probability, z, 1e-12);
}

TEST_F(NumericIntegrationTest, PolynomialOfVariableIntegrates) {
  // E[X^2] for X ~ Normal(0, 1) is 1; E[3X^2 + 2X + 7] = 10.
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  ExprPtr g = Expr::Constant(3.0) * Expr::Var(x) * Expr::Var(x) +
              Expr::Constant(2.0) * Expr::Var(x) + Expr::Constant(7.0);
  ExpectationResult r = Expect(g, Condition::True(), false);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.expectation, 10.0, 1e-7);
}

TEST_F(NumericIntegrationTest, ExponentialTailMeanExact) {
  // Memorylessness: E[X | X > t] = t + 1/rate.
  VarRef x = pool_.Create("Exponential", {0.5}).value();
  Condition c(Expr::Var(x) > Expr::Constant(3.0));
  ExpectationResult r = Expect(Expr::Var(x), c);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.expectation, 3.0 + 2.0, 1e-7);
  EXPECT_NEAR(r.probability, std::exp(-0.5 * 3.0), 1e-10);
}

TEST_F(NumericIntegrationTest, UniformSubIntervalExact) {
  VarRef u = pool_.Create("Uniform", {0.0, 10.0}).value();
  Condition c;
  c.AddAtom(Expr::Var(u) > Expr::Constant(2.0));
  c.AddAtom(Expr::Var(u) < Expr::Constant(6.0));
  ExpectationResult r = Expect(Expr::Var(u), c);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.expectation, 4.0, 1e-10);
  EXPECT_NEAR(r.probability, 0.4, 1e-12);
}

TEST_F(NumericIntegrationTest, DiscreteLatticeSumExact) {
  // E[Poisson(4) | X >= 7] by exact tail summation.
  VarRef p = pool_.Create("Poisson", {4.0}).value();
  Condition c(Expr::Var(p) >= Expr::Constant(7.0));
  ExpectationResult r = Expect(Expr::Var(p), c);
  EXPECT_TRUE(r.exact);
  double numerator = 0.0, mass = 0.0;
  for (int k = 7; k < 200; ++k) {
    double pmf = std::exp(PoissonLogPmf(4.0, k));
    numerator += k * pmf;
    mass += pmf;
  }
  EXPECT_NEAR(r.expectation, numerator / mass, 1e-9);
  EXPECT_NEAR(r.probability, mass, 1e-9);
}

TEST_F(NumericIntegrationTest, DiscreteStrictnessRespected) {
  // E[X | X > 3] vs E[X | X >= 3] must differ on the lattice.
  VarRef p = pool_.Create("Poisson", {3.0}).value();
  ExpectationResult gt =
      Expect(Expr::Var(p), Condition(Expr::Var(p) > Expr::Constant(3.0)));
  ExpectationResult ge =
      Expect(Expr::Var(p), Condition(Expr::Var(p) >= Expr::Constant(3.0)));
  EXPECT_TRUE(gt.exact);
  EXPECT_TRUE(ge.exact);
  EXPECT_GT(gt.expectation, ge.expectation);
  EXPECT_GE(gt.expectation, 4.0);
  EXPECT_GE(ge.expectation, 3.0);
}

TEST_F(NumericIntegrationTest, DiscreteDisequalityExcluded) {
  // A Bernoulli conditioned on X != 0 is the point mass at 1.
  VarRef b = pool_.Create("Bernoulli", {0.25}).value();
  ExpectationResult r =
      Expect(Expr::Var(b), Condition(Expr::Var(b) != Expr::Constant(0.0)));
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.expectation, 1.0, 1e-12);
}

TEST_F(NumericIntegrationTest, GammaAndLognormalMeansExact) {
  VarRef g = pool_.Create("Gamma", {3.0, 2.0}).value();
  ExpectationResult rg = Expect(Expr::Var(g), Condition::True(), false);
  EXPECT_TRUE(rg.exact);
  EXPECT_NEAR(rg.expectation, 6.0, 1e-5);

  VarRef ln = pool_.Create("Lognormal", {0.0, 0.5}).value();
  ExpectationResult rl = Expect(Expr::Var(ln), Condition::True(), false);
  EXPECT_TRUE(rl.exact);
  EXPECT_NEAR(rl.expectation, std::exp(0.125), 1e-6);
}

TEST_F(NumericIntegrationTest, FunctionsOfVariableIntegrate) {
  // E[exp(X)] for X ~ Normal(0,1) = e^{1/2} (the lognormal mean).
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  ExpectationResult r = Expect(Expr::Func(FuncKind::kExp, Expr::Var(x)),
                               Condition::True(), false);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.expectation, std::exp(0.5), 1e-6);
}

TEST_F(NumericIntegrationTest, MultiVariableTargetsFallBackToSampling) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  SamplingOptions opts;
  opts.fixed_samples = 5000;
  SamplingEngine engine(&pool_, opts);
  auto r = engine
               .Expectation(Expr::Var(x) + Expr::Var(y), Condition::True(),
                            false)
               .value();
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.samples_used, 5000u);
}

TEST_F(NumericIntegrationTest, TwoVariableAtomFallsBackToSampling) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  VarRef y = pool_.Create("Normal", {0.0, 1.0}).value();
  SamplingOptions opts;
  opts.fixed_samples = 5000;
  SamplingEngine engine(&pool_, opts);
  Condition c(Expr::Var(x) > Expr::Var(y));
  auto r = engine.Expectation(Expr::Var(x), c, false).value();
  EXPECT_FALSE(r.exact);
  EXPECT_GT(r.samples_used, 0u);
}

TEST_F(NumericIntegrationTest, DivisionByVariableFallsBackGracefully) {
  // 1/X over Normal(0,1) has a singularity at 0: the integrand errors and
  // the engine silently reverts to sampling (which also struggles, but
  // must not crash or return a bogus "exact" result).
  VarRef x = pool_.Create("Normal", {5.0, 0.5}).value();
  Condition c(Expr::Var(x) > Expr::Constant(4.0));
  ExpectationResult r =
      Expect(Expr::Constant(1.0) / Expr::Var(x), c, false);
  // Away from zero this is integrable: expect ~1/5.
  EXPECT_NEAR(r.expectation, 0.2, 0.01);
}

TEST_F(NumericIntegrationTest, MatchesSamplingEstimate) {
  // Cross-check: quadrature and Monte Carlo agree on an awkward integrand.
  VarRef x = pool_.Create("Gamma", {2.0, 1.5}).value();
  Condition c;
  c.AddAtom(Expr::Var(x) > Expr::Constant(1.0));
  c.AddAtom(Expr::Var(x) < Expr::Constant(6.0));
  ExprPtr g = Expr::Func(FuncKind::kLog, Expr::Var(x)) * Expr::Var(x);

  ExpectationResult exact = Expect(g, c, false);
  EXPECT_TRUE(exact.exact);

  SamplingOptions opts;
  opts.fixed_samples = 60000;
  opts.use_numeric_integration = false;
  SamplingEngine engine(&pool_, opts);
  auto sampled = engine.Expectation(g, c, false).value();
  EXPECT_NEAR(sampled.expectation, exact.expectation,
              0.02 * std::fabs(exact.expectation));
}

TEST_F(NumericIntegrationTest, ToggleRestoresSampling) {
  VarRef x = pool_.Create("Normal", {0.0, 1.0}).value();
  SamplingOptions opts;
  opts.fixed_samples = 100;
  opts.use_numeric_integration = false;
  SamplingEngine engine(&pool_, opts);
  auto r = engine.Expectation(Expr::Var(x), Condition::True(), false).value();
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.samples_used, 100u);
}

}  // namespace
}  // namespace pip
