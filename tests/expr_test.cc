#include "src/expr/expr.h"

#include <gtest/gtest.h>

#include "src/expr/atom.h"
#include "src/expr/condition.h"

namespace pip {
namespace {

VarRef X{1, 0};
VarRef Y{2, 0};
VarRef Z{3, 0};

TEST(ExprTest, ConstantFolding) {
  ExprPtr e = Expr::Constant(2.0) + Expr::Constant(3.0);
  ASSERT_TRUE(e->IsConstant());
  EXPECT_EQ(e->value(), Value(5.0));
  EXPECT_EQ((Expr::Constant(4.0) * Expr::Constant(0.5))->value(), Value(2.0));
  EXPECT_EQ((Expr::Constant(4.0) / Expr::Constant(2.0))->value(), Value(2.0));
  EXPECT_EQ((-Expr::Constant(4.0))->value(), Value(-4.0));
}

TEST(ExprTest, DivisionByZeroConstantStaysSymbolic) {
  ExprPtr e = Expr::Constant(4.0) / Expr::Constant(0.0);
  EXPECT_FALSE(e->IsConstant());
  EXPECT_FALSE(e->Eval(Assignment()).ok());
}

TEST(ExprTest, EvalWithAssignment) {
  ExprPtr e = Expr::Var(X) * Expr::Constant(3.0) + Expr::Var(Y);
  Assignment a;
  a.Set(X, 2.0);
  a.Set(Y, 1.0);
  EXPECT_EQ(e->EvalDouble(a).value(), 7.0);
}

TEST(ExprTest, EvalMissingVariableFails) {
  ExprPtr e = Expr::Var(X);
  EXPECT_FALSE(e->Eval(Assignment()).ok());
}

TEST(ExprTest, FunctionEval) {
  Assignment a;
  a.Set(X, 2.0);
  EXPECT_NEAR(Expr::Func(FuncKind::kExp, Expr::Var(X))->EvalDouble(a).value(),
              std::exp(2.0), 1e-12);
  EXPECT_NEAR(Expr::Func(FuncKind::kLog, Expr::Var(X))->EvalDouble(a).value(),
              std::log(2.0), 1e-12);
  EXPECT_EQ(Expr::Func(FuncKind::kMin, Expr::Var(X), Expr::Constant(1.0))
                ->EvalDouble(a)
                .value(),
            1.0);
  EXPECT_EQ(Expr::Func(FuncKind::kMax, Expr::Var(X), Expr::Constant(1.0))
                ->EvalDouble(a)
                .value(),
            2.0);
  EXPECT_EQ(Expr::Func(FuncKind::kPow, Expr::Var(X), Expr::Constant(3.0))
                ->EvalDouble(a)
                .value(),
            8.0);
}

TEST(ExprTest, LogOfNonPositiveFails) {
  Assignment a;
  a.Set(X, -1.0);
  EXPECT_FALSE(Expr::Func(FuncKind::kLog, Expr::Var(X))->Eval(a).ok());
}

TEST(ExprTest, VariableCollection) {
  ExprPtr e = Expr::Var(X) * (Expr::Var(Y) + Expr::Constant(1.0));
  VarSet vars = e->Variables();
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(vars.count(X));
  EXPECT_TRUE(vars.count(Y));
  EXPECT_TRUE(Expr::Constant(5.0)->IsDeterministic());
  EXPECT_FALSE(e->IsDeterministic());
}

TEST(ExprTest, PolynomialDegree) {
  EXPECT_EQ(Expr::Constant(1.0)->PolynomialDegree(), 0);
  EXPECT_EQ(Expr::Var(X)->PolynomialDegree(), 1);
  EXPECT_EQ((Expr::Var(X) + Expr::Var(Y))->PolynomialDegree(), 1);
  EXPECT_EQ((Expr::Var(X) * Expr::Var(Y))->PolynomialDegree(), 2);
  EXPECT_EQ((Expr::Var(X) * Expr::Var(X) * Expr::Var(X))->PolynomialDegree(),
            3);
  EXPECT_EQ((Expr::Var(X) / Expr::Constant(2.0))->PolynomialDegree(), 1);
  EXPECT_EQ((Expr::Constant(1.0) / Expr::Var(X))->PolynomialDegree(), -1);
  EXPECT_EQ(Expr::Func(FuncKind::kExp, Expr::Var(X))->PolynomialDegree(), -1);
}

TEST(ExprTest, LinearFormExtraction) {
  // 3*X - Y/2 + 7
  ExprPtr e = Expr::Constant(3.0) * Expr::Var(X) -
              Expr::Var(Y) / Expr::Constant(2.0) + Expr::Constant(7.0);
  LinearForm f = e->ToLinearForm().value();
  EXPECT_EQ(f.constant, 7.0);
  EXPECT_EQ(f.coefficients.at(X), 3.0);
  EXPECT_EQ(f.coefficients.at(Y), -0.5);
}

TEST(ExprTest, LinearFormCancellation) {
  ExprPtr e = Expr::Var(X) - Expr::Var(X);
  LinearForm f = e->ToLinearForm().value();
  EXPECT_TRUE(f.coefficients.empty());
  EXPECT_EQ(f.constant, 0.0);
}

TEST(ExprTest, LinearFormRejectsNonlinear) {
  EXPECT_FALSE((Expr::Var(X) * Expr::Var(Y))->ToLinearForm().ok());
  EXPECT_FALSE(Expr::Func(FuncKind::kExp, Expr::Var(X))->ToLinearForm().ok());
  EXPECT_FALSE((Expr::Constant(1.0) / Expr::Var(X))->ToLinearForm().ok());
}

TEST(ExprTest, IntervalEvaluation) {
  // X in [0, 2], Y in [1, 3]: X*Y + 1 in [1, 7].
  ExprPtr e = Expr::Var(X) * Expr::Var(Y) + Expr::Constant(1.0);
  auto bounds = [](VarRef v) {
    return v.var_id == 1 ? Interval(0, 2) : Interval(1, 3);
  };
  Interval r = e->EvalInterval(bounds);
  EXPECT_EQ(r, Interval(1, 7));
}

TEST(ExprTest, IntervalEvaluationExp) {
  ExprPtr e = Expr::Func(FuncKind::kExp, Expr::Var(X));
  auto bounds = [](VarRef) { return Interval(0, 1); };
  Interval r = e->EvalInterval(bounds);
  EXPECT_NEAR(r.lo, 1.0, 1e-12);
  EXPECT_NEAR(r.hi, std::exp(1.0), 1e-12);
}

TEST(ExprTest, SubstitutePartial) {
  ExprPtr e = Expr::Var(X) + Expr::Var(Y);
  Assignment a;
  a.Set(X, 5.0);
  ExprPtr sub = Expr::Substitute(e, a);
  VarSet vars = sub->Variables();
  EXPECT_EQ(vars.size(), 1u);
  EXPECT_TRUE(vars.count(Y));
  a.Set(Y, 2.0);
  EXPECT_EQ(Expr::Substitute(e, a)->value(), Value(7.0));
}

TEST(ExprTest, SubstituteSharesUntouchedSubtrees) {
  ExprPtr e = Expr::Var(X) + Expr::Constant(1.0);
  ExprPtr same = Expr::Substitute(e, Assignment());
  EXPECT_EQ(e.get(), same.get());
}

TEST(ExprTest, EqualsAndHash) {
  ExprPtr a = Expr::Var(X) * Expr::Constant(3.0);
  ExprPtr b = Expr::Var(X) * Expr::Constant(3.0);
  ExprPtr c = Expr::Var(Y) * Expr::Constant(3.0);
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_NE(a->Hash(), c->Hash());
}

TEST(ExprTest, ToStringReadable) {
  ExprPtr e = Expr::Var(X) * Expr::Constant(3.0);
  EXPECT_EQ(e->ToString(), "(X1 * 3)");
}

TEST(AtomTest, EvalComparisons) {
  Assignment a;
  a.Set(X, 2.0);
  EXPECT_TRUE((Expr::Var(X) > Expr::Constant(1.0)).Eval(a).value());
  EXPECT_FALSE((Expr::Var(X) > Expr::Constant(2.0)).Eval(a).value());
  EXPECT_TRUE((Expr::Var(X) >= Expr::Constant(2.0)).Eval(a).value());
  EXPECT_TRUE((Expr::Var(X) == Expr::Constant(2.0)).Eval(a).value());
  EXPECT_TRUE((Expr::Var(X) != Expr::Constant(3.0)).Eval(a).value());
  EXPECT_TRUE((Expr::Var(X) < Expr::Constant(3.0)).Eval(a).value());
}

TEST(AtomTest, StringComparison) {
  ConstraintAtom atom(Expr::String("joe"), CmpOp::kEq, Expr::String("joe"));
  EXPECT_TRUE(atom.EvalDeterministic().value());
}

TEST(AtomTest, NegatedComplement) {
  // An atom and its negation always disagree.
  Assignment a;
  a.Set(X, 2.0);
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe, CmpOp::kEq,
                   CmpOp::kNe}) {
    ConstraintAtom atom(Expr::Var(X), op, Expr::Constant(2.0));
    EXPECT_NE(atom.Eval(a).value(), atom.Negated().Eval(a).value());
  }
}

TEST(AtomTest, FlipCmpSwapsSides) {
  Assignment a;
  a.Set(X, 2.0);
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe}) {
    ConstraintAtom fwd(Expr::Var(X), op, Expr::Constant(1.0));
    ConstraintAtom flipped(Expr::Constant(1.0), FlipCmp(op), Expr::Var(X));
    EXPECT_EQ(fwd.Eval(a).value(), flipped.Eval(a).value());
  }
}

TEST(ConditionTest, TrueAndFalse) {
  EXPECT_TRUE(Condition::True().IsTrue());
  EXPECT_TRUE(Condition::False().IsKnownFalse());
  EXPECT_TRUE(Condition::True().Eval(Assignment()).value());
  EXPECT_FALSE(Condition::False().Eval(Assignment()).value());
}

TEST(ConditionTest, DeterministicAtomsDecidedEagerly) {
  Condition c;
  c.AddAtom(Expr::Constant(1.0) < Expr::Constant(2.0));  // True: elided.
  EXPECT_TRUE(c.IsTrue());
  c.AddAtom(Expr::Constant(3.0) < Expr::Constant(2.0));  // False: collapse.
  EXPECT_TRUE(c.IsKnownFalse());
}

TEST(ConditionTest, DuplicateAtomsElided) {
  Condition c;
  c.AddAtom(Expr::Var(X) > Expr::Constant(1.0));
  c.AddAtom(Expr::Var(X) > Expr::Constant(1.0));
  EXPECT_EQ(c.size(), 1u);
}

TEST(ConditionTest, AndCombines) {
  Condition a(Expr::Var(X) > Expr::Constant(1.0));
  Condition b(Expr::Var(Y) < Expr::Constant(2.0));
  Condition c = a.And(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(a.And(Condition::False()).IsKnownFalse());
}

TEST(ConditionTest, EvalConjunction) {
  Condition c;
  c.AddAtom(Expr::Var(X) > Expr::Constant(1.0));
  c.AddAtom(Expr::Var(Y) < Expr::Constant(5.0));
  Assignment a;
  a.Set(X, 2.0);
  a.Set(Y, 3.0);
  EXPECT_TRUE(c.Eval(a).value());
  a.Set(Y, 7.0);
  EXPECT_FALSE(c.Eval(a).value());
}

TEST(ConditionTest, NegateToDnfIsExclusiveAndExhaustive) {
  Condition c;
  c.AddAtom(Expr::Var(X) > Expr::Constant(0.0));
  c.AddAtom(Expr::Var(Y) > Expr::Constant(0.0));
  std::vector<Condition> dnf = c.NegateToDnf();
  ASSERT_EQ(dnf.size(), 2u);
  // Over the four sign quadrants: exactly the complement, one disjunct at
  // a time (mutual exclusion).
  for (double x : {-1.0, 1.0}) {
    for (double y : {-1.0, 1.0}) {
      Assignment a;
      a.Set(X, x);
      a.Set(Y, y);
      bool original = c.Eval(a).value();
      int true_disjuncts = 0;
      for (const auto& d : dnf) {
        if (d.Eval(a).value()) ++true_disjuncts;
      }
      EXPECT_EQ(true_disjuncts, original ? 0 : 1)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(ConditionTest, NegationOfTrueIsEmptyDisjunction) {
  EXPECT_TRUE(Condition::True().NegateToDnf().empty());
}

TEST(ConditionTest, NegationOfFalseIsTrue) {
  std::vector<Condition> dnf = Condition::False().NegateToDnf();
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_TRUE(dnf[0].IsTrue());
}

TEST(ConditionTest, EqualsIsOrderInsensitive) {
  Condition a, b;
  a.AddAtom(Expr::Var(X) > Expr::Constant(1.0));
  a.AddAtom(Expr::Var(Y) < Expr::Constant(2.0));
  b.AddAtom(Expr::Var(Y) < Expr::Constant(2.0));
  b.AddAtom(Expr::Var(X) > Expr::Constant(1.0));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.Hash(), b.Hash());
  (void)Z;
}

}  // namespace
}  // namespace pip
