/// \file variable.h
/// \brief Identity of random variables inside symbolic expressions.
///
/// A PIP random variable is "a unique identifier, a subscript (for
/// multi-variate distributions), a distribution class, and a set of
/// parameters" (paper §III-B). The expression layer only sees the first
/// two — identity — keeping equations opaque to distribution details;
/// the distribution class and parameters live in dist::VariablePool.

#ifndef PIP_EXPR_VARIABLE_H_
#define PIP_EXPR_VARIABLE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>

namespace pip {

/// \brief Reference to (a component of) a random variable.
struct VarRef {
  uint64_t var_id = 0;    ///< Unique identifier allocated by VariablePool.
  uint32_t component = 0; ///< Subscript into a multivariate distribution.

  bool operator==(const VarRef& o) const {
    return var_id == o.var_id && component == o.component;
  }
  bool operator<(const VarRef& o) const {
    return var_id != o.var_id ? var_id < o.var_id : component < o.component;
  }

  /// Packed 64-bit key: ids are allocated sequentially and stay far below
  /// 2^48; components below 2^16.
  uint64_t Key() const { return (var_id << 16) | component; }

  std::string ToString() const {
    std::string s = "X" + std::to_string(var_id);
    if (component != 0) s += "[" + std::to_string(component) + "]";
    return s;
  }
};

using VarSet = std::set<VarRef>;

}  // namespace pip

template <>
struct std::hash<pip::VarRef> {
  size_t operator()(const pip::VarRef& v) const {
    return std::hash<uint64_t>{}(v.Key());
  }
};

#endif  // PIP_EXPR_VARIABLE_H_
