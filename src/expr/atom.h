/// \file atom.h
/// \brief Constraint atoms: comparisons between equations.
///
/// C-table local conditions are boolean combinations of atomic conditions
/// "constructed from variables and constants using =, <, <=, !=, >, >="
/// (paper §II-A). PIP generalizes the sides to arbitrary equations
/// ("arbitrary inequalities of random variables", §III-B).

#ifndef PIP_EXPR_ATOM_H_
#define PIP_EXPR_ATOM_H_

#include <string>

#include "src/expr/expr.h"

namespace pip {

/// Comparison operator of an atom.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpName(CmpOp op);
/// The operator c such that (a c b) == !(a op b).
CmpOp NegateCmp(CmpOp op);
/// The operator c such that (b c a) == (a op b).
CmpOp FlipCmp(CmpOp op);

/// \brief One atomic condition: lhs op rhs.
class ConstraintAtom {
 public:
  ConstraintAtom(ExprPtr lhs, CmpOp op, ExprPtr rhs)
      : lhs_(std::move(lhs)), op_(op), rhs_(std::move(rhs)) {}

  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  CmpOp op() const { return op_; }

  /// True when neither side mentions a random variable; such atoms can be
  /// decided immediately during relational evaluation.
  bool IsDeterministic() const {
    return lhs_->IsDeterministic() && rhs_->IsDeterministic();
  }

  /// Decides a deterministic atom. TypeMismatch when sides are
  /// incomparable under Value ordering rules.
  StatusOr<bool> EvalDeterministic() const;

  /// Truth value under a complete assignment of the mentioned variables.
  StatusOr<bool> Eval(const Assignment& a) const;

  void CollectVariables(VarSet* out) const {
    lhs_->CollectVariables(out);
    rhs_->CollectVariables(out);
  }
  VarSet Variables() const {
    VarSet s;
    CollectVariables(&s);
    return s;
  }

  /// The atom with the complementary operator (logical negation).
  ConstraintAtom Negated() const {
    return ConstraintAtom(lhs_, NegateCmp(op_), rhs_);
  }

  /// Difference lhs - rhs as an equation; the atom is equivalent to
  /// (diff op 0). Only meaningful for numeric sides.
  ExprPtr NormalizedDiff() const { return Expr::Sub(lhs_, rhs_); }

  bool Equals(const ConstraintAtom& o) const {
    return op_ == o.op_ && lhs_->Equals(*o.lhs_) && rhs_->Equals(*o.rhs_);
  }
  size_t Hash() const;

  std::string ToString() const;

 private:
  ExprPtr lhs_;
  CmpOp op_;
  ExprPtr rhs_;
};

// Sugar for building atoms from expressions.
inline ConstraintAtom operator<(ExprPtr a, ExprPtr b) {
  return ConstraintAtom(std::move(a), CmpOp::kLt, std::move(b));
}
inline ConstraintAtom operator<=(ExprPtr a, ExprPtr b) {
  return ConstraintAtom(std::move(a), CmpOp::kLe, std::move(b));
}
inline ConstraintAtom operator>(ExprPtr a, ExprPtr b) {
  return ConstraintAtom(std::move(a), CmpOp::kGt, std::move(b));
}
inline ConstraintAtom operator>=(ExprPtr a, ExprPtr b) {
  return ConstraintAtom(std::move(a), CmpOp::kGe, std::move(b));
}
inline ConstraintAtom operator==(ExprPtr a, ExprPtr b) {
  return ConstraintAtom(std::move(a), CmpOp::kEq, std::move(b));
}
inline ConstraintAtom operator!=(ExprPtr a, ExprPtr b) {
  return ConstraintAtom(std::move(a), CmpOp::kNe, std::move(b));
}

}  // namespace pip

#endif  // PIP_EXPR_ATOM_H_
