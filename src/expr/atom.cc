#include "src/expr/atom.h"

namespace pip {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
  }
  return CmpOp::kEq;
}

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    case CmpOp::kEq:
    case CmpOp::kNe:
      return op;
  }
  return op;
}

namespace {

bool Decide(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
  }
  return false;
}

}  // namespace

StatusOr<bool> ConstraintAtom::EvalDeterministic() const {
  return Eval(Assignment());
}

StatusOr<bool> ConstraintAtom::Eval(const Assignment& a) const {
  PIP_ASSIGN_OR_RETURN(Value l, lhs_->Eval(a));
  PIP_ASSIGN_OR_RETURN(Value r, rhs_->Eval(a));
  return Decide(op_, l.Compare(r));
}

size_t ConstraintAtom::Hash() const {
  size_t h = lhs_->Hash();
  h ^= static_cast<size_t>(op_) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= rhs_->Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::string ConstraintAtom::ToString() const {
  return lhs_->ToString() + " " + CmpOpName(op_) + " " + rhs_->ToString();
}

}  // namespace pip
