#include "src/expr/expr.h"

#include <cmath>
#include <sstream>

namespace pip {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

size_t HashCombine(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

bool BothNumericConstants(const ExprPtr& l, const ExprPtr& r) {
  return l->IsConstant() && r->IsConstant() && l->value().is_numeric() &&
         r->value().is_numeric();
}

ExprPtr FoldBinary(ExprOp op, const ExprPtr& l, const ExprPtr& r) {
  double a = l->value().AsDouble().value();
  double b = r->value().AsDouble().value();
  double out = 0;
  switch (op) {
    case ExprOp::kAdd:
      out = a + b;
      break;
    case ExprOp::kSub:
      out = a - b;
      break;
    case ExprOp::kMul:
      out = a * b;
      break;
    case ExprOp::kDiv:
      if (b == 0.0) return nullptr;  // Keep symbolic; Eval will report.
      out = a / b;
      break;
    default:
      return nullptr;
  }
  return Expr::Constant(out);
}

}  // namespace

const char* FuncKindName(FuncKind f) {
  switch (f) {
    case FuncKind::kExp:
      return "exp";
    case FuncKind::kLog:
      return "log";
    case FuncKind::kSqrt:
      return "sqrt";
    case FuncKind::kAbs:
      return "abs";
    case FuncKind::kMin:
      return "min";
    case FuncKind::kMax:
      return "max";
    case FuncKind::kPow:
      return "pow";
  }
  return "?";
}

ExprPtr Expr::Constant(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kConst;
  e->value_ = std::move(v);
  return e;
}

ExprPtr Expr::Var(VarRef v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kVar;
  e->var_ = v;
  return e;
}

ExprPtr Expr::Add(ExprPtr l, ExprPtr r) {
  if (BothNumericConstants(l, r)) {
    if (auto folded = FoldBinary(ExprOp::kAdd, l, r)) return folded;
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kAdd;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Sub(ExprPtr l, ExprPtr r) {
  if (BothNumericConstants(l, r)) {
    if (auto folded = FoldBinary(ExprOp::kSub, l, r)) return folded;
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kSub;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Mul(ExprPtr l, ExprPtr r) {
  if (BothNumericConstants(l, r)) {
    if (auto folded = FoldBinary(ExprOp::kMul, l, r)) return folded;
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kMul;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Div(ExprPtr l, ExprPtr r) {
  if (BothNumericConstants(l, r)) {
    if (auto folded = FoldBinary(ExprOp::kDiv, l, r)) return folded;
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kDiv;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Neg(ExprPtr x) {
  if (x->IsConstant() && x->value().is_numeric()) {
    return Constant(-x->value().AsDouble().value());
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kNeg;
  e->children_ = {std::move(x)};
  return e;
}

ExprPtr Expr::Func(FuncKind f, ExprPtr arg) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kFunc;
  e->func_ = f;
  e->children_ = {std::move(arg)};
  // Fold constant applications when they evaluate cleanly (domain errors
  // stay symbolic so Eval can report them in context).
  if (e->children_[0]->IsConstant() && e->children_[0]->value().is_numeric()) {
    auto folded = e->Eval(Assignment());
    if (folded.ok()) return Constant(std::move(folded).value());
  }
  return e;
}

ExprPtr Expr::Func(FuncKind f, ExprPtr a, ExprPtr b) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kFunc;
  e->func_ = f;
  e->children_ = {std::move(a), std::move(b)};
  if (e->children_[0]->IsConstant() && e->children_[1]->IsConstant() &&
      e->children_[0]->value().is_numeric() &&
      e->children_[1]->value().is_numeric()) {
    auto folded = e->Eval(Assignment());
    if (folded.ok()) return Constant(std::move(folded).value());
  }
  return e;
}

bool Expr::IsDeterministic() const {
  if (op_ == ExprOp::kVar) return false;
  for (const auto& c : children_) {
    if (!c->IsDeterministic()) return false;
  }
  return true;
}

void Expr::CollectVariables(VarSet* out) const {
  if (op_ == ExprOp::kVar) {
    out->insert(var_);
    return;
  }
  for (const auto& c : children_) c->CollectVariables(out);
}

VarSet Expr::Variables() const {
  VarSet out;
  CollectVariables(&out);
  return out;
}

StatusOr<Value> Expr::Eval(const Assignment& a) const {
  switch (op_) {
    case ExprOp::kConst:
      return value_;
    case ExprOp::kVar: {
      auto v = a.Get(var_);
      if (!v) {
        return Status::InvalidArgument("variable " + var_.ToString() +
                                       " has no assigned value");
      }
      return Value(*v);
    }
    case ExprOp::kNeg: {
      PIP_ASSIGN_OR_RETURN(Value c, children_[0]->Eval(a));
      PIP_ASSIGN_OR_RETURN(double d, c.AsDouble());
      return Value(-d);
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      PIP_ASSIGN_OR_RETURN(Value lv, children_[0]->Eval(a));
      PIP_ASSIGN_OR_RETURN(Value rv, children_[1]->Eval(a));
      PIP_ASSIGN_OR_RETURN(double l, lv.AsDouble());
      PIP_ASSIGN_OR_RETURN(double r, rv.AsDouble());
      switch (op_) {
        case ExprOp::kAdd:
          return Value(l + r);
        case ExprOp::kSub:
          return Value(l - r);
        case ExprOp::kMul:
          return Value(l * r);
        default:
          if (r == 0.0) return Status::OutOfRange("division by zero");
          return Value(l / r);
      }
    }
    case ExprOp::kFunc: {
      PIP_ASSIGN_OR_RETURN(Value av, children_[0]->Eval(a));
      PIP_ASSIGN_OR_RETURN(double x, av.AsDouble());
      switch (func_) {
        case FuncKind::kExp:
          return Value(std::exp(x));
        case FuncKind::kLog:
          if (x <= 0.0) return Status::OutOfRange("log of non-positive value");
          return Value(std::log(x));
        case FuncKind::kSqrt:
          if (x < 0.0) return Status::OutOfRange("sqrt of negative value");
          return Value(std::sqrt(x));
        case FuncKind::kAbs:
          return Value(std::fabs(x));
        case FuncKind::kMin:
        case FuncKind::kMax:
        case FuncKind::kPow: {
          PIP_ASSIGN_OR_RETURN(Value bv, children_[1]->Eval(a));
          PIP_ASSIGN_OR_RETURN(double y, bv.AsDouble());
          if (func_ == FuncKind::kMin) return Value(std::min(x, y));
          if (func_ == FuncKind::kMax) return Value(std::max(x, y));
          return Value(std::pow(x, y));
        }
      }
      return Status::Internal("unknown function kind");
    }
  }
  return Status::Internal("unknown expression op");
}

StatusOr<double> Expr::EvalDouble(const Assignment& a) const {
  PIP_ASSIGN_OR_RETURN(Value v, Eval(a));
  return v.AsDouble();
}

Interval Expr::EvalInterval(
    const std::function<Interval(VarRef)>& bounds) const {
  switch (op_) {
    case ExprOp::kConst: {
      auto d = value_.AsDouble();
      if (!d.ok()) return Interval::All();
      return Interval::Point(d.value());
    }
    case ExprOp::kVar:
      return bounds(var_);
    case ExprOp::kNeg:
      return pip::Neg(children_[0]->EvalInterval(bounds));
    case ExprOp::kAdd:
      return pip::Add(children_[0]->EvalInterval(bounds),
                      children_[1]->EvalInterval(bounds));
    case ExprOp::kSub:
      return pip::Sub(children_[0]->EvalInterval(bounds),
                      children_[1]->EvalInterval(bounds));
    case ExprOp::kMul:
      return pip::Mul(children_[0]->EvalInterval(bounds),
                      children_[1]->EvalInterval(bounds));
    case ExprOp::kDiv:
      return pip::Div(children_[0]->EvalInterval(bounds),
                      children_[1]->EvalInterval(bounds));
    case ExprOp::kFunc: {
      Interval a = children_[0]->EvalInterval(bounds);
      if (a.IsEmpty()) return Interval::Empty();
      switch (func_) {
        case FuncKind::kExp:
          return Interval(std::exp(a.lo), std::exp(a.hi));
        case FuncKind::kLog:
          if (a.hi <= 0.0) return Interval::Empty();
          return Interval(a.lo <= 0.0 ? -kInf : std::log(a.lo),
                          std::log(a.hi));
        case FuncKind::kSqrt:
          if (a.hi < 0.0) return Interval::Empty();
          return Interval(a.lo <= 0.0 ? 0.0 : std::sqrt(a.lo),
                          std::sqrt(a.hi));
        case FuncKind::kAbs: {
          double hi = std::max(std::fabs(a.lo), std::fabs(a.hi));
          double lo = a.Contains(0.0) ? 0.0
                                      : std::min(std::fabs(a.lo),
                                                 std::fabs(a.hi));
          return Interval(lo, hi);
        }
        case FuncKind::kMin: {
          Interval b = children_[1]->EvalInterval(bounds);
          if (b.IsEmpty()) return Interval::Empty();
          return Interval(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
        }
        case FuncKind::kMax: {
          Interval b = children_[1]->EvalInterval(bounds);
          if (b.IsEmpty()) return Interval::Empty();
          return Interval(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
        }
        case FuncKind::kPow:
          // General powers: give up on tightness, stay sound.
          return Interval::All();
      }
      return Interval::All();
    }
  }
  return Interval::All();
}

int Expr::PolynomialDegree() const {
  switch (op_) {
    case ExprOp::kConst:
      return 0;
    case ExprOp::kVar:
      return 1;
    case ExprOp::kNeg:
      return children_[0]->PolynomialDegree();
    case ExprOp::kAdd:
    case ExprOp::kSub: {
      int l = children_[0]->PolynomialDegree();
      int r = children_[1]->PolynomialDegree();
      if (l < 0 || r < 0) return -1;
      return std::max(l, r);
    }
    case ExprOp::kMul: {
      int l = children_[0]->PolynomialDegree();
      int r = children_[1]->PolynomialDegree();
      if (l < 0 || r < 0) return -1;
      return l + r;
    }
    case ExprOp::kDiv: {
      int l = children_[0]->PolynomialDegree();
      int r = children_[1]->PolynomialDegree();
      if (l < 0 || r != 0) return -1;  // Division by a variable expression.
      return l;
    }
    case ExprOp::kFunc:
      return -1;
  }
  return -1;
}

StatusOr<LinearForm> Expr::ToLinearForm() const {
  switch (op_) {
    case ExprOp::kConst: {
      PIP_ASSIGN_OR_RETURN(double d, value_.AsDouble());
      LinearForm f;
      f.constant = d;
      return f;
    }
    case ExprOp::kVar: {
      LinearForm f;
      f.coefficients[var_] = 1.0;
      return f;
    }
    case ExprOp::kNeg: {
      PIP_ASSIGN_OR_RETURN(LinearForm f, children_[0]->ToLinearForm());
      f.constant = -f.constant;
      for (auto& [v, c] : f.coefficients) c = -c;
      return f;
    }
    case ExprOp::kAdd:
    case ExprOp::kSub: {
      PIP_ASSIGN_OR_RETURN(LinearForm l, children_[0]->ToLinearForm());
      PIP_ASSIGN_OR_RETURN(LinearForm r, children_[1]->ToLinearForm());
      double sign = op_ == ExprOp::kAdd ? 1.0 : -1.0;
      l.constant += sign * r.constant;
      for (const auto& [v, c] : r.coefficients) {
        l.coefficients[v] += sign * c;
        if (l.coefficients[v] == 0.0) l.coefficients.erase(v);
      }
      return l;
    }
    case ExprOp::kMul: {
      PIP_ASSIGN_OR_RETURN(LinearForm l, children_[0]->ToLinearForm());
      PIP_ASSIGN_OR_RETURN(LinearForm r, children_[1]->ToLinearForm());
      if (!l.coefficients.empty() && !r.coefficients.empty()) {
        return Status::InvalidArgument("expression is not linear");
      }
      const LinearForm& varside = l.coefficients.empty() ? r : l;
      double scale = l.coefficients.empty() ? l.constant : r.constant;
      LinearForm out;
      out.constant = varside.constant * scale;
      for (const auto& [v, c] : varside.coefficients) {
        if (c * scale != 0.0) out.coefficients[v] = c * scale;
      }
      return out;
    }
    case ExprOp::kDiv: {
      PIP_ASSIGN_OR_RETURN(LinearForm l, children_[0]->ToLinearForm());
      PIP_ASSIGN_OR_RETURN(LinearForm r, children_[1]->ToLinearForm());
      if (!r.coefficients.empty()) {
        return Status::InvalidArgument("division by a variable expression");
      }
      if (r.constant == 0.0) return Status::OutOfRange("division by zero");
      l.constant /= r.constant;
      for (auto& [v, c] : l.coefficients) c /= r.constant;
      return l;
    }
    case ExprOp::kFunc:
      return Status::InvalidArgument("function expression is not linear");
  }
  return Status::Internal("unknown expression op");
}

ExprPtr Expr::Substitute(const ExprPtr& self, const Assignment& a) {
  switch (self->op_) {
    case ExprOp::kConst:
      return self;
    case ExprOp::kVar: {
      auto v = a.Get(self->var_);
      return v ? Constant(*v) : self;
    }
    default:
      break;
  }
  std::vector<ExprPtr> new_children;
  new_children.reserve(self->children_.size());
  bool changed = false;
  for (const auto& c : self->children_) {
    new_children.push_back(Substitute(c, a));
    changed = changed || new_children.back() != c;
  }
  if (!changed) return self;
  switch (self->op_) {
    case ExprOp::kAdd:
      return Add(new_children[0], new_children[1]);
    case ExprOp::kSub:
      return Sub(new_children[0], new_children[1]);
    case ExprOp::kMul:
      return Mul(new_children[0], new_children[1]);
    case ExprOp::kDiv:
      return Div(new_children[0], new_children[1]);
    case ExprOp::kNeg:
      return Neg(new_children[0]);
    case ExprOp::kFunc:
      return new_children.size() == 1
                 ? Func(self->func_, new_children[0])
                 : Func(self->func_, new_children[0], new_children[1]);
    default:
      return self;
  }
}

bool Expr::Equals(const Expr& other) const {
  if (op_ != other.op_) return false;
  switch (op_) {
    case ExprOp::kConst:
      return value_ == other.value_;
    case ExprOp::kVar:
      return var_ == other.var_;
    default:
      break;
  }
  if (op_ == ExprOp::kFunc && func_ != other.func_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

size_t Expr::Hash() const {
  size_t h = static_cast<size_t>(op_) * 0x9e3779b97f4a7c15ULL;
  switch (op_) {
    case ExprOp::kConst:
      return HashCombine(h, value_.Hash());
    case ExprOp::kVar:
      return HashCombine(h, std::hash<VarRef>{}(var_));
    default:
      break;
  }
  if (op_ == ExprOp::kFunc) h = HashCombine(h, static_cast<size_t>(func_));
  for (const auto& c : children_) h = HashCombine(h, c->Hash());
  return h;
}

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kConst:
      return value_.ToString();
    case ExprOp::kVar:
      return var_.ToString();
    case ExprOp::kNeg:
      return "-(" + children_[0]->ToString() + ")";
    case ExprOp::kAdd:
      return "(" + children_[0]->ToString() + " + " +
             children_[1]->ToString() + ")";
    case ExprOp::kSub:
      return "(" + children_[0]->ToString() + " - " +
             children_[1]->ToString() + ")";
    case ExprOp::kMul:
      return "(" + children_[0]->ToString() + " * " +
             children_[1]->ToString() + ")";
    case ExprOp::kDiv:
      return "(" + children_[0]->ToString() + " / " +
             children_[1]->ToString() + ")";
    case ExprOp::kFunc: {
      std::string s = std::string(FuncKindName(func_)) + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) s += ", ";
        s += children_[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Expr& e) {
  return os << e.ToString();
}

}  // namespace pip
