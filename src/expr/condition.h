/// \file condition.h
/// \brief Row conditions: conjunctions of atoms, and DNF sets of them.
///
/// "Without loss of generality, the model can be limited to conditions that
/// are conjunctions of constraint atoms. Generality is maintained by using
/// bag semantics to encode disjunctions" (paper §III-B): disjuncts become
/// separate rows and `distinct` coalesces them. The difference operator
/// negates a conjunction into a DNF whose disjuncts again become rows.

#ifndef PIP_EXPR_CONDITION_H_
#define PIP_EXPR_CONDITION_H_

#include <vector>

#include "src/expr/atom.h"

namespace pip {

/// \brief A conjunction of constraint atoms; the local condition of a row.
///
/// The empty conjunction is TRUE. Deterministic atoms added via AddAtom are
/// decided eagerly: a false one collapses the condition to FALSE (the row
/// can be dropped), a true one is elided.
class Condition {
 public:
  Condition() = default;

  static Condition True() { return Condition(); }
  static Condition False() {
    Condition c;
    c.known_false_ = true;
    return c;
  }

  /// Conjunction of a single atom.
  explicit Condition(ConstraintAtom atom) { AddAtom(std::move(atom)); }

  /// Conjoins one atom, with eager deterministic evaluation and duplicate
  /// elision. Returns *this for chaining.
  Condition& AddAtom(ConstraintAtom atom);

  /// Conjunction of two conditions (product/selection, Fig. 1).
  Condition And(const Condition& other) const;

  bool IsTrue() const { return !known_false_ && atoms_.empty(); }
  bool IsKnownFalse() const { return known_false_; }
  /// True when no atom mentions a random variable.
  bool IsDeterministic() const;

  const std::vector<ConstraintAtom>& atoms() const { return atoms_; }
  size_t size() const { return atoms_.size(); }

  void CollectVariables(VarSet* out) const;
  VarSet Variables() const;

  /// Truth under a complete assignment.
  StatusOr<bool> Eval(const Assignment& a) const;

  /// Logical negation as a DNF: NOT(a1 & ... & an) = !a1 | ... | !an,
  /// returned as one conjunction per disjunct (each a single negated atom
  /// conjoined with the preceding atoms' assertions to make disjuncts
  /// mutually exclusive — keeps aconf() simple and rows disjoint).
  std::vector<Condition> NegateToDnf() const;

  bool Equals(const Condition& o) const;
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::vector<ConstraintAtom> atoms_;
  bool known_false_ = false;
};

}  // namespace pip

#endif  // PIP_EXPR_CONDITION_H_
