/// \file expr.h
/// \brief The equation datatype: symbolic arithmetic over random variables.
///
/// "PIP employs the equation datatype, a flattened parse tree of an
/// arithmetic expression, where leaves are random variables or constants"
/// (paper §III-B). Every c-table cell is an Expr; deterministic cells are
/// constant leaves (of any Value type), probabilistic cells mention VarRefs.
///
/// Nodes are immutable and shared (ExprPtr). Builders constant-fold where
/// both operands are known. Analyses provided for the rest of the engine:
///   * variable collection (independence decomposition, Alg. 4.3 line 5),
///   * polynomial degree (dispatching tighten_N in Alg. 3.2),
///   * linear normal form a.X + b.Y + ... + c (tighten1),
///   * interval evaluation under a bounds map (nonlinear consistency).

#ifndef PIP_EXPR_EXPR_H_
#define PIP_EXPR_EXPR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/interval.h"
#include "src/common/status.h"
#include "src/expr/assignment.h"
#include "src/expr/variable.h"
#include "src/types/value.h"

namespace pip {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Node kind of an equation.
enum class ExprOp {
  kConst,  ///< Leaf: a Value.
  kVar,    ///< Leaf: a random variable component.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kFunc,  ///< Unary/binary function application (exp, log, min, ...).
};

/// Supported function leaves beyond field arithmetic. These keep the
/// equation datatype expressive enough for the paper's workloads (e.g. the
/// exponential danger decay of the iceberg query) while staying
/// non-recursive.
enum class FuncKind { kExp, kLog, kSqrt, kAbs, kMin, kMax, kPow };

const char* FuncKindName(FuncKind f);

/// \brief Coefficients of a linear expression: sum_i coef[v_i]*v_i + constant.
struct LinearForm {
  std::map<VarRef, double> coefficients;
  double constant = 0.0;
};

/// \brief An immutable symbolic expression node.
class Expr {
 public:
  // -- Builders (constant-folding) ------------------------------------

  static ExprPtr Constant(Value v);
  static ExprPtr Constant(double v) { return Constant(Value(v)); }
  static ExprPtr ConstantInt(int64_t v) { return Constant(Value(v)); }
  static ExprPtr String(std::string s) { return Constant(Value(std::move(s))); }
  static ExprPtr Var(VarRef v);
  static ExprPtr Add(ExprPtr l, ExprPtr r);
  static ExprPtr Sub(ExprPtr l, ExprPtr r);
  static ExprPtr Mul(ExprPtr l, ExprPtr r);
  static ExprPtr Div(ExprPtr l, ExprPtr r);
  static ExprPtr Neg(ExprPtr e);
  static ExprPtr Func(FuncKind f, ExprPtr arg);
  static ExprPtr Func(FuncKind f, ExprPtr a, ExprPtr b);

  // -- Inspection ------------------------------------------------------

  ExprOp op() const { return op_; }
  /// Constant payload; valid only when op() == kConst.
  const Value& value() const { return value_; }
  /// Variable payload; valid only when op() == kVar.
  VarRef var() const { return var_; }
  FuncKind func() const { return func_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  bool IsConstant() const { return op_ == ExprOp::kConst; }
  /// True when the expression mentions no random variables (it may still
  /// be a non-leaf tree of constants if built manually).
  bool IsDeterministic() const;

  /// Inserts every variable mentioned into `out`.
  void CollectVariables(VarSet* out) const;
  VarSet Variables() const;

  // -- Evaluation -------------------------------------------------------

  /// Evaluates under a (total, for the mentioned variables) assignment.
  /// Errors: TypeMismatch on non-numeric arithmetic, InvalidArgument on a
  /// variable missing from the assignment, OutOfRange on log of a
  /// non-positive number etc.
  StatusOr<Value> Eval(const Assignment& a) const;

  /// Convenience: Eval + AsDouble.
  StatusOr<double> EvalDouble(const Assignment& a) const;

  /// Interval enclosure of the expression's range when each variable v
  /// ranges over bounds(v) (missing entries mean unbounded). Sound but not
  /// tight for repeated variables.
  Interval EvalInterval(
      const std::function<Interval(VarRef)>& bounds) const;

  // -- Analyses ----------------------------------------------------------

  /// Polynomial degree in the random variables: 0 for deterministic, 1 for
  /// linear, etc. Returns -1 when not polynomial (function nodes, division
  /// by a variable expression).
  int PolynomialDegree() const;

  /// Extracts the linear normal form when PolynomialDegree() <= 1 and all
  /// leaves are numeric; Status error otherwise.
  StatusOr<LinearForm> ToLinearForm() const;

  /// Partial evaluation: replaces every variable present in `a` by its
  /// value and constant-folds. Variables absent from `a` stay symbolic.
  /// `self` must be the shared_ptr to this node (enables sharing of
  /// untouched subtrees).
  static ExprPtr Substitute(const ExprPtr& self, const Assignment& a);

  /// Structural equality (used by distinct / DNF grouping).
  bool Equals(const Expr& other) const;
  size_t Hash() const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprOp op_ = ExprOp::kConst;
  Value value_;
  VarRef var_;
  FuncKind func_ = FuncKind::kExp;
  std::vector<ExprPtr> children_;
};

std::ostream& operator<<(std::ostream& os, const Expr& e);

// Operator sugar for building equations fluently in user code / tests.
inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return Expr::Add(a, b); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return Expr::Sub(a, b); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return Expr::Mul(a, b); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return Expr::Div(a, b); }
inline ExprPtr operator-(ExprPtr a) { return Expr::Neg(a); }

}  // namespace pip

#endif  // PIP_EXPR_EXPR_H_
