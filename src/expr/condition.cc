#include "src/expr/condition.h"

#include <sstream>

namespace pip {

Condition& Condition::AddAtom(ConstraintAtom atom) {
  if (known_false_) return *this;
  if (atom.IsDeterministic()) {
    auto decided = atom.EvalDeterministic();
    if (decided.ok()) {
      if (!decided.value()) {
        atoms_.clear();
        known_false_ = true;
      }
      return *this;  // True deterministic atoms are elided.
    }
    // Incomparable constants (e.g. string < int): keep symbolically; Eval
    // will surface the error if it is ever relevant.
  }
  for (const auto& existing : atoms_) {
    if (existing.Equals(atom)) return *this;
  }
  atoms_.push_back(std::move(atom));
  return *this;
}

Condition Condition::And(const Condition& other) const {
  if (known_false_ || other.known_false_) return False();
  Condition out = *this;
  for (const auto& a : other.atoms_) out.AddAtom(a);
  return out;
}

bool Condition::IsDeterministic() const {
  for (const auto& a : atoms_) {
    if (!a.IsDeterministic()) return false;
  }
  return true;
}

void Condition::CollectVariables(VarSet* out) const {
  for (const auto& a : atoms_) a.CollectVariables(out);
}

VarSet Condition::Variables() const {
  VarSet s;
  CollectVariables(&s);
  return s;
}

StatusOr<bool> Condition::Eval(const Assignment& a) const {
  if (known_false_) return false;
  for (const auto& atom : atoms_) {
    PIP_ASSIGN_OR_RETURN(bool t, atom.Eval(a));
    if (!t) return false;
  }
  return true;
}

std::vector<Condition> Condition::NegateToDnf() const {
  if (known_false_) return {True()};
  if (atoms_.empty()) return {};  // NOT TRUE = empty disjunction (FALSE).
  // Mutually exclusive expansion:
  //   !(a1 & a2 & ... & an)
  //     = !a1  |  (a1 & !a2)  |  (a1 & a2 & !a3)  |  ...
  // Disjointness means downstream confidence computation may simply sum.
  std::vector<Condition> out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    Condition disjunct;
    for (size_t j = 0; j < i; ++j) disjunct.AddAtom(atoms_[j]);
    disjunct.AddAtom(atoms_[i].Negated());
    if (!disjunct.IsKnownFalse()) out.push_back(std::move(disjunct));
  }
  return out;
}

bool Condition::Equals(const Condition& o) const {
  if (known_false_ != o.known_false_ || atoms_.size() != o.atoms_.size()) {
    return false;
  }
  // Order-insensitive comparison; conditions stay small (a handful of
  // atoms) so quadratic matching is fine.
  std::vector<bool> used(o.atoms_.size(), false);
  for (const auto& a : atoms_) {
    bool found = false;
    for (size_t i = 0; i < o.atoms_.size(); ++i) {
      if (!used[i] && a.Equals(o.atoms_[i])) {
        used[i] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

size_t Condition::Hash() const {
  if (known_false_) return 0xfa15eULL;
  size_t h = 0;
  // Commutative combine (xor) for order insensitivity.
  for (const auto& a : atoms_) h ^= a.Hash();
  return h;
}

std::string Condition::ToString() const {
  if (known_false_) return "FALSE";
  if (atoms_.empty()) return "TRUE";
  std::ostringstream os;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) os << " AND ";
    os << atoms_[i].ToString();
  }
  return os.str();
}

}  // namespace pip
