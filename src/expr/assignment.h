/// \file assignment.h
/// \brief A (partial) valuation of random variables.
///
/// Possible worlds are identified with variable assignments (paper §II-A);
/// samplers build one Assignment per Monte Carlo sample.

#ifndef PIP_EXPR_ASSIGNMENT_H_
#define PIP_EXPR_ASSIGNMENT_H_

#include <optional>
#include <unordered_map>

#include "src/expr/variable.h"

namespace pip {

/// \brief Maps variable references to real values.
class Assignment {
 public:
  void Set(VarRef v, double value) { values_[v.Key()] = value; }

  std::optional<double> Get(VarRef v) const {
    auto it = values_.find(v.Key());
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  bool Has(VarRef v) const { return values_.count(v.Key()) > 0; }
  size_t size() const { return values_.size(); }
  void Clear() { values_.clear(); }

 private:
  std::unordered_map<uint64_t, double> values_;
};

}  // namespace pip

#endif  // PIP_EXPR_ASSIGNMENT_H_
