/// \file sf_ops.h
/// \brief Relational operators and aggregates over tuple bundles.
///
/// The Sample-First engine evaluates the same plan language (ColExpr /
/// ColPredicate) as PIP, but against materialized per-world arrays:
/// filters clear presence bits world by world, maps compute new arrays,
/// and aggregates reduce each world independently then average. The
/// contrast with PIP is deliberate and faithful to the paper: identical
/// queries, different evaluation strategy.

#ifndef PIP_SAMPLEFIRST_SF_OPS_H_
#define PIP_SAMPLEFIRST_SF_OPS_H_

#include "src/ctable/col_expr.h"
#include "src/samplefirst/sf_table.h"

namespace pip {
namespace samplefirst {

/// Evaluates a column expression for one tuple in one world.
StatusOr<Value> EvalColExpr(const ColExpr& expr, const SFTable& table,
                            const SFTuple& tuple, size_t world);

/// True when the expression only touches deterministic cells of `tuple`
/// (its value is then world-independent).
bool IsDeterministicFor(const ColExpr& expr, const SFTable& table,
                        const SFTuple& tuple);

/// WHERE: clears presence bits of worlds violating the predicate; tuples
/// absent from every world are dropped. Deterministic predicates evaluate
/// once per tuple.
StatusOr<SFTable> Filter(const SFTable& in, const ColPredicate& predicate);

/// SELECT: generalized projection. Targets over deterministic cells stay
/// constants; anything touching a stochastic cell materializes a per-world
/// array.
StatusOr<SFTable> Map(const SFTable& in,
                      const std::vector<NamedColExpr>& targets);

/// Theta join: aligns worlds (presence AND), then applies the predicate
/// per world.
StatusOr<SFTable> Join(const SFTable& left, const SFTable& right,
                       const ColPredicate& predicate,
                       const std::string& rhs_prefix = "r");

/// One group of a group-by partition over deterministic columns.
struct SFGroup {
  Row key;
  SFTable rows;
};

StatusOr<std::vector<SFGroup>> GroupBy(
    const SFTable& in, const std::vector<std::string>& group_columns);

// -- Aggregates (each world reduced independently) -----------------------

/// Per-world sum of `column` over present tuples.
StatusOr<std::vector<double>> PerWorldSums(const SFTable& table,
                                           const std::string& column);

/// Per-world count of present tuples.
std::vector<double> PerWorldCounts(const SFTable& table);

/// Per-world max of `column` (empty worlds get `empty_value`).
StatusOr<std::vector<double>> PerWorldMax(const SFTable& table,
                                          const std::string& column,
                                          double empty_value = 0.0);

/// Mean over worlds (the sample-first estimate of an expectation).
double MeanOverWorlds(const std::vector<double>& per_world);

}  // namespace samplefirst
}  // namespace pip

#endif  // PIP_SAMPLEFIRST_SF_OPS_H_
