/// \file sf_table.h
/// \brief Tuple bundles: the Sample-First (MCDB-style) baseline.
///
/// The paper's comparison system (§VI): "A sampled variable is represented
/// using an array of floats, while the tuple bundle's presence in each
/// sampled world is represented using a densely packed array of booleans."
/// All sampling happens *up front* — a stochastic column is instantiated
/// for every world before the query runs — which is exactly the design
/// whose selectivity pathology PIP addresses: worlds filtered out later
/// are wasted work, and getting more samples means re-running the query.

#ifndef PIP_SAMPLEFIRST_SF_TABLE_H_
#define PIP_SAMPLEFIRST_SF_TABLE_H_

#include <variant>
#include <vector>

#include "src/common/random.h"
#include "src/dist/distribution.h"
#include "src/types/table.h"

namespace pip {
namespace samplefirst {

/// \brief One cell of a tuple bundle: a constant or one value per world.
using SFCell = std::variant<Value, std::vector<double>>;

inline bool IsStochastic(const SFCell& c) { return c.index() == 1; }

/// \brief A tuple bundle: cells plus a packed per-world presence bitmap.
struct SFTuple {
  std::vector<SFCell> cells;
  /// Bit w of presence[w/64] set <=> the tuple exists in world w.
  std::vector<uint64_t> presence;

  bool PresentIn(size_t world) const {
    return (presence[world / 64] >> (world % 64)) & 1;
  }
  void SetAbsent(size_t world) {
    presence[world / 64] &= ~(uint64_t{1} << (world % 64));
  }
  /// Number of worlds the tuple is present in.
  size_t PresenceCount() const;
  bool PresentAnywhere() const;
};

/// \brief A table of tuple bundles over a fixed world count.
class SFTable {
 public:
  SFTable() = default;
  SFTable(Schema schema, size_t num_worlds)
      : schema_(std::move(schema)), num_worlds_(num_worlds) {}

  /// Lifts a deterministic table: every cell constant, present everywhere.
  static SFTable FromTable(const Table& table, size_t num_worlds);

  const Schema& schema() const { return schema_; }
  size_t num_worlds() const { return num_worlds_; }
  size_t num_tuples() const { return tuples_.size(); }
  const SFTuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<SFTuple>& tuples() const { return tuples_; }

  Status Append(SFTuple tuple);

  /// Reads a cell's value in one world (constants convert via AsDouble).
  StatusOr<double> CellValue(const SFTuple& tuple, size_t column,
                             size_t world) const;

  /// An all-present bitmap sized for this table.
  std::vector<uint64_t> FullPresence() const;

 private:
  Schema schema_;
  size_t num_worlds_ = 0;
  std::vector<SFTuple> tuples_;
};

/// \brief The sample-first VG-function step: appends a stochastic column.
///
/// For each tuple, draws `num_worlds` values from `distribution` with
/// parameters taken from existing (deterministic or stochastic) columns
/// via `param_columns`. Seeded deterministically per (seed, tuple index).
/// Mirrors MCDB's VG functions parameterized by relational data.
StatusOr<SFTable> ParametrizeColumn(const SFTable& in,
                                    const std::string& new_column,
                                    const std::string& distribution,
                                    const std::vector<std::string>& param_columns,
                                    uint64_t seed);

}  // namespace samplefirst
}  // namespace pip

#endif  // PIP_SAMPLEFIRST_SF_TABLE_H_
