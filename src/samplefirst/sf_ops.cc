#include "src/samplefirst/sf_ops.h"

#include <unordered_map>

namespace pip {
namespace samplefirst {

namespace {

bool DecideCmp(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
  }
  return false;
}

}  // namespace

StatusOr<Value> EvalColExpr(const ColExpr& expr, const SFTable& table,
                            const SFTuple& tuple, size_t world) {
  using Kind = ColExpr::Kind;
  switch (expr.kind()) {
    case Kind::kColumn: {
      PIP_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(expr.column()));
      const SFCell& cell = tuple.cells[idx];
      if (IsStochastic(cell)) {
        return Value(std::get<std::vector<double>>(cell)[world]);
      }
      return std::get<Value>(cell);
    }
    case Kind::kLiteral:
      return expr.literal();
    case Kind::kEmbed:
      return Status::InvalidArgument(
          "embedded symbolic equations are a PIP feature; Sample-First "
          "plans must introduce randomness via ParametrizeColumn");
    default:
      break;
  }
  std::vector<double> args;
  args.reserve(expr.children().size());
  for (const auto& c : expr.children()) {
    PIP_ASSIGN_OR_RETURN(Value v, EvalColExpr(*c, table, tuple, world));
    PIP_ASSIGN_OR_RETURN(double d, v.AsDouble());
    args.push_back(d);
  }
  switch (expr.kind()) {
    case Kind::kAdd:
      return Value(args[0] + args[1]);
    case Kind::kSub:
      return Value(args[0] - args[1]);
    case Kind::kMul:
      return Value(args[0] * args[1]);
    case Kind::kDiv:
      if (args[1] == 0.0) return Status::OutOfRange("division by zero");
      return Value(args[0] / args[1]);
    case Kind::kNeg:
      return Value(-args[0]);
    case Kind::kFunc:
      switch (expr.func()) {
        case FuncKind::kExp:
          return Value(std::exp(args[0]));
        case FuncKind::kLog:
          if (args[0] <= 0.0) return Status::OutOfRange("log of non-positive");
          return Value(std::log(args[0]));
        case FuncKind::kSqrt:
          if (args[0] < 0.0) return Status::OutOfRange("sqrt of negative");
          return Value(std::sqrt(args[0]));
        case FuncKind::kAbs:
          return Value(std::fabs(args[0]));
        case FuncKind::kMin:
          return Value(std::min(args[0], args[1]));
        case FuncKind::kMax:
          return Value(std::max(args[0], args[1]));
        case FuncKind::kPow:
          return Value(std::pow(args[0], args[1]));
      }
      return Status::Internal("unknown function");
    default:
      return Status::Internal("unexpected ColExpr kind");
  }
}

bool IsDeterministicFor(const ColExpr& expr, const SFTable& table,
                        const SFTuple& tuple) {
  std::vector<std::string> columns;
  expr.CollectColumns(&columns);
  for (const auto& name : columns) {
    auto idx = table.schema().IndexOf(name);
    if (!idx.ok()) return false;
    if (IsStochastic(tuple.cells[idx.value()])) return false;
  }
  return true;
}

StatusOr<SFTable> Filter(const SFTable& in, const ColPredicate& predicate) {
  SFTable out(in.schema(), in.num_worlds());
  for (const auto& tuple : in.tuples()) {
    SFTuple filtered = tuple;
    bool dropped = false;
    for (const auto& atom : predicate.atoms()) {
      bool det = IsDeterministicFor(*atom.lhs, in, tuple) &&
                 IsDeterministicFor(*atom.rhs, in, tuple);
      if (det) {
        PIP_ASSIGN_OR_RETURN(Value l, EvalColExpr(*atom.lhs, in, tuple, 0));
        PIP_ASSIGN_OR_RETURN(Value r, EvalColExpr(*atom.rhs, in, tuple, 0));
        if (!DecideCmp(atom.op, l.Compare(r))) {
          dropped = true;
          break;
        }
        continue;
      }
      for (size_t w = 0; w < in.num_worlds(); ++w) {
        if (!filtered.PresentIn(w)) continue;
        PIP_ASSIGN_OR_RETURN(Value l, EvalColExpr(*atom.lhs, in, tuple, w));
        PIP_ASSIGN_OR_RETURN(Value r, EvalColExpr(*atom.rhs, in, tuple, w));
        if (!DecideCmp(atom.op, l.Compare(r))) filtered.SetAbsent(w);
      }
      if (!filtered.PresentAnywhere()) {
        dropped = true;
        break;
      }
    }
    if (!dropped && filtered.PresentAnywhere()) {
      PIP_RETURN_IF_ERROR(out.Append(std::move(filtered)));
    }
  }
  return out;
}

StatusOr<SFTable> Map(const SFTable& in,
                      const std::vector<NamedColExpr>& targets) {
  std::vector<std::string> names;
  names.reserve(targets.size());
  for (const auto& t : targets) names.push_back(t.name);
  SFTable out(Schema(std::move(names)), in.num_worlds());
  for (const auto& tuple : in.tuples()) {
    SFTuple mapped;
    mapped.presence = tuple.presence;
    mapped.cells.reserve(targets.size());
    for (const auto& t : targets) {
      if (IsDeterministicFor(*t.expr, in, tuple)) {
        PIP_ASSIGN_OR_RETURN(Value v, EvalColExpr(*t.expr, in, tuple, 0));
        mapped.cells.emplace_back(std::move(v));
      } else {
        std::vector<double> arr(in.num_worlds());
        for (size_t w = 0; w < in.num_worlds(); ++w) {
          PIP_ASSIGN_OR_RETURN(Value v, EvalColExpr(*t.expr, in, tuple, w));
          PIP_ASSIGN_OR_RETURN(arr[w], v.AsDouble());
        }
        mapped.cells.emplace_back(std::move(arr));
      }
    }
    PIP_RETURN_IF_ERROR(out.Append(std::move(mapped)));
  }
  return out;
}

StatusOr<SFTable> Join(const SFTable& left, const SFTable& right,
                       const ColPredicate& predicate,
                       const std::string& rhs_prefix) {
  if (left.num_worlds() != right.num_worlds()) {
    return Status::InvalidArgument("joined tables have different world counts");
  }
  SFTable out(left.schema().Concat(right.schema(), rhs_prefix),
              left.num_worlds());
  for (const auto& l : left.tuples()) {
    for (const auto& r : right.tuples()) {
      SFTuple combined;
      combined.cells = l.cells;
      combined.cells.insert(combined.cells.end(), r.cells.begin(),
                            r.cells.end());
      combined.presence.resize(l.presence.size());
      bool any = false;
      for (size_t i = 0; i < l.presence.size(); ++i) {
        combined.presence[i] = l.presence[i] & r.presence[i];
        any = any || combined.presence[i];
      }
      if (!any) continue;
      // Apply the join predicate against the combined schema.
      bool dropped = false;
      for (const auto& atom : predicate.atoms()) {
        bool det = IsDeterministicFor(*atom.lhs, out, combined) &&
                   IsDeterministicFor(*atom.rhs, out, combined);
        if (det) {
          PIP_ASSIGN_OR_RETURN(Value lv,
                               EvalColExpr(*atom.lhs, out, combined, 0));
          PIP_ASSIGN_OR_RETURN(Value rv,
                               EvalColExpr(*atom.rhs, out, combined, 0));
          if (!DecideCmp(atom.op, lv.Compare(rv))) {
            dropped = true;
            break;
          }
          continue;
        }
        for (size_t w = 0; w < out.num_worlds(); ++w) {
          if (!combined.PresentIn(w)) continue;
          PIP_ASSIGN_OR_RETURN(Value lv,
                               EvalColExpr(*atom.lhs, out, combined, w));
          PIP_ASSIGN_OR_RETURN(Value rv,
                               EvalColExpr(*atom.rhs, out, combined, w));
          if (!DecideCmp(atom.op, lv.Compare(rv))) combined.SetAbsent(w);
        }
        if (!combined.PresentAnywhere()) {
          dropped = true;
          break;
        }
      }
      if (!dropped && combined.PresentAnywhere()) {
        PIP_RETURN_IF_ERROR(out.Append(std::move(combined)));
      }
    }
  }
  return out;
}

StatusOr<std::vector<SFGroup>> GroupBy(
    const SFTable& in, const std::vector<std::string>& group_columns) {
  std::vector<size_t> key_indices;
  for (const auto& name : group_columns) {
    PIP_ASSIGN_OR_RETURN(size_t idx, in.schema().IndexOf(name));
    key_indices.push_back(idx);
  }
  std::vector<SFGroup> groups;
  std::unordered_map<size_t, std::vector<size_t>> index;
  for (const auto& tuple : in.tuples()) {
    Row key;
    for (size_t idx : key_indices) {
      if (IsStochastic(tuple.cells[idx])) {
        return Status::InvalidArgument("group-by column '" +
                                       in.schema().name(idx) +
                                       "' is stochastic");
      }
      key.push_back(std::get<Value>(tuple.cells[idx]));
    }
    size_t h = 0;
    for (const auto& v : key) h = h * 1099511628211ULL + v.Hash();
    auto& bucket = index[h];
    SFGroup* group = nullptr;
    for (size_t gi : bucket) {
      if (groups[gi].key == key) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(groups.size());
      groups.push_back(SFGroup{std::move(key),
                               SFTable(in.schema(), in.num_worlds())});
      group = &groups.back();
    }
    PIP_RETURN_IF_ERROR(group->rows.Append(tuple));
  }
  return groups;
}

StatusOr<std::vector<double>> PerWorldSums(const SFTable& table,
                                           const std::string& column) {
  PIP_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(column));
  std::vector<double> sums(table.num_worlds(), 0.0);
  for (const auto& tuple : table.tuples()) {
    for (size_t w = 0; w < table.num_worlds(); ++w) {
      if (!tuple.PresentIn(w)) continue;
      PIP_ASSIGN_OR_RETURN(double v, table.CellValue(tuple, col, w));
      sums[w] += v;
    }
  }
  return sums;
}

std::vector<double> PerWorldCounts(const SFTable& table) {
  std::vector<double> counts(table.num_worlds(), 0.0);
  for (const auto& tuple : table.tuples()) {
    for (size_t w = 0; w < table.num_worlds(); ++w) {
      if (tuple.PresentIn(w)) counts[w] += 1.0;
    }
  }
  return counts;
}

StatusOr<std::vector<double>> PerWorldMax(const SFTable& table,
                                          const std::string& column,
                                          double empty_value) {
  PIP_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(column));
  std::vector<double> maxima(table.num_worlds(), empty_value);
  std::vector<bool> seen(table.num_worlds(), false);
  for (const auto& tuple : table.tuples()) {
    for (size_t w = 0; w < table.num_worlds(); ++w) {
      if (!tuple.PresentIn(w)) continue;
      PIP_ASSIGN_OR_RETURN(double v, table.CellValue(tuple, col, w));
      if (!seen[w] || v > maxima[w]) {
        maxima[w] = v;
        seen[w] = true;
      }
    }
  }
  return maxima;
}

double MeanOverWorlds(const std::vector<double>& per_world) {
  if (per_world.empty()) return 0.0;
  double sum = 0.0;
  for (double v : per_world) sum += v;
  return sum / static_cast<double>(per_world.size());
}

}  // namespace samplefirst
}  // namespace pip
