#include "src/samplefirst/sf_table.h"

namespace pip {
namespace samplefirst {

size_t SFTuple::PresenceCount() const {
  size_t n = 0;
  for (uint64_t word : presence) n += __builtin_popcountll(word);
  return n;
}

bool SFTuple::PresentAnywhere() const {
  for (uint64_t word : presence) {
    if (word) return true;
  }
  return false;
}

SFTable SFTable::FromTable(const Table& table, size_t num_worlds) {
  SFTable out(table.schema(), num_worlds);
  for (const auto& row : table.rows()) {
    SFTuple t;
    t.cells.reserve(row.size());
    for (const auto& v : row) t.cells.emplace_back(v);
    t.presence = out.FullPresence();
    PIP_CHECK(out.Append(std::move(t)).ok());
  }
  return out;
}

Status SFTable::Append(SFTuple tuple) {
  if (tuple.cells.size() != schema_.size()) {
    return Status::InvalidArgument("tuple arity does not match schema " +
                                   schema_.ToString());
  }
  if (tuple.presence.size() != (num_worlds_ + 63) / 64) {
    return Status::InvalidArgument("presence bitmap has wrong size");
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

StatusOr<double> SFTable::CellValue(const SFTuple& tuple, size_t column,
                                    size_t world) const {
  const SFCell& cell = tuple.cells[column];
  if (IsStochastic(cell)) {
    return std::get<std::vector<double>>(cell)[world];
  }
  return std::get<Value>(cell).AsDouble();
}

std::vector<uint64_t> SFTable::FullPresence() const {
  size_t words = (num_worlds_ + 63) / 64;
  std::vector<uint64_t> presence(words, ~uint64_t{0});
  // Mask the tail beyond num_worlds.
  size_t tail = num_worlds_ % 64;
  if (tail != 0 && words > 0) {
    presence.back() = (uint64_t{1} << tail) - 1;
  }
  return presence;
}

StatusOr<SFTable> ParametrizeColumn(
    const SFTable& in, const std::string& new_column,
    const std::string& distribution,
    const std::vector<std::string>& param_columns, uint64_t seed) {
  PIP_ASSIGN_OR_RETURN(const Distribution* dist,
                       DistributionRegistry::Global().Lookup(distribution));
  std::vector<size_t> param_idx;
  param_idx.reserve(param_columns.size());
  for (const auto& name : param_columns) {
    PIP_ASSIGN_OR_RETURN(size_t idx, in.schema().IndexOf(name));
    param_idx.push_back(idx);
  }

  SFTable out(Schema(in.schema().columns()).Concat(Schema({new_column})),
              in.num_worlds());
  std::vector<double> params(param_idx.size());
  std::vector<double> joint;
  for (size_t ti = 0; ti < in.num_tuples(); ++ti) {
    const SFTuple& tuple = in.tuple(ti);
    SFTuple extended = tuple;

    // Fast path: all parameters deterministic — validate once, draw the
    // whole world array.
    bool det_params = true;
    for (size_t idx : param_idx) {
      det_params = det_params && !IsStochastic(tuple.cells[idx]);
    }
    std::vector<double> samples(in.num_worlds());
    if (det_params) {
      for (size_t p = 0; p < param_idx.size(); ++p) {
        PIP_ASSIGN_OR_RETURN(params[p], std::get<Value>(
                                            tuple.cells[param_idx[p]])
                                            .AsDouble());
      }
      PIP_RETURN_IF_ERROR(dist->ValidateParams(params));
      for (size_t w = 0; w < in.num_worlds(); ++w) {
        SampleContext ctx{seed, /*var_id=*/ti, /*sample_index=*/w, 0};
        PIP_RETURN_IF_ERROR(dist->GenerateJoint(params, ctx, &joint));
        samples[w] = joint[0];
      }
    } else {
      // Per-world parameters (e.g. a previously sampled column feeding a
      // downstream model).
      for (size_t w = 0; w < in.num_worlds(); ++w) {
        for (size_t p = 0; p < param_idx.size(); ++p) {
          PIP_ASSIGN_OR_RETURN(params[p],
                               in.CellValue(tuple, param_idx[p], w));
        }
        PIP_RETURN_IF_ERROR(dist->ValidateParams(params));
        SampleContext ctx{seed, /*var_id=*/ti, /*sample_index=*/w, 0};
        PIP_RETURN_IF_ERROR(dist->GenerateJoint(params, ctx, &joint));
        samples[w] = joint[0];
      }
    }
    extended.cells.emplace_back(std::move(samples));
    PIP_RETURN_IF_ERROR(out.Append(std::move(extended)));
  }
  return out;
}

}  // namespace samplefirst
}  // namespace pip
