/// \file expectation.h
/// \brief The expectation operator (paper Alg. 4.3) and confidence
/// computation.
///
/// This is where PIP cashes in on deferring integration: given the full
/// expression E and its row context C (a conjunction of constraint atoms),
/// the operator
///   1. checks C's consistency and harvests per-variable bounds (Alg. 3.2),
///   2. partitions {vars(E)} U {vars(C)} into minimal independent subsets,
///   3. picks per-group strategies: exact CDF integration when a group
///      reduces to interval constraints on one variable with a CDF;
///      inverse-CDF-constrained sampling when bounds and inverse CDFs are
///      available; plain rejection otherwise; and a Metropolis fallback
///      when the observed rejection rate crosses a threshold,
///   4. runs an (epsilon, delta)-adaptive sampling loop over only the
///      groups the expression touches, and
///   5. assembles P[C] from per-group acceptance rates, CDF windows and
///      exact factors.

#ifndef PIP_SAMPLING_EXPECTATION_H_
#define PIP_SAMPLING_EXPECTATION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "src/constraints/consistency.h"
#include "src/constraints/independence.h"
#include "src/dist/variable_pool.h"
#include "src/expr/condition.h"
#include "src/expr/expr.h"
#include "src/index/expectation_index.h"
#include "src/sampling/plan_cache.h"

namespace pip {

/// \brief Strategy knobs of the sampling operators.
///
/// The use_* flags exist for the ablation benchmarks; production callers
/// keep them on.
struct SamplingOptions {
  /// Confidence level parameter: results are within the delta tolerance
  /// with probability ~(1 - epsilon).
  double epsilon = 0.05;
  /// Relative precision target for adaptive stopping.
  double delta = 0.02;
  /// If nonzero, take exactly this many samples (no adaptive stopping) —
  /// the mode used by the paper's experiments ("1000 samples apiece").
  size_t fixed_samples = 0;
  size_t min_samples = 32;
  size_t max_samples = 200000;
  /// Rejection-attempt budget of one expectation call; exceeded means
  /// the condition is effectively unsatisfiable for the sampler. Under
  /// parallel sharding this is enforced deterministically at two
  /// levels: each shard gets a proportional share (with a floor — see
  /// ChunkAttemptBudget) bounding any single shard, and a ledger folded
  /// in chunk order trips the collapse once the call's accepted shards
  /// exceed the budget — so the visible (NAN, 0) is bit-identical
  /// across thread counts and total work stays within this budget plus
  /// one in-flight wave of shard floors.
  size_t max_total_attempts = 20000000;

  /// Offsets the deterministic sample index space; distinct offsets give
  /// statistically fresh (but still replayable) runs, e.g. across trials.
  uint64_t sample_offset = 0;

  /// Worker threads for the sampling loops. 0 means "hardware
  /// concurrency" (the default); 1 forces inline serial execution. The
  /// sample-index space is sharded into contiguous chunks whose schedule
  /// depends only on `chunk_samples`, and per-chunk results fold in chunk
  /// order, so results are bit-identical across num_threads values (see
  /// README "Threading model").
  size_t num_threads = 0;
  /// Samples per shard chunk. Part of the determinism contract: the
  /// chunk schedule (and hence the merge tree, the adaptive stopping
  /// barriers, and the per-chunk Metropolis scope) is a pure function of
  /// this value — never of num_threads.
  size_t chunk_samples = 64;

  // -- Optimization toggles (§IV-A), default on; benches ablate them. ----
  bool use_exact_cdf = true;       ///< Exact single-variable CDF integration.
  bool use_cdf_sampling = true;    ///< Inverse-CDF constrained sampling.
  bool use_independence = true;    ///< Minimal independent subset sampling.
  bool use_metropolis = true;      ///< MCMC fallback for tiny acceptance.
  /// Batched draw kernels: unconstrained sampling loops request each
  /// chunk's whole sample range in one GenerateBatch call per variable
  /// instead of one virtual Generate per sample. Bit-identical to the
  /// scalar path by the batch-draw contract (see README); off reproduces
  /// the per-sample loop for the scalar-vs-batch ablation benches.
  bool use_batch_generation = true;
  /// Exact numeric integration of single-variable expectations ("the
  /// expectation operator can ... potentially even sidestep [sampling]
  /// entirely", §III-A): when the target expression depends on one
  /// univariate variable with PDF+CDF and its constraints reduce to an
  /// interval, E[g(X) | a<=X<=b] is computed by adaptive quadrature (or an
  /// exact lattice sum for discrete variables) instead of sampling.
  bool use_numeric_integration = true;
  /// Absolute/relative tolerance of the quadrature.
  double integration_tolerance = 1e-10;

  /// Rejection-rate threshold that triggers the Metropolis switch
  /// ("Metropolis Threshold" in Alg. 4.3); evaluated after
  /// `metropolis_check_after` attempts of a group.
  double metropolis_threshold = 0.995;
  size_t metropolis_check_after = 2000;

  // -- Materialized expectation index (src/index/) ----------------------
  /// Serve/backfill the result index on the hot query paths (Analyze,
  /// aconf, expected aggregates). Hits are bit-identical replays; off
  /// forces every call down the Monte Carlo path.
  bool index_enabled = true;
  /// Build index entries (with moment/quantile/CDF summaries) eagerly on
  /// catalogue writes instead of lazily on first query.
  bool index_eager_build = false;
  /// Byte budget of the shared index's LRU (0 = unlimited). Applied to
  /// the database-wide index whenever an engine is created, so the
  /// last-configured session wins; see README "Expectation index".
  size_t index_memory_budget = ExpectationIndex::kDefaultMemoryBudget;

  /// Per-statement deadline in milliseconds; 0 disables. The session
  /// layer composes it into cancel_check as a steady-clock deadline at
  /// statement start, so enforcement has chunk-barrier granularity: a
  /// statement that exceeds the deadline stops at its next chunk fold
  /// and surfaces Status::Timeout (ERR TIMEOUT over the wire). Like
  /// cancel_check, excluded from the options fingerprint — the deadline
  /// decides whether a statement finishes, never what it computes.
  uint64_t statement_timeout_ms = 0;
  /// How long a statement may wait in the server's admission gate before
  /// being shed with Status::Overloaded (ERR OVERLOADED, retryable);
  /// 0 disables shedding — the statement queues until admitted (the
  /// pre-robustness behavior). Server-side only; excluded from the
  /// fingerprint like the other non-result knobs.
  uint64_t admission_timeout_ms = 0;

  /// Cooperative cancellation hook. When set, the Monte Carlo loops poll
  /// it at chunk-fold barriers and abandon the call with
  /// Status::Cancelled once it returns true. Used by ParallelRows
  /// batches (via SamplingEngine::WithCancelCheck) so a long row body
  /// dispatched just before an earlier row failed stops early instead of
  /// sampling to completion; the cancelled row's output is discarded by
  /// the row-order error protocol, so cancellation never changes what a
  /// caller observes. Like num_threads, excluded from the options
  /// fingerprint (shape_key.cc): it cannot affect kept bits.
  std::function<bool()> cancel_check;
};

/// \brief Result of an expectation (or confidence) computation.
struct ExpectationResult {
  /// E[expression | condition]; NaN when the condition is unsatisfiable
  /// (the paper's convention: "a value of NAN will result").
  double expectation = 0.0;
  /// P[condition] when requested (1.0 otherwise).
  double probability = 1.0;
  /// Monte Carlo samples actually accepted (0 for fully exact results).
  size_t samples_used = 0;
  /// Total generation attempts including rejected ones (work measure).
  size_t attempts = 0;
  /// True when no sampling was necessary (closed-form CDF integration).
  bool exact = false;
};

/// \brief Per-row sampling operators over a variable pool.
///
/// Stateless apart from configuration; every method is deterministic given
/// the pool's seed and options.sample_offset.
class SamplingEngine {
 public:
  explicit SamplingEngine(const VariablePool* pool,
                          SamplingOptions options = {})
      : pool_(pool),
        options_(options),
        plan_cache_(std::make_shared<PlanCache>()) {}

  /// Engine sharing an external plan cache (the Database hands every
  /// session's engine its process-lifetime cache, so concurrent server
  /// sessions amortize planning across statements and connections).
  SamplingEngine(const VariablePool* pool, SamplingOptions options,
                 std::shared_ptr<PlanCache> plan_cache)
      : pool_(pool),
        options_(options),
        plan_cache_(plan_cache != nullptr ? std::move(plan_cache)
                                          : std::make_shared<PlanCache>()) {}

  const SamplingOptions& options() const { return options_; }
  SamplingOptions* mutable_options() { return &options_; }
  const VariablePool& pool() const { return *pool_; }

  /// Copy of this engine with different options, sharing the pool, the
  /// plan cache, and the result index. This is how derived engines
  /// (per-row aggregate engines with relaxed tolerances) keep amortizing
  /// the process-wide caches instead of silently starting cold.
  SamplingEngine WithOptions(SamplingOptions options) const {
    SamplingEngine copy(pool_, std::move(options), plan_cache_);
    copy.result_index_ = result_index_;
    return copy;
  }

  /// Copy of this engine whose sampling loops poll `cancel` at chunk-fold
  /// barriers and return Status::Cancelled once it reports true (see
  /// SamplingOptions::cancel_check). Row-parallel batch drivers hand
  /// each row body one of these wired to its RowBatchContext so long
  /// rows bail early after an earlier row's failure. Checks compose: a
  /// nested batch (grouped aggregate -> per-row loop) ORs its hook with
  /// the inherited one, so an outer cancellation reaches the innermost
  /// sampling loops too.
  SamplingEngine WithCancelCheck(std::function<bool()> cancel) const {
    SamplingOptions opts = options_;
    if (opts.cancel_check) {
      auto outer = std::move(opts.cancel_check);
      auto inner = std::move(cancel);
      opts.cancel_check = [outer, inner] { return outer() || inner(); };
    } else {
      opts.cancel_check = std::move(cancel);
    }
    return WithOptions(std::move(opts));
  }

  /// The shared materialized-result index, or nullptr when none is
  /// attached (the Database attaches its process-lifetime instance to
  /// every engine it hands out). The index layer (index_ops.h) consults
  /// it; the core sampling paths below never do.
  ExpectationIndex* result_index() const { return result_index_.get(); }
  void set_result_index(std::shared_ptr<ExpectationIndex> index) {
    result_index_ = std::move(index);
  }

  /// Hit/miss counters of the shared plan-shape cache (copies of one
  /// engine share the cache, so Analyze-style row batches amortize
  /// planning across rows).
  PlanCache::Stats plan_cache_stats() const { return plan_cache_->stats(); }

  /// expectation(): E[expr | condition], optionally with P[condition]
  /// (Alg. 4.3's getP). Deterministic expressions short-circuit.
  StatusOr<ExpectationResult> Expectation(const ExprPtr& expr,
                                          const Condition& condition,
                                          bool compute_probability) const;

  /// conf(): P[condition] for a conjunctive condition.
  StatusOr<ExpectationResult> Confidence(const Condition& condition) const;

  /// aconf(): P[c1 OR c2 OR ...] for the bag-encoded disjuncts of one
  /// distinct row group. Uses inclusion-exclusion over exact/estimated
  /// conjunction probabilities for few disjuncts, joint Monte Carlo
  /// otherwise.
  StatusOr<double> JointConfidence(
      const std::vector<Condition>& disjuncts) const;

  /// Draws `n` samples of expr conditioned on condition (the *_hist
  /// operators build histograms from these). Unsatisfiable condition
  /// yields an empty vector.
  StatusOr<std::vector<double>> SampleConditional(const ExprPtr& expr,
                                                  const Condition& condition,
                                                  size_t n) const;

 private:
  struct GroupPlan;
  struct ChunkOutcome;
  struct PlanBatches;

  /// Builds per-group strategy plans. Sets *inconsistent when the
  /// condition is unsatisfiable. Structure-only planning decisions come
  /// from the shape cache when possible.
  StatusOr<std::vector<GroupPlan>> PlanGroups(const Condition& condition,
                                              const VarSet& target_vars,
                                              bool* inconsistent) const;

  /// Samples one accepted joint draw for a group. Returns false when the
  /// attempt budget collapsed without acceptance (caller decides whether
  /// that means "unsatisfiable" or "switch to Metropolis").
  /// `attempt_budget` bounds *total_attempts for this shard.
  StatusOr<bool> SampleGroupOnce(GroupPlan* plan, uint64_t sample_index,
                                 Assignment* assignment,
                                 size_t* total_attempts,
                                 size_t attempt_budget) const;

  /// Runs the expectation sampling loop over sample indices
  /// [begin, end) against `plans` (only target-touching groups sample),
  /// as chunk `chunk_index` of the schedule. On a genuine budget
  /// collapse the chunk lowers *first_collapsed to its own index;
  /// chunks strictly after the recorded index abort early (their
  /// outcomes are discarded by the in-order fold, so the abort never
  /// shows in results — see SampleConditional for why a plain boolean
  /// flag would not be order-safe).
  ChunkOutcome RunExpectationChunk(std::vector<GroupPlan>* plans,
                                   const ExprPtr& expr, uint64_t begin,
                                   uint64_t end, size_t attempt_budget,
                                   size_t chunk_index,
                                   std::atomic<uint64_t>* first_collapsed)
      const;

  /// True when every target-touching plan can take the batched draw path
  /// for a whole chunk: no Metropolis chain, no atoms to re-check, no CDF
  /// windows — i.e. the scalar loop would deterministically accept every
  /// sample on its first attempt, so pre-drawing the chunk's whole range
  /// per variable is observationally identical.
  bool BatchEligible(const std::vector<GroupPlan>& plans) const;

  /// Pre-draws `len` consecutive samples starting at absolute index
  /// `sample_begin` (attempt `attempt`) for every variable of every
  /// target-touching plan, one GenerateBatch call per (plan, var_id).
  Status FillPlanBatches(const std::vector<GroupPlan>& plans,
                         uint64_t sample_begin, uint64_t len,
                         uint64_t attempt, PlanBatches* out) const;

  /// Attempt budget for one shard of `chunk_len` samples out of a
  /// schedule of `schedule_len`. The pilot shard (chunk 0) gets the full
  /// max_total_attempts so hard-but-satisfiable conditions keep the
  /// serial engine's spurious-collapse threshold; later shards get a
  /// proportional share with a floor, and the fold-side ledger bounds
  /// their sum.
  size_t ChunkAttemptBudget(size_t chunk_len, size_t schedule_len,
                            bool pilot = false) const;

  /// The shared pilot-shard/chain-mode/budget chunk driver behind
  /// Expectation and SampleConditional (single definition so their
  /// collapse semantics cannot silently diverge). Splits the index
  /// space [0, cap) into the chunk_samples schedule and:
  ///   1. runs chunk 0 serially on `plans` (Metropolis switch armed)
  ///      with the full pilot attempt budget,
  ///   2. derives the later-shard budget from the pilot's observed
  ///      per-item cost via `cost(pilot) -> (produced, attempts)` (4x
  ///      slack, floored at the proportional share),
  ///   3. finishes the schedule serially on `plans` when the pilot
  ///      switched a target group to Metropolis (chains are sequential),
  ///      otherwise as parallel waves over per-chunk CloneForChunk
  ///      copies of `plans`.
  /// Every chunk is dispatched as `run(plans_or_clone, chunk_index,
  /// begin, end, attempt_budget, out)` and folded IN CHUNK ORDER via
  /// `fold(chunk_index, out, cloned)`; fold returns false to stop
  /// (error, collapse, or adaptive stopping) and owns all accumulation —
  /// including folding clone counters back when `cloned` is true.
  template <typename Outcome, typename Run, typename Cost, typename Fold>
  void RunPilotedSchedule(std::vector<GroupPlan>* plans, uint64_t cap,
                          const Run& run, const Cost& cost,
                          const Fold& fold) const;

  /// Exact probability of a single-variable interval-constrained group.
  StatusOr<double> ExactGroupProbability(const GroupPlan& plan) const;

  /// MC estimate of P[group atoms] for groups not touching the target.
  StatusOr<double> EstimateGroupProbability(GroupPlan* plan,
                                            size_t* total_attempts) const;

  /// Attempts exact numeric integration of E[expr | plan's interval].
  /// Returns nullopt when the shape does not qualify.
  StatusOr<std::optional<double>> TryNumericIntegration(
      const ExprPtr& expr, const GroupPlan& plan) const;

  const VariablePool* pool_;
  SamplingOptions options_;
  /// Shared (and internally synchronized) across engine copies.
  std::shared_ptr<PlanCache> plan_cache_;
  /// Shared materialized-result index; null when not attached.
  std::shared_ptr<ExpectationIndex> result_index_;
};

}  // namespace pip

#endif  // PIP_SAMPLING_EXPECTATION_H_
