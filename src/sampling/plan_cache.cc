#include "src/sampling/plan_cache.h"

#include <map>

#include "src/expr/expr.h"

namespace pip {

namespace {

/// Canonicalizing serializer state: var ids numbered by first appearance.
struct KeyBuilder {
  const VariablePool* pool;
  std::map<uint64_t, size_t> id_canon;
  std::vector<VarRef> canon_vars;
  std::map<VarRef, size_t> slot_of;
  std::string out;

  void AppendVar(const VarRef& v) {
    auto [it, inserted] = id_canon.emplace(v.var_id, id_canon.size());
    if (slot_of.emplace(v, canon_vars.size()).second) {
      canon_vars.push_back(v);
    }
    out += 'v';
    out += std::to_string(it->second);
    out += '.';
    out += std::to_string(v.component);
    out += ':';
    // The class name pins capabilities (CDF/PDF/finite domain) and the
    // component count, so skeleton decisions transfer between rows.
    auto info = pool->Info(v.var_id);
    out += info.ok() ? info.value()->class_name : "?";
  }

  void AppendExpr(const Expr& e) {
    switch (e.op()) {
      case ExprOp::kConst:
        // Constants abstract to their type: numeric-ness decides exact
        // eligibility, the value itself is per-row data.
        out += 'c';
        out += std::to_string(static_cast<int>(e.value().type()));
        return;
      case ExprOp::kVar:
        AppendVar(e.var());
        return;
      case ExprOp::kFunc:
        out += 'f';
        out += std::to_string(static_cast<int>(e.func()));
        break;
      case ExprOp::kAdd:
        out += '+';
        break;
      case ExprOp::kSub:
        out += '-';
        break;
      case ExprOp::kMul:
        out += '*';
        break;
      case ExprOp::kDiv:
        out += '/';
        break;
      case ExprOp::kNeg:
        out += '~';
        break;
    }
    out += '(';
    for (const auto& child : e.children()) AppendExpr(*child);
    out += ')';
  }
};

}  // namespace

std::string PlanCache::ShapeKey(const Condition& condition,
                                const VarSet& target_vars,
                                const VariablePool& pool, uint32_t flag_bits,
                                std::vector<VarRef>* canon_vars) {
  KeyBuilder b;
  b.pool = &pool;
  // Registry generation first: re-registering a plugin under an existing
  // name changes capabilities behind an unchanged class name, so skeletons
  // built before the swap must not be served after it.
  b.out += 'G';
  b.out += std::to_string(pool.registry().generation());
  b.out += "|F";
  b.out += std::to_string(flag_bits);
  for (const auto& atom : condition.atoms()) {
    b.out += "|A";
    b.out += std::to_string(static_cast<int>(atom.op()));
    b.out += ':';
    b.AppendExpr(*atom.lhs());
    b.out += '?';
    b.AppendExpr(*atom.rhs());
  }
  b.out += "|T:";
  for (const VarRef& v : target_vars) b.AppendVar(v);
  canon_vars->clear();
  *canon_vars = std::move(b.canon_vars);
  return std::move(b.out);
}

std::shared_ptr<const PlanSkeleton> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PlanSkeleton> skeleton) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.emplace(key, std::move(skeleton));
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pip
