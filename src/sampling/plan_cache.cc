#include "src/sampling/plan_cache.h"

#include "src/sampling/shape_key.h"

namespace pip {

std::string PlanCache::ShapeKey(const Condition& condition,
                                const VarSet& target_vars,
                                const VariablePool& pool, uint32_t flag_bits,
                                std::vector<VarRef>* canon_vars) {
  // One serializer (shape_key.cc) feeds both this cache and the
  // expectation index, so the two cannot drift on what "same shape"
  // means.
  return PlanShapeKey(condition, target_vars, pool, flag_bits, canon_vars);
}

std::shared_ptr<const PlanSkeleton> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PlanSkeleton> skeleton) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.emplace(key, std::move(skeleton));
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pip
