#include "src/sampling/expectation.h"

#include <cmath>

#include "src/common/running_stats.h"
#include "src/common/special_math.h"
#include "src/sampling/metropolis.h"

namespace pip {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Views an atom as (Var op Const); flips sides when the variable is on
/// the right. Returns false when the atom has another shape.
bool AsVarConst(const ConstraintAtom& atom, VarRef* var, CmpOp* op,
                double* constant) {
  const Expr* var_side = nullptr;
  const Expr* const_side = nullptr;
  *op = atom.op();
  if (atom.lhs()->op() == ExprOp::kVar && atom.rhs()->IsConstant()) {
    var_side = atom.lhs().get();
    const_side = atom.rhs().get();
  } else if (atom.rhs()->op() == ExprOp::kVar && atom.lhs()->IsConstant()) {
    var_side = atom.rhs().get();
    const_side = atom.lhs().get();
    *op = FlipCmp(*op);
  } else {
    return false;
  }
  auto d = const_side->value().AsDouble();
  if (!d.ok()) return false;
  *var = var_side->var();
  *constant = d.value();
  return true;
}

/// One quantile-window draw, strictly inside the open interval (0, 1):
/// rounding to an absolute endpoint would push an unbounded support's
/// quantile (InverseCdf(0) = -inf, InverseCdf(1) = +inf) into the sample,
/// and a one-sided window leaves that endpoint atom-satisfying.
double WindowDraw(RandomStream* stream, double lo, double hi) {
  return ClampUnitOpen(lo + (hi - lo) * stream->NextOpenUniform());
}

/// Recursive adaptive Simpson quadrature. `ok` is cleared if the integrand
/// ever fails to evaluate; the result is then meaningless and the caller
/// falls back to sampling.
double AdaptiveSimpson(const std::function<StatusOr<double>(double)>& f,
                       double a, double b, double fa, double fm, double fb,
                       double tolerance, int depth, bool* ok) {
  if (!*ok) return 0.0;
  double m = 0.5 * (a + b);
  double lm = 0.5 * (a + m), rm = 0.5 * (m + b);
  auto flm_or = f(lm);
  auto frm_or = f(rm);
  if (!flm_or.ok() || !frm_or.ok()) {
    *ok = false;
    return 0.0;
  }
  double flm = flm_or.value(), frm = frm_or.value();
  double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tolerance) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpson(f, a, m, fa, flm, fm, 0.5 * tolerance, depth - 1,
                         ok) +
         AdaptiveSimpson(f, m, b, fm, frm, fb, 0.5 * tolerance, depth - 1,
                         ok);
}

}  // namespace

/// Per-group execution plan: strategy choices plus runtime counters.
struct SamplingEngine::GroupPlan {
  std::vector<VarRef> vars;            // All components, ordered.
  std::vector<uint64_t> var_ids;       // Distinct ids, ordered.
  std::vector<ConstraintAtom> atoms;   // The group's constraints.
  bool touches_target = false;

  /// Quantile-space sampling window per var (1 entry per vars[i]);
  /// [0,1] means unconstrained.
  std::vector<double> window_lo, window_hi;
  std::vector<bool> cdf_constrained;
  double window_prob = 1.0;  // Product of window widths.

  bool exact = false;        // Exact CDF integration available.
  double exact_prob = 1.0;

  // Runtime counters (Alg. 4.3's N and Count[K]).
  size_t accepted = 0;
  size_t attempts = 0;
  std::unique_ptr<MetropolisSampler> metropolis;
  uint64_t chain_key = 0;
  ConsistencyResult consistency;  // Shared bounds (copied per group).
};

StatusOr<std::vector<SamplingEngine::GroupPlan>> SamplingEngine::PlanGroups(
    const Condition& condition, const VarSet& target_vars,
    bool* inconsistent) const {
  *inconsistent = false;
  if (condition.IsKnownFalse()) {
    *inconsistent = true;
    return std::vector<GroupPlan>{};
  }

  ConsistencyResult consistency = CheckConsistency(condition, *pool_);
  if (consistency.inconsistent()) {
    *inconsistent = true;
    return std::vector<GroupPlan>{};
  }

  std::vector<VariableGroup> groups;
  if (options_.use_independence) {
    groups = PartitionIndependent(condition, target_vars);
  } else {
    // Ablation mode: one monolithic group.
    VariableGroup g;
    g.vars = condition.Variables();
    g.vars.insert(target_vars.begin(), target_vars.end());
    for (size_t i = 0; i < condition.atoms().size(); ++i) {
      g.atom_indices.push_back(i);
    }
    g.touches_target = !target_vars.empty();
    if (!g.vars.empty()) groups.push_back(std::move(g));
  }

  std::vector<GroupPlan> plans;
  plans.reserve(groups.size());
  size_t group_index = 0;
  for (const auto& g : groups) {
    GroupPlan plan;
    plan.vars.assign(g.vars.begin(), g.vars.end());
    for (const VarRef& v : plan.vars) {
      if (plan.var_ids.empty() || plan.var_ids.back() != v.var_id) {
        plan.var_ids.push_back(v.var_id);
      }
    }
    for (size_t idx : g.atom_indices) {
      plan.atoms.push_back(condition.atoms()[idx]);
    }
    plan.touches_target = g.touches_target;
    plan.consistency = consistency;
    // Chain key: stable per (condition, group) so Metropolis chains are
    // replayable.
    uint64_t atoms_hash = 0;
    for (const auto& a : plan.atoms) atoms_hash ^= a.Hash();
    plan.chain_key =
        MixBits(atoms_hash, group_index++, options_.sample_offset, 0x4d48ULL);

    // Exact CDF integration: one variable, every atom var-vs-const.
    if (options_.use_exact_cdf && plan.vars.size() == 1 &&
        !plan.atoms.empty() && pool_->HasCdf(plan.vars[0])) {
      bool all_simple = true;
      bool needs_pmf = false;
      for (const auto& atom : plan.atoms) {
        VarRef v;
        CmpOp op;
        double c;
        if (!AsVarConst(atom, &v, &op, &c)) {
          all_simple = false;
          break;
        }
        if (op == CmpOp::kEq || op == CmpOp::kNe) needs_pmf = true;
      }
      if (all_simple && (!needs_pmf || pool_->HasPdf(plan.vars[0]))) {
        plan.exact = true;
        // exact_prob filled below once windows exist (shares atom parsing).
      }
    }

    // Per-variable CDF windows from the consistency bounds.
    plan.window_lo.assign(plan.vars.size(), 0.0);
    plan.window_hi.assign(plan.vars.size(), 1.0);
    plan.cdf_constrained.assign(plan.vars.size(), false);
    for (size_t i = 0; i < plan.vars.size(); ++i) {
      const VarRef& v = plan.vars[i];
      if (!options_.use_cdf_sampling) continue;
      auto info = pool_->Info(v.var_id);
      if (!info.ok() || info.value()->num_components != 1) continue;
      if (!pool_->HasCdf(v) || !pool_->HasInverseCdf(v)) continue;
      Interval b = plan.consistency.BoundsFor(v);
      if (!b.HasAnyBound()) continue;
      double flo = 0.0, fhi = 1.0;
      if (std::isfinite(b.lo)) {
        // For discrete variables the window must exclude values < ceil(lo)
        // entirely: P[X <= ceil(lo)-1].
        double lo_point =
            info.value()->dist->domain() == DomainKind::kContinuous
                ? b.lo
                : std::ceil(b.lo) - 1.0;
        auto f = pool_->Cdf(v, lo_point);
        if (!f.ok()) continue;
        flo = f.value();
      }
      if (std::isfinite(b.hi)) {
        double hi_point =
            info.value()->dist->domain() == DomainKind::kContinuous
                ? b.hi
                : std::floor(b.hi);
        auto f = pool_->Cdf(v, hi_point);
        if (!f.ok()) continue;
        fhi = f.value();
      }
      if (fhi <= flo) {
        // Zero-mass window: the condition is unsatisfiable in measure.
        *inconsistent = true;
        return std::vector<GroupPlan>{};
      }
      plan.window_lo[i] = flo;
      plan.window_hi[i] = fhi;
      plan.cdf_constrained[i] = (flo > 0.0 || fhi < 1.0);
      plan.window_prob *= (fhi - flo);
    }

    if (plan.exact) {
      PIP_ASSIGN_OR_RETURN(plan.exact_prob, ExactGroupProbability(plan));
      if (plan.exact_prob <= 0.0) {
        *inconsistent = true;
        return std::vector<GroupPlan>{};
      }
    }

    plans.push_back(std::move(plan));
  }
  return plans;
}

StatusOr<double> SamplingEngine::ExactGroupProbability(
    const GroupPlan& plan) const {
  const VarRef v = plan.vars[0];
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, pool_->Info(v.var_id));
  bool discrete = info->dist->domain() != DomainKind::kContinuous;

  // Fold the atoms into one interval, tracking strictness (it matters on
  // the integer lattice of discrete variables) plus equality /
  // disequality pins.
  double lo = -kInf, hi = kInf;
  bool lo_strict = false, hi_strict = false;
  std::optional<double> eq;
  std::vector<double> ne;
  for (const auto& atom : plan.atoms) {
    VarRef av;
    CmpOp op;
    double c;
    if (!AsVarConst(atom, &av, &op, &c)) {
      return Status::Internal("exact plan with a non var-vs-const atom");
    }
    switch (op) {
      case CmpOp::kGt:
        if (c > lo || (c == lo && !lo_strict)) {
          lo = c;
          lo_strict = true;
        }
        break;
      case CmpOp::kGe:
        if (c > lo) {
          lo = c;
          lo_strict = false;
        }
        break;
      case CmpOp::kLt:
        if (c < hi || (c == hi && !hi_strict)) {
          hi = c;
          hi_strict = true;
        }
        break;
      case CmpOp::kLe:
        if (c < hi) {
          hi = c;
          hi_strict = false;
        }
        break;
      case CmpOp::kEq:
        if (eq && *eq != c) return 0.0;
        eq = c;
        break;
      case CmpOp::kNe:
        ne.push_back(c);
        break;
    }
  }

  auto cdf = [&](double x) -> StatusOr<double> { return pool_->Cdf(v, x); };

  if (!discrete) {
    if (eq) return 0.0;  // Zero mass (disequalities have full mass).
    if (hi <= lo) return 0.0;
    double fhi = std::isfinite(hi) ? ({
      PIP_ASSIGN_OR_RETURN(double f, cdf(hi));
      f;
    })
                                   : 1.0;
    double flo = std::isfinite(lo) ? ({
      PIP_ASSIGN_OR_RETURN(double f, cdf(lo));
      f;
    })
                                   : 0.0;
    return std::max(0.0, fhi - flo);
  }

  // Discrete (integer-lattice) case.
  double lo_int = std::isfinite(lo)
                      ? (lo_strict ? std::floor(lo) + 1.0 : std::ceil(lo))
                      : -kInf;
  double hi_int = std::isfinite(hi)
                      ? (hi_strict ? std::ceil(hi) - 1.0 : std::floor(hi))
                      : kInf;
  if (lo_int > hi_int) return 0.0;

  auto pmf = [&](double k) -> StatusOr<double> { return pool_->Pdf(v, k); };

  if (eq) {
    if (*eq < lo_int || *eq > hi_int) return 0.0;
    for (double x : ne) {
      if (x == *eq) return 0.0;
    }
    return pmf(*eq);
  }

  double fhi = std::isfinite(hi_int) ? ({
    PIP_ASSIGN_OR_RETURN(double f, cdf(hi_int));
    f;
  })
                                     : 1.0;
  double flo = std::isfinite(lo_int) ? ({
    PIP_ASSIGN_OR_RETURN(double f, cdf(lo_int - 1.0));
    f;
  })
                                     : 0.0;
  double p = std::max(0.0, fhi - flo);
  // Remove disequality pins inside the window (deduplicated).
  std::sort(ne.begin(), ne.end());
  ne.erase(std::unique(ne.begin(), ne.end()), ne.end());
  for (double x : ne) {
    if (std::floor(x) != x) continue;  // Off-lattice: zero mass anyway.
    if (x < lo_int || x > hi_int) continue;
    PIP_ASSIGN_OR_RETURN(double m, pmf(x));
    p -= m;
  }
  return std::max(0.0, p);
}

StatusOr<std::optional<double>> SamplingEngine::TryNumericIntegration(
    const ExprPtr& expr, const GroupPlan& plan) const {
  if (!options_.use_numeric_integration) return std::optional<double>{};
  if (plan.vars.size() != 1) return std::optional<double>{};
  const VarRef v = plan.vars[0];
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, pool_->Info(v.var_id));
  if (info->num_components != 1 || !info->dist->HasPdf() ||
      !info->dist->HasCdf()) {
    return std::optional<double>{};
  }
  // Constraints must reduce to an interval on v (the exact-plan shape) or
  // be absent entirely.
  if (!plan.atoms.empty() && !plan.exact) return std::optional<double>{};

  bool discrete = info->dist->domain() != DomainKind::kContinuous;
  Interval region =
      plan.consistency.BoundsFor(v).Intersect(pool_->Support(v));
  // Refold the atoms to recover lattice strictness (the bounds map stores
  // closed intervals only).
  double lo = region.lo, hi = region.hi;
  std::vector<double> excluded;
  for (const auto& atom : plan.atoms) {
    VarRef av;
    CmpOp op;
    double c;
    if (!AsVarConst(atom, &av, &op, &c)) return std::optional<double>{};
    switch (op) {
      case CmpOp::kGt:
        lo = std::max(lo, discrete ? std::floor(c) + 1.0 : c);
        break;
      case CmpOp::kGe:
        lo = std::max(lo, discrete ? std::ceil(c) : c);
        break;
      case CmpOp::kLt:
        hi = std::min(hi, discrete ? std::ceil(c) - 1.0 : c);
        break;
      case CmpOp::kLe:
        hi = std::min(hi, discrete ? std::floor(c) : c);
        break;
      case CmpOp::kEq:
        lo = std::max(lo, c);
        hi = std::min(hi, c);
        break;
      case CmpOp::kNe:
        if (discrete) excluded.push_back(c);
        break;
    }
  }
  if (lo > hi) return std::optional<double>{};

  Assignment point;
  auto g = [&](double x) -> StatusOr<double> {
    point.Set(v, x);
    return expr->EvalDouble(point);
  };

  if (discrete) {
    // Exact lattice sum over [lo, hi], tail-clipped by quantile for
    // unbounded domains.
    double k_lo = std::ceil(lo);
    double k_hi = hi;
    if (!std::isfinite(k_hi)) {
      if (!info->dist->HasInverseCdf()) return std::optional<double>{};
      PIP_ASSIGN_OR_RETURN(
          k_hi, info->dist->InverseCdf(info->params, 0, 1.0 - 1e-14));
    }
    if (!std::isfinite(k_lo) || k_hi - k_lo > 2e6) {
      return std::optional<double>{};
    }
    double numerator = 0.0, mass = 0.0;
    for (double k = k_lo; k <= k_hi; k += 1.0) {
      bool skip = false;
      for (double x : excluded) skip = skip || (x == k);
      if (skip) continue;
      PIP_ASSIGN_OR_RETURN(double pmf, pool_->Pdf(v, k));
      if (pmf <= 0.0) continue;
      auto value = g(k);
      if (!value.ok()) return std::optional<double>{};
      numerator += pmf * value.value();
      mass += pmf;
    }
    if (mass <= 0.0) return std::optional<double>{};
    return std::optional<double>{numerator / mass};
  }

  // Continuous: clip unbounded endpoints at extreme quantiles.
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    if (!info->dist->HasInverseCdf()) return std::optional<double>{};
    if (!std::isfinite(lo)) {
      PIP_ASSIGN_OR_RETURN(lo, info->dist->InverseCdf(info->params, 0, 1e-14));
    }
    if (!std::isfinite(hi)) {
      PIP_ASSIGN_OR_RETURN(
          hi, info->dist->InverseCdf(info->params, 0, 1.0 - 1e-14));
    }
  }
  if (!(hi > lo) || !std::isfinite(lo) || !std::isfinite(hi)) {
    return std::optional<double>{};
  }
  PIP_ASSIGN_OR_RETURN(double flo, pool_->Cdf(v, lo));
  PIP_ASSIGN_OR_RETURN(double fhi, pool_->Cdf(v, hi));
  double mass = fhi - flo;
  if (mass <= 1e-300) return std::optional<double>{};

  auto integrand = [&](double x) -> StatusOr<double> {
    PIP_ASSIGN_OR_RETURN(double pdf, pool_->Pdf(v, x));
    if (!std::isfinite(pdf)) {
      return Status::OutOfRange("pdf singularity");  // Fallback to sampling.
    }
    PIP_ASSIGN_OR_RETURN(double value, g(x));
    return pdf * value;
  };
  auto fa = integrand(lo);
  auto fm = integrand(0.5 * (lo + hi));
  auto fb = integrand(hi);
  if (!fa.ok() || !fm.ok() || !fb.ok()) return std::optional<double>{};
  bool ok = true;
  double numerator = AdaptiveSimpson(
      integrand, lo, hi, fa.value(), fm.value(), fb.value(),
      options_.integration_tolerance * std::max(1.0, mass), 40, &ok);
  if (!ok || !std::isfinite(numerator)) return std::optional<double>{};
  return std::optional<double>{numerator / mass};
}

StatusOr<bool> SamplingEngine::SampleGroupOnce(GroupPlan* plan,
                                               uint64_t sample_index,
                                               Assignment* assignment,
                                               size_t* total_attempts) const {
  // Metropolis mode: the chain hands us a constrained sample directly.
  if (plan->metropolis != nullptr) {
    PIP_RETURN_IF_ERROR(plan->metropolis->NextSample(assignment));
    ++plan->accepted;
    return true;
  }

  std::vector<double> joint;
  for (uint64_t attempt = 0;; ++attempt) {
    if (++(*total_attempts) > options_.max_total_attempts) return false;
    ++plan->attempts;

    // Draw every variable of the group.
    for (size_t i = 0; i < plan->vars.size(); ++i) {
      const VarRef& v = plan->vars[i];
      if (plan->cdf_constrained[i]) {
        SampleContext ctx{pool_->seed(), v.var_id, sample_index, attempt};
        RandomStream stream = ctx.StreamFor(v.component);
        double u =
            WindowDraw(&stream, plan->window_lo[i], plan->window_hi[i]);
        PIP_ASSIGN_OR_RETURN(double x, pool_->InverseCdf(v, u));
        assignment->Set(v, x);
      } else if (i == 0 || plan->vars[i].var_id != plan->vars[i - 1].var_id) {
        // Natural joint draw of all components of this id.
        PIP_RETURN_IF_ERROR(
            pool_->GenerateJoint(v.var_id, sample_index, attempt, &joint));
        for (uint32_t comp = 0; comp < joint.size(); ++comp) {
          assignment->Set(VarRef{v.var_id, comp}, joint[comp]);
        }
      }
    }

    // Accept iff every group atom holds.
    bool ok = true;
    for (const auto& atom : plan->atoms) {
      PIP_ASSIGN_OR_RETURN(bool t, atom.Eval(*assignment));
      if (!t) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++plan->accepted;
      return true;
    }

    // Metropolis switch check (Alg. 4.3 lines 19-24): rejection rate over
    // this group's lifetime exceeded the threshold.
    if (options_.use_metropolis && plan->attempts >= options_.metropolis_check_after) {
      double rejection_rate =
          1.0 - static_cast<double>(plan->accepted) /
                    static_cast<double>(plan->attempts);
      if (rejection_rate > options_.metropolis_threshold &&
          MetropolisSampler::CanHandle(*pool_, plan->vars)) {
        auto sampler = std::make_unique<MetropolisSampler>(
            pool_, plan->vars, plan->atoms, plan->consistency,
            plan->chain_key);
        Status init = sampler->Init();
        if (!init.ok()) return false;  // "unable to find a start point".
        plan->metropolis = std::move(sampler);
        PIP_RETURN_IF_ERROR(plan->metropolis->NextSample(assignment));
        ++plan->accepted;
        return true;
      }
    }
  }
}

StatusOr<double> SamplingEngine::EstimateGroupProbability(
    GroupPlan* plan, size_t* total_attempts) const {
  if (plan->exact) return plan->exact_prob;
  if (plan->atoms.empty()) return 1.0;

  // Fresh Monte Carlo estimate of P[atoms | windows] * window_prob. The
  // attempt-key marker decorrelates these draws from the expectation
  // loop's draws.
  constexpr uint64_t kEstimateMarker = 0xE571ULL << 32;
  const double z = M_SQRT2 * ErfInv(1.0 - options_.epsilon);
  size_t n = 0, hits = 0;
  std::vector<double> joint;
  Assignment a;
  size_t cap = options_.fixed_samples > 0
                   ? std::max<size_t>(options_.fixed_samples, 256)
                   : options_.max_samples;
  while (true) {
    if (++(*total_attempts) > options_.max_total_attempts) break;
    uint64_t sample_index = options_.sample_offset + n;
    for (size_t i = 0; i < plan->vars.size(); ++i) {
      const VarRef& v = plan->vars[i];
      if (plan->cdf_constrained[i]) {
        SampleContext ctx{pool_->seed(), v.var_id, sample_index,
                          kEstimateMarker};
        RandomStream stream = ctx.StreamFor(v.component);
        double u =
            WindowDraw(&stream, plan->window_lo[i], plan->window_hi[i]);
        PIP_ASSIGN_OR_RETURN(double x, pool_->InverseCdf(v, u));
        a.Set(v, x);
      } else if (i == 0 || plan->vars[i].var_id != plan->vars[i - 1].var_id) {
        PIP_RETURN_IF_ERROR(pool_->GenerateJoint(v.var_id, sample_index,
                                                 kEstimateMarker, &joint));
        for (uint32_t comp = 0; comp < joint.size(); ++comp) {
          a.Set(VarRef{v.var_id, comp}, joint[comp]);
        }
      }
    }
    bool ok = true;
    for (const auto& atom : plan->atoms) {
      PIP_ASSIGN_OR_RETURN(bool t, atom.Eval(a));
      if (!t) {
        ok = false;
        break;
      }
    }
    ++n;
    if (ok) ++hits;
    if (n >= cap) break;
    if (n >= options_.min_samples && options_.fixed_samples == 0) {
      double p = static_cast<double>(hits) / static_cast<double>(n);
      double half_width = z * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                        static_cast<double>(n));
      if (half_width <= options_.delta * std::max(p, 0.01)) break;
    }
  }
  double p = n > 0 ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  return p * plan->window_prob;
}

StatusOr<ExpectationResult> SamplingEngine::Expectation(
    const ExprPtr& expr, const Condition& condition,
    bool compute_probability) const {
  ExpectationResult result;
  if (condition.IsKnownFalse()) {
    result.expectation = kNan;
    result.probability = 0.0;
    result.exact = true;
    return result;
  }

  VarSet target_vars = expr->Variables();
  bool inconsistent = false;
  PIP_ASSIGN_OR_RETURN(std::vector<GroupPlan> plans,
                       PlanGroups(condition, target_vars, &inconsistent));
  if (inconsistent) {
    result.expectation = kNan;
    result.probability = 0.0;
    result.exact = true;
    return result;
  }

  size_t total_attempts = 0;
  bool sampled = false;

  // ---- Expectation over the target-touching groups. ----
  bool integrated = false;
  if (target_vars.empty()) {
    PIP_ASSIGN_OR_RETURN(result.expectation, expr->EvalDouble(Assignment()));
    integrated = true;
  } else {
    // Exact path: a single-variable target group with interval constraints
    // integrates in closed numeric form, sidestepping sampling entirely.
    GroupPlan* target_plan = nullptr;
    size_t target_plan_count = 0;
    for (auto& plan : plans) {
      if (plan.touches_target) {
        target_plan = &plan;
        ++target_plan_count;
      }
    }
    if (target_plan_count == 1) {
      PIP_ASSIGN_OR_RETURN(std::optional<double> exact_value,
                           TryNumericIntegration(expr, *target_plan));
      if (exact_value.has_value()) {
        result.expectation = *exact_value;
        integrated = true;
      }
    }
  }
  if (!integrated) {
    RunningStats stats;
    const double z = M_SQRT2 * ErfInv(1.0 - options_.epsilon);
    Assignment assignment;
    for (size_t i = 0;; ++i) {
      // Stopping rule (the epsilon-delta goal of Alg. 4.3 line 12).
      if (options_.fixed_samples > 0) {
        if (i >= options_.fixed_samples) break;
      } else {
        if (i >= options_.max_samples) break;
        if (i >= options_.min_samples) {
          double mean = std::fabs(stats.mean());
          double half_width = z * stats.standard_error();
          if (half_width <= options_.delta * std::max(mean, 1e-9)) break;
        }
      }
      assignment.Clear();
      bool got_all = true;
      for (auto& plan : plans) {
        if (!plan.touches_target) continue;
        PIP_ASSIGN_OR_RETURN(
            bool ok, SampleGroupOnce(&plan, options_.sample_offset + i,
                                     &assignment, &total_attempts));
        if (!ok) {
          got_all = false;
          break;
        }
      }
      if (!got_all) {
        // Sampling budget collapsed: the condition region is effectively
        // unreachable. Per the paper, report NAN.
        result.expectation = kNan;
        result.probability = 0.0;
        result.attempts = total_attempts;
        return result;
      }
      PIP_ASSIGN_OR_RETURN(double value, expr->EvalDouble(assignment));
      stats.Add(value);
      sampled = true;
    }
    result.expectation = stats.mean();
    result.samples_used = static_cast<size_t>(stats.count());
  }

  // ---- Probability of the full condition. ----
  if (compute_probability) {
    double prob = 1.0;
    for (auto& plan : plans) {
      if (plan.exact) {
        prob *= plan.exact_prob;
      } else if (plan.metropolis != nullptr) {
        // "Metropolis doesn't give us a probability" — estimate the group
        // separately by plain (windowed) Monte Carlo.
        PIP_ASSIGN_OR_RETURN(double p,
                             EstimateGroupProbability(&plan, &total_attempts));
        prob *= p;
      } else if (plan.touches_target && plan.attempts > 0) {
        // Free acceptance-rate estimate from the expectation loop
        // (Alg. 4.3 line 29), corrected by the CDF window volume.
        prob *= plan.window_prob * static_cast<double>(plan.accepted) /
                static_cast<double>(plan.attempts);
      } else if (!plan.atoms.empty()) {
        PIP_ASSIGN_OR_RETURN(double p,
                             EstimateGroupProbability(&plan, &total_attempts));
        prob *= p;
        sampled = sampled || !plan.exact;
      }
    }
    result.probability = prob;
  }

  result.attempts = total_attempts;
  result.exact = !sampled;
  return result;
}

StatusOr<ExpectationResult> SamplingEngine::Confidence(
    const Condition& condition) const {
  // conf() is expectation of the constant 1 with getP (the probability is
  // the interesting output).
  PIP_ASSIGN_OR_RETURN(
      ExpectationResult r,
      Expectation(Expr::Constant(1.0), condition, /*compute_probability=*/true));
  if (std::isnan(r.expectation)) r.probability = 0.0;
  return r;
}

StatusOr<double> SamplingEngine::JointConfidence(
    const std::vector<Condition>& disjuncts) const {
  std::vector<const Condition*> live;
  for (const auto& d : disjuncts) {
    if (d.IsKnownFalse()) continue;
    if (d.IsTrue()) return 1.0;
    live.push_back(&d);
  }
  if (live.empty()) return 0.0;
  if (live.size() == 1) {
    PIP_ASSIGN_OR_RETURN(ExpectationResult r, Confidence(*live[0]));
    return r.probability;
  }

  if (live.size() <= 6) {
    // Inclusion-exclusion over conjunction probabilities; each conjunction
    // gets the full per-group treatment (often exact via CDFs).
    double total = 0.0;
    size_t n = live.size();
    for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
      Condition conj;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (size_t{1} << i)) conj = conj.And(*live[i]);
      }
      double sign = (__builtin_popcountll(mask) % 2 == 1) ? 1.0 : -1.0;
      if (conj.IsKnownFalse()) continue;
      PIP_ASSIGN_OR_RETURN(ExpectationResult r, Confidence(conj));
      total += sign * r.probability;
    }
    return std::min(1.0, std::max(0.0, total));
  }

  // Many disjuncts: joint Monte Carlo over the union of variables.
  VarSet all_vars;
  for (const auto* d : live) d->CollectVariables(&all_vars);
  std::vector<uint64_t> ids;
  for (const VarRef& v : all_vars) {
    if (ids.empty() || ids.back() != v.var_id) ids.push_back(v.var_id);
  }
  const double z = M_SQRT2 * ErfInv(1.0 - options_.epsilon);
  size_t n = 0, hits = 0;
  std::vector<double> joint;
  Assignment a;
  size_t cap = options_.fixed_samples > 0 ? options_.fixed_samples
                                          : options_.max_samples;
  constexpr uint64_t kAconfMarker = 0xAC0FULL << 32;
  while (n < cap) {
    uint64_t sample_index = options_.sample_offset + n;
    for (uint64_t id : ids) {
      PIP_RETURN_IF_ERROR(
          pool_->GenerateJoint(id, sample_index, kAconfMarker, &joint));
      for (uint32_t comp = 0; comp < joint.size(); ++comp) {
        a.Set(VarRef{id, comp}, joint[comp]);
      }
    }
    bool any = false;
    for (const auto* d : live) {
      PIP_ASSIGN_OR_RETURN(bool t, d->Eval(a));
      if (t) {
        any = true;
        break;
      }
    }
    ++n;
    if (any) ++hits;
    if (n >= options_.min_samples && options_.fixed_samples == 0) {
      double p = static_cast<double>(hits) / static_cast<double>(n);
      double half_width = z * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                        static_cast<double>(n));
      if (half_width <= options_.delta * std::max(p, 0.01)) break;
    }
  }
  return n > 0 ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
}

StatusOr<std::vector<double>> SamplingEngine::SampleConditional(
    const ExprPtr& expr, const Condition& condition, size_t n) const {
  std::vector<double> samples;
  if (condition.IsKnownFalse()) return samples;
  VarSet target_vars = expr->Variables();
  bool inconsistent = false;
  PIP_ASSIGN_OR_RETURN(std::vector<GroupPlan> plans,
                       PlanGroups(condition, target_vars, &inconsistent));
  if (inconsistent) return samples;

  size_t total_attempts = 0;
  Assignment assignment;
  samples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    assignment.Clear();
    bool got_all = true;
    for (auto& plan : plans) {
      if (!plan.touches_target) continue;
      PIP_ASSIGN_OR_RETURN(
          bool ok, SampleGroupOnce(&plan, options_.sample_offset + i,
                                   &assignment, &total_attempts));
      if (!ok) {
        got_all = false;
        break;
      }
    }
    if (!got_all) break;
    PIP_ASSIGN_OR_RETURN(double value, expr->EvalDouble(assignment));
    samples.push_back(value);
  }
  return samples;
}

}  // namespace pip
