#include "src/sampling/expectation.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/running_stats.h"
#include "src/common/special_math.h"
#include "src/common/thread_pool.h"
#include "src/sampling/metropolis.h"
#include "src/sampling/shape_key.h"

namespace pip {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Largest finite discrete domain memoized into a per-plan quantile
/// table. Bigger domains (e.g. a 1e6-rank Zipf) keep going through the
/// distribution's own InverseCdf, which such classes memoize internally.
constexpr size_t kMaxQuantileTable = 4096;

/// Floor of a shard's rejection-attempt budget. The proportional share
/// (max_total_attempts scaled by the shard's fraction of the schedule)
/// can be tiny for small shards; the floor keeps moderately-selective
/// conditions from collapsing spuriously while still bounding the work
/// an unsatisfiable condition can burn per shard.
constexpr size_t kMinChunkAttempts = size_t{1} << 20;

/// Views an atom as (Var op Const); flips sides when the variable is on
/// the right. Returns false when the atom has another shape.
bool AsVarConst(const ConstraintAtom& atom, VarRef* var, CmpOp* op,
                double* constant) {
  const Expr* var_side = nullptr;
  const Expr* const_side = nullptr;
  *op = atom.op();
  if (atom.lhs()->op() == ExprOp::kVar && atom.rhs()->IsConstant()) {
    var_side = atom.lhs().get();
    const_side = atom.rhs().get();
  } else if (atom.rhs()->op() == ExprOp::kVar && atom.lhs()->IsConstant()) {
    var_side = atom.rhs().get();
    const_side = atom.lhs().get();
    *op = FlipCmp(*op);
  } else {
    return false;
  }
  auto d = const_side->value().AsDouble();
  if (!d.ok()) return false;
  *var = var_side->var();
  *constant = d.value();
  return true;
}

/// Shape-level exact-CDF eligibility of one group: a single variable
/// with a CDF, every atom var-vs-numeric-const, and a PMF available when
/// equality/disequality atoms occur. Depends only on structure and class
/// capabilities, so PlanCache skeletons carry the verdict across rows.
bool ExactCdfEligible(const Condition& condition, const VariableGroup& group,
                      const VariablePool& pool) {
  if (group.vars.size() != 1 || group.atom_indices.empty()) return false;
  VarRef v = *group.vars.begin();
  if (!pool.HasCdf(v)) return false;
  bool needs_pmf = false;
  for (size_t idx : group.atom_indices) {
    VarRef av;
    CmpOp op;
    double c;
    if (!AsVarConst(condition.atoms()[idx], &av, &op, &c)) return false;
    if (op == CmpOp::kEq || op == CmpOp::kNe) needs_pmf = true;
  }
  return !needs_pmf || pool.HasPdf(v);
}

/// The shared chunk-wave determinism protocol: runs chunks
/// [start_chunk, ceil(cap / chunk)) of the index space [0, cap),
/// dispatching `run(chunk_index, begin, end, *outcome)` into per-chunk
/// slots and folding outcomes IN CHUNK ORDER via
/// `fold(chunk_index, outcome)` (return false to stop). Wave-limited callers (adaptive stopping,
/// budget ledgers) get waves of `workers` chunks so barrier checks stay
/// frequent and over-run work stays bounded; others dispatch every
/// remaining chunk at once. Every consumer of this driver inherits the
/// same guarantee: which worker ran a chunk never affects what is
/// folded, or in what order.
template <typename Outcome, typename Run, typename Fold>
void RunChunkedWaves(uint64_t cap, size_t chunk, size_t start_chunk,
                     bool wave_limited, size_t num_threads, const Run& run,
                     const Fold& fold) {
  const size_t nchunks = NumChunks(cap, chunk);
  // Clamped to the parallelism budget so a nested (inline) engine call
  // sizes its waves like the serial engine: one chunk per barrier check,
  // no over-computed chunks for the in-order fold to discard. Wave width
  // never affects the folded chunk set — only how much speculative work
  // exists past the stopping point — so this is throughput-only.
  const size_t workers = std::min(ThreadPool::ResolveThreads(num_threads),
                                  ThreadPool::ParallelismBudget());
  size_t c = start_chunk;
  bool stopped = false;
  std::vector<Outcome> wave;
  while (c < nchunks && !stopped) {
    size_t wave_len =
        wave_limited ? std::min(workers, nchunks - c) : nchunks - c;
    wave.assign(wave_len, Outcome{});
    ThreadPool::For(wave_len, num_threads, [&](size_t k) {
      uint64_t begin = static_cast<uint64_t>(c + k) * chunk;
      uint64_t end = std::min<uint64_t>(cap, begin + chunk);
      run(c + k, begin, end, &wave[k]);
    });
    for (size_t k = 0; k < wave_len && !stopped; ++k) {
      if (!fold(c + k, wave[k])) stopped = true;
    }
    c += wave_len;
  }
}

/// One quantile-window draw, strictly inside the open interval (0, 1):
/// rounding to an absolute endpoint would push an unbounded support's
/// quantile (InverseCdf(0) = -inf, InverseCdf(1) = +inf) into the sample,
/// and a one-sided window leaves that endpoint atom-satisfying.
double WindowDraw(RandomStream* stream, double lo, double hi) {
  return ClampUnitOpen(lo + (hi - lo) * stream->NextOpenUniform());
}

/// Per-plan memoized quantile table of a finite discrete variable:
/// domain values ascending with their cumulative masses, built once per
/// plan so the constrained sampler's hot loop never re-walks the
/// distribution's partial sums per attempt (ROADMAP hot-loop item).
/// Unlike CategoricalTable (builtins_discrete.cc), which searches raw
/// parameter vectors, this one is built from DomainValues() — whose
/// contract omits zero-mass points, so every entry here has positive
/// mass and no zero-mass guards are needed. A rounding-tail q above
/// cum.back() lands on the last (positive-mass) value, and any
/// off-by-an-ulp boundary draw is caught by the atom re-check in the
/// rejection loop (it becomes one wasted attempt, never a wrong
/// sample).
struct QuantileTable {
  std::vector<double> values;
  std::vector<double> cum;

  /// Smallest domain value whose cumulative mass reaches p (matching the
  /// discrete InverseCdf convention); the last value for p ~ 1.
  double Quantile(double p) const {
    auto it = std::lower_bound(cum.begin(), cum.end(), p);
    if (it == cum.end()) return values.back();
    return values[static_cast<size_t>(it - cum.begin())];
  }
};

/// Recursive adaptive Simpson quadrature. `ok` is cleared if the integrand
/// ever fails to evaluate; the result is then meaningless and the caller
/// falls back to sampling.
double AdaptiveSimpson(const std::function<StatusOr<double>(double)>& f,
                       double a, double b, double fa, double fm, double fb,
                       double tolerance, int depth, bool* ok) {
  if (!*ok) return 0.0;
  double m = 0.5 * (a + b);
  double lm = 0.5 * (a + m), rm = 0.5 * (m + b);
  auto flm_or = f(lm);
  auto frm_or = f(rm);
  if (!flm_or.ok() || !frm_or.ok()) {
    *ok = false;
    return 0.0;
  }
  double flm = flm_or.value(), frm = frm_or.value();
  double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tolerance) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpson(f, a, m, fa, flm, fm, 0.5 * tolerance, depth - 1,
                         ok) +
         AdaptiveSimpson(f, m, b, fm, frm, fb, 0.5 * tolerance, depth - 1,
                         ok);
}

}  // namespace

/// Per-group execution plan: strategy choices plus runtime counters.
struct SamplingEngine::GroupPlan {
  std::vector<VarRef> vars;            // All components, ordered.
  std::vector<uint64_t> var_ids;       // Distinct ids, ordered.
  std::vector<ConstraintAtom> atoms;   // The group's constraints.
  bool touches_target = false;

  /// Quantile-space sampling window per var (1 entry per vars[i]);
  /// [0,1] means unconstrained.
  std::vector<double> window_lo, window_hi;
  std::vector<bool> cdf_constrained;
  double window_prob = 1.0;  // Product of window widths.

  /// Memoized quantile tables per vars[i] (null = use the
  /// distribution's InverseCdf). Shared by chunk clones.
  std::vector<std::shared_ptr<const QuantileTable>> quantile_tables;

  bool exact = false;        // Exact CDF integration available.
  double exact_prob = 1.0;

  // Runtime counters (Alg. 4.3's N and Count[K]).
  size_t accepted = 0;
  size_t attempts = 0;
  /// Shard clones disable the Metropolis switch: the decision and the
  /// chain live with the pilot shard so the switch never depends on
  /// scheduling (see the Expectation driver).
  bool allow_metropolis = true;
  std::unique_ptr<MetropolisSampler> metropolis;
  uint64_t chain_key = 0;
  ConsistencyResult consistency;  // Shared bounds (copied per group).

  /// A counter-reset copy for one shard of the sample-index space.
  /// `chunk_salt` decorrelates any chain this clone might otherwise seed
  /// (it cannot — allow_metropolis is off — but the salt keeps the key
  /// schedule honest if that ever changes).
  GroupPlan CloneForChunk(uint64_t chunk_salt) const {
    GroupPlan c;
    c.vars = vars;
    c.var_ids = var_ids;
    c.atoms = atoms;
    c.touches_target = touches_target;
    c.window_lo = window_lo;
    c.window_hi = window_hi;
    c.cdf_constrained = cdf_constrained;
    c.window_prob = window_prob;
    c.quantile_tables = quantile_tables;
    c.exact = exact;
    c.exact_prob = exact_prob;
    c.allow_metropolis = false;
    c.chain_key = MixBits(chain_key, chunk_salt, 0x63686e6bULL, 1);
    c.consistency = consistency;
    return c;
  }
};

/// Per-chunk pre-drawn sample buffers for the batched draw path: for each
/// target-touching plan, one sample-major value block per distinct
/// var_id. Filled by one GenerateBatch call per (plan, var_id) — bit-
/// identical to the per-sample GenerateJoint loop it replaces.
struct SamplingEngine::PlanBatches {
  struct VarBatch {
    uint64_t var_id = 0;
    uint32_t ncomp = 1;
    std::vector<double> values;  // len * ncomp, sample-major.
  };
  /// Parallel to the plan vector; empty for non-target plans.
  std::vector<std::vector<VarBatch>> per_plan;
};

/// Result of one shard of the expectation loop.
struct SamplingEngine::ChunkOutcome {
  RunningStats stats;
  size_t attempts = 0;  // Attempt-counter consumption of this shard.
  /// Per-plan counter deltas (clone counters, folded back in order).
  std::vector<size_t> group_accepted, group_attempts;
  bool collapsed = false;  // Attempt budget exhausted mid-shard.
  Status status = Status::OK();
};

StatusOr<std::vector<SamplingEngine::GroupPlan>> SamplingEngine::PlanGroups(
    const Condition& condition, const VarSet& target_vars,
    bool* inconsistent) const {
  *inconsistent = false;
  if (condition.IsKnownFalse()) {
    *inconsistent = true;
    return std::vector<GroupPlan>{};
  }

  ConsistencyResult consistency = CheckConsistency(condition, *pool_);
  if (consistency.inconsistent()) {
    *inconsistent = true;
    return std::vector<GroupPlan>{};
  }

  // Structure-only planning: partition + per-group exact eligibility.
  // Both are pure functions of the condition's *shape*, so rows sharing a
  // shape (Analyze batches, inclusion-exclusion conjunctions) pay them
  // once through the shape cache.
  std::vector<VariableGroup> groups;
  std::vector<bool> exact_eligible;
  if (options_.use_independence) {
    std::vector<VarRef> canon_vars;
    std::string key =
        PlanShapeKey(condition, target_vars, *pool_,
                     PlanShapeFlagBits(options_), &canon_vars);
    std::shared_ptr<const PlanSkeleton> skeleton = plan_cache_->Lookup(key);
    if (skeleton == nullptr) {
      groups = PartitionIndependent(condition, target_vars);
      auto built = std::make_shared<PlanSkeleton>();
      built->groups.reserve(groups.size());
      std::map<VarRef, size_t> slot_of;
      for (size_t s = 0; s < canon_vars.size(); ++s) slot_of[canon_vars[s]] = s;
      for (const auto& g : groups) {
        PlanSkeleton::Group sg;
        sg.var_slots.reserve(g.vars.size());
        for (const VarRef& v : g.vars) sg.var_slots.push_back(slot_of.at(v));
        sg.atom_indices = g.atom_indices;
        sg.touches_target = g.touches_target;
        sg.exact_eligible = options_.use_exact_cdf &&
                            ExactCdfEligible(condition, g, *pool_);
        exact_eligible.push_back(sg.exact_eligible);
        built->groups.push_back(std::move(sg));
      }
      plan_cache_->Insert(key, std::move(built));
    } else {
      groups.reserve(skeleton->groups.size());
      for (const auto& sg : skeleton->groups) {
        VariableGroup g;
        for (size_t slot : sg.var_slots) g.vars.insert(canon_vars[slot]);
        g.atom_indices = sg.atom_indices;
        g.touches_target = sg.touches_target;
        groups.push_back(std::move(g));
        exact_eligible.push_back(sg.exact_eligible);
      }
    }
  } else {
    // Ablation mode: one monolithic group.
    VariableGroup g;
    g.vars = condition.Variables();
    g.vars.insert(target_vars.begin(), target_vars.end());
    for (size_t i = 0; i < condition.atoms().size(); ++i) {
      g.atom_indices.push_back(i);
    }
    g.touches_target = !target_vars.empty();
    if (!g.vars.empty()) {
      exact_eligible.push_back(options_.use_exact_cdf &&
                               ExactCdfEligible(condition, g, *pool_));
      groups.push_back(std::move(g));
    }
  }

  std::vector<GroupPlan> plans;
  plans.reserve(groups.size());
  size_t group_index = 0;
  for (const auto& g : groups) {
    GroupPlan plan;
    plan.vars.assign(g.vars.begin(), g.vars.end());
    for (const VarRef& v : plan.vars) {
      if (plan.var_ids.empty() || plan.var_ids.back() != v.var_id) {
        plan.var_ids.push_back(v.var_id);
      }
    }
    for (size_t idx : g.atom_indices) {
      plan.atoms.push_back(condition.atoms()[idx]);
    }
    plan.touches_target = g.touches_target;
    plan.consistency = consistency;
    // Chain key: stable per (condition, group) so Metropolis chains are
    // replayable.
    uint64_t atoms_hash = 0;
    for (const auto& a : plan.atoms) atoms_hash ^= a.Hash();
    plan.exact = exact_eligible[group_index];
    plan.chain_key =
        MixBits(atoms_hash, group_index++, options_.sample_offset, 0x4d48ULL);

    // Per-variable CDF windows from the consistency bounds, memoized in
    // the plan: endpoints are evaluated here exactly once and reused by
    // every attempt of every sample.
    plan.window_lo.assign(plan.vars.size(), 0.0);
    plan.window_hi.assign(plan.vars.size(), 1.0);
    plan.cdf_constrained.assign(plan.vars.size(), false);
    plan.quantile_tables.assign(plan.vars.size(), nullptr);
    for (size_t i = 0; i < plan.vars.size(); ++i) {
      const VarRef& v = plan.vars[i];
      if (!options_.use_cdf_sampling) continue;
      auto info = pool_->Info(v.var_id);
      if (!info.ok() || info.value()->num_components != 1) continue;
      if (!pool_->HasCdf(v) || !pool_->HasInverseCdf(v)) continue;
      Interval b = plan.consistency.BoundsFor(v);
      if (!b.HasAnyBound()) continue;
      double flo = 0.0, fhi = 1.0;
      if (std::isfinite(b.lo)) {
        // For discrete variables the window must exclude values < ceil(lo)
        // entirely: P[X <= ceil(lo)-1].
        double lo_point =
            info.value()->dist->domain() == DomainKind::kContinuous
                ? b.lo
                : std::ceil(b.lo) - 1.0;
        auto f = pool_->Cdf(v, lo_point);
        if (!f.ok()) continue;
        flo = f.value();
      }
      if (std::isfinite(b.hi)) {
        double hi_point =
            info.value()->dist->domain() == DomainKind::kContinuous
                ? b.hi
                : std::floor(b.hi);
        auto f = pool_->Cdf(v, hi_point);
        if (!f.ok()) continue;
        fhi = f.value();
      }
      if (fhi <= flo) {
        // Zero-mass window: the condition is unsatisfiable in measure.
        *inconsistent = true;
        return std::vector<GroupPlan>{};
      }
      plan.window_lo[i] = flo;
      plan.window_hi[i] = fhi;
      plan.cdf_constrained[i] = (flo > 0.0 || fhi < 1.0);
      plan.window_prob *= (fhi - flo);

      // Finite discrete variables get a per-plan quantile table so the
      // hot loop's inverse-CDF becomes a binary search over prefix sums
      // computed once per plan (not per attempt).
      const Distribution* dist = info.value()->dist;
      if (plan.cdf_constrained[i] && dist->HasFiniteDomain() &&
          dist->HasPdf()) {
        auto size_or = dist->DomainSize(info.value()->params);
        if (size_or.ok() && size_or.value() > 0 &&
            size_or.value() <= kMaxQuantileTable) {
          auto values_or = dist->DomainValues(info.value()->params);
          if (values_or.ok() && !values_or.value().empty()) {
            auto table = std::make_shared<QuantileTable>();
            table->values = std::move(values_or).value();
            table->cum.reserve(table->values.size());
            double acc = 0.0;
            bool ok = true;
            for (double x : table->values) {
              auto mass = pool_->Pdf(v, x);
              if (!mass.ok()) {
                ok = false;
                break;
              }
              acc += mass.value();
              table->cum.push_back(acc);
            }
            if (ok) plan.quantile_tables[i] = std::move(table);
          }
        }
      }
    }

    if (plan.exact) {
      PIP_ASSIGN_OR_RETURN(plan.exact_prob, ExactGroupProbability(plan));
      if (plan.exact_prob <= 0.0) {
        *inconsistent = true;
        return std::vector<GroupPlan>{};
      }
    }

    plans.push_back(std::move(plan));
  }
  return plans;
}

StatusOr<double> SamplingEngine::ExactGroupProbability(
    const GroupPlan& plan) const {
  const VarRef v = plan.vars[0];
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, pool_->Info(v.var_id));
  bool discrete = info->dist->domain() != DomainKind::kContinuous;

  // Fold the atoms into one interval, tracking strictness (it matters on
  // the integer lattice of discrete variables) plus equality /
  // disequality pins.
  double lo = -kInf, hi = kInf;
  bool lo_strict = false, hi_strict = false;
  std::optional<double> eq;
  std::vector<double> ne;
  for (const auto& atom : plan.atoms) {
    VarRef av;
    CmpOp op;
    double c;
    if (!AsVarConst(atom, &av, &op, &c)) {
      return Status::Internal("exact plan with a non var-vs-const atom");
    }
    switch (op) {
      case CmpOp::kGt:
        if (c > lo || (c == lo && !lo_strict)) {
          lo = c;
          lo_strict = true;
        }
        break;
      case CmpOp::kGe:
        if (c > lo) {
          lo = c;
          lo_strict = false;
        }
        break;
      case CmpOp::kLt:
        if (c < hi || (c == hi && !hi_strict)) {
          hi = c;
          hi_strict = true;
        }
        break;
      case CmpOp::kLe:
        if (c < hi) {
          hi = c;
          hi_strict = false;
        }
        break;
      case CmpOp::kEq:
        if (eq && *eq != c) return 0.0;
        eq = c;
        break;
      case CmpOp::kNe:
        ne.push_back(c);
        break;
    }
  }

  auto cdf = [&](double x) -> StatusOr<double> { return pool_->Cdf(v, x); };

  if (!discrete) {
    if (eq) return 0.0;  // Zero mass (disequalities have full mass).
    if (hi <= lo) return 0.0;
    double fhi = std::isfinite(hi) ? ({
      PIP_ASSIGN_OR_RETURN(double f, cdf(hi));
      f;
    })
                                   : 1.0;
    double flo = std::isfinite(lo) ? ({
      PIP_ASSIGN_OR_RETURN(double f, cdf(lo));
      f;
    })
                                   : 0.0;
    return std::max(0.0, fhi - flo);
  }

  // Discrete (integer-lattice) case.
  double lo_int = std::isfinite(lo)
                      ? (lo_strict ? std::floor(lo) + 1.0 : std::ceil(lo))
                      : -kInf;
  double hi_int = std::isfinite(hi)
                      ? (hi_strict ? std::ceil(hi) - 1.0 : std::floor(hi))
                      : kInf;
  if (lo_int > hi_int) return 0.0;

  auto pmf = [&](double k) -> StatusOr<double> { return pool_->Pdf(v, k); };

  if (eq) {
    if (*eq < lo_int || *eq > hi_int) return 0.0;
    for (double x : ne) {
      if (x == *eq) return 0.0;
    }
    return pmf(*eq);
  }

  double fhi = std::isfinite(hi_int) ? ({
    PIP_ASSIGN_OR_RETURN(double f, cdf(hi_int));
    f;
  })
                                     : 1.0;
  double flo = std::isfinite(lo_int) ? ({
    PIP_ASSIGN_OR_RETURN(double f, cdf(lo_int - 1.0));
    f;
  })
                                     : 0.0;
  double p = std::max(0.0, fhi - flo);
  // Remove disequality pins inside the window (deduplicated).
  std::sort(ne.begin(), ne.end());
  ne.erase(std::unique(ne.begin(), ne.end()), ne.end());
  for (double x : ne) {
    if (std::floor(x) != x) continue;  // Off-lattice: zero mass anyway.
    if (x < lo_int || x > hi_int) continue;
    PIP_ASSIGN_OR_RETURN(double m, pmf(x));
    p -= m;
  }
  return std::max(0.0, p);
}

StatusOr<std::optional<double>> SamplingEngine::TryNumericIntegration(
    const ExprPtr& expr, const GroupPlan& plan) const {
  if (!options_.use_numeric_integration) return std::optional<double>{};
  if (plan.vars.size() != 1) return std::optional<double>{};
  const VarRef v = plan.vars[0];
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, pool_->Info(v.var_id));
  if (info->num_components != 1 || !info->dist->HasPdf() ||
      !info->dist->HasCdf()) {
    return std::optional<double>{};
  }
  // Constraints must reduce to an interval on v (the exact-plan shape) or
  // be absent entirely.
  if (!plan.atoms.empty() && !plan.exact) return std::optional<double>{};

  bool discrete = info->dist->domain() != DomainKind::kContinuous;
  Interval region =
      plan.consistency.BoundsFor(v).Intersect(pool_->Support(v));
  // Refold the atoms to recover lattice strictness (the bounds map stores
  // closed intervals only).
  double lo = region.lo, hi = region.hi;
  std::vector<double> excluded;
  for (const auto& atom : plan.atoms) {
    VarRef av;
    CmpOp op;
    double c;
    if (!AsVarConst(atom, &av, &op, &c)) return std::optional<double>{};
    switch (op) {
      case CmpOp::kGt:
        lo = std::max(lo, discrete ? std::floor(c) + 1.0 : c);
        break;
      case CmpOp::kGe:
        lo = std::max(lo, discrete ? std::ceil(c) : c);
        break;
      case CmpOp::kLt:
        hi = std::min(hi, discrete ? std::ceil(c) - 1.0 : c);
        break;
      case CmpOp::kLe:
        hi = std::min(hi, discrete ? std::floor(c) : c);
        break;
      case CmpOp::kEq:
        lo = std::max(lo, c);
        hi = std::min(hi, c);
        break;
      case CmpOp::kNe:
        if (discrete) excluded.push_back(c);
        break;
    }
  }
  if (lo > hi) return std::optional<double>{};

  Assignment point;
  auto g = [&](double x) -> StatusOr<double> {
    point.Set(v, x);
    return expr->EvalDouble(point);
  };

  if (discrete) {
    // Exact lattice sum over [lo, hi], tail-clipped by quantile for
    // unbounded domains.
    double k_lo = std::ceil(lo);
    double k_hi = hi;
    if (!std::isfinite(k_hi)) {
      if (!info->dist->HasInverseCdf()) return std::optional<double>{};
      PIP_ASSIGN_OR_RETURN(
          k_hi, info->dist->InverseCdf(info->params, 0, 1.0 - 1e-14));
    }
    if (!std::isfinite(k_lo) || k_hi - k_lo > 2e6) {
      return std::optional<double>{};
    }
    double numerator = 0.0, mass = 0.0;
    for (double k = k_lo; k <= k_hi; k += 1.0) {
      bool skip = false;
      for (double x : excluded) skip = skip || (x == k);
      if (skip) continue;
      PIP_ASSIGN_OR_RETURN(double pmf, pool_->Pdf(v, k));
      if (pmf <= 0.0) continue;
      auto value = g(k);
      if (!value.ok()) return std::optional<double>{};
      numerator += pmf * value.value();
      mass += pmf;
    }
    if (mass <= 0.0) return std::optional<double>{};
    return std::optional<double>{numerator / mass};
  }

  // Continuous: clip unbounded endpoints at extreme quantiles.
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    if (!info->dist->HasInverseCdf()) return std::optional<double>{};
    if (!std::isfinite(lo)) {
      PIP_ASSIGN_OR_RETURN(lo, info->dist->InverseCdf(info->params, 0, 1e-14));
    }
    if (!std::isfinite(hi)) {
      PIP_ASSIGN_OR_RETURN(
          hi, info->dist->InverseCdf(info->params, 0, 1.0 - 1e-14));
    }
  }
  if (!(hi > lo) || !std::isfinite(lo) || !std::isfinite(hi)) {
    return std::optional<double>{};
  }
  PIP_ASSIGN_OR_RETURN(double flo, pool_->Cdf(v, lo));
  PIP_ASSIGN_OR_RETURN(double fhi, pool_->Cdf(v, hi));
  double mass = fhi - flo;
  if (mass <= 1e-300) return std::optional<double>{};

  auto integrand = [&](double x) -> StatusOr<double> {
    PIP_ASSIGN_OR_RETURN(double pdf, pool_->Pdf(v, x));
    if (!std::isfinite(pdf)) {
      return Status::OutOfRange("pdf singularity");  // Fallback to sampling.
    }
    PIP_ASSIGN_OR_RETURN(double value, g(x));
    return pdf * value;
  };
  auto fa = integrand(lo);
  auto fm = integrand(0.5 * (lo + hi));
  auto fb = integrand(hi);
  if (!fa.ok() || !fm.ok() || !fb.ok()) return std::optional<double>{};
  bool ok = true;
  double numerator = AdaptiveSimpson(
      integrand, lo, hi, fa.value(), fm.value(), fb.value(),
      options_.integration_tolerance * std::max(1.0, mass), 40, &ok);
  if (!ok || !std::isfinite(numerator)) return std::optional<double>{};
  return std::optional<double>{numerator / mass};
}

size_t SamplingEngine::ChunkAttemptBudget(size_t chunk_len,
                                          size_t schedule_len,
                                          bool pilot) const {
  if (pilot || schedule_len == 0 || chunk_len >= schedule_len) {
    return options_.max_total_attempts;
  }
  double share = static_cast<double>(options_.max_total_attempts) *
                 static_cast<double>(chunk_len) /
                 static_cast<double>(schedule_len);
  double budget =
      std::max(share, static_cast<double>(kMinChunkAttempts));
  return static_cast<size_t>(
      std::min(budget, static_cast<double>(options_.max_total_attempts)));
}

template <typename Outcome, typename Run, typename Cost, typename Fold>
void SamplingEngine::RunPilotedSchedule(std::vector<GroupPlan>* plans,
                                        uint64_t cap, const Run& run,
                                        const Cost& cost,
                                        const Fold& fold) const {
  const size_t chunk = std::max<size_t>(1, options_.chunk_samples);
  const size_t nchunks = NumChunks(cap, chunk);
  if (nchunks == 0) return;

  // Pilot shard: chunk 0 runs first, serially, on the original plans
  // with the Metropolis switch armed. Rejection-rate history (and any
  // chain it spawns) is confined to this shard, so the switch decision
  // is identical for every num_threads.
  const uint64_t pilot_end = std::min<uint64_t>(cap, chunk);
  Outcome pilot{};
  run(plans, /*chunk_index=*/0, /*begin=*/0, pilot_end,
      ChunkAttemptBudget(pilot_end, cap, /*pilot=*/true), &pilot);
  if (!fold(0, pilot, /*cloned=*/false) || nchunks == 1) return;

  // Later shards budget from the pilot's observed per-item cost
  // (deterministic — the pilot is serial), with 4x slack for variance,
  // never below the proportional-share floor. This keeps adaptive runs
  // over hard-but-samplable conditions (the proportional share prorates
  // against a schedule such runs rarely exhaust) from collapsing where
  // the serial engine succeeded; the caller's fold-side ledger still
  // bounds the call at max_total_attempts.
  size_t later_budget = ChunkAttemptBudget(chunk, cap);
  const std::pair<size_t, size_t> pilot_cost = cost(pilot);
  if (pilot_cost.first > 0) {
    later_budget = std::max(
        later_budget,
        std::min(options_.max_total_attempts,
                 4 * (pilot_cost.second / pilot_cost.first) * chunk));
  }

  bool chain_mode = false;
  for (const auto& plan : *plans) {
    chain_mode =
        chain_mode || (plan.touches_target && plan.metropolis != nullptr);
  }

  if (chain_mode) {
    // A Metropolis chain is inherently sequential: finish the remaining
    // chunks serially on the original plans. Still deterministic — this
    // path never forks, whatever num_threads is.
    for (size_t c = 1; c < nchunks; ++c) {
      uint64_t begin = static_cast<uint64_t>(c) * chunk;
      uint64_t end = std::min<uint64_t>(cap, begin + chunk);
      Outcome o{};
      run(plans, c, begin, end, later_budget, &o);
      if (!fold(c, o, /*cloned=*/false)) break;
    }
    return;
  }

  // Parallel shards over counter-reset plan clones, dispatched in waves
  // with the stopping rule, the budget ledger and collapse all evaluated
  // in chunk order at each barrier; chunks computed past the stopping
  // point are discarded, so the accepted index set matches a serial run.
  RunChunkedWaves<Outcome>(
      cap, chunk, /*start_chunk=*/1, /*wave_limited=*/true,
      options_.num_threads,
      [&](size_t c, uint64_t begin, uint64_t end, Outcome* out) {
        std::vector<GroupPlan> clones;
        clones.reserve(plans->size());
        for (const auto& p : *plans) clones.push_back(p.CloneForChunk(c));
        run(&clones, c, begin, end, later_budget, out);
      },
      [&](size_t c, Outcome& o) { return fold(c, o, /*cloned=*/true); });
}

bool SamplingEngine::BatchEligible(
    const std::vector<GroupPlan>& plans) const {
  if (!options_.use_batch_generation) return false;
  bool any = false;
  for (const auto& plan : plans) {
    if (!plan.touches_target) continue;
    any = true;
    // With no atoms the scalar loop accepts every sample on attempt 0;
    // with no chain and no windows the draw is a plain GenerateJoint per
    // distinct id. Anything else keeps the per-sample loop (rejection
    // retries and chains consume sample-dependent word counts).
    if (plan.metropolis != nullptr || !plan.atoms.empty()) return false;
    for (bool constrained : plan.cdf_constrained) {
      if (constrained) return false;
    }
  }
  return any;
}

Status SamplingEngine::FillPlanBatches(const std::vector<GroupPlan>& plans,
                                       uint64_t sample_begin, uint64_t len,
                                       uint64_t attempt,
                                       PlanBatches* out) const {
  out->per_plan.assign(plans.size(), {});
  for (size_t g = 0; g < plans.size(); ++g) {
    const GroupPlan& plan = plans[g];
    if (!plan.touches_target) continue;
    auto& batches = out->per_plan[g];
    batches.reserve(plan.var_ids.size());
    for (uint64_t id : plan.var_ids) {
      PlanBatches::VarBatch vb;
      vb.var_id = id;
      PIP_ASSIGN_OR_RETURN(const VariableInfo* info, pool_->Info(id));
      vb.ncomp = info->num_components;
      PIP_RETURN_IF_ERROR(
          pool_->GenerateBatch(id, sample_begin, len, attempt, &vb.values));
      batches.push_back(std::move(vb));
    }
  }
  return Status::OK();
}

StatusOr<bool> SamplingEngine::SampleGroupOnce(GroupPlan* plan,
                                               uint64_t sample_index,
                                               Assignment* assignment,
                                               size_t* total_attempts,
                                               size_t attempt_budget) const {
  // Metropolis mode: the chain hands us a constrained sample directly.
  if (plan->metropolis != nullptr) {
    PIP_RETURN_IF_ERROR(plan->metropolis->NextSample(assignment));
    ++plan->accepted;
    return true;
  }

  std::vector<double> joint;
  for (uint64_t attempt = 0;; ++attempt) {
    if (++(*total_attempts) > attempt_budget) return false;
    ++plan->attempts;

    // Draw every variable of the group.
    for (size_t i = 0; i < plan->vars.size(); ++i) {
      const VarRef& v = plan->vars[i];
      if (plan->cdf_constrained[i]) {
        SampleContext ctx{pool_->seed(), v.var_id, sample_index, attempt};
        RandomStream stream = ctx.StreamFor(v.component);
        double u =
            WindowDraw(&stream, plan->window_lo[i], plan->window_hi[i]);
        double x;
        if (plan->quantile_tables[i] != nullptr) {
          x = plan->quantile_tables[i]->Quantile(u);
        } else {
          PIP_ASSIGN_OR_RETURN(x, pool_->InverseCdf(v, u));
        }
        assignment->Set(v, x);
      } else if (i == 0 || plan->vars[i].var_id != plan->vars[i - 1].var_id) {
        // Natural joint draw of all components of this id.
        PIP_RETURN_IF_ERROR(
            pool_->GenerateJoint(v.var_id, sample_index, attempt, &joint));
        for (uint32_t comp = 0; comp < joint.size(); ++comp) {
          assignment->Set(VarRef{v.var_id, comp}, joint[comp]);
        }
      }
    }

    // Accept iff every group atom holds.
    bool ok = true;
    for (const auto& atom : plan->atoms) {
      PIP_ASSIGN_OR_RETURN(bool t, atom.Eval(*assignment));
      if (!t) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++plan->accepted;
      return true;
    }

    // Metropolis switch check (Alg. 4.3 lines 19-24): rejection rate over
    // this group's lifetime exceeded the threshold. Shard clones skip the
    // check — the chain decision belongs to the pilot shard, so it never
    // depends on how the index space was scheduled.
    if (options_.use_metropolis && plan->allow_metropolis &&
        plan->attempts >= options_.metropolis_check_after) {
      double rejection_rate =
          1.0 - static_cast<double>(plan->accepted) /
                    static_cast<double>(plan->attempts);
      if (rejection_rate > options_.metropolis_threshold &&
          MetropolisSampler::CanHandle(*pool_, plan->vars)) {
        auto sampler = std::make_unique<MetropolisSampler>(
            pool_, plan->vars, plan->atoms, plan->consistency,
            plan->chain_key);
        Status init = sampler->Init();
        if (!init.ok()) return false;  // "unable to find a start point".
        plan->metropolis = std::move(sampler);
        PIP_RETURN_IF_ERROR(plan->metropolis->NextSample(assignment));
        ++plan->accepted;
        return true;
      }
    }
  }
}

StatusOr<double> SamplingEngine::EstimateGroupProbability(
    GroupPlan* plan, size_t* total_attempts) const {
  if (plan->exact) return plan->exact_prob;
  if (plan->atoms.empty()) return 1.0;

  // Fresh Monte Carlo estimate of P[atoms | windows] * window_prob. The
  // attempt-key marker decorrelates these draws from the expectation
  // loop's draws. Each draw is a pure function of its sample index, so
  // the index space shards into chunks exactly like the expectation
  // loop: fixed chunk schedule, hits folded in chunk order, adaptive
  // stopping evaluated at chunk barriers only.
  constexpr uint64_t kEstimateMarker = 0xE571ULL << 32;
  const double z = M_SQRT2 * ErfInv(1.0 - options_.epsilon);
  size_t cap = options_.fixed_samples > 0
                   ? std::max<size_t>(options_.fixed_samples, 256)
                   : options_.max_samples;
  const size_t chunk = std::max<size_t>(1, options_.chunk_samples);
  const bool adaptive = options_.fixed_samples == 0;

  struct HitChunk {
    size_t n = 0, hits = 0, attempts = 0;
    bool truncated = false;
    Status status = Status::OK();
  };
  auto run_chunk = [&](uint64_t begin, uint64_t end, HitChunk* out) {
    size_t budget = ChunkAttemptBudget(end - begin, cap);
    // Pre-draw the natural (window-free) variables for the whole chunk.
    // Window-constrained draws stay scalar; each draw is a pure function
    // of its sample index, so pre-drawn values a truncated chunk never
    // consumes are invisible to the fold.
    struct IdBatch {
      uint64_t var_id = 0;
      uint32_t ncomp = 1;
      std::vector<double> values;
    };
    const bool use_batch = options_.use_batch_generation;
    std::vector<IdBatch> batches;
    if (use_batch) {
      for (size_t i = 0; i < plan->vars.size(); ++i) {
        if (plan->cdf_constrained[i]) continue;
        if (i > 0 && plan->vars[i].var_id == plan->vars[i - 1].var_id) {
          continue;
        }
        IdBatch b;
        b.var_id = plan->vars[i].var_id;
        auto info = pool_->Info(b.var_id);
        if (!info.ok()) {
          out->status = info.status();
          return;
        }
        b.ncomp = info.value()->num_components;
        Status s = pool_->GenerateBatch(b.var_id, options_.sample_offset + begin,
                                        end - begin, kEstimateMarker, &b.values);
        if (!s.ok()) {
          out->status = s;
          return;
        }
        batches.push_back(std::move(b));
      }
    }
    std::vector<double> joint;
    Assignment a;
    for (uint64_t idx = begin; idx < end; ++idx) {
      if (++out->attempts > budget) {
        out->truncated = true;
        return;
      }
      uint64_t sample_index = options_.sample_offset + idx;
      size_t bi = 0;  // Walks `batches` in the same order it was filled.
      for (size_t i = 0; i < plan->vars.size(); ++i) {
        const VarRef& v = plan->vars[i];
        if (plan->cdf_constrained[i]) {
          SampleContext ctx{pool_->seed(), v.var_id, sample_index,
                            kEstimateMarker};
          RandomStream stream = ctx.StreamFor(v.component);
          double u =
              WindowDraw(&stream, plan->window_lo[i], plan->window_hi[i]);
          double x;
          if (plan->quantile_tables[i] != nullptr) {
            x = plan->quantile_tables[i]->Quantile(u);
          } else {
            auto x_or = pool_->InverseCdf(v, u);
            if (!x_or.ok()) {
              out->status = x_or.status();
              return;
            }
            x = x_or.value();
          }
          a.Set(v, x);
        } else if (i == 0 ||
                   plan->vars[i].var_id != plan->vars[i - 1].var_id) {
          if (use_batch) {
            const IdBatch& b = batches[bi++];
            const double* row = b.values.data() + (idx - begin) * b.ncomp;
            for (uint32_t comp = 0; comp < b.ncomp; ++comp) {
              a.Set(VarRef{v.var_id, comp}, row[comp]);
            }
            continue;
          }
          Status s = pool_->GenerateJoint(v.var_id, sample_index,
                                          kEstimateMarker, &joint);
          if (!s.ok()) {
            out->status = s;
            return;
          }
          for (uint32_t comp = 0; comp < joint.size(); ++comp) {
            a.Set(VarRef{v.var_id, comp}, joint[comp]);
          }
        }
      }
      bool ok = true;
      for (const auto& atom : plan->atoms) {
        auto t = atom.Eval(a);
        if (!t.ok()) {
          out->status = t.status();
          return;
        }
        if (!t.value()) {
          ok = false;
          break;
        }
      }
      ++out->n;
      if (ok) ++out->hits;
    }
  };

  size_t n = 0, hits = 0;
  Status chunk_error = Status::OK();
  RunChunkedWaves<HitChunk>(
      cap, chunk, /*start_chunk=*/0, adaptive, options_.num_threads,
      [&](size_t, uint64_t begin, uint64_t end, HitChunk* out) {
        run_chunk(begin, end, out);
      },
      [&](size_t, HitChunk& o) {
        // Chunk-fold barrier: cooperative cancellation poll (the result
        // is discarded by the caller that requested the cancel).
        if (options_.cancel_check && options_.cancel_check()) {
          chunk_error = Status::Cancelled("group probability estimate");
          return false;
        }
        if (!o.status.ok()) {
          chunk_error = o.status;
          return false;
        }
        *total_attempts += o.attempts;
        n += o.n;
        hits += o.hits;
        // Budget collapse — the shard's own, or the call-wide ledger
        // (*total_attempts carries over from the expectation phase, so
        // max_total_attempts bounds the whole call, not just this
        // estimator): estimate from what we have.
        if (o.truncated || *total_attempts > options_.max_total_attempts) {
          return false;
        }
        if (adaptive && n >= options_.min_samples) {
          double p = static_cast<double>(hits) / static_cast<double>(n);
          double half_width = z * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                            static_cast<double>(n));
          if (half_width <= options_.delta * std::max(p, 0.01)) return false;
        }
        return true;
      });
  PIP_RETURN_IF_ERROR(chunk_error);
  double p = n > 0 ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  return p * plan->window_prob;
}

SamplingEngine::ChunkOutcome SamplingEngine::RunExpectationChunk(
    std::vector<GroupPlan>* plans, const ExprPtr& expr, uint64_t begin,
    uint64_t end, size_t attempt_budget, size_t chunk_index,
    std::atomic<uint64_t>* first_collapsed) const {
  ChunkOutcome out;
  std::vector<size_t> accepted0(plans->size()), attempts0(plans->size());
  for (size_t g = 0; g < plans->size(); ++g) {
    accepted0[g] = (*plans)[g].accepted;
    attempts0[g] = (*plans)[g].attempts;
  }
  // Batched fast path: when every target group deterministically accepts
  // each sample on its first attempt (no atoms / windows / chain), draw
  // the chunk's whole range in one GenerateBatch call per variable and
  // keep the scalar loop's counter arithmetic per index — bit-identical
  // output, one virtual call per (plan, var) per chunk instead of per
  // sample.
  PlanBatches batches;
  const bool use_batch = BatchEligible(*plans);
  if (use_batch) {
    Status s = FillPlanBatches(*plans, options_.sample_offset + begin,
                               end - begin, /*attempt=*/0, &batches);
    if (!s.ok()) {
      out.status = s;
      out.group_accepted.resize(plans->size());
      out.group_attempts.resize(plans->size());
      return out;
    }
  }
  Assignment assignment;
  for (uint64_t i = begin; i < end; ++i) {
    // A strictly earlier chunk's budget genuinely collapsed: the
    // in-order fold stops before ever reading this chunk, so stop
    // burning its budget. Strictly-earlier matters: chunks before the
    // minimal collapsed index never abort, keeping the fold's view of
    // them — and hence the visible result — bit-identical to a serial
    // run.
    if (first_collapsed != nullptr &&
        first_collapsed->load(std::memory_order_relaxed) < chunk_index) {
      out.collapsed = true;
      break;
    }
    assignment.Clear();
    bool got_all = true;
    if (use_batch) {
      // Mirrors SampleGroupOnce's accept-on-first-attempt arithmetic:
      // budget check, then the per-plan attempt, then acceptance.
      for (size_t g = 0; g < plans->size(); ++g) {
        auto& plan = (*plans)[g];
        if (!plan.touches_target) continue;
        if (++out.attempts > attempt_budget) {
          got_all = false;
          break;
        }
        ++plan.attempts;
        for (const auto& vb : batches.per_plan[g]) {
          const double* row = vb.values.data() + (i - begin) * vb.ncomp;
          for (uint32_t comp = 0; comp < vb.ncomp; ++comp) {
            assignment.Set(VarRef{vb.var_id, comp}, row[comp]);
          }
        }
        ++plan.accepted;
      }
    } else {
      for (auto& plan : *plans) {
        if (!plan.touches_target) continue;
        auto ok = SampleGroupOnce(&plan, options_.sample_offset + i,
                                  &assignment, &out.attempts, attempt_budget);
        if (!ok.ok()) {
          out.status = ok.status();
          break;
        }
        if (!ok.value()) {
          got_all = false;
          break;
        }
      }
    }
    if (!out.status.ok()) break;
    if (!got_all) {
      out.collapsed = true;
      if (first_collapsed != nullptr) {
        uint64_t cur = first_collapsed->load(std::memory_order_relaxed);
        while (chunk_index < cur &&
               !first_collapsed->compare_exchange_weak(
                   cur, chunk_index, std::memory_order_relaxed)) {
        }
      }
      break;
    }
    auto value = expr->EvalDouble(assignment);
    if (!value.ok()) {
      out.status = value.status();
      break;
    }
    out.stats.Add(value.value());
  }
  out.group_accepted.resize(plans->size());
  out.group_attempts.resize(plans->size());
  for (size_t g = 0; g < plans->size(); ++g) {
    out.group_accepted[g] = (*plans)[g].accepted - accepted0[g];
    out.group_attempts[g] = (*plans)[g].attempts - attempts0[g];
  }
  return out;
}

StatusOr<ExpectationResult> SamplingEngine::Expectation(
    const ExprPtr& expr, const Condition& condition,
    bool compute_probability) const {
  ExpectationResult result;
  if (condition.IsKnownFalse()) {
    result.expectation = kNan;
    result.probability = 0.0;
    result.exact = true;
    return result;
  }

  VarSet target_vars = expr->Variables();
  bool inconsistent = false;
  PIP_ASSIGN_OR_RETURN(std::vector<GroupPlan> plans,
                       PlanGroups(condition, target_vars, &inconsistent));
  if (inconsistent) {
    result.expectation = kNan;
    result.probability = 0.0;
    result.exact = true;
    return result;
  }

  size_t total_attempts = 0;
  bool sampled = false;

  // ---- Expectation over the target-touching groups. ----
  bool integrated = false;
  if (target_vars.empty()) {
    PIP_ASSIGN_OR_RETURN(result.expectation, expr->EvalDouble(Assignment()));
    integrated = true;
  } else {
    // Exact path: a single-variable target group with interval constraints
    // integrates in closed numeric form, sidestepping sampling entirely.
    GroupPlan* target_plan = nullptr;
    size_t target_plan_count = 0;
    for (auto& plan : plans) {
      if (plan.touches_target) {
        target_plan = &plan;
        ++target_plan_count;
      }
    }
    if (target_plan_count == 1) {
      PIP_ASSIGN_OR_RETURN(std::optional<double> exact_value,
                           TryNumericIntegration(expr, *target_plan));
      if (exact_value.has_value()) {
        result.expectation = *exact_value;
        integrated = true;
      }
    }
  }
  if (!integrated) {
    // Monte Carlo over the sample-index space, sharded into contiguous
    // chunks by the shared pilot/chain/budget driver. The chunk
    // schedule, the merge order and the adaptive stopping barriers
    // depend only on chunk_samples — never on num_threads — so serial
    // and parallel runs accept the same index set and fold the same
    // merge tree: results are bit-identical.
    const double z = M_SQRT2 * ErfInv(1.0 - options_.epsilon);
    const bool fixed = options_.fixed_samples > 0;
    const size_t schedule_len =
        fixed ? options_.fixed_samples : options_.max_samples;

    RunningStats merged;
    bool collapsed = false;
    // Lowest chunk index whose budget genuinely collapsed; later chunks
    // abort early (discarded by the in-order fold), bounding the work a
    // collapsing call can burn without touching determinism.
    std::atomic<uint64_t> first_collapsed{UINT64_MAX};

    auto stop_now = [&]() {
      int64_t count = merged.count();
      if (fixed) return count >= static_cast<int64_t>(options_.fixed_samples);
      if (count >= static_cast<int64_t>(options_.max_samples)) return true;
      if (count < static_cast<int64_t>(options_.min_samples)) return false;
      double mean = std::fabs(merged.mean());
      double half_width = z * merged.standard_error();
      return half_width <= options_.delta * std::max(mean, 1e-9);
    };

    // The fold runs in chunk order for pilot, chain and wave chunks
    // alike. The ledger is what makes max_total_attempts a real
    // per-call bound: shard floors let individual chunks over-spend
    // their proportional share, but the fold trips the collapse as soon
    // as the folded shards exceed the configured budget — at a
    // deterministic chunk index, independent of thread count.
    Status chunk_error = Status::OK();
    RunPilotedSchedule<ChunkOutcome>(
        &plans, schedule_len,
        [&](std::vector<GroupPlan>* ps, size_t c, uint64_t begin,
            uint64_t end, size_t budget, ChunkOutcome* out) {
          *out = RunExpectationChunk(ps, expr, begin, end, budget, c,
                                     &first_collapsed);
        },
        [&](const ChunkOutcome& pilot) {
          return std::make_pair(static_cast<size_t>(pilot.stats.count()),
                                pilot.attempts);
        },
        [&](size_t, ChunkOutcome& o, bool cloned) {
          // Chunk-fold barrier: cooperative cancellation poll. The
          // caller requesting the cancel discards this row's output, so
          // abandoning mid-schedule cannot change any kept bits.
          if (options_.cancel_check && options_.cancel_check()) {
            chunk_error = Status::Cancelled("expectation");
            return false;
          }
          if (!o.status.ok()) {
            chunk_error = o.status;
            return false;
          }
          total_attempts += o.attempts;
          merged.Merge(o.stats);
          if (cloned) {
            // Clone counters fold back into the originals; chain/pilot
            // chunks mutate the originals in place.
            for (size_t g = 0; g < plans.size(); ++g) {
              plans[g].accepted += o.group_accepted[g];
              plans[g].attempts += o.group_attempts[g];
            }
          }
          if (o.collapsed || total_attempts > options_.max_total_attempts) {
            collapsed = true;
            return false;
          }
          return !stop_now();
        });
    PIP_RETURN_IF_ERROR(chunk_error);

    if (collapsed) {
      // Sampling budget collapsed: the condition region is effectively
      // unreachable. Per the paper, report NAN.
      result.expectation = kNan;
      result.probability = 0.0;
      result.attempts = total_attempts;
      return result;
    }
    result.expectation = merged.mean();
    result.samples_used = static_cast<size_t>(merged.count());
    sampled = merged.count() > 0;
  }

  // ---- Probability of the full condition. ----
  if (compute_probability) {
    double prob = 1.0;
    for (auto& plan : plans) {
      if (plan.exact) {
        prob *= plan.exact_prob;
      } else if (plan.metropolis != nullptr) {
        // "Metropolis doesn't give us a probability" — estimate the group
        // separately by plain (windowed) Monte Carlo.
        PIP_ASSIGN_OR_RETURN(double p,
                             EstimateGroupProbability(&plan, &total_attempts));
        prob *= p;
      } else if (plan.touches_target && plan.attempts > 0) {
        // Free acceptance-rate estimate from the expectation loop
        // (Alg. 4.3 line 29), corrected by the CDF window volume.
        prob *= plan.window_prob * static_cast<double>(plan.accepted) /
                static_cast<double>(plan.attempts);
      } else if (!plan.atoms.empty()) {
        PIP_ASSIGN_OR_RETURN(double p,
                             EstimateGroupProbability(&plan, &total_attempts));
        prob *= p;
        sampled = sampled || !plan.exact;
      }
    }
    result.probability = prob;
  }

  result.attempts = total_attempts;
  result.exact = !sampled;
  return result;
}

StatusOr<ExpectationResult> SamplingEngine::Confidence(
    const Condition& condition) const {
  // conf() is expectation of the constant 1 with getP (the probability is
  // the interesting output).
  PIP_ASSIGN_OR_RETURN(
      ExpectationResult r,
      Expectation(Expr::Constant(1.0), condition, /*compute_probability=*/true));
  if (std::isnan(r.expectation)) r.probability = 0.0;
  return r;
}

StatusOr<double> SamplingEngine::JointConfidence(
    const std::vector<Condition>& disjuncts) const {
  std::vector<const Condition*> live;
  for (const auto& d : disjuncts) {
    if (d.IsKnownFalse()) continue;
    if (d.IsTrue()) return 1.0;
    live.push_back(&d);
  }
  if (live.empty()) return 0.0;
  if (live.size() == 1) {
    PIP_ASSIGN_OR_RETURN(ExpectationResult r, Confidence(*live[0]));
    return r.probability;
  }

  if (live.size() <= 6) {
    // Inclusion-exclusion over conjunction probabilities; each conjunction
    // gets the full per-group treatment (often exact via CDFs). The
    // conjunctions of one disjunct set recombine the same atom shapes, so
    // the plan-shape cache amortizes their planning passes.
    double total = 0.0;
    size_t n = live.size();
    for (size_t mask = 1; mask < (size_t{1} << n); ++mask) {
      Condition conj;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (size_t{1} << i)) conj = conj.And(*live[i]);
      }
      double sign = (__builtin_popcountll(mask) % 2 == 1) ? 1.0 : -1.0;
      if (conj.IsKnownFalse()) continue;
      PIP_ASSIGN_OR_RETURN(ExpectationResult r, Confidence(conj));
      total += sign * r.probability;
    }
    return std::min(1.0, std::max(0.0, total));
  }

  // Many disjuncts: joint Monte Carlo over the union of variables,
  // sharded over the sample-index space like the expectation loop (each
  // world is a pure function of its index; hit counts fold in chunk
  // order; the adaptive stop is checked at chunk barriers only).
  VarSet all_vars;
  for (const auto* d : live) d->CollectVariables(&all_vars);
  std::vector<uint64_t> ids;
  for (const VarRef& v : all_vars) {
    if (ids.empty() || ids.back() != v.var_id) ids.push_back(v.var_id);
  }
  const double z = M_SQRT2 * ErfInv(1.0 - options_.epsilon);
  constexpr uint64_t kAconfMarker = 0xAC0FULL << 32;
  const bool adaptive = options_.fixed_samples == 0;
  size_t cap = options_.fixed_samples > 0 ? options_.fixed_samples
                                          : options_.max_samples;
  const size_t chunk = std::max<size_t>(1, options_.chunk_samples);

  struct HitChunk {
    size_t n = 0, hits = 0;
    Status status = Status::OK();
  };
  auto run_chunk = [&](uint64_t begin, uint64_t end, HitChunk* out) {
    // No atoms, windows, or chains here, so every variable qualifies for
    // the batched draw path unconditionally.
    const bool use_batch = options_.use_batch_generation;
    std::vector<std::vector<double>> batch(ids.size());
    std::vector<uint32_t> ncomp(ids.size(), 1);
    if (use_batch) {
      for (size_t j = 0; j < ids.size(); ++j) {
        auto info = pool_->Info(ids[j]);
        if (!info.ok()) {
          out->status = info.status();
          return;
        }
        ncomp[j] = info.value()->num_components;
        Status s = pool_->GenerateBatch(ids[j], options_.sample_offset + begin,
                                        end - begin, kAconfMarker, &batch[j]);
        if (!s.ok()) {
          out->status = s;
          return;
        }
      }
    }
    std::vector<double> joint;
    Assignment a;
    for (uint64_t idx = begin; idx < end; ++idx) {
      uint64_t sample_index = options_.sample_offset + idx;
      for (size_t j = 0; j < ids.size(); ++j) {
        const uint64_t id = ids[j];
        if (use_batch) {
          const double* row = batch[j].data() + (idx - begin) * ncomp[j];
          for (uint32_t comp = 0; comp < ncomp[j]; ++comp) {
            a.Set(VarRef{id, comp}, row[comp]);
          }
          continue;
        }
        Status s = pool_->GenerateJoint(id, sample_index, kAconfMarker,
                                        &joint);
        if (!s.ok()) {
          out->status = s;
          return;
        }
        for (uint32_t comp = 0; comp < joint.size(); ++comp) {
          a.Set(VarRef{id, comp}, joint[comp]);
        }
      }
      bool any = false;
      for (const auto* d : live) {
        auto t = d->Eval(a);
        if (!t.ok()) {
          out->status = t.status();
          return;
        }
        if (t.value()) {
          any = true;
          break;
        }
      }
      ++out->n;
      if (any) ++out->hits;
    }
  };

  size_t n = 0, hits = 0;
  Status chunk_error = Status::OK();
  RunChunkedWaves<HitChunk>(
      cap, chunk, /*start_chunk=*/0, adaptive, options_.num_threads,
      [&](size_t, uint64_t begin, uint64_t end, HitChunk* out) {
        run_chunk(begin, end, out);
      },
      [&](size_t, HitChunk& o) {
        // Chunk-fold barrier: cooperative cancellation poll (see
        // SamplingOptions::cancel_check).
        if (options_.cancel_check && options_.cancel_check()) {
          chunk_error = Status::Cancelled("joint confidence");
          return false;
        }
        if (!o.status.ok()) {
          chunk_error = o.status;
          return false;
        }
        n += o.n;
        hits += o.hits;
        if (adaptive && n >= options_.min_samples) {
          double p = static_cast<double>(hits) / static_cast<double>(n);
          double half_width = z * std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                            static_cast<double>(n));
          if (half_width <= options_.delta * std::max(p, 0.01)) return false;
        }
        return true;
      });
  PIP_RETURN_IF_ERROR(chunk_error);
  return n > 0 ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
}

StatusOr<std::vector<double>> SamplingEngine::SampleConditional(
    const ExprPtr& expr, const Condition& condition, size_t n) const {
  std::vector<double> samples;
  if (condition.IsKnownFalse()) return samples;
  VarSet target_vars = expr->Variables();
  bool inconsistent = false;
  PIP_ASSIGN_OR_RETURN(std::vector<GroupPlan> plans,
                       PlanGroups(condition, target_vars, &inconsistent));
  if (inconsistent || n == 0) return samples;

  const size_t chunk = std::max<size_t>(1, options_.chunk_samples);
  samples.assign(n, 0.0);

  struct CondChunk {
    size_t produced = 0;
    size_t attempts = 0;
    Status status = Status::OK();
  };
  // Index of the first chunk whose budget genuinely collapsed
  // (deterministic per chunk). Chunks strictly after it abort early —
  // the fold truncates the result before them anyway, so the visible
  // prefix stays bit-identical while total work stays bounded. (Unlike
  // the expectation loop, a plain "someone collapsed" flag would be
  // wrong here: an *earlier* chunk aborting would shorten the prefix.)
  std::atomic<uint64_t> first_truncated{UINT64_MAX};
  // Writes values for indices [begin, end) into their slots; stops early
  // on budget collapse (producing a prefix) or error.
  auto run_chunk = [&](std::vector<GroupPlan>* ps, size_t chunk_index,
                       uint64_t begin, uint64_t end, size_t budget,
                       CondChunk* out) {
    // Batched draw path, same contract as RunExpectationChunk.
    PlanBatches batches;
    const bool use_batch = BatchEligible(*ps);
    if (use_batch) {
      Status s = FillPlanBatches(*ps, options_.sample_offset + begin,
                                 end - begin, /*attempt=*/0, &batches);
      if (!s.ok()) {
        out->status = s;
        return;
      }
    }
    Assignment assignment;
    for (uint64_t i = begin; i < end; ++i) {
      if (first_truncated.load(std::memory_order_relaxed) < chunk_index) {
        return;  // Discarded by the fold; stop burning budget.
      }
      assignment.Clear();
      bool got_all = true;
      if (use_batch) {
        for (size_t g = 0; g < ps->size(); ++g) {
          auto& plan = (*ps)[g];
          if (!plan.touches_target) continue;
          if (++out->attempts > budget) {
            got_all = false;
            break;
          }
          ++plan.attempts;
          for (const auto& vb : batches.per_plan[g]) {
            const double* row = vb.values.data() + (i - begin) * vb.ncomp;
            for (uint32_t comp = 0; comp < vb.ncomp; ++comp) {
              assignment.Set(VarRef{vb.var_id, comp}, row[comp]);
            }
          }
          ++plan.accepted;
        }
      } else {
        for (auto& plan : *ps) {
          if (!plan.touches_target) continue;
          auto ok = SampleGroupOnce(&plan, options_.sample_offset + i,
                                    &assignment, &out->attempts, budget);
          if (!ok.ok()) {
            out->status = ok.status();
            return;
          }
          if (!ok.value()) {
            got_all = false;
            break;
          }
        }
      }
      if (!got_all) {
        uint64_t cur = first_truncated.load(std::memory_order_relaxed);
        while (chunk_index < cur &&
               !first_truncated.compare_exchange_weak(
                   cur, chunk_index, std::memory_order_relaxed)) {
        }
        return;
      }
      auto value = expr->EvalDouble(assignment);
      if (!value.ok()) {
        out->status = value.status();
        return;
      }
      samples[i] = value.value();
      ++out->produced;
    }
  };

  // Pilot shard (Metropolis decision scope), then chain-serial or
  // parallel remainder — the shared driver, so the determinism schedule
  // is the expectation loop's by construction. `ledger` folds per-chunk
  // attempt counts in chunk order so max_total_attempts stays a
  // deterministic per-call bound (exceeding it truncates the result
  // exactly like a shard budget collapse).
  size_t total = 0;
  size_t ledger = 0;
  Status chunk_error = Status::OK();
  RunPilotedSchedule<CondChunk>(
      &plans, n,
      [&](std::vector<GroupPlan>* ps, size_t c, uint64_t begin, uint64_t end,
          size_t budget, CondChunk* out) {
        run_chunk(ps, c, begin, end, budget, out);
      },
      [&](const CondChunk& pilot) {
        return std::make_pair(pilot.produced, pilot.attempts);
      },
      [&](size_t c, CondChunk& o, bool) {
        // Chunk-fold barrier: cooperative cancellation poll (see
        // SamplingOptions::cancel_check).
        if (options_.cancel_check && options_.cancel_check()) {
          chunk_error = Status::Cancelled("conditional sampling");
          return false;
        }
        if (!o.status.ok()) {
          chunk_error = o.status;
          return false;
        }
        total += o.produced;
        ledger += o.attempts;
        uint64_t begin = static_cast<uint64_t>(c) * chunk;
        uint64_t end = std::min<uint64_t>(n, begin + chunk);
        // Short chunk or exhausted call ledger: the visible result is
        // the prefix produced so far.
        return o.produced == end - begin &&
               ledger <= options_.max_total_attempts;
      });
  PIP_RETURN_IF_ERROR(chunk_error);

  samples.resize(total);
  return samples;
}

}  // namespace pip
