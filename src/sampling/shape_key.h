/// \file shape_key.h
/// \brief Shared canonical serialization behind the two caches that sit
/// above the sampling engine.
///
/// Two caches key on (condition, target expression) pairs:
///   * the PlanCache memoizes structure-only plan skeletons under a
///     *shape* key — constants abstracted to their Value type, variables
///     canonicalized by first appearance and pinned to their
///     distribution class;
///   * the ExpectationIndex memoizes *results* under an exact key —
///     constant bit patterns, verbatim variable ids (a var id pins its
///     distribution and parameters for the pool's lifetime), the RNG
///     seed/stream identity, and a fingerprint of every sampling option
///     that can change a sampled value.
/// Both serializers share one KeyBuilder here, and both lead with the
/// DistributionRegistry generation counter, so the two caches cannot
/// drift on what "same shape" means and plugin re-registration under an
/// existing class name invalidates stale entries everywhere at once.

#ifndef PIP_SAMPLING_SHAPE_KEY_H_
#define PIP_SAMPLING_SHAPE_KEY_H_

#include <string>
#include <vector>

#include "src/dist/variable_pool.h"
#include "src/expr/condition.h"
#include "src/expr/expr.h"

namespace pip {

struct SamplingOptions;

/// Planning-relevant engine flags folded into plan shape keys (the
/// decisions PlanGroups bakes into a skeleton).
uint32_t PlanShapeFlagBits(const SamplingOptions& options);

/// Canonical shape key of (condition, target_vars): constants abstract to
/// their type, var ids number by first appearance (the key also encodes
/// which atoms share variables). Appends the distinct VarRefs in
/// canonical slot order to *canon_vars (cleared first).
std::string PlanShapeKey(const Condition& condition, const VarSet& target_vars,
                         const VariablePool& pool, uint32_t flag_bits,
                         std::vector<VarRef>* canon_vars);

/// Fingerprint of every SamplingOptions field that can change a sampled
/// value — bit-exact doubles, all strategy toggles, the sample-index
/// offset. Deliberately excludes num_threads: results are bit-identical
/// across thread counts (the engine's determinism contract), so an index
/// entry backfilled at one thread count serves every other. Also
/// excludes cancel_check for the same reason: cancellation only ever
/// discards a result, never changes a kept one, so a cancel-wired
/// engine's entries serve plain engines bit for bit.
std::string SamplingOptionsFingerprint(const SamplingOptions& options);

/// Exact result key for the expectation index. `op_tag` distinguishes
/// the operator ('E' expectation, 'P' expectation+probability,
/// 'C' confidence, 'J' joint confidence); `expr` may be null for
/// condition-only operators; `conditions` holds one conjunction
/// (expectation/conf) or the ordered disjunct list (aconf). The key pins
/// the registry generation, the pool seed, the options fingerprint, and
/// the exact content of every expression and atom, so equal keys imply
/// bit-identical recomputation.
std::string ExactResultKey(char op_tag, const ExprPtr& expr,
                           const std::vector<const Condition*>& conditions,
                           const VariablePool& pool,
                           const SamplingOptions& options);

}  // namespace pip

#endif  // PIP_SAMPLING_SHAPE_KEY_H_
