/// \file index_ops.h
/// \brief The expectation index's integration layer: indexed drop-in
/// wrappers around the SamplingEngine's probability-removing calls.
///
/// This is the seam between the planner cache and the Monte Carlo
/// engine: query operators (Analyze, aconf, expected aggregates) route
/// per-row engine calls through these wrappers. On a hit the cached
/// result is returned without sampling — bit-identical to recomputation
/// because the draw scheme is a pure function of (seed, var, sample,
/// attempt) and the exact result key (shape_key.h) pins everything that
/// feeds it. On a miss the normal engine path runs and the result
/// backfills the index. Rows without catalogue provenance (joins,
/// unions, inline values) and fully deterministic calls bypass the index
/// entirely, as does any engine without an attached index.

#ifndef PIP_SAMPLING_INDEX_OPS_H_
#define PIP_SAMPLING_INDEX_OPS_H_

#include <vector>

#include "src/ctable/ctable.h"
#include "src/index/expectation_index.h"
#include "src/sampling/expectation.h"

namespace pip {

/// \brief Index anchor of one row: where it lives in the catalogue.
struct RowProvenance {
  uint64_t table_id = 0;
  uint64_t generation = 0;
  uint64_t row_id = 0;

  bool valid() const { return table_id != 0 && row_id != 0; }
};

/// The provenance of row `row_index` of `table` (invalid when the table
/// is not a catalogue snapshot).
inline RowProvenance ProvenanceOf(const CTable& table, size_t row_index) {
  return RowProvenance{table.table_id(), table.generation(),
                       table.row(row_index).row_id};
}

/// engine.Expectation through the index: hit → cached replay, miss →
/// compute and backfill.
StatusOr<ExpectationResult> IndexedExpectation(const SamplingEngine& engine,
                                               const RowProvenance& prov,
                                               const ExprPtr& expr,
                                               const Condition& condition,
                                               bool compute_probability);

/// engine.Confidence through the index.
StatusOr<ExpectationResult> IndexedConfidence(const SamplingEngine& engine,
                                              const RowProvenance& prov,
                                              const Condition& condition);

/// engine.JointConfidence through the index. The ordered disjunct list
/// is part of the key; `prov` should be the group's exemplar row (the
/// anchor only controls invalidation, the key controls correctness).
StatusOr<double> IndexedJointConfidence(const SamplingEngine& engine,
                                        const RowProvenance& prov,
                                        const std::vector<Condition>& disjuncts);

/// Eagerly materializes index entries for every row of a catalogue
/// snapshot: the row confidence, each probabilistic cell's expectation
/// (the first one with probability, matching Analyze's call pattern),
/// and a moment/quantile/CDF summary of the first probabilistic cell.
/// Rows fan out across the engine's thread budget. No-op for tables
/// without provenance or engines without an index. Per-row sampling
/// errors abort the build and surface as its Status; already-present
/// entries are skipped via the normal hit path.
Status EagerBuildIndex(const CTable& table, const SamplingEngine& engine);

}  // namespace pip

#endif  // PIP_SAMPLING_INDEX_OPS_H_
