#include "src/sampling/shape_key.h"

#include <cstdint>
#include <cstring>
#include <map>

#include "src/sampling/expectation.h"
#include "src/types/value.h"

namespace pip {

namespace {

/// Lowercase-hex of a 64-bit pattern; fixed width so keys never alias
/// across field boundaries.
void AppendHex64(uint64_t bits, std::string* out) {
  static const char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kDigits[(bits >> shift) & 0xF]);
  }
}

void AppendDoubleBits(double d, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  AppendHex64(bits, out);
}

/// Serializer state shared by the plan cache's shape keys and the
/// expectation index's result keys. `exact` toggles the two fidelities:
///   * shape mode abstracts constants to their type and renumbers var
///     ids by first appearance (pinned to distribution class);
///   * exact mode emits constant bit patterns / length-prefixed strings
///     and verbatim var ids (a var id fixes its distribution,
///     parameters, and RNG stream within one pool+seed).
struct KeyBuilder {
  const VariablePool* pool = nullptr;
  bool exact = false;
  std::map<uint64_t, size_t> id_canon;
  std::vector<VarRef> canon_vars;
  std::map<VarRef, size_t> slot_of;
  std::string out;

  void AppendVar(const VarRef& v) {
    if (exact) {
      out += 'v';
      out += std::to_string(v.var_id);
      out += '.';
      out += std::to_string(v.component);
      return;
    }
    auto [it, inserted] = id_canon.emplace(v.var_id, id_canon.size());
    if (slot_of.emplace(v, canon_vars.size()).second) {
      canon_vars.push_back(v);
    }
    out += 'v';
    out += std::to_string(it->second);
    out += '.';
    out += std::to_string(v.component);
    out += ':';
    // The class name pins capabilities (CDF/PDF/finite domain) and the
    // component count, so skeleton decisions transfer between rows.
    auto info = pool->Info(v.var_id);
    out += info.ok() ? info.value()->class_name : "?";
  }

  void AppendConst(const Value& value) {
    out += 'c';
    out += std::to_string(static_cast<int>(value.type()));
    if (!exact) return;
    out += '=';
    switch (value.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        out += value.bool_value() ? '1' : '0';
        break;
      case ValueType::kInt:
        AppendHex64(static_cast<uint64_t>(value.int_value()), &out);
        break;
      case ValueType::kDouble:
        AppendDoubleBits(value.double_value(), &out);
        break;
      case ValueType::kString:
        // Length prefix keeps adjacent fields from aliasing.
        out += std::to_string(value.string_value().size());
        out += ':';
        out += value.string_value();
        break;
    }
  }

  void AppendExpr(const Expr& e) {
    switch (e.op()) {
      case ExprOp::kConst:
        AppendConst(e.value());
        return;
      case ExprOp::kVar:
        AppendVar(e.var());
        return;
      case ExprOp::kFunc:
        out += 'f';
        out += std::to_string(static_cast<int>(e.func()));
        break;
      case ExprOp::kAdd:
        out += '+';
        break;
      case ExprOp::kSub:
        out += '-';
        break;
      case ExprOp::kMul:
        out += '*';
        break;
      case ExprOp::kDiv:
        out += '/';
        break;
      case ExprOp::kNeg:
        out += '~';
        break;
    }
    out += '(';
    for (const auto& child : e.children()) AppendExpr(*child);
    out += ')';
  }

  void AppendCondition(const Condition& condition) {
    if (condition.IsKnownFalse()) {
      out += "|A!";
      return;
    }
    for (const auto& atom : condition.atoms()) {
      out += "|A";
      out += std::to_string(static_cast<int>(atom.op()));
      out += ':';
      AppendExpr(*atom.lhs());
      out += '?';
      AppendExpr(*atom.rhs());
    }
  }
};

}  // namespace

uint32_t PlanShapeFlagBits(const SamplingOptions& options) {
  // use_independence is deliberately absent: the shape cache is only
  // consulted when it is on, so folding it in would only fragment keys.
  return (options.use_exact_cdf ? 1u : 0u) |
         (options.use_cdf_sampling ? 2u : 0u);
}

std::string PlanShapeKey(const Condition& condition, const VarSet& target_vars,
                         const VariablePool& pool, uint32_t flag_bits,
                         std::vector<VarRef>* canon_vars) {
  KeyBuilder b;
  b.pool = &pool;
  // Registry generation first: re-registering a plugin under an existing
  // name changes capabilities behind an unchanged class name, so skeletons
  // built before the swap must not be served after it.
  b.out += 'G';
  b.out += std::to_string(pool.registry().generation());
  b.out += "|F";
  b.out += std::to_string(flag_bits);
  b.AppendCondition(condition);
  b.out += "|T:";
  for (const VarRef& v : target_vars) b.AppendVar(v);
  canon_vars->clear();
  *canon_vars = std::move(b.canon_vars);
  return std::move(b.out);
}

std::string SamplingOptionsFingerprint(const SamplingOptions& options) {
  std::string out;
  out.reserve(160);
  AppendDoubleBits(options.epsilon, &out);
  AppendDoubleBits(options.delta, &out);
  out += '|';
  out += std::to_string(options.fixed_samples);
  out += ',';
  out += std::to_string(options.min_samples);
  out += ',';
  out += std::to_string(options.max_samples);
  out += ',';
  out += std::to_string(options.max_total_attempts);
  out += ',';
  out += std::to_string(options.sample_offset);
  out += ',';
  out += std::to_string(options.chunk_samples);
  out += "|s";
  // Every strategy toggle, even ones contracted bit-identical today
  // (batch generation): conservative inclusion means a future kernel
  // change can never surface as a silently wrong index hit.
  uint32_t strategy = (options.use_exact_cdf ? 1u : 0u) |
                      (options.use_cdf_sampling ? 2u : 0u) |
                      (options.use_independence ? 4u : 0u) |
                      (options.use_metropolis ? 8u : 0u) |
                      (options.use_batch_generation ? 16u : 0u) |
                      (options.use_numeric_integration ? 32u : 0u);
  out += std::to_string(strategy);
  out += '|';
  AppendDoubleBits(options.integration_tolerance, &out);
  AppendDoubleBits(options.metropolis_threshold, &out);
  out += std::to_string(options.metropolis_check_after);
  return out;
}

std::string ExactResultKey(char op_tag, const ExprPtr& expr,
                           const std::vector<const Condition*>& conditions,
                           const VariablePool& pool,
                           const SamplingOptions& options) {
  KeyBuilder b;
  b.pool = &pool;
  b.exact = true;
  b.out += op_tag;
  b.out += 'G';
  b.out += std::to_string(pool.registry().generation());
  b.out += "|S";
  AppendHex64(pool.seed(), &b.out);
  b.out += "|O";
  b.out += SamplingOptionsFingerprint(options);
  b.out += "|E:";
  if (expr != nullptr) b.AppendExpr(*expr);
  for (const Condition* condition : conditions) {
    b.out += "|C";
    b.AppendCondition(*condition);
  }
  return std::move(b.out);
}

}  // namespace pip
