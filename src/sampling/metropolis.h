/// \file metropolis.h
/// \brief Metropolis random-walk sampling for constrained variable groups.
///
/// "Starting from an arbitrary point within the sample space, this
/// algorithm performs a random walk weighted towards regions with higher
/// probability densities" (paper §IV-A(d)). PIP switches a variable group
/// to Metropolis when rejection sampling's acceptance rate collapses and
/// every variable in the group provides a PDF. The target density is the
/// product of the variables' densities restricted to the constraint
/// region (an unnormalized density — exactly what Metropolis needs).

#ifndef PIP_SAMPLING_METROPOLIS_H_
#define PIP_SAMPLING_METROPOLIS_H_

#include <vector>

#include "src/common/random.h"
#include "src/constraints/consistency.h"
#include "src/dist/variable_pool.h"
#include "src/expr/condition.h"

namespace pip {

/// \brief Tuning parameters for the Metropolis sampler.
struct MetropolisOptions {
  /// Steps discarded after initialization ("lengthy burn-in period").
  size_t burn_in = 500;
  /// Chain steps between emitted samples (C_steps_per_sample).
  size_t steps_per_sample = 10;
  /// Natural-sampling attempts when scanning for a feasible start point.
  size_t start_point_attempts = 20000;
  /// Proposal standard deviation as a fraction of each variable's scale.
  double step_scale = 0.25;
};

/// \brief A Metropolis-Hastings chain over one independent variable group.
///
/// Restricted to groups of univariate variables with PDFs; multivariate
/// classes without exposed joint densities fall back to rejection sampling
/// upstream. Deterministic given (pool seed, chain key).
class MetropolisSampler {
 public:
  /// `atoms` are the group's constraint atoms (must mention only `vars`);
  /// `bounds` are the consistency-checker refinements used to seed the
  /// start-point scan and to size proposal steps. `chain_key` decorrelates
  /// chains of different rows/groups.
  MetropolisSampler(const VariablePool* pool, std::vector<VarRef> vars,
                    std::vector<ConstraintAtom> atoms,
                    const ConsistencyResult& bounds, uint64_t chain_key,
                    MetropolisOptions options = {});

  /// True when every variable qualifies (univariate with PDF).
  static bool CanHandle(const VariablePool& pool,
                        const std::vector<VarRef>& vars);

  /// Scans for a feasible start point and burns in the chain. Returns
  /// Inconsistent when no start point can be found within the attempt
  /// budget (Alg. 4.3 line 23: "if unable to find a start point return
  /// (NAN, 0)").
  Status Init();

  /// Advances the chain and writes the group's values into `out`.
  /// Requires a successful Init().
  Status NextSample(Assignment* out);

  /// Number of proposal steps taken so far (work accounting for the
  /// W_metropolis cost model).
  size_t steps_taken() const { return steps_taken_; }

 private:
  /// Unnormalized log target density at `point`; -inf outside constraints.
  double LogDensity(const std::vector<double>& point) const;
  bool SatisfiesConstraints(const std::vector<double>& point) const;
  void Step();

  const VariablePool* pool_;
  std::vector<VarRef> vars_;
  std::vector<ConstraintAtom> atoms_;
  std::vector<Interval> var_bounds_;
  std::vector<double> step_sizes_;
  MetropolisOptions options_;
  Rng rng_;

  std::vector<double> current_;
  double current_log_density_ = 0.0;
  bool initialized_ = false;
  size_t steps_taken_ = 0;
};

}  // namespace pip

#endif  // PIP_SAMPLING_METROPOLIS_H_
