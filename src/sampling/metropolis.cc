#include "src/sampling/metropolis.h"

#include <cmath>

namespace pip {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

MetropolisSampler::MetropolisSampler(const VariablePool* pool,
                                     std::vector<VarRef> vars,
                                     std::vector<ConstraintAtom> atoms,
                                     const ConsistencyResult& bounds,
                                     uint64_t chain_key,
                                     MetropolisOptions options)
    : pool_(pool),
      vars_(std::move(vars)),
      atoms_(std::move(atoms)),
      options_(options),
      rng_(MixBits(pool->seed(), chain_key, 0x6d6574726fULL, 0)) {
  var_bounds_.reserve(vars_.size());
  step_sizes_.reserve(vars_.size());
  for (const VarRef& v : vars_) {
    Interval b = bounds.BoundsFor(v).Intersect(pool_->Support(v));
    var_bounds_.push_back(b);
    // Proposal scale: prefer the constrained width, fall back to the
    // distribution's standard deviation, then to 1.
    double scale = 1.0;
    if (b.IsBounded() && b.Width() > 0) {
      scale = b.Width();
    } else {
      auto var = pool_->Variance(v);
      if (var.ok() && var.value() > 0) scale = std::sqrt(var.value());
    }
    step_sizes_.push_back(options_.step_scale * scale);
  }
}

bool MetropolisSampler::CanHandle(const VariablePool& pool,
                                  const std::vector<VarRef>& vars) {
  for (const VarRef& v : vars) {
    auto info = pool.Info(v.var_id);
    if (!info.ok()) return false;
    if (info.value()->num_components != 1) return false;
    if (!info.value()->dist->HasPdf()) return false;
  }
  return true;
}

bool MetropolisSampler::SatisfiesConstraints(
    const std::vector<double>& point) const {
  Assignment a;
  for (size_t i = 0; i < vars_.size(); ++i) a.Set(vars_[i], point[i]);
  for (const auto& atom : atoms_) {
    auto t = atom.Eval(a);
    if (!t.ok() || !t.value()) return false;
  }
  return true;
}

double MetropolisSampler::LogDensity(const std::vector<double>& point) const {
  if (!SatisfiesConstraints(point)) return kNegInf;
  double log_density = 0.0;
  for (size_t i = 0; i < vars_.size(); ++i) {
    auto pdf = pool_->Pdf(vars_[i], point[i]);
    if (!pdf.ok() || pdf.value() <= 0.0) return kNegInf;
    log_density += std::log(pdf.value());
  }
  return log_density;
}

Status MetropolisSampler::Init() {
  // Scan for a start point: draw natural samples of the group until one
  // satisfies the constraints. The scan shares the variables' constrained
  // bounds when a CDF window is available, which shortens the search in
  // exactly the cases where rejection sampling was failing for other
  // reasons (e.g. multi-variable atoms).
  std::vector<double> candidate(vars_.size());
  for (size_t attempt = 0; attempt < options_.start_point_attempts;
       ++attempt) {
    for (size_t i = 0; i < vars_.size(); ++i) {
      const VarRef& v = vars_[i];
      const Interval& b = var_bounds_[i];
      if (b.IsBounded() && pool_->HasInverseCdf(v) && pool_->HasCdf(v)) {
        auto flo = pool_->Cdf(v, b.lo);
        auto fhi = pool_->Cdf(v, b.hi);
        if (flo.ok() && fhi.ok() && fhi.value() > flo.value()) {
          // A -/+inf quantile endpoint only wastes a scan attempt here
          // (LogDensity filters it), but cheaply avoided all the same.
          double u = ClampUnitOpen(
              flo.value() + (fhi.value() - flo.value()) * rng_.NextUniform());
          auto x = pool_->InverseCdf(v, u);
          if (x.ok()) {
            candidate[i] = x.value();
            continue;
          }
        }
      }
      auto x = pool_->Generate(v, /*sample_index=*/attempt,
                               /*attempt=*/0xabcd0000ULL + attempt);
      if (!x.ok()) return x.status();
      candidate[i] = x.value();
    }
    double ld = LogDensity(candidate);
    if (ld > kNegInf) {
      current_ = candidate;
      current_log_density_ = ld;
      initialized_ = true;
      for (size_t s = 0; s < options_.burn_in; ++s) Step();
      return Status::OK();
    }
  }
  return Status::Inconsistent(
      "Metropolis could not find a feasible start point");
}

void MetropolisSampler::Step() {
  // Component-wise Gaussian random-walk proposal with Metropolis
  // acceptance; symmetric proposal, so the acceptance ratio is just the
  // density ratio.
  std::vector<double> proposal = current_;
  for (size_t i = 0; i < vars_.size(); ++i) {
    proposal[i] = current_[i] + step_sizes_[i] * rng_.NextGaussian();
  }
  double ld = LogDensity(proposal);
  ++steps_taken_;
  if (ld == kNegInf) return;
  double log_accept = ld - current_log_density_;
  if (log_accept >= 0.0 || std::log(rng_.NextUniform() + 1e-300) < log_accept) {
    current_ = std::move(proposal);
    current_log_density_ = ld;
  }
}

Status MetropolisSampler::NextSample(Assignment* out) {
  if (!initialized_) {
    return Status::Internal("MetropolisSampler::Init() was not called");
  }
  for (size_t s = 0; s < options_.steps_per_sample; ++s) Step();
  for (size_t i = 0; i < vars_.size(); ++i) out->Set(vars_[i], current_[i]);
  return Status::OK();
}

}  // namespace pip
