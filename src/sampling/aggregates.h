/// \file aggregates.h
/// \brief Aggregate sampling operators with per-table semantics (§IV-C).
///
/// Aggregates fold the row-existence probabilities into the expectation:
/// E[sum(h)] = sum over rows of E[chi_phi * h] = sum E[h | phi] * P[phi]
/// (linearity of expectation). Non-linear aggregates (max) get either the
/// sorted early-termination algorithm of Example 4.4 (constant targets) or
/// a world-instantiated fallback. *_hist variants return the raw sample
/// arrays "used to generate histograms and similar visualizations".

#ifndef PIP_SAMPLING_AGGREGATES_H_
#define PIP_SAMPLING_AGGREGATES_H_

#include <string>
#include <vector>

#include "src/ctable/ctable.h"
#include "src/sampling/expectation.h"

namespace pip {

/// \brief Options specific to aggregate evaluation.
struct AggregateOptions {
  /// Precision cutoff for the expected_max early-termination scan
  /// (Example 4.4: "if the desired precision is 0.1, we can stop...").
  double max_precision = 1e-6;
  /// Law-of-large-numbers sample scaling (§IV-C): when summing N rows the
  /// per-row tolerance may be relaxed by sqrt(N) without hurting the
  /// aggregate's accuracy. Only affects adaptive (non fixed-sample) mode.
  bool scale_tolerance_by_rows = true;
  /// World count for world-instantiated fallback aggregates.
  size_t world_samples = 1000;
};

/// \brief Aggregate operators bound to a sampling engine and a c-table.
class AggregateEvaluator {
 public:
  AggregateEvaluator(const SamplingEngine* engine,
                     AggregateOptions options = {})
      : engine_(engine), options_(options) {}

  const SamplingEngine& engine() const { return *engine_; }
  const AggregateOptions& options() const { return options_; }

  /// expected_sum(column): sum of per-row conditional expectations
  /// weighted by row confidence. Rows evaluate in parallel (outer axis)
  /// and fold in row order — bit-identical at every thread count.
  StatusOr<double> ExpectedSum(const CTable& table,
                               const std::string& column) const;

  /// expected_count(*): sum of row confidences, with the same
  /// sqrt(N)-relaxed per-row tolerance as ExpectedSum so count and sum
  /// estimates of one table carry consistent precision.
  StatusOr<double> ExpectedCount(const CTable& table) const;

  /// expected_avg(column): E[sum]/E[count] (first-order approximation of
  /// the expected average; exact when the row count is deterministic).
  /// One fused row sweep: each row's condition is planned and sampled
  /// once, yielding both the sum and the count term; rows whose sampling
  /// budget collapses contribute to neither.
  StatusOr<double> ExpectedAvg(const CTable& table,
                               const std::string& column) const;

  /// expected_max(column) via Example 4.4 when every target cell is
  /// constant: sort descending, accumulate v_i * P[phi_i] * prod_{j<i}
  /// (1 - P[phi_j]), stop when the remaining mass bound drops below
  /// max_precision. Rows are assumed independent across distinct variable
  /// groups (exact in that case); falls back to world sampling otherwise.
  /// Worlds in which the table is empty contribute `empty_value`.
  StatusOr<double> ExpectedMax(const CTable& table, const std::string& column,
                               double empty_value = 0.0) const;

  /// expected_stddev(column): expectation of the per-world standard
  /// deviation of the column across present rows (the paper's example of
  /// an aggregate without linearity of expectation; world-instantiated).
  /// Worlds with fewer than two rows contribute 0.
  StatusOr<double> ExpectedStdDev(const CTable& table,
                                  const std::string& column) const;

  /// Standard deviation of the *sum* aggregate itself across worlds —
  /// the spread a decision-maker should attach to expected_sum.
  StatusOr<double> SumStdDev(const CTable& table,
                             const std::string& column) const;

  /// expected_sum_hist: per-world samples of the aggregate (length
  /// options.world_samples), for histogramming.
  StatusOr<std::vector<double>> ExpectedSumHist(const CTable& table,
                                                const std::string& column) const;

  /// expected_max_hist: per-world samples of the max.
  StatusOr<std::vector<double>> ExpectedMaxHist(const CTable& table,
                                                const std::string& column,
                                                double empty_value = 0.0) const;

  /// World-instantiated generic aggregate: instantiates
  /// options.world_samples complete worlds and applies `fold` to each
  /// world's column values. This is the worst-case path the paper
  /// describes for aggregates that do not obey linearity of expectation.
  StatusOr<std::vector<double>> SampleWorlds(
      const CTable& table, const std::string& column,
      const std::function<double(const std::vector<double>&)>& fold) const;

 private:
  /// Engine with per-row tolerance relaxed for an N-row sum.
  SamplingEngine RowEngine(size_t num_rows) const;

  const SamplingEngine* engine_;
  AggregateOptions options_;
};

/// Group-by aggregation (paper §II-C: "the above summation simply proceeds
/// within groups of tuples from C_R that agree on the group columns").
/// Partitions `table` on deterministic `group_columns` and evaluates the
/// chosen aggregate of `value_column` within each group — sampling effort
/// is allocated per group, in a goal-directed fashion. Output schema:
/// group columns + the aggregate column.
enum class GroupAggregate { kExpectedSum, kExpectedCount, kExpectedAvg, kExpectedMax };

StatusOr<Table> GroupedAggregate(const AggregateEvaluator& evaluator,
                                 const CTable& table,
                                 const std::vector<std::string>& group_columns,
                                 const std::string& value_column,
                                 GroupAggregate aggregate);

/// \brief A fixed-width histogram built from samples.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<size_t> counts;

  size_t total() const;
  std::string ToString(size_t bar_width = 40) const;
};

/// Builds a histogram with `buckets` equal-width buckets spanning the
/// sample range.
Histogram BuildHistogram(const std::vector<double>& samples, size_t buckets);

}  // namespace pip

#endif  // PIP_SAMPLING_AGGREGATES_H_
