#include "src/sampling/aggregates.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/row_parallel.h"
#include "src/common/running_stats.h"
#include "src/common/thread_pool.h"
#include "src/ctable/algebra.h"
#include "src/sampling/index_ops.h"

namespace pip {

namespace {
constexpr uint64_t kWorldMarker = 0x3081d5ULL << 32;
}

SamplingEngine AggregateEvaluator::RowEngine(size_t num_rows) const {
  SamplingOptions opts = engine_->options();
  if (options_.scale_tolerance_by_rows && opts.fixed_samples == 0 &&
      num_rows > 1) {
    // Law of large numbers (§IV-C): summing N independent per-row
    // estimates divides the aggregate's standard error by sqrt(N), so the
    // per-row tolerance may be relaxed by the same factor.
    opts.delta = std::min(0.5, opts.delta * std::sqrt(
                                   static_cast<double>(num_rows)));
  }
  // Share the base engine's plan cache and result index: in fixed-sample
  // mode (where opts are untouched) aggregate rows and Analyze rows then
  // hit the very same index entries.
  return engine_->WithOptions(opts);
}

StatusOr<double> AggregateEvaluator::ExpectedSum(
    const CTable& table, const std::string& column) const {
  PIP_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(column));
  SamplingEngine row_engine = RowEngine(table.num_rows());
  // Rows are the outer parallel axis: each row's E[h | phi] * P[phi]
  // term lands in its own slot, and the sum folds in row order, so the
  // aggregate is bit-identical to the serial row loop.
  const auto& rows = table.rows();
  std::vector<double> terms(rows.size(), 0.0);
  PIP_RETURN_IF_ERROR(ParallelRows(
      rows.size(), row_engine.options().num_threads,
      [&](size_t r, const RowBatchContext& ctx) -> Status {
        const SamplingEngine cancel_engine =
            row_engine.WithCancelCheck([ctx] { return ctx.Cancelled(); });
        PIP_ASSIGN_OR_RETURN(
            ExpectationResult res,
            IndexedExpectation(cancel_engine, ProvenanceOf(table, r),
                               rows[r].cells[col], rows[r].condition,
                               /*compute_probability=*/true));
        if (!std::isnan(res.expectation) && res.probability > 0.0) {
          terms[r] = res.expectation * res.probability;
        }
        return Status::OK();
      }));
  double total = 0.0;
  for (double t : terms) total += t;
  return total;
}

StatusOr<double> AggregateEvaluator::ExpectedCount(const CTable& table) const {
  // Same sqrt(N)-relaxed per-row tolerance as ExpectedSum: count and sum
  // estimates of one table get consistent per-row precision.
  SamplingEngine row_engine = RowEngine(table.num_rows());
  const auto& rows = table.rows();
  std::vector<double> probs(rows.size(), 0.0);
  PIP_RETURN_IF_ERROR(ParallelRows(
      rows.size(), row_engine.options().num_threads,
      [&](size_t r, const RowBatchContext& ctx) -> Status {
        const SamplingEngine cancel_engine =
            row_engine.WithCancelCheck([ctx] { return ctx.Cancelled(); });
        PIP_ASSIGN_OR_RETURN(
            ExpectationResult res,
            IndexedConfidence(cancel_engine, ProvenanceOf(table, r),
                              rows[r].condition));
        probs[r] = res.probability;
        return Status::OK();
      }));
  double total = 0.0;
  for (double p : probs) total += p;
  return total;
}

StatusOr<double> AggregateEvaluator::ExpectedAvg(
    const CTable& table, const std::string& column) const {
  PIP_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(column));
  // One fused row sweep: a single Expectation call per row yields both
  // the sum term E[h | phi] * P[phi] and the count term P[phi], so each
  // row's condition is planned and sampled once instead of once for
  // ExpectedSum and again for ExpectedCount.
  SamplingEngine row_engine = RowEngine(table.num_rows());
  const auto& rows = table.rows();
  struct RowTerm {
    double sum = 0.0;
    double prob = 0.0;
  };
  std::vector<RowTerm> terms(rows.size());
  PIP_RETURN_IF_ERROR(ParallelRows(
      rows.size(), row_engine.options().num_threads,
      [&](size_t r, const RowBatchContext& ctx) -> Status {
        const SamplingEngine cancel_engine =
            row_engine.WithCancelCheck([ctx] { return ctx.Cancelled(); });
        PIP_ASSIGN_OR_RETURN(
            ExpectationResult res,
            IndexedExpectation(cancel_engine, ProvenanceOf(table, r),
                               rows[r].cells[col], rows[r].condition,
                               /*compute_probability=*/true));
        // Unsatisfiable (or collapsed) rows contribute to neither sum
        // nor count — they are absent from (almost) every world.
        if (!std::isnan(res.expectation) && res.probability > 0.0) {
          terms[r] = {res.expectation * res.probability, res.probability};
        }
        return Status::OK();
      }));
  double sum = 0.0, count = 0.0;
  for (const RowTerm& t : terms) {
    sum += t.sum;
    count += t.prob;
  }
  if (count <= 0.0) {
    return Status::Inconsistent("expected_avg over a table that is empty "
                                "in (almost) every world");
  }
  return sum / count;
}

StatusOr<double> AggregateEvaluator::ExpectedMax(const CTable& table,
                                                 const std::string& column,
                                                 double empty_value) const {
  PIP_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(column));
  if (table.num_rows() == 0) return empty_value;

  // Fast path (Example 4.4): constant targets and independent rows.
  bool constants = true;
  for (const auto& row : table.rows()) {
    if (!row.cells[col]->IsConstant()) {
      constants = false;
      break;
    }
  }
  bool independent_rows = true;
  if (constants) {
    std::set<uint64_t> seen_ids;
    for (const auto& row : table.rows()) {
      for (const VarRef& v : row.condition.Variables()) {
        if (!seen_ids.insert(v.var_id).second) {
          // A variable shared across rows breaks the product formula.
          independent_rows = false;
          break;
        }
      }
      if (!independent_rows) break;
    }
  }

  if (constants && independent_rows) {
    struct Entry {
      double value;
      double prob;
    };
    std::vector<Entry> entries;
    entries.reserve(table.num_rows());
    for (const auto& row : table.rows()) {
      PIP_ASSIGN_OR_RETURN(double v, row.cells[col]->value().AsDouble());
      PIP_ASSIGN_OR_RETURN(ExpectationResult r,
                           engine_->Confidence(row.condition));
      entries.push_back({v, r.probability});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.value > b.value; });
    double low_floor = std::min(entries.back().value, empty_value);
    double expectation = 0.0;
    double none_above = 1.0;  // P[no scanned row is present].
    for (size_t i = 0; i < entries.size(); ++i) {
      expectation += entries[i].value * entries[i].prob * none_above;
      none_above *= (1.0 - entries[i].prob);
      // Early termination: everything still unscanned can shift the
      // result by at most (next value - low floor) * P[nothing so far].
      if (i + 1 < entries.size()) {
        double bound = none_above * (entries[i + 1].value - low_floor);
        if (std::fabs(bound) < options_.max_precision) {
          // Close the truncated tail at the floor value.
          expectation += none_above * low_floor;
          return expectation;
        }
      }
    }
    expectation += none_above * empty_value;
    return expectation;
  }

  // General path: world-instantiated evaluation.
  PIP_ASSIGN_OR_RETURN(
      std::vector<double> worlds,
      SampleWorlds(table, column, [&](const std::vector<double>& vals) {
        if (vals.empty()) return empty_value;
        return *std::max_element(vals.begin(), vals.end());
      }));
  double total = 0.0;
  for (double w : worlds) total += w;
  return worlds.empty() ? empty_value
                        : total / static_cast<double>(worlds.size());
}

StatusOr<double> AggregateEvaluator::ExpectedStdDev(
    const CTable& table, const std::string& column) const {
  PIP_ASSIGN_OR_RETURN(
      std::vector<double> worlds,
      SampleWorlds(table, column, [](const std::vector<double>& vals) {
        if (vals.size() < 2) return 0.0;
        RunningStats stats;
        for (double v : vals) stats.Add(v);
        return stats.stddev();
      }));
  double total = 0.0;
  for (double w : worlds) total += w;
  return worlds.empty() ? 0.0 : total / static_cast<double>(worlds.size());
}

StatusOr<double> AggregateEvaluator::SumStdDev(
    const CTable& table, const std::string& column) const {
  PIP_ASSIGN_OR_RETURN(std::vector<double> sums,
                       ExpectedSumHist(table, column));
  RunningStats stats;
  for (double s : sums) stats.Add(s);
  return stats.stddev();
}

StatusOr<std::vector<double>> AggregateEvaluator::ExpectedSumHist(
    const CTable& table, const std::string& column) const {
  return SampleWorlds(table, column, [](const std::vector<double>& vals) {
    double s = 0.0;
    for (double v : vals) s += v;
    return s;
  });
}

StatusOr<std::vector<double>> AggregateEvaluator::ExpectedMaxHist(
    const CTable& table, const std::string& column,
    double empty_value) const {
  return SampleWorlds(table, column,
                      [empty_value](const std::vector<double>& vals) {
                        if (vals.empty()) return empty_value;
                        return *std::max_element(vals.begin(), vals.end());
                      });
}

StatusOr<std::vector<double>> AggregateEvaluator::SampleWorlds(
    const CTable& table, const std::string& column,
    const std::function<double(const std::vector<double>&)>& fold) const {
  PIP_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(column));
  const VariablePool& pool = engine_->pool();

  // Distinct variable ids across the whole table.
  VarSet vars = table.Variables();
  std::vector<uint64_t> ids;
  for (const VarRef& v : vars) {
    if (ids.empty() || ids.back() != v.var_id) ids.push_back(v.var_id);
  }

  // Every world is a pure function of its sample index, so the world
  // space shards across threads with bit-identical results: each chunk
  // writes its own slots, no cross-world state exists, and the fold
  // below reads the slots in index order.
  const size_t n = options_.world_samples;
  std::vector<double> results(n, 0.0);
  const size_t chunk =
      std::max<size_t>(1, engine_->options().chunk_samples);
  std::vector<Status> chunk_status(NumChunks(n, chunk), Status::OK());
  ThreadPool::For(
      NumChunks(n, chunk), engine_->options().num_threads, [&](size_t c) {
        // Chunk barrier: cooperative cancellation poll (see
        // SamplingOptions::cancel_check) — world chunks after an earlier
        // batch row's failure stop instantiating worlds nobody reads.
        const auto& cancel = engine_->options().cancel_check;
        if (cancel && cancel()) {
          chunk_status[c] = Status::Cancelled("world sampling");
          return;
        }
        std::vector<double> joint;
        Assignment world;
        std::vector<double> values;
        size_t end = std::min(n, (c + 1) * chunk);
        for (size_t w = c * chunk; w < end; ++w) {
          uint64_t sample_index = engine_->options().sample_offset + w;
          world.Clear();
          for (uint64_t id : ids) {
            Status s =
                pool.GenerateJoint(id, sample_index, kWorldMarker, &joint);
            if (!s.ok()) {
              chunk_status[c] = s;
              return;
            }
            for (uint32_t comp = 0; comp < joint.size(); ++comp) {
              world.Set(VarRef{id, comp}, joint[comp]);
            }
          }
          values.clear();
          for (const auto& row : table.rows()) {
            auto present = row.condition.Eval(world);
            if (!present.ok()) {
              chunk_status[c] = present.status();
              return;
            }
            if (!present.value()) continue;
            auto v = row.cells[col]->EvalDouble(world);
            if (!v.ok()) {
              chunk_status[c] = v.status();
              return;
            }
            values.push_back(v.value());
          }
          results[w] = fold(values);
        }
      });
  for (const Status& s : chunk_status) {
    PIP_RETURN_IF_ERROR(s);
  }
  return results;
}

StatusOr<Table> GroupedAggregate(const AggregateEvaluator& evaluator,
                                 const CTable& table,
                                 const std::vector<std::string>& group_columns,
                                 const std::string& value_column,
                                 GroupAggregate aggregate) {
  PIP_ASSIGN_OR_RETURN(std::vector<CTableGroup> groups,
                       GroupBy(table, group_columns));
  std::vector<std::string> out_columns = group_columns;
  switch (aggregate) {
    case GroupAggregate::kExpectedSum:
      out_columns.push_back("expected_sum(" + value_column + ")");
      break;
    case GroupAggregate::kExpectedCount:
      out_columns.push_back("expected_count(*)");
      break;
    case GroupAggregate::kExpectedAvg:
      out_columns.push_back("expected_avg(" + value_column + ")");
      break;
    case GroupAggregate::kExpectedMax:
      out_columns.push_back("expected_max(" + value_column + ")");
      break;
  }
  Table out((Schema(out_columns)));
  // Groups are independent per-table aggregations, so they fan out as
  // the outer parallel axis; the per-group evaluators' own row loops
  // run under the region's fractional budget share (with fewer groups
  // than threads the inner rows/samples fan out across the leftover
  // width). Values land in per-group slots and emit in group order:
  // identical to the serial loop.
  std::vector<double> values(groups.size(), 0.0);
  PIP_RETURN_IF_ERROR(ParallelRows(
      groups.size(), evaluator.engine().options().num_threads,
      [&](size_t g, const RowBatchContext& ctx) -> Status {
        const SamplingEngine group_engine =
            evaluator.engine().WithCancelCheck(
                [ctx] { return ctx.Cancelled(); });
        const AggregateEvaluator group_eval(&group_engine,
                                            evaluator.options());
        switch (aggregate) {
          case GroupAggregate::kExpectedSum: {
            PIP_ASSIGN_OR_RETURN(
                values[g],
                group_eval.ExpectedSum(groups[g].rows, value_column));
            break;
          }
          case GroupAggregate::kExpectedCount: {
            PIP_ASSIGN_OR_RETURN(values[g],
                                 group_eval.ExpectedCount(groups[g].rows));
            break;
          }
          case GroupAggregate::kExpectedAvg: {
            PIP_ASSIGN_OR_RETURN(
                values[g],
                group_eval.ExpectedAvg(groups[g].rows, value_column));
            break;
          }
          case GroupAggregate::kExpectedMax: {
            PIP_ASSIGN_OR_RETURN(
                values[g],
                group_eval.ExpectedMax(groups[g].rows, value_column));
            break;
          }
        }
        return Status::OK();
      }));
  for (size_t g = 0; g < groups.size(); ++g) {
    Row row = groups[g].key;
    row.push_back(Value(values[g]));
    PIP_RETURN_IF_ERROR(out.Append(std::move(row)));
  }
  return out;
}

size_t Histogram::total() const {
  size_t t = 0;
  for (size_t c : counts) t += c;
  return t;
}

std::string Histogram::ToString(size_t bar_width) const {
  std::ostringstream os;
  size_t max_count = 1;
  for (size_t c : counts) max_count = std::max(max_count, c);
  double width = counts.empty() ? 0.0 : (hi - lo) / counts.size();
  for (size_t i = 0; i < counts.size(); ++i) {
    double b_lo = lo + i * width;
    double b_hi = b_lo + width;
    size_t bar = counts[i] * bar_width / max_count;
    os << "[" << b_lo << ", " << b_hi << ") " << std::string(bar, '#') << " "
       << counts[i] << "\n";
  }
  return os.str();
}

Histogram BuildHistogram(const std::vector<double>& samples, size_t buckets) {
  Histogram h;
  if (samples.empty() || buckets == 0) return h;
  h.lo = *std::min_element(samples.begin(), samples.end());
  h.hi = *std::max_element(samples.begin(), samples.end());
  if (h.hi <= h.lo) h.hi = h.lo + 1.0;
  h.counts.assign(buckets, 0);
  for (double s : samples) {
    size_t b = static_cast<size_t>((s - h.lo) / (h.hi - h.lo) * buckets);
    if (b >= buckets) b = buckets - 1;
    ++h.counts[b];
  }
  return h;
}

}  // namespace pip
