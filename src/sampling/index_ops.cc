#include "src/sampling/index_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/row_parallel.h"
#include "src/common/running_stats.h"
#include "src/sampling/shape_key.h"

namespace pip {

namespace {

/// Sample sweep behind an eager entry's summary. Bounded and fixed: the
/// offline cost per row is ~kSummarySamples draws regardless of the
/// session's precision knobs.
constexpr size_t kSummarySamples = 256;

/// Quantile grid of the summary tables.
constexpr double kQuantileProbs[] = {0.01, 0.05, 0.1,  0.25, 0.5,
                                     0.75, 0.9,  0.95, 0.99};

/// Points of the empirical CDF grid.
constexpr size_t kCdfGridPoints = 33;

IndexedValue ToIndexedValue(const ExpectationResult& result) {
  IndexedValue value;
  value.expectation = result.expectation;
  value.probability = result.probability;
  value.samples_used = result.samples_used;
  value.attempts = result.attempts;
  value.exact = result.exact;
  return value;
}

ExpectationResult ToExpectationResult(const IndexedValue& value) {
  ExpectationResult result;
  result.expectation = value.expectation;
  result.probability = value.probability;
  result.samples_used = static_cast<size_t>(value.samples_used);
  result.attempts = static_cast<size_t>(value.attempts);
  result.exact = value.exact;
  return result;
}

/// True when the index applies to this call at all.
bool IndexApplies(const SamplingEngine& engine, const RowProvenance& prov) {
  return engine.result_index() != nullptr && engine.options().index_enabled &&
         prov.valid();
}

/// Empirical summary of `samples` (sorted in place).
std::shared_ptr<const IndexSummary> BuildSummary(std::vector<double> samples) {
  auto summary = std::make_shared<IndexSummary>();
  RunningStats stats;
  for (double s : samples) stats.Add(s);
  summary->moment_count = stats.count();
  summary->mean = stats.mean();
  summary->m2 = stats.m2();
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  for (double p : kQuantileProbs) {
    summary->quantile_probs.push_back(p);
    size_t rank = static_cast<size_t>(p * static_cast<double>(n - 1));
    summary->quantiles.push_back(samples[rank]);
  }
  // Equi-spaced value grid over the sampled range; ps are exact ranks of
  // the sorted sweep, so the grid is a genuine empirical CDF.
  double lo = samples.front(), hi = samples.back();
  if (hi <= lo) hi = lo + 1.0;
  summary->cdf_xs.reserve(kCdfGridPoints);
  summary->cdf_ps.reserve(kCdfGridPoints);
  for (size_t i = 0; i < kCdfGridPoints; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(kCdfGridPoints - 1);
    size_t below = std::upper_bound(samples.begin(), samples.end(), x) -
                   samples.begin();
    summary->cdf_xs.push_back(x);
    summary->cdf_ps.push_back(static_cast<double>(below) /
                              static_cast<double>(n));
  }
  return summary;
}

}  // namespace

StatusOr<ExpectationResult> IndexedExpectation(const SamplingEngine& engine,
                                               const RowProvenance& prov,
                                               const ExprPtr& expr,
                                               const Condition& condition,
                                               bool compute_probability) {
  // Deterministic calls short-circuit inside the engine faster than a
  // key could be built; don't pollute the index with them.
  if (!IndexApplies(engine, prov) ||
      (expr->IsDeterministic() && condition.IsDeterministic())) {
    return engine.Expectation(expr, condition, compute_probability);
  }
  ExpectationIndex* index = engine.result_index();
  std::string key = ExactResultKey(compute_probability ? 'P' : 'E', expr,
                                   {&condition}, engine.pool(),
                                   engine.options());
  if (auto hit = index->Lookup(prov.table_id, prov.generation, prov.row_id,
                               key)) {
    return ToExpectationResult(*hit);
  }
  PIP_ASSIGN_OR_RETURN(ExpectationResult result,
                       engine.Expectation(expr, condition,
                                          compute_probability));
  index->Insert(prov.table_id, prov.generation, prov.row_id, key,
                ToIndexedValue(result));
  return result;
}

StatusOr<ExpectationResult> IndexedConfidence(const SamplingEngine& engine,
                                              const RowProvenance& prov,
                                              const Condition& condition) {
  if (!IndexApplies(engine, prov) || condition.IsDeterministic()) {
    return engine.Confidence(condition);
  }
  ExpectationIndex* index = engine.result_index();
  std::string key = ExactResultKey('C', nullptr, {&condition}, engine.pool(),
                                   engine.options());
  if (auto hit = index->Lookup(prov.table_id, prov.generation, prov.row_id,
                               key)) {
    return ToExpectationResult(*hit);
  }
  PIP_ASSIGN_OR_RETURN(ExpectationResult result, engine.Confidence(condition));
  index->Insert(prov.table_id, prov.generation, prov.row_id, key,
                ToIndexedValue(result));
  return result;
}

StatusOr<double> IndexedJointConfidence(
    const SamplingEngine& engine, const RowProvenance& prov,
    const std::vector<Condition>& disjuncts) {
  if (!IndexApplies(engine, prov)) {
    return engine.JointConfidence(disjuncts);
  }
  ExpectationIndex* index = engine.result_index();
  std::vector<const Condition*> conditions;
  conditions.reserve(disjuncts.size());
  for (const Condition& c : disjuncts) conditions.push_back(&c);
  std::string key = ExactResultKey('J', nullptr, conditions, engine.pool(),
                                   engine.options());
  if (auto hit = index->Lookup(prov.table_id, prov.generation, prov.row_id,
                               key)) {
    return hit->probability;
  }
  PIP_ASSIGN_OR_RETURN(double probability, engine.JointConfidence(disjuncts));
  IndexedValue value;
  value.expectation = probability;
  value.probability = probability;
  index->Insert(prov.table_id, prov.generation, prov.row_id, key,
                std::move(value));
  return probability;
}

Status EagerBuildIndex(const CTable& table, const SamplingEngine& engine) {
  if (engine.result_index() == nullptr || !engine.options().index_enabled ||
      table.table_id() == 0) {
    return Status::OK();
  }
  ExpectationIndex* index = engine.result_index();
  const auto& rows = table.rows();
  return ParallelRows(
      rows.size(), engine.options().num_threads,
      [&](size_t r, const RowBatchContext& ctx) -> Status {
        const CTableRow& row = rows[r];
        RowProvenance prov = ProvenanceOf(table, r);
        if (!prov.valid()) return Status::OK();
        // Cancel-wired engine: index keys exclude cancel_check (like
        // num_threads), so entries built here stay byte-identical to
        // lazily backfilled ones.
        const SamplingEngine row_engine =
            engine.WithCancelCheck([ctx] { return ctx.Cancelled(); });
        bool row_probabilistic = !row.condition.IsDeterministic();
        // The row confidence serves conf() targets and expected_count.
        if (row_probabilistic) {
          PIP_RETURN_IF_ERROR(
              IndexedConfidence(row_engine, prov, row.condition).status());
        }
        // Cell expectations, mirroring Analyze's call pattern: the first
        // probabilistic cell also carries P[condition].
        bool first = true;
        for (const ExprPtr& cell : row.cells) {
          if (cell->IsDeterministic() && !row_probabilistic) continue;
          if (cell->IsDeterministic() && !first) continue;
          PIP_RETURN_IF_ERROR(
              IndexedExpectation(row_engine, prov, cell, row.condition, first)
                  .status());
          if (first && !cell->IsDeterministic()) {
            // Attach the moment/quantile/CDF summary to the first
            // probabilistic cell's 'P' entry: a bounded deterministic
            // sample sweep of the conditional distribution.
            PIP_ASSIGN_OR_RETURN(
                std::vector<double> samples,
                row_engine.SampleConditional(cell, row.condition,
                                             kSummarySamples));
            std::string key =
                ExactResultKey('P', cell, {&row.condition}, engine.pool(),
                               engine.options());
            if (auto existing = index->Lookup(prov.table_id, prov.generation,
                                              prov.row_id, key);
                existing && existing->summary == nullptr) {
              IndexedValue updated = *existing;
              updated.summary = BuildSummary(std::move(samples));
              index->Insert(prov.table_id, prov.generation, prov.row_id, key,
                            std::move(updated));
            }
          }
          first = false;
        }
        return Status::OK();
      });
}

}  // namespace pip
