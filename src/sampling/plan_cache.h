/// \file plan_cache.h
/// \brief Shape-keyed cache of sampling-plan skeletons.
///
/// Rows produced by one query share the *shape* of their conditions — the
/// same atoms structurally, over fresh per-row variables of the same
/// distribution classes, with different constants. Everything PlanGroups
/// derives from structure alone is identical across such rows:
///   * the minimal independent subsets (PartitionIndependent is a pure
///     function of the variable-sharing pattern),
///   * which groups qualify for exact CDF integration (atom shapes plus
///     class capabilities),
///   * which groups touch the target expression.
/// The cache memoizes exactly that as a PlanSkeleton; per-row work
/// (consistency bounds, CDF window endpoints, exact probabilities, which
/// all depend on the constants and parameters) stays in PlanGroups. This
/// is how Analyze / AnalyzeJointConfidence batch rows sharing a shape and
/// pay the planning pass once (ROADMAP "Batching" item).
///
/// Keys abstract constants to their Value type and variables to
/// (canonical id, component, distribution class); the canonical id
/// numbering follows first appearance so the key also encodes which atoms
/// share variables. Engine flags that change planning decisions
/// (use_independence, use_exact_cdf, use_cdf_sampling) are folded into
/// the key so one cache serves reconfigured engine copies safely, as is
/// the DistributionRegistry generation counter so plugin re-registration
/// under an existing class name invalidates stale skeletons.

#ifndef PIP_SAMPLING_PLAN_CACHE_H_
#define PIP_SAMPLING_PLAN_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dist/variable_pool.h"
#include "src/expr/condition.h"

namespace pip {

/// \brief The structure-only part of a group plan.
struct PlanSkeleton {
  struct Group {
    /// Indices into the canonical variable order returned by ShapeKey;
    /// instantiation maps them back to the row's actual VarRefs.
    std::vector<size_t> var_slots;
    std::vector<size_t> atom_indices;
    bool touches_target = false;
    /// Shape-level exact-CDF eligibility (single variable, all atoms
    /// var-vs-numeric-const, PMF present when equality atoms occur).
    bool exact_eligible = false;
  };
  std::vector<Group> groups;
};

/// \brief Thread-safe skeleton cache, shared by copies of one engine.
class PlanCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
  };

  /// Builds the canonical shape key of (condition, target_vars) and
  /// appends the distinct VarRefs in canonical slot order to *canon_vars
  /// (cleared first). `flag_bits` folds planning-relevant engine options
  /// into the key.
  static std::string ShapeKey(const Condition& condition,
                              const VarSet& target_vars,
                              const VariablePool& pool, uint32_t flag_bits,
                              std::vector<VarRef>* canon_vars);

  /// Cached skeleton for `key`, or nullptr (counts a hit/miss).
  std::shared_ptr<const PlanSkeleton> Lookup(const std::string& key);

  void Insert(const std::string& key,
              std::shared_ptr<const PlanSkeleton> skeleton);

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const PlanSkeleton>> map_;
  Stats stats_;
};

}  // namespace pip

#endif  // PIP_SAMPLING_PLAN_CACHE_H_
