#include "src/common/interval.h"

#include <sstream>

namespace pip {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Multiplication on extended reals treating 0 * inf as an indeterminate
// that the caller widens; here we return 0 which, combined with taking
// min/max over all corner products including the widened ones, stays sound
// because we check for the indeterminate case explicitly in Mul.
double SafeMul(double a, double b) {
  if ((a == 0.0 && std::isinf(b)) || (b == 0.0 && std::isinf(a))) return 0.0;
  return a * b;
}

}  // namespace

std::string Interval::ToString() const {
  if (IsEmpty()) return "[empty]";
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "]";
  return os.str();
}

Interval Add(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  double lo = a.lo + b.lo;
  double hi = a.hi + b.hi;
  // -inf + inf can only arise from mixing opposite unbounded endpoints;
  // conservatively widen that endpoint.
  if (std::isnan(lo)) lo = -kInf;
  if (std::isnan(hi)) hi = kInf;
  return Interval(lo, hi);
}

Interval Neg(const Interval& a) {
  if (a.IsEmpty()) return Interval::Empty();
  return Interval(-a.hi, -a.lo);
}

Interval Sub(const Interval& a, const Interval& b) { return Add(a, Neg(b)); }

Interval Mul(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  double c[4] = {SafeMul(a.lo, b.lo), SafeMul(a.lo, b.hi), SafeMul(a.hi, b.lo),
                 SafeMul(a.hi, b.hi)};
  double lo = c[0], hi = c[0];
  for (double v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // If an indeterminate 0*inf corner participated, widen: whenever one
  // operand straddles or touches 0 and the other is unbounded, the product
  // can be anything of that sign; being conservative keeps Alg 3.2 sound
  // (we may fail to detect an inconsistency but never invent one).
  bool a_zero = a.Contains(0.0), b_zero = b.Contains(0.0);
  bool a_unbounded = std::isinf(a.lo) || std::isinf(a.hi);
  bool b_unbounded = std::isinf(b.lo) || std::isinf(b.hi);
  if ((a_zero && b_unbounded) || (b_zero && a_unbounded)) {
    return Interval::All();
  }
  return Interval(lo, hi);
}

Interval Div(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  if (b.Contains(0.0)) return Interval::All();
  return Mul(a, Interval(1.0 / b.hi, 1.0 / b.lo));
}

Interval Pow(const Interval& a, int n) {
  if (a.IsEmpty()) return Interval::Empty();
  if (n == 0) return Interval::Point(1.0);
  if (n == 1) return a;
  if (n % 2 == 1) {
    double lo = std::pow(a.lo, n), hi = std::pow(a.hi, n);
    return Interval(lo, hi);
  }
  // Even power: minimum at 0 if the interval straddles it.
  double alo = std::pow(std::fabs(a.lo), n), ahi = std::pow(std::fabs(a.hi), n);
  double hi = std::max(alo, ahi);
  double lo = a.Contains(0.0) ? 0.0 : std::min(alo, ahi);
  return Interval(lo, hi);
}

}  // namespace pip
