#include "src/common/random.h"

#include <cmath>

#include "src/common/status.h"

namespace pip {

namespace {

inline uint64_t SplitMix64Step(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Avalanche(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixBits(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  uint64_t h = Avalanche(a + 0x9e3779b97f4a7c15ULL);
  h = Avalanche(h ^ Rotl(b, 17) ^ 0xc2b2ae3d27d4eb4fULL);
  h = Avalanche(h + Rotl(c, 31) + 0x165667b19e3779f9ULL);
  h = Avalanche(h ^ Rotl(d, 47) ^ 0x27d4eb2f165667c5ULL);
  return h;
}

uint64_t RandomStream::NextBounded(uint64_t n) {
  PIP_CHECK(n > 0);
  // Lemire's multiply-shift rejection method: unbiased.
  uint64_t x = NextBits();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = NextBits();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

void RandomStream::FillBits(uint64_t* out, uint64_t n) {
  // Hoist the three key words out of the loop; only the counter varies, so
  // the compiler can keep the stream coordinates in registers across the
  // whole block. Each word equals what NextBits() would have returned.
  const uint64_t a = seed_ ^ 0x9e3779b97f4a7c15ULL;
  const uint64_t b = variable_id_ * 0xbf58476d1ce4e5b9ULL;
  const uint64_t c = component_ ^ (sample_index_ << 32);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = MixBits(a, b, c, counter_++);
  }
}

void RandomStream::FillUniforms(double* out, uint64_t n) {
  const uint64_t a = seed_ ^ 0x9e3779b97f4a7c15ULL;
  const uint64_t b = variable_id_ * 0xbf58476d1ce4e5b9ULL;
  const uint64_t c = component_ ^ (sample_index_ << 32);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(MixBits(a, b, c, counter_++) >> 11) *
             0x1.0p-53;
  }
}

double RandomStream::NextGaussian() {
  // Box-Muller; uses two uniforms per pair but keeps the stream stateless
  // apart from the counter (no cached second value, to preserve replay
  // determinism regardless of call interleavings).
  double u1 = NextOpenUniform();
  double u2 = NextUniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& word : s_) word = SplitMix64Step(x);
}

uint64_t Rng::NextBits() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextUniform() {
  return static_cast<double>(NextBits() >> 11) * 0x1.0p-53;
}

double Rng::NextOpenUniform() {
  double u = NextUniform();
  return u > 0.0 ? u : 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextUniform();
}

uint64_t Rng::NextBounded(uint64_t n) {
  PIP_CHECK(n > 0);
  uint64_t x = NextBits();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = NextBits();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PIP_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  double u1 = NextOpenUniform();
  double u2 = NextUniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double rate) {
  PIP_CHECK(rate > 0);
  return -std::log(NextOpenUniform()) / rate;
}

}  // namespace pip
