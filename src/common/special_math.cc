#include "src/common/special_math.h"

#include <cmath>
#include <limits>

namespace pip {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-14;
constexpr int kMaxIter = 300;
}  // namespace

double ErfInv(double x) {
  if (x <= -1.0) return -kInf;
  if (x >= 1.0) return kInf;
  if (x == 0.0) return 0.0;
  // Initial guess: Giles (2010) single-precision polynomial, then two
  // Newton refinement steps against erf for full double accuracy.
  double w = -std::log((1.0 - x) * (1.0 + x));
  double p;
  if (w < 6.25) {
    w -= 3.125;
    p = -3.6444120640178196996e-21;
    p = -1.685059138182016589e-19 + p * w;
    p = 1.2858480715256400167e-18 + p * w;
    p = 1.115787767802518096e-17 + p * w;
    p = -1.333171662854620906e-16 + p * w;
    p = 2.0972767875968561637e-17 + p * w;
    p = 6.6376381343583238325e-15 + p * w;
    p = -4.0545662729752068639e-14 + p * w;
    p = -8.1519341976054721522e-14 + p * w;
    p = 2.6335093153082322977e-12 + p * w;
    p = -1.2975133253453532498e-11 + p * w;
    p = -5.4154120542946279317e-11 + p * w;
    p = 1.051212273321532285e-09 + p * w;
    p = -4.1126339803469836976e-09 + p * w;
    p = -2.9070369957882005086e-08 + p * w;
    p = 4.2347877827932403518e-07 + p * w;
    p = -1.3654692000834678645e-06 + p * w;
    p = -1.3882523362786468719e-05 + p * w;
    p = 0.0001867342080340571352 + p * w;
    p = -0.00074070253416626697512 + p * w;
    p = -0.0060336708714301490533 + p * w;
    p = 0.24015818242558961693 + p * w;
    p = 1.6536545626831027356 + p * w;
  } else if (w < 16.0) {
    w = std::sqrt(w) - 3.25;
    p = 2.2137376921775787049e-09;
    p = 9.0756561938885390979e-08 + p * w;
    p = -2.7517406297064545428e-07 + p * w;
    p = 1.8239629214389227755e-08 + p * w;
    p = 1.5027403968909827627e-06 + p * w;
    p = -4.013867526981545969e-06 + p * w;
    p = 2.9234449089955446044e-06 + p * w;
    p = 1.2475304481671778723e-05 + p * w;
    p = -4.7318229009055733981e-05 + p * w;
    p = 6.8284851459573175448e-05 + p * w;
    p = 2.4031110387097893999e-05 + p * w;
    p = -0.0003550375203628474796 + p * w;
    p = 0.00095328937973738049703 + p * w;
    p = -0.0016882755560235047313 + p * w;
    p = 0.0024914420961078508066 + p * w;
    p = -0.0037512085075692412107 + p * w;
    p = 0.005370914553590063617 + p * w;
    p = 1.0052589676941592334 + p * w;
    p = 3.0838856104922207635 + p * w;
  } else {
    w = std::sqrt(w) - 5.0;
    p = -2.7109920616438573243e-11;
    p = -2.5556418169965252055e-10 + p * w;
    p = 1.5076572693500548083e-09 + p * w;
    p = -3.7894654401267369937e-09 + p * w;
    p = 7.6157012080783393804e-09 + p * w;
    p = -1.4960026627149240478e-08 + p * w;
    p = 2.9147953450901080826e-08 + p * w;
    p = -6.7711997758452339498e-08 + p * w;
    p = 2.2900482228026654717e-07 + p * w;
    p = -9.9298272942317002539e-07 + p * w;
    p = 4.5260625972231537039e-06 + p * w;
    p = -1.9681778105531670567e-05 + p * w;
    p = 7.5995277030017761139e-05 + p * w;
    p = -0.00021503011930044477347 + p * w;
    p = -0.00013871931833623122026 + p * w;
    p = 1.0103004648645343977 + p * w;
    p = 4.8499064014085844221 + p * w;
  }
  double r = p * x;
  // Newton refinement: f(r) = erf(r) - x, f'(r) = 2/sqrt(pi) e^{-r^2}.
  const double two_over_sqrt_pi = 1.1283791670955125739;
  for (int i = 0; i < 2; ++i) {
    double err = std::erf(r) - x;
    r -= err / (two_over_sqrt_pi * std::exp(-r * r));
  }
  return r;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); }

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
}

double NormalQuantile(double p) {
  if (p <= 0.0) return -kInf;
  if (p >= 1.0) return kInf;
  return M_SQRT2 * ErfInv(2.0 * p - 1.0);
}

double LogGamma(double x) { return std::lgamma(x); }

namespace {

// Series expansion of P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x), valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double fpmin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / fpmin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = b + an / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (a <= 0.0) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (x <= 0.0) return 1.0;
  if (a <= 0.0) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double InverseRegularizedGammaP(double a, double p) {
  // Numerical Recipes-style initial guess plus Newton iterations with
  // bisection safeguarding.
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return kInf;
  double x;
  double gln = LogGamma(a);
  double a1 = a - 1.0;
  if (a > 1.0) {
    double pp = (p < 0.5) ? p : 1.0 - p;
    double t = std::sqrt(-2.0 * std::log(pp));
    x = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
    if (p < 0.5) x = -x;
    x = std::max(1e-3,
                 a * std::pow(1.0 - 1.0 / (9.0 * a) - x / (3.0 * std::sqrt(a)),
                              3.0));
  } else {
    double t = 1.0 - a * (0.253 + a * 0.12);
    if (p < t) {
      x = std::pow(p / t, 1.0 / a);
    } else {
      x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }
  }
  double lo = 0.0, hi = kInf;
  for (int j = 0; j < 100; ++j) {
    if (x <= 0.0) x = 0.5 * (lo + (std::isinf(hi) ? lo + 1.0 : hi));
    double err = RegularizedGammaP(a, x) - p;
    if (err > 0) {
      hi = x;
    } else {
      lo = x;
    }
    double t;
    if (a > 1.0) {
      double lna1 = std::log(a1);
      double afac = std::exp(a1 * (lna1 - 1.0) - gln);
      t = afac * std::exp(-(x - a1) + a1 * (std::log(x) - lna1));
    } else {
      t = std::exp(-x + a1 * std::log(x) - gln);
    }
    if (t == 0.0) break;
    double u = err / t;
    double xnew = x - u / (1.0 - 0.5 * std::min(1.0, u * (a1 / x - 1.0)));
    if (xnew <= lo || (std::isfinite(hi) && xnew >= hi)) {
      xnew = std::isfinite(hi) ? 0.5 * (lo + hi) : 2.0 * x;
    }
    if (std::fabs(x - xnew) < 1e-12 * x + 1e-300) {
      x = xnew;
      break;
    }
    x = xnew;
  }
  return x;
}

namespace {

// Lentz continued fraction for the incomplete beta function.
double BetaContinuedFraction(double a, double b, double x) {
  const double fpmin = 1e-300;
  double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < fpmin) d = fpmin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double log_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                     a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(log_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double InverseRegularizedBeta(double a, double b, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Bisection with Newton acceleration; the beta CDF is monotone on [0,1].
  double lo = 0.0, hi = 1.0, x = 0.5;
  for (int iter = 0; iter < 200; ++iter) {
    double f = RegularizedBeta(a, b, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step from the density, safeguarded by the bracket.
    double log_pdf = (a - 1.0) * std::log(std::max(x, 1e-300)) +
                     (b - 1.0) * std::log(std::max(1.0 - x, 1e-300)) +
                     LogGamma(a + b) - LogGamma(a) - LogGamma(b);
    double pdf = std::exp(log_pdf);
    double next = pdf > 0.0 ? x - f / pdf : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < 1e-15) return next;
    x = next;
  }
  return x;
}

double PoissonCdf(double lambda, double k) {
  if (k < 0.0) return 0.0;
  double kf = std::floor(k);
  return RegularizedGammaQ(kf + 1.0, lambda);
}

double PoissonLogPmf(double lambda, long long k) {
  if (k < 0) return -kInf;
  double kd = static_cast<double>(k);
  return kd * std::log(lambda) - lambda - LogGamma(kd + 1.0);
}

}  // namespace pip
