/// \file random.h
/// \brief Deterministic, counter-based pseudorandom number generation.
///
/// PIP's sampling semantics (paper §III-B, §V-B) require that a random
/// variable appearing at multiple points in a database receives a
/// *consistent* value within each sample: "multiple calls to Generate with
/// the same seed value produce the same sample, so only the seed value need
/// be stored." We realize this with a counter-based generator: the draw for
/// (variable id, component, sample index, draw index) is a pure function of
/// those coordinates and a global seed. No sampler state is stored anywhere.

#ifndef PIP_COMMON_RANDOM_H_
#define PIP_COMMON_RANDOM_H_

#include <cstdint>

namespace pip {

/// Pins a unit-interval draw strictly inside (0, 1): quantile functions
/// return -/+inf at the absolute endpoints on unbounded supports, so
/// samplers mapping uniforms through inverse CDFs must never hand them
/// exactly 0 or 1 (either directly or by rounding of a window affine map).
inline double ClampUnitOpen(double u) {
  if (u <= 0.0) return 0x1.0p-53;
  if (u >= 1.0) return 1.0 - 0x1.0p-53;
  return u;
}

/// \brief Stateless mixing function at the core of the counter-based RNG.
///
/// A strengthened splitmix64 finalizer applied to a 4-word input. Passes
/// through the full 64-bit avalanche twice, which empirically suffices for
/// Monte Carlo work (we test uniformity and independence properties).
uint64_t MixBits(uint64_t a, uint64_t b, uint64_t c, uint64_t d);

/// \brief A stateless handle for deterministic sampling.
///
/// A RandomKey identifies one logical stream of i.i.d. draws: typically
/// (global seed, variable id, component subscript, sample index). Successive
/// draws within the stream advance an internal counter; the object is cheap
/// to copy and never touches global state.
class RandomStream {
 public:
  /// Creates the stream keyed by the coordinate tuple.
  RandomStream(uint64_t seed, uint64_t variable_id, uint64_t component,
               uint64_t sample_index)
      : seed_(seed),
        variable_id_(variable_id),
        component_(component),
        sample_index_(sample_index) {}

  /// Next raw 64-bit word.
  uint64_t NextBits() {
    return MixBits(seed_ ^ 0x9e3779b97f4a7c15ULL,
                   variable_id_ * 0xbf58476d1ce4e5b9ULL,
                   component_ ^ (sample_index_ << 32),
                   counter_++);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextUniform() {
    return static_cast<double>(NextBits() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in the open interval (0, 1); never returns exactly 0.
  /// Use before logs / inverse CDFs that diverge at the endpoints.
  double NextOpenUniform() {
    double u = NextUniform();
    return u > 0.0 ? u : 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n);

  /// Standard normal draw (Box-Muller on the counter stream).
  double NextGaussian();

  /// Fills out[0..n) with the next n counter-consecutive raw words.
  /// Bit-identical to calling NextBits() n times; the counter advances by n,
  /// so block and scalar consumption can be interleaved freely.
  void FillBits(uint64_t* out, uint64_t n);

  /// Fills out[0..n) with the next n uniforms in [0, 1). Bit-identical to
  /// calling NextUniform() n times (one word per value).
  void FillUniforms(double* out, uint64_t n);

 private:
  uint64_t seed_;
  uint64_t variable_id_;
  uint64_t component_;
  uint64_t sample_index_;
  uint64_t counter_ = 0;
};

/// \brief Ordinary sequential PRNG for workload generation and shuffles.
///
/// xoshiro256** seeded via splitmix64. Deterministic given the seed; used
/// where a logical stream identity is not needed (e.g. synthetic data).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextBits();
  /// Uniform in [0,1).
  double NextUniform();
  /// Uniform in the open interval (0, 1); never returns exactly 0.
  double NextOpenUniform();
  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);
  /// Standard normal.
  double NextGaussian();
  /// Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

 private:
  uint64_t s_[4];
};

}  // namespace pip

#endif  // PIP_COMMON_RANDOM_H_
