#include "src/common/running_stats.h"

namespace pip {

double NormalizedRmsError(const std::vector<double>& estimates, double truth) {
  if (estimates.empty()) return 0.0;
  double sum_sq = 0.0;
  for (double e : estimates) {
    double d = e - truth;
    sum_sq += d * d;
  }
  double rms = std::sqrt(sum_sq / static_cast<double>(estimates.size()));
  return truth != 0.0 ? rms / std::fabs(truth) : rms;
}

}  // namespace pip
