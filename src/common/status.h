/// \file status.h
/// \brief Error handling primitives: Status and StatusOr.
///
/// PIP follows the Arrow/RocksDB idiom: fallible public APIs return a
/// `Status` (or `StatusOr<T>` when they produce a value) rather than
/// throwing exceptions. Internal invariant violations use PIP_CHECK.

#ifndef PIP_COMMON_STATUS_H_
#define PIP_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace pip {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< Named entity (table, distribution, column) missing.
  kAlreadyExists,     ///< Attempt to re-register an existing name.
  kOutOfRange,        ///< Index or parameter outside the valid domain.
  kUnimplemented,     ///< Feature intentionally not (yet) supported.
  kInternal,          ///< Invariant violation inside the engine.
  kInconsistent,      ///< A c-table condition is unsatisfiable (NAN result).
  kTypeMismatch,      ///< Value/schema type error.
  kParseError,        ///< Statement text could not be parsed (SQL layer).
  kCancelled,         ///< Work abandoned cooperatively (its output would
                      ///< be discarded anyway, e.g. a batch row after an
                      ///< earlier row's failure).
  kTimeout,           ///< A statement deadline expired before completion.
                      ///< Deciding *whether* work finishes, never *what*
                      ///< it computes: a call that completes under its
                      ///< deadline is bit-identical to an undeadlined one.
  kOverloaded,        ///< Admission control shed the request; retryable
                      ///< (distinct from kInternal: nothing is broken,
                      ///< the system is deliberately saying "try later").
};

/// Human-readable name of a status code.
const char* StatusCodeName(StatusCode code);

/// \brief The result of an operation that can fail.
///
/// A Status is either OK (the default) or carries a code and a message.
/// Cheap to copy in the OK case.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Usage:
/// \code
///   StatusOr<double> r = dist->Cdf(params, x);
///   if (!r.ok()) return r.status();
///   double v = r.value();
/// \endcode
template <typename T>
class StatusOr {
 public:
  /// Implicit from value (success).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "FATAL: StatusOr::value() on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Builds an internal-error message with file/line context for PIP_CHECK.
[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const char* expr, const std::string& msg);
}  // namespace internal

}  // namespace pip

/// Aborts with a diagnostic if `cond` is false. For engine invariants only;
/// user-facing validation must return Status instead.
#define PIP_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::pip::internal::FatalCheckFailure(__FILE__, __LINE__, #cond, ""); \
    }                                                                  \
  } while (0)

#define PIP_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pip::internal::FatalCheckFailure(__FILE__, __LINE__, #cond, msg); \
    }                                                                     \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define PIP_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::pip::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#define PIP_CONCAT_IMPL(a, b) a##b
#define PIP_CONCAT(a, b) PIP_CONCAT_IMPL(a, b)

/// Evaluates a StatusOr expression; on success binds the value to `lhs`,
/// on failure returns the error to the caller.
#define PIP_ASSIGN_OR_RETURN(lhs, expr)                     \
  auto PIP_CONCAT(_statusor_, __LINE__) = (expr);           \
  if (!PIP_CONCAT(_statusor_, __LINE__).ok())               \
    return PIP_CONCAT(_statusor_, __LINE__).status();       \
  lhs = std::move(PIP_CONCAT(_statusor_, __LINE__)).value()

#endif  // PIP_COMMON_STATUS_H_
