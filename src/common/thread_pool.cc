#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdint>

namespace pip {

namespace {

/// The calling thread's parallelism budget (see header). SIZE_MAX means
/// "outside any parallel region": unlimited. Pool tasks and ParallelFor
/// chunk bodies run under a budget of 1 via BudgetScope, which is what
/// makes nested parallel regions degrade to inline execution.
thread_local size_t t_parallelism_budget = SIZE_MAX;

}  // namespace

size_t ThreadPool::ParallelismBudget() { return t_parallelism_budget; }

ThreadPool::BudgetScope::BudgetScope(size_t budget)
    : saved_(t_parallelism_budget) {
  t_parallelism_budget = std::min(budget, saved_);
}

ThreadPool::BudgetScope::~BudgetScope() { t_parallelism_budget = saved_; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Publish stop_ under idle_mu_: a worker that just evaluated the
    // wait predicate but has not blocked yet would otherwise miss this
    // notify forever (lost wakeup -> join() hangs).
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t w = next_worker_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  {
    // The increment shares the queue's critical section with the push
    // (and the decrements in TryRunOne share the pop's), so pending_
    // can never under-count and wrap — a wrap would leave idle workers
    // busy-spinning on a phantom task count.
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    workers_[w]->queue.push_back(std::move(task));
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Fence: a worker between its wait-predicate check and blocking
    // holds idle_mu_; taking it here means any worker that proceeds to
    // block does so after this increment is visible, so the notify
    // below cannot be lost.
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::TryRunOne(size_t self) {
  std::function<void()> task;
  // Own queue first (front), then steal from the others' backs.
  {
    std::lock_guard<std::mutex> lock(workers_[self]->mu);
    if (!workers_[self]->queue.empty()) {
      task = std::move(workers_[self]->queue.front());
      workers_[self]->queue.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (!task) {
    for (size_t off = 1; off < workers_.size() && !task; ++off) {
      size_t victim = (self + off) % workers_.size();
      std::lock_guard<std::mutex> lock(workers_[victim]->mu);
      if (!workers_[victim]->queue.empty()) {
        task = std::move(workers_[victim]->queue.back());
        workers_[victim]->queue.pop_back();
        pending_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  if (!task) return false;
  {
    // Any pool task runs with a budget of 1: a task that tries to start
    // a parallel region of its own would block a worker on tasks no free
    // worker may ever pick up.
    BudgetScope nested(1);
    task();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  while (!stop_.load(std::memory_order_acquire)) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(ResolveThreads(0));
  return *pool;
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::ParallelFor(size_t num_chunks, size_t max_workers,
                             const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  max_workers = std::min(max_workers, t_parallelism_budget);
  if (max_workers <= 1 || num_chunks == 1) {
    // Degraded (serial) loops are not parallel regions: the body keeps
    // the inherited budget, so e.g. a one-row Analyze batch still fans
    // its per-row sample sharding across the pool.
    for (size_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }

  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> outstanding{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<SharedState>();
  auto drain = [state, &fn, num_chunks] {
    // Chunk bodies hold a budget of 1 on every executor — including the
    // calling thread below — so nested parallel regions run inline.
    BudgetScope nested(1);
    for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
         i < num_chunks;
         i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };

  size_t helpers = std::min(max_workers, num_chunks) - 1;
  state->outstanding.store(helpers, std::memory_order_relaxed);
  for (size_t h = 0; h < helpers; ++h) {
    // Helpers capture only the shared state and the chunk closure; the
    // caller outlives them because it blocks on `outstanding` below.
    Submit([state, drain] {
      drain();
      if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    });
  }

  drain();  // Caller-runs: progress even when the pool is saturated.

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] {
    return state->outstanding.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::For(size_t num_chunks, size_t num_threads,
                     const std::function<void(size_t)>& fn) {
  Shared().ParallelFor(num_chunks, ResolveThreads(num_threads), fn);
}

}  // namespace pip
