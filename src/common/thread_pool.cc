#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "src/common/failpoints.h"

namespace pip {

namespace {

/// The calling thread's parallelism budget (see header). SIZE_MAX means
/// "outside any parallel region": unlimited. ParallelFor installs each
/// region's fractional share on every executor; bare Submit() tasks run
/// under a budget of 1.
thread_local size_t t_parallelism_budget = SIZE_MAX;

/// Which pool owns this thread (nullptr for external threads) and the
/// worker index within it. Lets a joining worker drain its own deque
/// front before stealing. Pool-qualified because private pools exist in
/// tests: a private pool's worker touching the shared pool must scan as
/// an external thread, not index the wrong worker array.
thread_local const void* t_worker_pool = nullptr;
thread_local size_t t_worker_index = SIZE_MAX;

/// Internal RAII that sets the budget exactly instead of shrinking it.
/// A ParallelFor helper task enters execution at the pool-task baseline
/// of 1 (RunOneTask), but its chunk bodies are owed the region's
/// fractional share — which may be larger than 1, so the public
/// shrink-only BudgetScope cannot express the handoff. The share is
/// still ≤ the budget of the region's caller, so the shrink-only
/// invariant holds end to end.
class ExactBudgetScope {
 public:
  explicit ExactBudgetScope(size_t budget) : saved_(t_parallelism_budget) {
    t_parallelism_budget = budget;
  }
  ~ExactBudgetScope() { t_parallelism_budget = saved_; }

  ExactBudgetScope(const ExactBudgetScope&) = delete;
  ExactBudgetScope& operator=(const ExactBudgetScope&) = delete;

 private:
  size_t saved_;
};

}  // namespace

struct ThreadPool::RegionState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> outstanding{0};
  std::mutex mu;
  std::condition_variable done_cv;
};

size_t ThreadPool::ParallelismBudget() { return t_parallelism_budget; }

ThreadPool::BudgetScope::BudgetScope(size_t budget)
    : saved_(t_parallelism_budget) {
  t_parallelism_budget = std::min(budget, saved_);
}

ThreadPool::BudgetScope::~BudgetScope() { t_parallelism_budget = saved_; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Publish stop_ under idle_mu_: a worker that just evaluated the
    // wait predicate but has not blocked yet would otherwise miss this
    // notify forever (lost wakeup -> join() hangs).
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t w = next_worker_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  {
    // The increment shares the queue's critical section with the push
    // (and the decrements in RunOneTask share the pop's), so pending_
    // can never under-count and wrap — a wrap would leave idle workers
    // busy-spinning on a phantom task count.
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    workers_[w]->queue.push_back(std::move(task));
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Fence: a worker between its wait-predicate check and blocking
    // holds idle_mu_; taking it here means any worker that proceeds to
    // block does so after this increment is visible, so the notify
    // below cannot be lost.
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::RunOneTask(bool as_joiner) {
  const size_t self = (t_worker_pool == this) ? t_worker_index : SIZE_MAX;
  std::function<void()> task;
  bool stolen = false;
  // Own queue first (front) when this thread is a pool worker, then take
  // from the other queues' backs. A joining external thread has no own
  // queue, so every task it runs counts as a steal.
  if (self != SIZE_MAX) {
    std::lock_guard<std::mutex> lock(workers_[self]->mu);
    if (!workers_[self]->queue.empty()) {
      task = std::move(workers_[self]->queue.front());
      workers_[self]->queue.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (!task) {
    const size_t n = workers_.size();
    for (size_t off = 0; off < n && !task; ++off) {
      const size_t victim = (self == SIZE_MAX) ? off : (self + 1 + off) % n;
      if (victim == self) continue;
      std::lock_guard<std::mutex> lock(workers_[victim]->mu);
      if (!workers_[victim]->queue.empty()) {
        task = std::move(workers_[victim]->queue.back());
        workers_[victim]->queue.pop_back();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        stolen = true;
      }
    }
  }
  if (!task) return false;
  (as_joiner ? counters_.joiner_tasks : counters_.worker_tasks)
      .fetch_add(1, std::memory_order_relaxed);
  if (stolen) counters_.steals.fetch_add(1, std::memory_order_relaxed);
  {
    // Chaos site: dispatch latency. Stalls are invisible to results —
    // chunk schedules and fold order never depend on timing.
    (void)PIP_FAILPOINT("pool.task");
    // Pool-task baseline budget of 1: a bare Submit() task that starts a
    // parallel region of its own must not assume pool width it was never
    // granted. ParallelFor helper tasks override this from inside with
    // the fractional share their region computed (ExactBudgetScope).
    BudgetScope nested(1);
    task();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  t_worker_pool = this;
  t_worker_index = index;
  while (!stop_.load(std::memory_order_acquire)) {
    if (RunOneTask(/*as_joiner=*/false)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
  }
}

void ThreadPool::JoinRegion(RegionState& state) {
  while (state.outstanding.load(std::memory_order_acquire) != 0) {
    // Join-stealing: run any pending pool task instead of blocking. The
    // joiner's own region's chunks drain first by construction — its
    // drain call below ParallelFor already emptied the shared chunk
    // counter before we got here — so what remains runnable is other
    // regions' work, which is exactly what keeps nested fan-out
    // deadlock-free: a queued task can always find an executor while any
    // thread is joining.
    if (RunOneTask(/*as_joiner=*/true)) continue;
    // Every queue is empty: the region's remaining helpers are executing
    // on other threads. Wait timed, not open-ended — a task Submitted
    // after the scan above is announced on idle_cv_ (to workers), not on
    // this region's done_cv, so the joiner re-scans periodically.
    const auto wait_start = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(state.mu);
      if (state.outstanding.load(std::memory_order_acquire) == 0) break;
      counters_.join_waits.fetch_add(1, std::memory_order_relaxed);
      state.done_cv.wait_for(lock, std::chrono::microseconds(200));
    }
    const auto waited = std::chrono::steady_clock::now() - wait_start;
    counters_.join_wait_micros.fetch_add(
        std::chrono::duration_cast<std::chrono::microseconds>(waited).count(),
        std::memory_order_relaxed);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(ResolveThreads(0));
  return *pool;
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::ParallelFor(size_t num_chunks, size_t max_workers,
                             const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  max_workers = std::min(max_workers, t_parallelism_budget);
  if (max_workers <= 1 || num_chunks == 1) {
    // Degraded (serial) loops are not parallel regions: the body keeps
    // the inherited budget, so e.g. a one-row Analyze batch still fans
    // its per-row sample sharding across the pool.
    counters_.inline_regions.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }
  counters_.regions.fetch_add(1, std::memory_order_relaxed);

  // Fractional budget split: R executors share this region's budget, so
  // each chunk body gets max(1, budget / R) executors of its own. With
  // more budget than chunks the leftover width flows to the bodies (2
  // rows on budget 8 -> each row body runs its sample axis at budget 4).
  const size_t executors = std::min(max_workers, num_chunks);
  const size_t body_budget = std::max<size_t>(1, max_workers / executors);
  // A region launched from inside another region (finite caller budget)
  // is "nested"; its helper tasks are the ones that prove both axes
  // share the pool, so their executions are counted separately.
  const bool nested_region = t_parallelism_budget != SIZE_MAX;

  auto state = std::make_shared<RegionState>();
  auto drain = [state, &fn, num_chunks, body_budget] {
    // Every executor's chunk bodies run at the region's fractional
    // share. Set exactly (not min): helper tasks arrive here from
    // RunOneTask's pool-task baseline of 1.
    ExactBudgetScope scope(body_budget);
    for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
         i < num_chunks;
         i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };

  const size_t helpers = executors - 1;
  state->outstanding.store(helpers, std::memory_order_relaxed);
  for (size_t h = 0; h < helpers; ++h) {
    // Helpers capture only the shared state and the chunk closure; the
    // caller outlives them because JoinRegion does not return until
    // `outstanding` hits zero.
    Submit([this, state, drain, nested_region] {
      if (nested_region) {
        counters_.nested_tasks.fetch_add(1, std::memory_order_relaxed);
      }
      drain();
      if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    });
  }

  drain();  // Caller-runs: progress even when the pool is saturated.
  JoinRegion(*state);
}

void ThreadPool::For(size_t num_chunks, size_t num_threads,
                     const std::function<void(size_t)>& fn) {
  Shared().ParallelFor(num_chunks, ResolveThreads(num_threads), fn);
}

ThreadPool::SchedulerStats ThreadPool::scheduler_stats() const {
  SchedulerStats s;
  s.regions = counters_.regions.load(std::memory_order_relaxed);
  s.inline_regions = counters_.inline_regions.load(std::memory_order_relaxed);
  s.worker_tasks = counters_.worker_tasks.load(std::memory_order_relaxed);
  s.joiner_tasks = counters_.joiner_tasks.load(std::memory_order_relaxed);
  s.nested_tasks = counters_.nested_tasks.load(std::memory_order_relaxed);
  s.steals = counters_.steals.load(std::memory_order_relaxed);
  s.join_waits = counters_.join_waits.load(std::memory_order_relaxed);
  s.join_wait_micros =
      counters_.join_wait_micros.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::ResetStats() {
  counters_.regions.store(0, std::memory_order_relaxed);
  counters_.inline_regions.store(0, std::memory_order_relaxed);
  counters_.worker_tasks.store(0, std::memory_order_relaxed);
  counters_.joiner_tasks.store(0, std::memory_order_relaxed);
  counters_.nested_tasks.store(0, std::memory_order_relaxed);
  counters_.steals.store(0, std::memory_order_relaxed);
  counters_.join_waits.store(0, std::memory_order_relaxed);
  counters_.join_wait_micros.store(0, std::memory_order_relaxed);
}

}  // namespace pip
