/// \file row_parallel.h
/// \brief The shared row-axis chunk driver: fans independent per-row
/// work across the pool with deterministic, row-ordered semantics.
///
/// PIP's batch operators (Analyze, aconf(), the expected_* aggregates,
/// grouped aggregation) evaluate many independent rows, each of which is
/// itself a parallel sampling computation. The row dimension is the
/// outer parallel axis: when the caller's parallelism budget allows,
/// rows fan out across the pool and each row body runs under the
/// region's fractional budget share (max(1, budget / row executors), see
/// thread_pool.h's nesting policy), so a few-rows-many-threads batch
/// splits the pool across rows × samples; with one row or no budget the
/// row loop runs serially and the sample axis keeps the whole budget.
///
/// Determinism contract: the body writes each row's outputs to
/// pre-sized per-row slots, callers fold emitted rows in row order, and
/// per-row engine results are bit-identical at every thread count — so
/// a row-parallel batch is byte-identical to the serial row loop.
/// Errors follow the same rule: statuses land in per-row slots and the
/// first error in ROW order (not completion order) is surfaced, exactly
/// the error a serial loop would have returned. Rows strictly after the
/// earliest known failing row may be skipped — a serial loop never
/// reaches them, and their outputs are discarded anyway.
///
/// Mid-body cancellation: the skip check before a row body fires only
/// once, when the row is acquired — a long row body dispatched just
/// before an earlier row recorded its failure used to run to
/// completion anyway. Bodies that take the two-argument form
/// `body(row, const RowBatchContext&)` can poll `ctx.Cancelled()`
/// (typically by wiring it into `SamplingEngine::WithCancelCheck`, which
/// polls at chunk-fold barriers) and bail early with any status: a
/// cancelled row's status slot is only reachable when an earlier row
/// already failed, so the earlier row's error is what surfaces and the
/// abort never changes what a caller observes.

#ifndef PIP_COMMON_ROW_PARALLEL_H_
#define PIP_COMMON_ROW_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace pip {

/// Per-row view of a ParallelRows batch's failure state, handed to
/// two-argument row bodies. Copyable and cheap; valid for the duration
/// of the body call it was passed to.
class RowBatchContext {
 public:
  /// Serial-path / standalone context: never cancelled.
  RowBatchContext() : first_error_(nullptr), row_(0) {}
  RowBatchContext(const std::atomic<size_t>* first_error, size_t row)
      : first_error_(first_error), row_(row) {}

  /// True once a row strictly before this one has recorded a failure:
  /// this row's output will be discarded, so the body should stop as
  /// soon as convenient. Monotonic (never goes back to false) and safe
  /// to poll from any thread the body fans out to.
  bool Cancelled() const {
    return first_error_ != nullptr &&
           first_error_->load(std::memory_order_relaxed) < row_;
  }

 private:
  const std::atomic<size_t>* first_error_;
  size_t row_;
};

namespace internal {

/// Dispatches to `body(row, ctx)` when the body accepts the context,
/// else to the legacy `body(row)` form.
template <typename Body>
Status InvokeRowBody(const Body& body, size_t row,
                     const RowBatchContext& ctx) {
  if constexpr (std::is_invocable_v<const Body&, size_t,
                                    const RowBatchContext&>) {
    return body(row, ctx);
  } else {
    return body(row);
  }
}

}  // namespace internal

/// Runs `body(row)` — or `body(row, const RowBatchContext&)` for bodies
/// that support mid-row cancellation — for every row in [0, num_rows);
/// body returns the row's Status and writes its outputs to per-row
/// slots the caller pre-sized. Returns the first non-OK status in row
/// order. `num_threads` follows the engine convention (0 = hardware
/// concurrency) and is further clamped by the calling thread's
/// parallelism budget.
template <typename Body>
Status ParallelRows(size_t num_rows, size_t num_threads, const Body& body) {
  if (num_rows == 0) return Status::OK();
  const size_t workers = std::min(ThreadPool::ResolveThreads(num_threads),
                                  ThreadPool::ParallelismBudget());
  if (num_rows == 1 || workers <= 1) {
    // Serial row loop: nested engine calls keep the inherited budget, so
    // the sample axis fans out instead of the row axis. Never-cancelled
    // context: a serial loop stops at the first error by itself.
    const RowBatchContext ctx;
    for (size_t row = 0; row < num_rows; ++row) {
      PIP_RETURN_IF_ERROR(internal::InvokeRowBody(body, row, ctx));
    }
    return Status::OK();
  }

  std::vector<Status> statuses(num_rows, Status::OK());
  // Earliest row known to have failed; rows strictly after it are
  // skipped (a serial loop would never have run them, and the caller
  // discards every slot once an error surfaces). The skip check here
  // only covers rows not yet started — rows already inside `body` see
  // the same flag live through their RowBatchContext.
  std::atomic<size_t> first_error{num_rows};
  ThreadPool::Shared().ParallelFor(num_rows, workers, [&](size_t row) {
    if (first_error.load(std::memory_order_relaxed) < row) return;
    Status s = internal::InvokeRowBody(body, row,
                                       RowBatchContext(&first_error, row));
    if (!s.ok()) {
      statuses[row] = std::move(s);
      size_t cur = first_error.load(std::memory_order_relaxed);
      while (row < cur && !first_error.compare_exchange_weak(
                              cur, row, std::memory_order_relaxed)) {
      }
    }
  });
  for (size_t row = 0; row < num_rows; ++row) {
    PIP_RETURN_IF_ERROR(statuses[row]);
  }
  return Status::OK();
}

}  // namespace pip

#endif  // PIP_COMMON_ROW_PARALLEL_H_
