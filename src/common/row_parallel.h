/// \file row_parallel.h
/// \brief The shared row-axis chunk driver: fans independent per-row
/// work across the pool with deterministic, row-ordered semantics.
///
/// PIP's batch operators (Analyze, aconf(), the expected_* aggregates,
/// grouped aggregation) evaluate many independent rows, each of which is
/// itself a parallel sampling computation. The row dimension is the
/// outer parallel axis: when the caller's parallelism budget allows,
/// rows fan out across the pool and each row body runs under a budget
/// of 1 (its sample sharding degrades to inline execution — see
/// thread_pool.h's nesting policy); with one row or no budget the row
/// loop runs serially and the sample axis keeps the whole budget.
///
/// Determinism contract: the body writes each row's outputs to
/// pre-sized per-row slots, callers fold emitted rows in row order, and
/// per-row engine results are bit-identical at every thread count — so
/// a row-parallel batch is byte-identical to the serial row loop.
/// Errors follow the same rule: statuses land in per-row slots and the
/// first error in ROW order (not completion order) is surfaced, exactly
/// the error a serial loop would have returned. Rows strictly after the
/// earliest known failing row may be skipped — a serial loop never
/// reaches them, and their outputs are discarded anyway.

#ifndef PIP_COMMON_ROW_PARALLEL_H_
#define PIP_COMMON_ROW_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace pip {

/// Runs `body(row)` for every row in [0, num_rows); body returns the
/// row's Status and writes its outputs to per-row slots the caller
/// pre-sized. Returns the first non-OK status in row order.
/// `num_threads` follows the engine convention (0 = hardware
/// concurrency) and is further clamped by the calling thread's
/// parallelism budget.
template <typename Body>
Status ParallelRows(size_t num_rows, size_t num_threads, const Body& body) {
  if (num_rows == 0) return Status::OK();
  const size_t workers = std::min(ThreadPool::ResolveThreads(num_threads),
                                  ThreadPool::ParallelismBudget());
  if (num_rows == 1 || workers <= 1) {
    // Serial row loop: nested engine calls keep the inherited budget, so
    // the sample axis fans out instead of the row axis.
    for (size_t row = 0; row < num_rows; ++row) {
      PIP_RETURN_IF_ERROR(body(row));
    }
    return Status::OK();
  }

  std::vector<Status> statuses(num_rows, Status::OK());
  // Earliest row known to have failed; rows strictly after it are
  // skipped (a serial loop would never have run them, and the caller
  // discards every slot once an error surfaces).
  std::atomic<size_t> first_error{num_rows};
  ThreadPool::Shared().ParallelFor(num_rows, workers, [&](size_t row) {
    if (first_error.load(std::memory_order_relaxed) < row) return;
    Status s = body(row);
    if (!s.ok()) {
      statuses[row] = std::move(s);
      size_t cur = first_error.load(std::memory_order_relaxed);
      while (row < cur && !first_error.compare_exchange_weak(
                              cur, row, std::memory_order_relaxed)) {
      }
    }
  });
  for (size_t row = 0; row < num_rows; ++row) {
    PIP_RETURN_IF_ERROR(statuses[row]);
  }
  return Status::OK();
}

}  // namespace pip

#endif  // PIP_COMMON_ROW_PARALLEL_H_
