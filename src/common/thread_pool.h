/// \file thread_pool.h
/// \brief A small work-stealing thread pool, a deterministic
/// parallel-for with join-stealing, and the nesting-aware fractional
/// parallelism budget used by the sampling engine.
///
/// Determinism contract (see README "Threading model"): parallel callers
/// never let scheduling decide *what* is computed — only *when*. Work is
/// split into a chunk schedule that is a pure function of the problem
/// size, each chunk's result is written to its own slot, and reductions
/// fold slots in chunk-index order. Which worker executes which chunk is
/// irrelevant to the result, so `num_threads` is a throughput knob, not a
/// semantics knob.
///
/// Nesting policy (fractional budget splits): parallel regions nest (a
/// row-parallel Analyze batch dispatches per-row Expectation calls that
/// shard their own sample space), and the pool is shared across both
/// axes. Each thread carries an explicit parallelism budget
/// (ParallelismBudget()); a ParallelFor clamps its worker count to that
/// budget and *divides* it among the chunk bodies: a region using R
/// executors hands each body max(1, budget / R) executors of its own. A
/// 2-row batch on an 8-thread budget therefore runs each row body at
/// budget 4, and the nested sample regions fan out instead of degrading
/// inline — rows × samples saturate the pool at any batch shape. Bodies
/// of degraded (single-chunk or budget-1) loops keep the inherited
/// budget unchanged: a degraded loop is not a parallel region.
///
/// Join-stealing: a thread waiting in ParallelFor for its region's
/// helpers does not block — it drains pending pool tasks (its own
/// worker's queue first, then steals from the others) until the region
/// completes. Every queued task therefore gets executed as long as any
/// thread is waiting on any region, which makes nested fan-out
/// deadlock-free by construction: the pool can never wedge with all
/// threads blocked in joins while the tasks they await sit queued.
///
/// Both mechanisms are semantics-free by the determinism contract: the
/// budget only ever changes how *wide* a region runs, never which chunks
/// fold into the result.

#ifndef PIP_COMMON_THREAD_POOL_H_
#define PIP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pip {

/// \brief A fixed-size pool of workers with per-worker deques and work
/// stealing.
///
/// Tasks submitted via Submit() land on a worker's local deque
/// (round-robin); an idle worker first drains its own deque, then steals
/// from the other workers' tails. The pool is shared process-wide via
/// Shared() so that every SamplingEngine call reuses the same threads
/// instead of paying thread start-up per query.
class ThreadPool {
 public:
  /// Snapshot of the per-pool scheduler counters (monotonic totals since
  /// pool construction or the last ResetStats()). Observability only:
  /// the counters never feed back into scheduling decisions.
  struct SchedulerStats {
    uint64_t regions = 0;         ///< ParallelFor calls that fanned out.
    uint64_t inline_regions = 0;  ///< ParallelFor calls degraded inline.
    uint64_t worker_tasks = 0;    ///< Tasks executed by the worker loop.
    uint64_t joiner_tasks = 0;    ///< Tasks executed by threads waiting
                                  ///< in a ParallelFor join.
    uint64_t nested_tasks = 0;    ///< Executed helper tasks belonging to
                                  ///< nested regions (caller budget was
                                  ///< finite at launch).
    uint64_t steals = 0;          ///< Tasks taken from another worker's
                                  ///< deque (or any deque, for threads
                                  ///< without one).
    uint64_t join_waits = 0;      ///< Timed waits in joins after finding
                                  ///< no runnable task anywhere.
    uint64_t join_wait_micros = 0;  ///< Total time spent in those waits.
  };

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Never blocks.
  void Submit(std::function<void()> task);

  /// The process-wide pool, sized to the hardware concurrency. Created on
  /// first use.
  static ThreadPool& Shared();

  /// Resolves a `num_threads` option value: 0 means "hardware
  /// concurrency", anything else is taken literally.
  static size_t ResolveThreads(size_t requested);

  /// The calling thread's parallelism budget: the number of concurrent
  /// executors a parallel region started here may use. Threads outside
  /// any parallel region hold an unlimited budget; inside a ParallelFor
  /// chunk body the budget is the region's fractional share
  /// (max(1, region budget / executors)); inside a bare Submit() task it
  /// is 1.
  static size_t ParallelismBudget();

  /// RAII token that caps the calling thread's parallelism budget for a
  /// scope. The cap only ever shrinks (`min` with the inherited budget):
  /// a nested scope cannot re-expand what an outer region reserved.
  /// (ParallelFor internally installs the fractional share it computed
  /// for its bodies — that share is itself ≤ the region's budget, so the
  /// shrink-only invariant holds across the pool handoff too.)
  class BudgetScope {
   public:
    explicit BudgetScope(size_t budget);
    ~BudgetScope();

    BudgetScope(const BudgetScope&) = delete;
    BudgetScope& operator=(const BudgetScope&) = delete;

   private:
    size_t saved_;
  };

  /// Runs `fn(chunk_index)` for every chunk_index in [0, num_chunks),
  /// using up to `max_workers` concurrent executors (the calling thread
  /// participates, so at most max_workers - 1 pool tasks are enqueued).
  /// Blocks until every chunk has run. Chunk-to-worker assignment is
  /// dynamic; callers must make each chunk's work independent of the
  /// others (write to disjoint slots, fold afterwards).
  ///
  /// Reentrancy: `max_workers` is clamped to the calling thread's
  /// ParallelismBudget(), and the region divides that budget among its
  /// chunk bodies — with R = min(max_workers, num_chunks) executors,
  /// every body (on pool workers and the participating caller alike)
  /// runs at budget max(1, max_workers / R), so nested ParallelFor
  /// calls fan out across the leftover width instead of always
  /// degrading inline. While the region's helpers are outstanding the
  /// caller join-steals: it executes pending pool tasks (its own
  /// region's chunks drain first via the shared chunk counter) rather
  /// than blocking, which keeps nested fan-out deadlock-free. A loop
  /// that degrades for lack of budget or chunks does NOT reduce its
  /// callees' budget (it is not a parallel region), so e.g. a
  /// single-chunk region leaves the whole budget to its body.
  void ParallelFor(size_t num_chunks, size_t max_workers,
                   const std::function<void(size_t)>& fn);

  /// Convenience: ParallelFor over the shared pool with `num_threads`
  /// resolved via ResolveThreads.
  static void For(size_t num_chunks, size_t num_threads,
                  const std::function<void(size_t)>& fn);

  /// Reads the scheduler counters. Individual counters are read with
  /// relaxed atomics: totals are exact once the pool is quiescent,
  /// momentarily approximate while tasks are in flight.
  SchedulerStats scheduler_stats() const;

  /// Zeroes the scheduler counters (benches take deltas; tests isolate).
  void ResetStats();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };
  struct Counters {
    std::atomic<uint64_t> regions{0};
    std::atomic<uint64_t> inline_regions{0};
    std::atomic<uint64_t> worker_tasks{0};
    std::atomic<uint64_t> joiner_tasks{0};
    std::atomic<uint64_t> nested_tasks{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> join_waits{0};
    std::atomic<uint64_t> join_wait_micros{0};
  };
  struct RegionState;

  void WorkerLoop(size_t index);
  /// Pops and runs one pending task: the calling worker's own queue
  /// front first (if the caller is a pool worker), then the other
  /// queues' backs. `as_joiner` selects which executed-task counter the
  /// run is charged to. Returns false if every queue was empty.
  bool RunOneTask(bool as_joiner);
  /// Join-stealing wait: runs pending tasks until the region's helper
  /// count reaches zero, falling back to a short timed wait only when
  /// every queue is empty.
  void JoinRegion(RegionState& state);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> next_worker_{0};
  /// Tasks submitted but not yet picked up; guards the idle wait.
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  Counters counters_;
};

/// Number of chunks of size `chunk` covering `n` items (0 for n == 0).
inline size_t NumChunks(size_t n, size_t chunk) {
  return chunk == 0 ? 0 : (n + chunk - 1) / chunk;
}

}  // namespace pip

#endif  // PIP_COMMON_THREAD_POOL_H_
