/// \file thread_pool.h
/// \brief A small work-stealing thread pool, a deterministic
/// parallel-for, and the nesting-aware parallelism budget used by the
/// sampling engine.
///
/// Determinism contract (see README "Threading model"): parallel callers
/// never let scheduling decide *what* is computed — only *when*. Work is
/// split into a chunk schedule that is a pure function of the problem
/// size, each chunk's result is written to its own slot, and reductions
/// fold slots in chunk-index order. Which worker executes which chunk is
/// irrelevant to the result, so `num_threads` is a throughput knob, not a
/// semantics knob.
///
/// Nesting policy: parallel regions nest (a row-parallel Analyze batch
/// dispatches per-row Expectation calls that shard their own sample
/// space), but only the outermost region may fan out. Each thread
/// carries an explicit parallelism budget (ParallelismBudget()); a
/// ParallelFor clamps its worker count to that budget and executes every
/// chunk body under a budget of 1, so nested ParallelFor calls — on pool
/// workers *and* on the participating caller thread — degrade to inline
/// serial execution instead of deadlocking on a saturated pool or
/// oversubscribing the cores. Inline degradation is semantics-free by
/// the determinism contract, so the budget, like num_threads, is a
/// throughput knob only.

#ifndef PIP_COMMON_THREAD_POOL_H_
#define PIP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pip {

/// \brief A fixed-size pool of workers with per-worker deques and work
/// stealing.
///
/// Tasks submitted via Submit() land on a worker's local deque
/// (round-robin); an idle worker first drains its own deque, then steals
/// from the other workers' tails. The pool is shared process-wide via
/// Shared() so that every SamplingEngine call reuses the same threads
/// instead of paying thread start-up per query.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Never blocks.
  void Submit(std::function<void()> task);

  /// The process-wide pool, sized to the hardware concurrency. Created on
  /// first use.
  static ThreadPool& Shared();

  /// Resolves a `num_threads` option value: 0 means "hardware
  /// concurrency", anything else is taken literally.
  static size_t ResolveThreads(size_t requested);

  /// The calling thread's parallelism budget: the number of concurrent
  /// executors a parallel region started here may use. Threads outside
  /// any parallel region hold an unlimited budget; inside a ParallelFor
  /// chunk body (or any pool task) the budget is 1, so nested parallel
  /// regions run inline.
  static size_t ParallelismBudget();

  /// RAII token that caps the calling thread's parallelism budget for a
  /// scope. The cap only ever shrinks (`min` with the inherited budget):
  /// a nested scope cannot re-expand what an outer region reserved.
  class BudgetScope {
   public:
    explicit BudgetScope(size_t budget);
    ~BudgetScope();

    BudgetScope(const BudgetScope&) = delete;
    BudgetScope& operator=(const BudgetScope&) = delete;

   private:
    size_t saved_;
  };

  /// Runs `fn(chunk_index)` for every chunk_index in [0, num_chunks),
  /// using up to `max_workers` concurrent executors (the calling thread
  /// participates, so at most max_workers - 1 pool tasks are enqueued).
  /// Blocks until every chunk has run. Chunk-to-worker assignment is
  /// dynamic; callers must make each chunk's work independent of the
  /// others (write to disjoint slots, fold afterwards).
  ///
  /// Reentrancy: `max_workers` is clamped to the calling thread's
  /// ParallelismBudget(), and chunk bodies run under a budget of 1, so a
  /// nested ParallelFor degrades to inline serial execution — this keeps
  /// the pool deadlock-free without a dependency-aware scheduler while
  /// letting the outermost region own the fan-out decision. A loop that
  /// degrades for lack of budget does NOT reduce its callees' budget
  /// further (it is not a parallel region), so e.g. a single-chunk
  /// region leaves the whole budget to its body.
  void ParallelFor(size_t num_chunks, size_t max_workers,
                   const std::function<void(size_t)>& fn);

  /// Convenience: ParallelFor over the shared pool with `num_threads`
  /// resolved via ResolveThreads.
  static void For(size_t num_chunks, size_t num_threads,
                  const std::function<void(size_t)>& fn);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void WorkerLoop(size_t index);
  bool TryRunOne(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> next_worker_{0};
  /// Tasks submitted but not yet picked up; guards the idle wait.
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
};

/// Number of chunks of size `chunk` covering `n` items (0 for n == 0).
inline size_t NumChunks(size_t n, size_t chunk) {
  return chunk == 0 ? 0 : (n + chunk - 1) / chunk;
}

}  // namespace pip

#endif  // PIP_COMMON_THREAD_POOL_H_
