#include "src/common/failpoints.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace pip {
namespace failpoints {

namespace internal {
std::atomic<uint64_t> g_armed_sites{0};
}  // namespace internal

namespace {

struct SiteState {
  Action action;
  /// Consultations since arming; hashing this makes probabilistic firing
  /// a deterministic, replayable schedule.
  uint64_t consults = 0;
  uint64_t fires = 0;
};

struct RegistryState {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
};

RegistryState& Registry() {
  static RegistryState* state = new RegistryState();
  return *state;
}

/// splitmix64: full-avalanche 64-bit mix, the same generator family the
/// counter-based RNG uses. Keeps fire schedules independent across sites
/// even when their counters march in lockstep.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;  // FNV-1a.
  }
  return h;
}

/// Deterministic "uniform in [0,1)" for consultation `n` of `site`.
double SiteUniform(const std::string& site, uint64_t n) {
  uint64_t bits = Mix64(HashName(site) ^ Mix64(n));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

const char* ActionName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kOff:
      return "off";
    case ActionKind::kError:
      return "error";
    case ActionKind::kShort:
      return "short";
  }
  return "off";
}

/// Parses one "action(args)" element. Grammar documented in the header.
StatusOr<Action> ParseAction(const std::string& text) {
  size_t open = text.find('(');
  std::string name = open == std::string::npos ? text : text.substr(0, open);
  std::vector<double> args;
  if (open != std::string::npos) {
    if (text.back() != ')') {
      return Status::InvalidArgument("failpoint action '" + text +
                                     "' missing ')'");
    }
    std::string inner = text.substr(open + 1, text.size() - open - 2);
    std::istringstream in(inner);
    std::string part;
    while (std::getline(in, part, ',')) {
      char* end = nullptr;
      double v = std::strtod(part.c_str(), &end);
      if (end == part.c_str() || *end != '\0') {
        return Status::InvalidArgument("failpoint action argument '" + part +
                                       "' is not a number");
      }
      args.push_back(v);
    }
  }

  Action action;
  if (name == "error" || name == "short") {
    action.kind = name == "error" ? ActionKind::kError : ActionKind::kShort;
    if (args.size() > 1) {
      return Status::InvalidArgument("failpoint action '" + name +
                                     "' takes at most one argument");
    }
    if (!args.empty()) action.probability = args[0];
  } else if (name == "sleep") {
    action.kind = ActionKind::kOff;  // Fire() stalls; callers proceed.
    if (args.empty() || args.size() > 2 || args[0] < 0 ||
        args[0] != static_cast<uint64_t>(args[0])) {
      return Status::InvalidArgument(
          "failpoint action 'sleep' expects (ms[, probability])");
    }
    action.sleep_ms = static_cast<uint64_t>(args[0]);
    if (args.size() == 2) action.probability = args[1];
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + name + "'");
  }
  if (!(action.probability >= 0.0 && action.probability <= 1.0)) {
    return Status::InvalidArgument("failpoint probability must be in [0, 1]");
  }
  return action;
}

std::string RenderAction(const Action& action) {
  std::ostringstream out;
  if (action.sleep_ms > 0 && action.kind == ActionKind::kOff) {
    out << "sleep(" << action.sleep_ms << "," << action.probability << ")";
  } else {
    out << ActionName(action.kind) << "(" << action.probability << ")";
    if (action.sleep_ms > 0) out << "+sleep(" << action.sleep_ms << ")";
  }
  return out.str();
}

/// Arms the FAILPOINTS environment spec once per process, before any
/// site can be consulted (Consult calls this; the disabled fast path
/// never reaches it unless a test armed something explicitly, in which
/// case the env was already applied or absent).
void ArmFromEnvOnce() {
  static const bool armed = [] {
    const char* spec = std::getenv("FAILPOINTS");
    if (spec != nullptr && *spec != '\0') {
      Status status = ArmFromSpec(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "FAILPOINTS ignored: %s\n",
                     status.ToString().c_str());
      }
    }
    return true;
  }();
  (void)armed;
}

}  // namespace

namespace internal {

ActionKind Consult(const char* site) {
  RegistryState& reg = Registry();
  Action action;
  double u;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return ActionKind::kOff;
    action = it->second.action;
    u = SiteUniform(it->first, it->second.consults++);
    bool fires = u < action.probability;
    if (!fires) return ActionKind::kOff;
    ++it->second.fires;
  }
  // Stall outside the registry lock so a slow site cannot serialize
  // consultations of unrelated sites.
  if (action.sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.sleep_ms));
  }
  return action.kind;
}

}  // namespace internal

Status Arm(const std::string& site, Action action) {
  if (site.empty()) {
    return Status::InvalidArgument("failpoint site name is empty");
  }
  if (action.kind == ActionKind::kOff && action.sleep_ms == 0) {
    return Status::InvalidArgument("failpoint action is a no-op");
  }
  if (!(action.probability >= 0.0 && action.probability <= 1.0)) {
    return Status::InvalidArgument("failpoint probability must be in [0, 1]");
  }
  RegistryState& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto [it, inserted] = reg.sites.insert_or_assign(site, SiteState{action});
  (void)it;
  if (inserted) {
    internal::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Disarm(const std::string& site) {
  RegistryState& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.sites.erase(site) > 0) {
    internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  RegistryState& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  internal::g_armed_sites.fetch_sub(reg.sites.size(),
                                    std::memory_order_relaxed);
  reg.sites.clear();
}

Status ArmFromSpec(const std::string& spec) {
  // Validate every element before arming any, so a malformed spec never
  // half-applies.
  std::vector<std::pair<std::string, Action>> parsed;
  std::istringstream in(spec);
  std::string element;
  while (std::getline(in, element, ';')) {
    if (element.empty()) continue;
    size_t eq = element.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == element.size()) {
      return Status::InvalidArgument("failpoint spec element '" + element +
                                     "' is not site=action");
    }
    PIP_ASSIGN_OR_RETURN(Action action, ParseAction(element.substr(eq + 1)));
    parsed.emplace_back(element.substr(0, eq), action);
  }
  for (auto& [site, action] : parsed) {
    PIP_RETURN_IF_ERROR(Arm(site, action));
  }
  return Status::OK();
}

uint64_t FireCount(const std::string& site) {
  RegistryState& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

std::vector<SiteInfo> ActiveSites() {
  RegistryState& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<SiteInfo> out;
  out.reserve(reg.sites.size());
  for (const auto& [site, state] : reg.sites) {
    out.push_back({site, RenderAction(state.action), state.fires});
  }
  return out;
}

namespace {
/// Process-wide env arming: runs during static initialization of this
/// translation unit, so every binary (server, tests, benches) honors
/// FAILPOINTS without explicit setup code.
const bool g_env_armed = (ArmFromEnvOnce(), true);
}  // namespace

}  // namespace failpoints
}  // namespace pip
