/// \file failpoints.h
/// \brief Named fault-injection sites for the chaos/robustness harness.
///
/// A failpoint is a compiled-in hook at a spot where production code can
/// fail in ways unit tests cannot conveniently provoke: a socket send
/// erroring mid-frame, a distribution draw stalling, an index allocation
/// failing. Each site is consulted through PIP_FAILPOINT("site"), which
/// costs exactly one relaxed atomic load while no site is armed — cheap
/// enough to leave in hot loops (draw kernels, pool task dispatch) in
/// release builds.
///
/// Arming. Tests call Arm()/DisarmAll() directly; processes (pip-server,
/// the chaos CI job) arm through the environment:
///
///   FAILPOINTS="wire.send_error=error(0.02);dist.generate=sleep(2,0.1)"
///
/// The spec grammar is `site=action[;site=action]...` with actions
///   error(p)      fail the operation with probability p (default 1)
///   sleep(ms[,p]) stall the operation ms milliseconds, probability p
///   short(p)      degrade the operation (site-specific: e.g. the wire
///                 send loop writes one byte per syscall), probability p
///
/// Probabilistic firing is deterministic: each site hashes its own hit
/// counter (splitmix64), so a given spec replays the same fire schedule
/// in every run of the same binary. Fault injection obeys the engine's
/// determinism contract — an injected fault decides *whether* an
/// operation completes (error / how slowly), never *what* a completed
/// operation computes.
///
/// Site catalogue (grep PIP_FAILPOINT for ground truth):
///   wire.send_error    server/client frame send fails (Internal)
///   wire.short_write   frame send degrades to 1-byte writes
///   wire.recv_error    frame receive fails (Internal)
///   dist.generate      VariablePool draw stalls and/or fails
///   pool.task          thread-pool task dispatch stalls
///   index.insert_alloc expectation-index insert drops the entry
///                      (simulated allocation failure; index stays cold
///                      but correct)

#ifndef PIP_COMMON_FAILPOINTS_H_
#define PIP_COMMON_FAILPOINTS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace pip {
namespace failpoints {

/// What a consulted site tells its caller to do.
enum class ActionKind {
  kOff,    ///< Not armed or did not fire this time: proceed normally.
  kError,  ///< Fail the operation with the site's documented error.
  kShort,  ///< Degrade the operation (site-specific meaning).
  // kSleep never reaches callers: Fire() performs the stall itself and
  // reports kOff, so sleep-only sites need no handling at the call site.
};

/// One armed action. probability in [0, 1]; sleep_ms used by sleep.
struct Action {
  ActionKind kind = ActionKind::kOff;
  double probability = 1.0;
  uint64_t sleep_ms = 0;
};

namespace internal {
/// Count of currently armed sites. The only state the disabled fast
/// path touches.
extern std::atomic<uint64_t> g_armed_sites;

/// Slow path of PIP_FAILPOINT: looks the site up, decides whether it
/// fires (deterministic per-site counter hash), performs sleeps, and
/// returns what the caller should do.
ActionKind Consult(const char* site);
}  // namespace internal

/// True while any site is armed. One relaxed load; the whole cost of a
/// quiescent failpoint.
inline bool Enabled() {
  return internal::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

/// Arms `site` with `action` (replacing any previous arming).
/// InvalidArgument for kOff or a probability outside [0, 1].
Status Arm(const std::string& site, Action action);

/// Disarms one site (no-op when not armed) / every site.
void Disarm(const std::string& site);
void DisarmAll();

/// Arms every `site=action` element of a spec string (grammar above).
/// On a malformed element nothing in the spec is armed.
Status ArmFromSpec(const std::string& spec);

/// Times a site fired (caused an error/short/stall) since arming; 0 for
/// unknown or never-fired sites. Counters reset when the site is
/// re-armed or disarmed.
uint64_t FireCount(const std::string& site);

/// One row per armed site: (site, rendered action, fire count). Sorted
/// by site name — the SHOW FAILPOINTS listing.
struct SiteInfo {
  std::string site;
  std::string action;
  uint64_t fires = 0;
};
std::vector<SiteInfo> ActiveSites();

}  // namespace failpoints
}  // namespace pip

/// Consults a failpoint site. Yields an ActionKind; sites that only ever
/// arm error actions can compare against kError directly:
///
///   if (PIP_FAILPOINT("wire.recv_error") ==
///       failpoints::ActionKind::kError) {
///     return Status::Internal("injected recv failure");
///   }
///
/// Costs one relaxed atomic load when nothing is armed.
#define PIP_FAILPOINT(site)                                    \
  (::pip::failpoints::Enabled()                                \
       ? ::pip::failpoints::internal::Consult(site)            \
       : ::pip::failpoints::ActionKind::kOff)

#endif  // PIP_COMMON_FAILPOINTS_H_
