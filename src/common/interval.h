/// \file interval.h
/// \brief Closed interval arithmetic over the extended reals.
///
/// Used by the consistency checker (Alg. 3.2) to propagate variable bounds
/// through constraint atoms, and by the CDF-constrained sampler to restrict
/// the sampling region (§IV-A(b)).

#ifndef PIP_COMMON_INTERVAL_H_
#define PIP_COMMON_INTERVAL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace pip {

/// \brief A closed interval [lo, hi] over the extended reals.
///
/// The empty interval is represented canonically with lo > hi. All
/// operations treat +/-infinity correctly; indeterminate products
/// (0 * inf) conservatively widen to the full line.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  Interval() = default;
  Interval(double l, double h) : lo(l), hi(h) {}

  /// The whole extended real line (the "unbounded" interval).
  static Interval All() { return Interval(); }
  /// The canonical empty interval.
  static Interval Empty() { return Interval(1.0, -1.0); }
  /// A single point [x, x].
  static Interval Point(double x) { return Interval(x, x); }
  /// [lo, +inf).
  static Interval AtLeast(double l) {
    return Interval(l, std::numeric_limits<double>::infinity());
  }
  /// (-inf, hi].
  static Interval AtMost(double h) {
    return Interval(-std::numeric_limits<double>::infinity(), h);
  }

  bool IsEmpty() const { return lo > hi; }
  bool IsAll() const { return std::isinf(lo) && lo < 0 && std::isinf(hi) && hi > 0; }
  /// Both endpoints finite (and nonempty).
  bool IsBounded() const {
    return !IsEmpty() && std::isfinite(lo) && std::isfinite(hi);
  }
  /// At least one endpoint finite.
  bool HasAnyBound() const {
    return !IsEmpty() && (std::isfinite(lo) || std::isfinite(hi));
  }
  bool Contains(double x) const { return !IsEmpty() && x >= lo && x <= hi; }
  /// Width hi - lo; 0 for points, inf when unbounded, negative never
  /// (empty returns 0).
  double Width() const { return IsEmpty() ? 0.0 : hi - lo; }

  Interval Intersect(const Interval& o) const {
    if (IsEmpty() || o.IsEmpty()) return Empty();
    Interval r(std::max(lo, o.lo), std::min(hi, o.hi));
    return r.lo > r.hi ? Empty() : r;
  }

  /// Smallest interval containing both (convex hull).
  Interval Hull(const Interval& o) const {
    if (IsEmpty()) return o;
    if (o.IsEmpty()) return *this;
    return Interval(std::min(lo, o.lo), std::max(hi, o.hi));
  }

  bool operator==(const Interval& o) const {
    if (IsEmpty() && o.IsEmpty()) return true;
    return lo == o.lo && hi == o.hi;
  }

  std::string ToString() const;
};

/// Interval sum: [a]+[b].
Interval Add(const Interval& a, const Interval& b);
/// Interval difference: [a]-[b].
Interval Sub(const Interval& a, const Interval& b);
/// Interval negation.
Interval Neg(const Interval& a);
/// Interval product (conservative on 0*inf).
Interval Mul(const Interval& a, const Interval& b);
/// Interval quotient; if b contains 0 the result widens to All().
Interval Div(const Interval& a, const Interval& b);
/// Interval integer power for n >= 0.
Interval Pow(const Interval& a, int n);

}  // namespace pip

#endif  // PIP_COMMON_INTERVAL_H_
