/// \file special_math.h
/// \brief Special functions backing distribution PDFs, CDFs and quantiles.
///
/// Self-contained (no external math library) implementations with accuracy
/// adequate for Monte Carlo integration (relative error well below the
/// sampling noise floor): inverse error function, standard normal
/// CDF/quantile, log-gamma, regularized incomplete gamma (for Poisson and
/// Gamma CDFs) and its inverse.

#ifndef PIP_COMMON_SPECIAL_MATH_H_
#define PIP_COMMON_SPECIAL_MATH_H_

namespace pip {

/// Inverse of erf on (-1, 1). Returns +/-inf at the endpoints.
double ErfInv(double x);

/// Standard normal cumulative distribution function Phi(x).
double NormalCdf(double x);

/// Standard normal density phi(x).
double NormalPdf(double x);

/// Quantile of the standard normal: Phi^{-1}(p) for p in (0,1).
/// Returns -inf at 0 and +inf at 1.
double NormalQuantile(double p);

/// Natural log of the Gamma function for x > 0 (Lanczos approximation).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Inverse of P(a, .) : finds x such that P(a, x) = p. p in [0, 1).
double InverseRegularizedGammaP(double a, double p);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1] (continued-fraction evaluation).
double RegularizedBeta(double a, double b, double x);

/// Inverse of I_.(a, b): finds x with I_x(a, b) = p.
double InverseRegularizedBeta(double a, double b, double p);

/// CDF of the Poisson distribution: P[X <= k] for rate lambda.
double PoissonCdf(double lambda, double k);

/// Log of the Poisson probability mass function at integer k >= 0.
double PoissonLogPmf(double lambda, long long k);

}  // namespace pip

#endif  // PIP_COMMON_SPECIAL_MATH_H_
