/// \file timer.h
/// \brief Wall-clock timing for the benchmark harnesses.

#ifndef PIP_COMMON_TIMER_H_
#define PIP_COMMON_TIMER_H_

#include <chrono>

namespace pip {

/// \brief A simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pip

#endif  // PIP_COMMON_TIMER_H_
