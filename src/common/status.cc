#include "src/common/status.h"

namespace pip {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void FatalCheckFailure(const char* file, int line, const char* expr,
                       const std::string& msg) {
  std::cerr << "PIP_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) std::cerr << " (" << msg << ")";
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace pip
