/// \file running_stats.h
/// \brief Numerically stable streaming moments (Welford) and error metrics.
///
/// The expectation operator (Alg. 4.3) tracks Sum and SumSq of accepted
/// samples to drive its (epsilon, delta) stopping rule; we centralize that
/// in a Welford accumulator which is stable for long runs.

#ifndef PIP_COMMON_RUNNING_STATS_H_
#define PIP_COMMON_RUNNING_STATS_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace pip {

/// \brief Streaming mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Folds another accumulator into this one (Chan et al.'s pairwise
  /// combine), as if every sample Add()ed to `other` had been Add()ed
  /// here after this accumulator's own samples. Numerically stable for
  /// tiny means: the mean update is the delta form
  /// mean += delta * n_other / n, which never cancels two large
  /// same-magnitude terms the way (n1*m1 + n2*m2)/n can when the means
  /// are ~1e-3 and the counts are large. Used by the parallel sampling
  /// engine to fold per-chunk accumulators in chunk order.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    int64_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double other_weight =
        static_cast<double>(other.n_) / static_cast<double>(n);
    mean_ += delta * other_weight;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) * other_weight;
    n_ = n;
  }

  void Reset() {
    n_ = 0;
    mean_ = 0;
    m2_ = 0;
  }

  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Raw sum of squared deviations (the Welford M2 state) — the
  /// mergeable representation materialized summaries persist.
  double m2() const { return m2_; }
  /// Population variance (n in the denominator); 0 for n < 2.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (n-1 in the denominator); 0 for n < 2.
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean estimate; inf for n == 0.
  double standard_error() const {
    if (n_ == 0) return std::numeric_limits<double>::infinity();
    return std::sqrt(sample_variance() / static_cast<double>(n_));
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// Root-mean-square deviation of estimates around a known truth,
/// normalized by |truth| when truth != 0 (relative RMS, as in Fig. 7).
double NormalizedRmsError(const std::vector<double>& estimates, double truth);

}  // namespace pip

#endif  // PIP_COMMON_RUNNING_STATS_H_
