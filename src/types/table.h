/// \file table.h
/// \brief Deterministic in-memory table (bag semantics).
///
/// The deterministic substrate that stands in for the paper's Postgres
/// host: workload generators produce these, and c-tables are built from
/// them by attaching symbolic columns and conditions.

#ifndef PIP_TYPES_TABLE_H_
#define PIP_TYPES_TABLE_H_

#include <vector>

#include "src/types/schema.h"
#include "src/types/value.h"

namespace pip {

using Row = std::vector<Value>;

/// \brief A multiset of rows under a schema.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; returns InvalidArgument on arity mismatch.
  Status Append(Row row);

  /// Cell accessor by column name.
  StatusOr<Value> Get(size_t row, const std::string& column) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace pip

#endif  // PIP_TYPES_TABLE_H_
