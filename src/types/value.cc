#include "src/types/value.h"

#include <cmath>
#include <sstream>

namespace pip {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

StatusOr<double> Value::AsDouble() const {
  switch (type()) {
    case ValueType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case ValueType::kInt:
      return static_cast<double>(int_value());
    case ValueType::kDouble:
      return double_value();
    default:
      return Status::TypeMismatch(std::string("cannot read ") +
                                  ValueTypeName(type()) + " as double");
  }
}

int Value::Compare(const Value& other) const {
  ValueType a = type(), b = other.type();
  // Numerics compare by value across int/double.
  if ((a == ValueType::kInt || a == ValueType::kDouble) &&
      (b == ValueType::kInt || b == ValueType::kDouble)) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      int64_t x = int_value(), y = other.int_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a == ValueType::kInt ? static_cast<double>(int_value())
                                    : double_value();
    double y = b == ValueType::kInt ? static_cast<double>(other.int_value())
                                    : other.double_value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      int x = bool_value() ? 1 : 0, y = other.bool_value() ? 1 : 0;
      return x - y;
    }
    case ValueType::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kBool:
      return bool_value() ? 0x74727565ULL : 0x66616c73ULL;
    case ValueType::kInt: {
      // Hash ints through double when representable so 3 and 3.0 collide
      // (they compare equal).
      double d = static_cast<double>(int_value());
      if (static_cast<int64_t>(d) == int_value()) {
        return std::hash<double>{}(d);
      }
      return std::hash<int64_t>{}(int_value());
    }
    case ValueType::kDouble:
      return std::hash<double>{}(double_value());
    case ValueType::kString:
      return std::hash<std::string>{}(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case ValueType::kString:
      return "'" + string_value() + "'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace pip
