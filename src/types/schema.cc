#include "src/types/schema.h"

#include <algorithm>
#include <sstream>

namespace pip {

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in " + ToString());
}

bool Schema::Contains(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c == name) return true;
  }
  return false;
}

Schema Schema::Concat(const Schema& other, const std::string& rhs_prefix) const {
  std::vector<std::string> cols = columns_;
  for (const auto& c : other.columns_) {
    std::string name = c;
    if (Contains(name)) {
      if (!rhs_prefix.empty()) {
        name = rhs_prefix + "." + c;
      }
      int suffix = 2;
      std::string base = name;
      while (std::find(cols.begin(), cols.end(), name) != cols.end()) {
        name = base + "_" + std::to_string(suffix++);
      }
    }
    cols.push_back(std::move(name));
  }
  return Schema(std::move(cols));
}

Schema Schema::Select(const std::vector<size_t>& indices) const {
  std::vector<std::string> cols;
  cols.reserve(indices.size());
  for (size_t i : indices) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ", ";
    os << columns_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace pip
