/// \file value.h
/// \brief The deterministic scalar value type of the relational substrate.
///
/// Plays the role Postgres datums play for the paper's implementation:
/// everything the deterministic part of the engine stores and compares is a
/// Value. Symbolic (probabilistic) cells live one level up, in expr/.

#ifndef PIP_TYPES_VALUE_H_
#define PIP_TYPES_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "src/common/status.h"

namespace pip {

/// Runtime type tag of a Value.
enum class ValueType { kNull = 0, kBool, kInt, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// \brief A dynamically typed scalar: null, bool, int64, double or string.
///
/// Ordering and equality follow SQL-ish semantics with a twist that keeps
/// the engine total: numeric types compare by value across int/double;
/// otherwise values of different types compare by type tag. NULL equals
/// NULL (we use this for grouping, like SQL's IS NOT DISTINCT FROM).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt;
      case 3:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble;
  }

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }

  /// Numeric content as double; Status error if not numeric/bool.
  StatusOr<double> AsDouble() const;

  /// Total ordering: -1, 0, +1. See class comment for cross-type rules.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Hash consistent with operator== (numeric int/double that compare
  /// equal hash equal).
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace pip

template <>
struct std::hash<pip::Value> {
  size_t operator()(const pip::Value& v) const { return v.Hash(); }
};

#endif  // PIP_TYPES_VALUE_H_
