/// \file schema.h
/// \brief Column metadata for deterministic tables and c-tables.

#ifndef PIP_TYPES_SCHEMA_H_
#define PIP_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace pip {

/// \brief An ordered list of column names.
///
/// PIP tables are dynamically typed at the cell level (Value carries its
/// own tag; symbolic cells are equations), so the schema tracks names and
/// positions only — mirroring how the paper's Postgres layer threads CTYPE
/// columns through plans by position.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}
  Schema(std::initializer_list<std::string> columns) : columns_(columns) {}

  size_t size() const { return columns_.size(); }
  const std::string& name(size_t i) const { return columns_[i]; }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Position of `name`, or NotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Schema of `this` concatenated with `other` (cross product). Collisions
  /// are disambiguated by prefixing the right-hand column with `rhs_prefix.`
  /// when non-empty, else by appending a counter.
  Schema Concat(const Schema& other, const std::string& rhs_prefix = "") const;

  /// Sub-schema with the given column positions, in order.
  Schema Select(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
};

}  // namespace pip

#endif  // PIP_TYPES_SCHEMA_H_
