#include "src/types/table.h"

#include <algorithm>
#include <sstream>

namespace pip {

Status Table::Append(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

StatusOr<Value> Table::Get(size_t row, const std::string& column) const {
  if (row >= rows_.size()) {
    return Status::OutOfRange("row index " + std::to_string(row));
  }
  PIP_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(column));
  return rows_[row][idx];
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> widths;
  for (const auto& c : schema_.columns()) widths.push_back(c.size());
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    for (size_t c = 0; c < schema_.size(); ++c) {
      line.push_back(rows_[r][c].ToString());
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  for (size_t c = 0; c < schema_.size(); ++c) {
    os << (c ? " | " : "") << schema_.name(c)
       << std::string(widths[c] - schema_.name(c).size(), ' ');
  }
  os << "\n";
  for (size_t c = 0; c < schema_.size(); ++c) {
    os << (c ? "-+-" : "") << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      os << (c ? " | " : "") << line[c]
         << std::string(widths[c] - line[c].size(), ' ');
    }
    os << "\n";
  }
  if (shown < rows_.size()) {
    os << "... (" << rows_.size() - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace pip
