#include "src/workload/iceberg.h"

#include <cmath>

#include "src/common/special_math.h"
#include "src/common/timer.h"
#include "src/engine/database.h"

namespace pip {
namespace workload {

IcebergData GenerateIceberg(const IcebergConfig& config) {
  Rng rng(config.seed);
  IcebergData data;

  data.sightings = Table(Schema(
      {"iceberg_id", "last_x", "last_y", "days_since", "sigma", "danger"}));
  for (size_t i = 0; i < config.num_icebergs; ++i) {
    double days = rng.NextUniform(1.0, config.max_days);
    double sigma = config.drift_per_day * days;
    double danger = std::exp(-config.danger_decay * days);
    PIP_CHECK(data.sightings
                  .Append({Value(static_cast<int64_t>(i)),
                           Value(rng.NextUniform(0.0, config.area)),
                           Value(rng.NextUniform(0.0, config.area)),
                           Value(days), Value(sigma), Value(danger)})
                  .ok());
  }

  data.ships = Table(Schema({"ship_id", "x", "y"}));
  for (size_t s = 0; s < config.num_ships; ++s) {
    PIP_CHECK(data.ships
                  .Append({Value(static_cast<int64_t>(s)),
                           Value(rng.NextUniform(0.0, config.area)),
                           Value(rng.NextUniform(0.0, config.area))})
                  .ok());
  }
  return data;
}

StatusOr<SeriesResult> RunIcebergPip(const IcebergData& data,
                                     const IcebergConfig& config,
                                     uint64_t seed) {
  SeriesResult result;
  WallTimer timer;

  // Query phase: one pair of position variables per iceberg (shared by all
  // ships — the c-table replay guarantee keeps them consistent).
  Database db(seed);
  struct Berg {
    VarRef x, y;
    double danger;
  };
  std::vector<Berg> bergs;
  bergs.reserve(data.sightings.num_rows());
  for (const auto& row : data.sightings.rows()) {
    double sigma = row[4].double_value();
    PIP_ASSIGN_OR_RETURN(
        VarRef x,
        db.CreateVariable("Normal", {row[1].double_value(), sigma}));
    PIP_ASSIGN_OR_RETURN(
        VarRef y,
        db.CreateVariable("Normal", {row[2].double_value(), sigma}));
    bergs.push_back({x, y, row[5].double_value()});
  }
  result.query_seconds = timer.Seconds();

  // Sample phase (here: exact integration). P[near] factorizes into two
  // single-variable interval constraints, so Confidence() takes the exact
  // CDF path for every pair.
  timer.Restart();
  SamplingEngine engine = db.MakeEngine();
  result.per_item.reserve(data.ships.num_rows());
  for (const auto& ship : data.ships.rows()) {
    double sx = ship[1].double_value(), sy = ship[2].double_value();
    double threat = 0.0;
    for (const auto& berg : bergs) {
      Condition near;
      near.AddAtom(Expr::Var(berg.x) > Expr::Constant(sx - config.proximity));
      near.AddAtom(Expr::Var(berg.x) < Expr::Constant(sx + config.proximity));
      near.AddAtom(Expr::Var(berg.y) > Expr::Constant(sy - config.proximity));
      near.AddAtom(Expr::Var(berg.y) < Expr::Constant(sy + config.proximity));
      PIP_ASSIGN_OR_RETURN(ExpectationResult r, engine.Confidence(near));
      if (!r.exact) {
        return Status::Internal(
            "iceberg proximity should integrate exactly via CDFs");
      }
      if (r.probability > config.min_threat_probability) {
        threat += berg.danger * r.probability;
      }
    }
    result.per_item.push_back(threat);
    result.total += threat;
  }
  result.sample_seconds = timer.Seconds();
  return result;
}

StatusOr<SeriesResult> RunIcebergSampleFirst(const IcebergData& data,
                                             const IcebergConfig& config,
                                             size_t num_worlds,
                                             uint64_t seed) {
  SeriesResult result;
  WallTimer timer;

  // Up-front world instantiation: every iceberg's position in every world.
  PIP_ASSIGN_OR_RETURN(const Distribution* normal,
                       DistributionRegistry::Global().Lookup("Normal"));
  size_t n = data.sightings.num_rows();
  std::vector<std::vector<double>> xs(n), ys(n);
  std::vector<double> danger(n);
  std::vector<double> joint;
  for (size_t i = 0; i < n; ++i) {
    const auto& row = data.sightings.rows()[i];
    std::vector<double> px = {row[1].double_value(), row[4].double_value()};
    std::vector<double> py = {row[2].double_value(), row[4].double_value()};
    danger[i] = row[5].double_value();
    xs[i].resize(num_worlds);
    ys[i].resize(num_worlds);
    for (size_t w = 0; w < num_worlds; ++w) {
      SampleContext cx{seed, /*var_id=*/2 * i, w, 0};
      PIP_RETURN_IF_ERROR(normal->GenerateJoint(px, cx, &joint));
      xs[i][w] = joint[0];
      SampleContext cy{seed, /*var_id=*/2 * i + 1, w, 0};
      PIP_RETURN_IF_ERROR(normal->GenerateJoint(py, cy, &joint));
      ys[i][w] = joint[0];
    }
  }
  result.query_seconds = timer.Seconds();

  // World-counting estimate of each P[near].
  timer.Restart();
  result.per_item.reserve(data.ships.num_rows());
  for (const auto& ship : data.ships.rows()) {
    double sx = ship[1].double_value(), sy = ship[2].double_value();
    double threat = 0.0;
    for (size_t i = 0; i < n; ++i) {
      size_t hits = 0;
      for (size_t w = 0; w < num_worlds; ++w) {
        if (std::fabs(xs[i][w] - sx) < config.proximity &&
            std::fabs(ys[i][w] - sy) < config.proximity) {
          ++hits;
        }
      }
      double p = static_cast<double>(hits) / static_cast<double>(num_worlds);
      if (p > config.min_threat_probability) threat += danger[i] * p;
    }
    result.per_item.push_back(threat);
    result.total += threat;
  }
  result.sample_seconds = timer.Seconds();
  return result;
}

std::vector<double> IcebergTruth(const IcebergData& data,
                                 const IcebergConfig& config) {
  std::vector<double> threats;
  threats.reserve(data.ships.num_rows());
  for (const auto& ship : data.ships.rows()) {
    double sx = ship[1].double_value(), sy = ship[2].double_value();
    double threat = 0.0;
    for (const auto& row : data.sightings.rows()) {
      double mx = row[1].double_value(), my = row[2].double_value();
      double sigma = row[4].double_value();
      double px = NormalCdf((sx + config.proximity - mx) / sigma) -
                  NormalCdf((sx - config.proximity - mx) / sigma);
      double py = NormalCdf((sy + config.proximity - my) / sigma) -
                  NormalCdf((sy - config.proximity - my) / sigma);
      double p = px * py;
      if (p > config.min_threat_probability) {
        threat += row[5].double_value() * p;
      }
    }
    threats.push_back(threat);
  }
  return threats;
}

}  // namespace workload
}  // namespace pip
