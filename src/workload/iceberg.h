/// \file iceberg.h
/// \brief The iceberg threat-estimation workload (paper Fig. 8).
///
/// SUBSTITUTION (documented in DESIGN.md): the paper uses four years of
/// the NSIDC International Ice Patrol iceberg sighting database. The data
/// is not redistributable here, so this generator synthesizes sightings
/// with the same statistical shape the experiment depends on: a last-known
/// position per iceberg, days-since-sighting driving both position
/// uncertainty (drift) and an exponentially decaying danger level, and 100
/// virtual ships at random locations.
///
/// The query (paper §VI): each iceberg's current position is normally
/// distributed around its last sighting; icebergs with > 0.1% chance of
/// being near a ship contribute danger * P[near] to the ship's threat.
/// Because "near" decomposes into per-axis interval constraints on
/// independent normals, PIP computes every probability exactly via CDFs;
/// Sample-First must estimate tiny probabilities from world counts.

#ifndef PIP_WORKLOAD_ICEBERG_H_
#define PIP_WORKLOAD_ICEBERG_H_

#include "src/types/table.h"
#include "src/workload/queries.h"

namespace pip {
namespace workload {

/// \brief Generation and query parameters for the iceberg workload.
struct IcebergConfig {
  uint64_t seed = 1912;  // A fateful year for iceberg proximity.
  size_t num_icebergs = 150;
  size_t num_ships = 100;
  /// Square operating area [0, area]^2 (abstract nautical-mile grid).
  double area = 1000.0;
  /// Position standard deviation grows by this much per day unseen.
  double drift_per_day = 2.0;
  /// Danger level decay rate: danger = exp(-decay * days).
  double danger_decay = 0.02;
  /// Sightings are up to this many days old.
  double max_days = 120.0;
  /// "Near" means within this distance per axis (box proximity). Small
  /// relative to drift uncertainty, so per-iceberg probabilities sit near
  /// the 0.1% filter threshold — the regime where world-counting noise is
  /// worst (as in the paper's NSIDC experiment).
  double proximity = 12.0;
  /// Threat filter: icebergs with P[near] below this are ignored.
  double min_threat_probability = 0.001;
};

/// \brief Generated tables.
///
/// sightings(iceberg_id, last_x, last_y, days_since, sigma, danger)
/// ships(ship_id, x, y)
struct IcebergData {
  Table sightings;
  Table ships;
};

IcebergData GenerateIceberg(const IcebergConfig& config);

/// PIP evaluation: exact per-ship threats via CDF integration (per_item is
/// indexed by ship). The paper reports "PIP was able to employ CDF
/// sampling and obtain an exact result".
StatusOr<SeriesResult> RunIcebergPip(const IcebergData& data,
                                     const IcebergConfig& config,
                                     uint64_t seed);

/// Sample-First evaluation with `num_worlds` sampled position worlds.
StatusOr<SeriesResult> RunIcebergSampleFirst(const IcebergData& data,
                                             const IcebergConfig& config,
                                             size_t num_worlds, uint64_t seed);

/// Analytic per-ship threats (the correct values; identical to what the
/// PIP exact path computes, used to cross-check it in tests).
std::vector<double> IcebergTruth(const IcebergData& data,
                                 const IcebergConfig& config);

}  // namespace workload
}  // namespace pip

#endif  // PIP_WORKLOAD_ICEBERG_H_
