#include "src/workload/queries.h"

#include <cmath>

#include "src/common/special_math.h"
#include "src/common/timer.h"
#include "src/sampling/aggregates.h"

namespace pip {
namespace workload {

namespace {

using samplefirst::MeanOverWorlds;
using samplefirst::ParametrizeColumn;
using samplefirst::PerWorldMax;
using samplefirst::PerWorldSums;
using samplefirst::SFTable;

using CE = ColExpr;

/// Supplier row fields, unpacked.
struct SupplierStats {
  std::string nation;
  double manuf_mu, manuf_sigma, ship_mu, ship_sigma;
};

std::vector<SupplierStats> UnpackSuppliers(const TpchData& data) {
  std::vector<SupplierStats> out;
  out.reserve(data.supplier.num_rows());
  for (const auto& row : data.supplier.rows()) {
    out.push_back({row[1].string_value(), row[2].double_value(),
                   row[3].double_value(), row[4].double_value(),
                   row[5].double_value()});
  }
  return out;
}

/// Combined delivery-time law for a customer's assigned supplier:
/// Normal(manuf_mu + ship_mu, sqrt(manuf_sigma^2 + ship_sigma^2)).
void CustomerDeliveryLaw(const SupplierStats& s, double* mu, double* sigma) {
  *mu = s.manuf_mu + s.ship_mu;
  *sigma = std::sqrt(s.manuf_sigma * s.manuf_sigma +
                     s.ship_sigma * s.ship_sigma);
}

}  // namespace

// ---------------------------------------------------------------------------
// Q1
// ---------------------------------------------------------------------------

StatusOr<TimedResult> RunQ1Pip(const TpchData& data, uint64_t seed,
                               const SamplingOptions& options) {
  TimedResult result;
  WallTimer timer;

  // Query phase: aggregate two years of orders, build the symbolic
  // prediction table inc_c = Poisson(lambda_c) * avg_price_c.
  Database db(seed);
  std::vector<CustomerRevenue> revenue = SummarizeRevenue(data);
  CTable predictions(Schema({"custkey", "extra_revenue"}));
  for (const auto& r : revenue) {
    PIP_ASSIGN_OR_RETURN(VarRef extra,
                         db.CreateVariable("Poisson", {r.increase_lambda}));
    PIP_RETURN_IF_ERROR(predictions.Append(
        {Expr::ConstantInt(r.custkey),
         Expr::Var(extra) * Expr::Constant(r.avg_order_price)}));
  }
  result.query_seconds = timer.Seconds();

  // Sample phase: expected_sum over the prediction column.
  timer.Restart();
  SamplingEngine engine = db.MakeEngine(options);
  AggregateEvaluator agg(&engine);
  PIP_ASSIGN_OR_RETURN(result.value,
                       agg.ExpectedSum(predictions, "extra_revenue"));
  result.sample_seconds = timer.Seconds();
  return result;
}

StatusOr<TimedResult> RunQ1SampleFirst(const TpchData& data,
                                       size_t num_worlds, uint64_t seed) {
  TimedResult result;
  WallTimer timer;

  // Sample-first: instantiate every world before evaluating.
  std::vector<CustomerRevenue> revenue = SummarizeRevenue(data);
  Table params(Schema({"custkey", "lambda", "avg_price"}));
  for (const auto& r : revenue) {
    PIP_RETURN_IF_ERROR(params.Append({Value(r.custkey),
                                       Value(r.increase_lambda),
                                       Value(r.avg_order_price)}));
  }
  SFTable base = SFTable::FromTable(params, num_worlds);
  PIP_ASSIGN_OR_RETURN(
      SFTable with_extra,
      ParametrizeColumn(base, "extra", "Poisson", {"lambda"}, seed));
  PIP_ASSIGN_OR_RETURN(
      SFTable mapped,
      samplefirst::Map(with_extra,
                       {{"revenue",
                         CE::Column("extra") * CE::Column("avg_price")}}));
  result.query_seconds = timer.Seconds();

  timer.Restart();
  PIP_ASSIGN_OR_RETURN(std::vector<double> sums,
                       PerWorldSums(mapped, "revenue"));
  result.value = MeanOverWorlds(sums);
  result.sample_seconds = timer.Seconds();
  return result;
}

double Q1Truth(const TpchData& data) {
  double total = 0.0;
  for (const auto& r : SummarizeRevenue(data)) {
    total += r.increase_lambda * r.avg_order_price;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Q2
// ---------------------------------------------------------------------------

namespace {

/// Parts supplied from JAPAN, with their delivery-time laws.
struct JapanesePart {
  int64_t partkey;
  double manuf_mu, manuf_sigma, ship_mu, ship_sigma;
};

std::vector<JapanesePart> JapaneseParts(const TpchData& data) {
  std::vector<SupplierStats> suppliers = UnpackSuppliers(data);
  std::vector<JapanesePart> out;
  for (const auto& row : data.part.rows()) {
    const auto& s = suppliers[row[1].int_value()];
    if (s.nation != "JAPAN") continue;
    out.push_back({row[0].int_value(), s.manuf_mu, s.manuf_sigma, s.ship_mu,
                   s.ship_sigma});
  }
  return out;
}

}  // namespace

StatusOr<TimedResult> RunQ2Pip(const TpchData& data, uint64_t seed,
                               const SamplingOptions& options,
                               size_t world_samples) {
  TimedResult result;
  WallTimer timer;

  Database db(seed);
  CTable deliveries(Schema({"partkey", "delivery"}));
  for (const auto& p : JapaneseParts(data)) {
    PIP_ASSIGN_OR_RETURN(
        VarRef manuf, db.CreateVariable("Normal", {p.manuf_mu, p.manuf_sigma}));
    PIP_ASSIGN_OR_RETURN(
        VarRef ship, db.CreateVariable("Normal", {p.ship_mu, p.ship_sigma}));
    PIP_RETURN_IF_ERROR(
        deliveries.Append({Expr::ConstantInt(p.partkey),
                           Expr::Var(manuf) + Expr::Var(ship)}));
  }
  result.query_seconds = timer.Seconds();

  timer.Restart();
  SamplingEngine engine = db.MakeEngine(options);
  AggregateOptions agg_options;
  agg_options.world_samples = world_samples;
  AggregateEvaluator agg(&engine, agg_options);
  PIP_ASSIGN_OR_RETURN(result.value, agg.ExpectedMax(deliveries, "delivery"));
  result.sample_seconds = timer.Seconds();
  return result;
}

StatusOr<TimedResult> RunQ2SampleFirst(const TpchData& data,
                                       size_t num_worlds, uint64_t seed) {
  TimedResult result;
  WallTimer timer;

  Table params(Schema(
      {"partkey", "manuf_mu", "manuf_sigma", "ship_mu", "ship_sigma"}));
  for (const auto& p : JapaneseParts(data)) {
    PIP_RETURN_IF_ERROR(params.Append({Value(p.partkey), Value(p.manuf_mu),
                                       Value(p.manuf_sigma), Value(p.ship_mu),
                                       Value(p.ship_sigma)}));
  }
  SFTable base = SFTable::FromTable(params, num_worlds);
  PIP_ASSIGN_OR_RETURN(SFTable with_manuf,
                       ParametrizeColumn(base, "manuf", "Normal",
                                         {"manuf_mu", "manuf_sigma"}, seed));
  PIP_ASSIGN_OR_RETURN(
      SFTable with_ship,
      ParametrizeColumn(with_manuf, "ship", "Normal",
                        {"ship_mu", "ship_sigma"}, seed ^ 0x51a9ULL));
  PIP_ASSIGN_OR_RETURN(
      SFTable mapped,
      samplefirst::Map(with_ship, {{"delivery",
                                    CE::Column("manuf") + CE::Column("ship")}}));
  result.query_seconds = timer.Seconds();

  timer.Restart();
  PIP_ASSIGN_OR_RETURN(std::vector<double> maxima,
                       PerWorldMax(mapped, "delivery"));
  result.value = MeanOverWorlds(maxima);
  result.sample_seconds = timer.Seconds();
  return result;
}

// ---------------------------------------------------------------------------
// Q3
// ---------------------------------------------------------------------------

namespace {

/// Per-customer inputs of Q3: the profit model (Q1) joined with the
/// delivery model (Q2, collapsed to one Normal) and the satisfaction
/// threshold.
struct Q3Row {
  double lambda, avg_price;      // Profit model.
  double del_mu, del_sigma;      // Delivery law.
  double threshold;              // Satisfaction threshold.
};

std::vector<Q3Row> BuildQ3Rows(const TpchData& data) {
  std::vector<SupplierStats> suppliers = UnpackSuppliers(data);
  std::vector<CustomerRevenue> revenue = SummarizeRevenue(data);
  std::vector<Q3Row> rows;
  rows.reserve(revenue.size());
  for (const auto& r : revenue) {
    const auto& customer_row =
        data.customer.rows()[static_cast<size_t>(r.custkey)];
    // Each customer's typical supplier: a deterministic join surrogate.
    const auto& s = suppliers[static_cast<size_t>(r.custkey) %
                              suppliers.size()];
    Q3Row row;
    row.lambda = r.increase_lambda;
    row.avg_price = r.avg_order_price;
    CustomerDeliveryLaw(s, &row.del_mu, &row.del_sigma);
    row.threshold = customer_row[2].double_value();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

StatusOr<TimedResult> RunQ3Pip(const TpchData& data, uint64_t seed,
                               const SamplingOptions& options) {
  TimedResult result;
  WallTimer timer;

  Database db(seed);
  CTable lost(Schema({"lost_profit"}));
  for (const auto& row : BuildQ3Rows(data)) {
    PIP_ASSIGN_OR_RETURN(VarRef extra,
                         db.CreateVariable("Poisson", {row.lambda}));
    PIP_ASSIGN_OR_RETURN(
        VarRef delivery,
        db.CreateVariable("Normal", {row.del_mu, row.del_sigma}));
    Condition dissatisfied(Expr::Var(delivery) >
                           Expr::Constant(row.threshold));
    PIP_RETURN_IF_ERROR(
        lost.Append({Expr::Var(extra) * Expr::Constant(row.avg_price)},
                    std::move(dissatisfied)));
  }
  result.query_seconds = timer.Seconds();

  timer.Restart();
  SamplingEngine engine = db.MakeEngine(options);
  AggregateEvaluator agg(&engine);
  PIP_ASSIGN_OR_RETURN(result.value, agg.ExpectedSum(lost, "lost_profit"));
  result.sample_seconds = timer.Seconds();
  return result;
}

StatusOr<TimedResult> RunQ3SampleFirst(const TpchData& data,
                                       size_t num_worlds, uint64_t seed) {
  TimedResult result;
  WallTimer timer;

  Table params(Schema(
      {"lambda", "avg_price", "del_mu", "del_sigma", "threshold"}));
  for (const auto& row : BuildQ3Rows(data)) {
    PIP_RETURN_IF_ERROR(
        params.Append({Value(row.lambda), Value(row.avg_price),
                       Value(row.del_mu), Value(row.del_sigma),
                       Value(row.threshold)}));
  }
  SFTable base = SFTable::FromTable(params, num_worlds);
  PIP_ASSIGN_OR_RETURN(
      SFTable with_extra,
      ParametrizeColumn(base, "extra", "Poisson", {"lambda"}, seed));
  PIP_ASSIGN_OR_RETURN(SFTable with_delivery,
                       ParametrizeColumn(with_extra, "delivery", "Normal",
                                         {"del_mu", "del_sigma"},
                                         seed ^ 0xde11ULL));
  PIP_ASSIGN_OR_RETURN(
      SFTable late,
      samplefirst::Filter(with_delivery,
                          ColPredicate{CE::Column("delivery") >
                                       CE::Column("threshold")}));
  PIP_ASSIGN_OR_RETURN(
      SFTable mapped,
      samplefirst::Map(late, {{"lost",
                               CE::Column("extra") * CE::Column("avg_price")}}));
  result.query_seconds = timer.Seconds();

  timer.Restart();
  PIP_ASSIGN_OR_RETURN(std::vector<double> sums, PerWorldSums(mapped, "lost"));
  result.value = MeanOverWorlds(sums);
  result.sample_seconds = timer.Seconds();
  return result;
}

double Q3Truth(const TpchData& data) {
  double total = 0.0;
  for (const auto& row : BuildQ3Rows(data)) {
    double p_late =
        1.0 - NormalCdf((row.threshold - row.del_mu) / row.del_sigma);
    total += row.lambda * row.avg_price * p_late;
  }
  return total;
}

double Q3AverageSelectivity(const TpchData& data) {
  std::vector<Q3Row> rows = BuildQ3Rows(data);
  double total = 0.0;
  for (const auto& row : rows) {
    total += 1.0 - NormalCdf((row.threshold - row.del_mu) / row.del_sigma);
  }
  return rows.empty() ? 0.0 : total / rows.size();
}

// ---------------------------------------------------------------------------
// Q4
// ---------------------------------------------------------------------------

StatusOr<SeriesResult> RunQ4Pip(const TpchData& data, double selectivity,
                                uint64_t seed,
                                const SamplingOptions& options) {
  SeriesResult result;
  WallTimer timer;
  const double threshold = -std::log(selectivity);

  Database db(seed);
  struct PartPlan {
    ExprPtr sales;
    Condition popular;
  };
  std::vector<PartPlan> plans;
  plans.reserve(data.part.num_rows());
  for (const auto& row : data.part.rows()) {
    double lambda = row[3].double_value();
    PIP_ASSIGN_OR_RETURN(VarRef demand, db.CreateVariable("Poisson", {lambda}));
    PIP_ASSIGN_OR_RETURN(VarRef pop, db.CreateVariable("Exponential", {1.0}));
    PartPlan plan;
    plan.sales = Expr::Var(demand) * Expr::Var(pop);
    plan.popular = Condition(Expr::Var(pop) > Expr::Constant(threshold));
    plans.push_back(std::move(plan));
  }
  result.query_seconds = timer.Seconds();

  timer.Restart();
  SamplingEngine engine = db.MakeEngine(options);
  result.per_item.reserve(plans.size());
  for (const auto& plan : plans) {
    PIP_ASSIGN_OR_RETURN(ExpectationResult r,
                         engine.Expectation(plan.sales, plan.popular, false));
    double estimate = std::isnan(r.expectation) ? 0.0 : r.expectation;
    result.per_item.push_back(estimate);
    result.total += estimate;
  }
  result.sample_seconds = timer.Seconds();
  return result;
}

StatusOr<SeriesResult> RunQ4SampleFirst(const TpchData& data,
                                        double selectivity, size_t num_worlds,
                                        uint64_t seed) {
  SeriesResult result;
  WallTimer timer;
  const double threshold = -std::log(selectivity);

  Table params(Schema({"partkey", "lambda", "one"}));
  for (const auto& row : data.part.rows()) {
    PIP_RETURN_IF_ERROR(
        params.Append({row[0], row[3], Value(1.0)}));
  }
  SFTable base = SFTable::FromTable(params, num_worlds);
  PIP_ASSIGN_OR_RETURN(
      SFTable with_demand,
      ParametrizeColumn(base, "demand", "Poisson", {"lambda"}, seed));
  PIP_ASSIGN_OR_RETURN(SFTable with_pop,
                       ParametrizeColumn(with_demand, "pop", "Exponential",
                                         {"one"}, seed ^ 0x9090ULL));
  PIP_ASSIGN_OR_RETURN(
      SFTable mapped,
      samplefirst::Map(with_pop, {{"partkey", CE::Column("partkey")},
                                  {"sales",
                                   CE::Column("demand") * CE::Column("pop")},
                                  {"pop", CE::Column("pop")}}));
  result.query_seconds = timer.Seconds();

  // Per-part conditional estimate: mean of sales over the worlds where the
  // popularity constraint holds. Most worlds are discarded — the
  // sample-first pathology the paper studies.
  timer.Restart();
  result.per_item.assign(data.part.num_rows(), 0.0);
  PIP_ASSIGN_OR_RETURN(size_t sales_col, mapped.schema().IndexOf("sales"));
  PIP_ASSIGN_OR_RETURN(size_t pop_col, mapped.schema().IndexOf("pop"));
  for (size_t ti = 0; ti < mapped.num_tuples(); ++ti) {
    const auto& tuple = mapped.tuple(ti);
    int64_t partkey = std::get<Value>(tuple.cells[0]).int_value();
    double sum = 0.0;
    size_t kept = 0;
    for (size_t w = 0; w < mapped.num_worlds(); ++w) {
      if (!tuple.PresentIn(w)) continue;
      PIP_ASSIGN_OR_RETURN(double pop, mapped.CellValue(tuple, pop_col, w));
      if (pop <= threshold) continue;  // World discarded by the filter.
      PIP_ASSIGN_OR_RETURN(double sales,
                           mapped.CellValue(tuple, sales_col, w));
      sum += sales;
      ++kept;
    }
    double estimate = kept > 0 ? sum / static_cast<double>(kept) : 0.0;
    result.per_item[static_cast<size_t>(partkey)] = estimate;
    result.total += estimate;
  }
  result.sample_seconds = timer.Seconds();
  return result;
}

std::vector<double> Q4Truth(const TpchData& data, double selectivity) {
  const double threshold = -std::log(selectivity);
  std::vector<double> truth;
  truth.reserve(data.part.num_rows());
  for (const auto& row : data.part.rows()) {
    double lambda = row[3].double_value();
    // E[Poisson * pop | pop > T] = lambda * (T + 1) by independence and
    // the exponential's memorylessness.
    truth.push_back(lambda * (threshold + 1.0));
  }
  return truth;
}

// ---------------------------------------------------------------------------
// Q5
// ---------------------------------------------------------------------------

double Q5Selectivity(double lambda, double rate) {
  // P[D > S] = sum_d pmf(d) * P[S < d] over d >= 1.
  double p = 0.0;
  int dmax = static_cast<int>(lambda + 10.0 * std::sqrt(lambda) + 20.0);
  for (int d = 1; d <= dmax; ++d) {
    p += std::exp(PoissonLogPmf(lambda, d)) * (1.0 - std::exp(-rate * d));
  }
  return p;
}

double Q5SupplyRate(double lambda, double selectivity) {
  // P is increasing in the rate (higher rate -> smaller supply).
  double lo = 1e-8, hi = 64.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (Q5Selectivity(lambda, mid) < selectivity) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double Q5ConditionalShortfall(double lambda, double rate) {
  // E[(D - S) 1{D > S}] = sum_d pmf(d) * (d - (1 - e^{-rd})/r);
  // conditional = numerator / P[D > S].
  double numerator = 0.0, p = 0.0;
  int dmax = static_cast<int>(lambda + 10.0 * std::sqrt(lambda) + 20.0);
  for (int d = 1; d <= dmax; ++d) {
    double pmf = std::exp(PoissonLogPmf(lambda, d));
    double tail = 1.0 - std::exp(-rate * d);
    numerator += pmf * (d - tail / rate);
    p += pmf * tail;
  }
  return p > 0.0 ? numerator / p : 0.0;
}

StatusOr<SeriesResult> RunQ5Pip(const TpchData& data, double selectivity,
                                uint64_t seed,
                                const SamplingOptions& options) {
  SeriesResult result;
  WallTimer timer;

  Database db(seed);
  struct PartPlan {
    ExprPtr shortfall;
    Condition undersupplied;
  };
  std::vector<PartPlan> plans;
  plans.reserve(data.part.num_rows());
  for (const auto& row : data.part.rows()) {
    double lambda = row[3].double_value();
    double rate = Q5SupplyRate(lambda, selectivity);
    PIP_ASSIGN_OR_RETURN(VarRef demand, db.CreateVariable("Poisson", {lambda}));
    PIP_ASSIGN_OR_RETURN(VarRef supply,
                         db.CreateVariable("Exponential", {rate}));
    PartPlan plan;
    plan.shortfall = Expr::Var(demand) - Expr::Var(supply);
    // Two-variable atom: no CDF shortcut exists, so PIP must fall back to
    // rejection sampling — but it still rejects per-sample, immediately,
    // instead of discarding fully-evaluated worlds.
    plan.undersupplied = Condition(Expr::Var(demand) > Expr::Var(supply));
    plans.push_back(std::move(plan));
  }
  result.query_seconds = timer.Seconds();

  timer.Restart();
  SamplingEngine engine = db.MakeEngine(options);
  for (const auto& plan : plans) {
    PIP_ASSIGN_OR_RETURN(
        ExpectationResult r,
        engine.Expectation(plan.shortfall, plan.undersupplied, false));
    double estimate = std::isnan(r.expectation) ? 0.0 : r.expectation;
    result.per_item.push_back(estimate);
    result.total += estimate;
  }
  result.sample_seconds = timer.Seconds();
  return result;
}

StatusOr<SeriesResult> RunQ5SampleFirst(const TpchData& data,
                                        double selectivity, size_t num_worlds,
                                        uint64_t seed) {
  SeriesResult result;
  WallTimer timer;

  Table params(Schema({"partkey", "lambda", "rate"}));
  for (const auto& row : data.part.rows()) {
    double lambda = row[3].double_value();
    PIP_RETURN_IF_ERROR(params.Append(
        {row[0], Value(lambda), Value(Q5SupplyRate(lambda, selectivity))}));
  }
  SFTable base = SFTable::FromTable(params, num_worlds);
  PIP_ASSIGN_OR_RETURN(
      SFTable with_demand,
      ParametrizeColumn(base, "demand", "Poisson", {"lambda"}, seed));
  PIP_ASSIGN_OR_RETURN(SFTable with_supply,
                       ParametrizeColumn(with_demand, "supply", "Exponential",
                                         {"rate"}, seed ^ 0x500dULL));
  result.query_seconds = timer.Seconds();

  timer.Restart();
  result.per_item.assign(data.part.num_rows(), 0.0);
  PIP_ASSIGN_OR_RETURN(size_t demand_col,
                       with_supply.schema().IndexOf("demand"));
  PIP_ASSIGN_OR_RETURN(size_t supply_col,
                       with_supply.schema().IndexOf("supply"));
  for (size_t ti = 0; ti < with_supply.num_tuples(); ++ti) {
    const auto& tuple = with_supply.tuple(ti);
    int64_t partkey = std::get<Value>(tuple.cells[0]).int_value();
    double sum = 0.0;
    size_t kept = 0;
    for (size_t w = 0; w < with_supply.num_worlds(); ++w) {
      if (!tuple.PresentIn(w)) continue;
      PIP_ASSIGN_OR_RETURN(double d,
                           with_supply.CellValue(tuple, demand_col, w));
      PIP_ASSIGN_OR_RETURN(double s,
                           with_supply.CellValue(tuple, supply_col, w));
      if (d <= s) continue;  // World discarded by the selection.
      sum += d - s;
      ++kept;
    }
    double estimate = kept > 0 ? sum / static_cast<double>(kept) : 0.0;
    result.per_item[static_cast<size_t>(partkey)] = estimate;
    result.total += estimate;
  }
  result.sample_seconds = timer.Seconds();
  return result;
}

std::vector<double> Q5Truth(const TpchData& data, double selectivity) {
  std::vector<double> truth;
  truth.reserve(data.part.num_rows());
  for (const auto& row : data.part.rows()) {
    double lambda = row[3].double_value();
    double rate = Q5SupplyRate(lambda, selectivity);
    truth.push_back(Q5ConditionalShortfall(lambda, rate));
  }
  return truth;
}

}  // namespace workload
}  // namespace pip
