#include "src/workload/tpch.h"

#include <algorithm>
#include <map>

#include "src/common/random.h"

namespace pip {
namespace workload {

TpchData GenerateTpch(const TpchConfig& config) {
  Rng rng(config.seed);
  TpchData data;

  data.customer = Table(Schema({"custkey", "name", "satisfaction_threshold"}));
  for (size_t c = 0; c < config.num_customers; ++c) {
    // Threshold in days: most customers tolerate ~a week and a half.
    double threshold = rng.NextUniform(8.0, 16.0);
    PIP_CHECK(data.customer
                  .Append({Value(static_cast<int64_t>(c)),
                           Value("customer#" + std::to_string(c)),
                           Value(threshold)})
                  .ok());
  }

  data.orders = Table(Schema({"orderkey", "custkey", "year", "totalprice"}));
  int64_t orderkey = 0;
  for (size_t c = 0; c < config.num_customers; ++c) {
    // Customer-specific spending level; year-2 spending grows by a
    // customer-specific factor so increase rates vary across customers.
    double base_price = rng.NextUniform(500.0, 5000.0);
    double growth = rng.NextUniform(1.0, 1.6);
    for (int year = 1; year <= 2; ++year) {
      size_t n = config.orders_per_customer_per_year +
                 static_cast<size_t>(rng.NextBounded(3));
      for (size_t o = 0; o < n; ++o) {
        double price = base_price * (year == 2 ? growth : 1.0) *
                       rng.NextUniform(0.6, 1.4);
        PIP_CHECK(data.orders
                      .Append({Value(orderkey++),
                               Value(static_cast<int64_t>(c)),
                               Value(static_cast<int64_t>(year)),
                               Value(price)})
                      .ok());
      }
    }
  }

  data.supplier = Table(Schema({"suppkey", "nation", "manuf_mu",
                                "manuf_sigma", "ship_mu", "ship_sigma"}));
  const char* nations[] = {"JAPAN", "GERMANY", "BRAZIL", "CANADA"};
  for (size_t s = 0; s < config.num_suppliers; ++s) {
    PIP_CHECK(data.supplier
                  .Append({Value(static_cast<int64_t>(s)),
                           Value(nations[rng.NextBounded(4)]),
                           Value(rng.NextUniform(3.0, 9.0)),   // manuf_mu
                           Value(rng.NextUniform(0.5, 2.0)),   // manuf_sigma
                           Value(rng.NextUniform(2.0, 7.0)),   // ship_mu
                           Value(rng.NextUniform(0.5, 2.5))})  // ship_sigma
                  .ok());
  }

  data.part =
      Table(Schema({"partkey", "suppkey", "price", "demand_lambda"}));
  for (size_t p = 0; p < config.num_parts; ++p) {
    PIP_CHECK(
        data.part
            .Append({Value(static_cast<int64_t>(p)),
                     Value(static_cast<int64_t>(rng.NextBounded(
                         config.num_suppliers))),
                     Value(rng.NextUniform(10.0, 200.0)),  // unit price
                     Value(rng.NextUniform(1.0, 12.0))})   // demand lambda
            .ok());
  }

  return data;
}

std::vector<CustomerRevenue> SummarizeRevenue(const TpchData& data) {
  std::map<int64_t, CustomerRevenue> by_customer;
  std::map<int64_t, int> order_counts;
  for (const auto& row : data.orders.rows()) {
    int64_t custkey = row[1].int_value();
    int64_t year = row[2].int_value();
    double price = row[3].double_value();
    auto& entry = by_customer[custkey];
    entry.custkey = custkey;
    if (year == 1) {
      entry.revenue_year1 += price;
    } else {
      entry.revenue_year2 += price;
    }
    order_counts[custkey] += 1;
  }
  std::vector<CustomerRevenue> out;
  out.reserve(by_customer.size());
  for (auto& [custkey, entry] : by_customer) {
    double total = entry.revenue_year1 + entry.revenue_year2;
    entry.avg_order_price =
        total / std::max(1, order_counts[custkey]);
    // Percent increase, clamped positive: Poisson rates must be > 0.
    double pct = entry.revenue_year1 > 0.0
                     ? (entry.revenue_year2 - entry.revenue_year1) /
                           entry.revenue_year1
                     : 0.0;
    entry.increase_lambda = std::max(0.05, pct * 10.0);
    out.push_back(entry);
  }
  return out;
}

}  // namespace workload
}  // namespace pip
