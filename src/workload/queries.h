/// \file queries.h
/// \brief The paper's evaluation queries (Q1-Q5), on both engines.
///
/// Each query has a PIP implementation (symbolic c-table phase + sampling
/// operators) and a Sample-First implementation (worlds instantiated up
/// front, tuple-bundle evaluation), mirroring §VI:
///
///   Q1  Revenue increase: past growth parametrizes a Poisson prediction
///       of additional purchases; expected extra revenue (expected_sum).
///   Q2  Delivery dates: per-supplier Normal manufacturing + shipping
///       times; expected latest delivery for a Japanese order
///       (expected_max).
///   Q3  Profit lost to dissatisfied customers: Q1's profit model joined
///       with Q2's delivery model through satisfaction thresholds
///       (selective expected_sum, avg selectivity ~0.1).
///   Q4  Part demand under extreme popularity: Poisson demand x
///       Exponential popularity, restricted to the rare high-popularity
///       scenario (group-by per part; the selectivity knob of Figs. 5/7a).
///   Q5  Underproduction: Exponential supply vs Poisson demand, restricted
///       to worlds where demand exceeds supply (two-variable atom that
///       forces rejection sampling; Fig. 7b).
///
/// Timing convention: query_seconds covers the deterministic/symbolic
/// phase (parameter extraction, c-table construction or up-front world
/// instantiation); sample_seconds covers integration (PIP sampling
/// operators, or Sample-First world reduction).

#ifndef PIP_WORKLOAD_QUERIES_H_
#define PIP_WORKLOAD_QUERIES_H_

#include "src/engine/database.h"
#include "src/samplefirst/sf_ops.h"
#include "src/workload/tpch.h"

namespace pip {
namespace workload {

/// \brief A scalar query result with phase timings.
struct TimedResult {
  double value = 0.0;
  double query_seconds = 0.0;
  double sample_seconds = 0.0;
};

/// \brief A per-item (part/supplier/ship) query result with timings.
struct SeriesResult {
  std::vector<double> per_item;
  double total = 0.0;
  double query_seconds = 0.0;
  double sample_seconds = 0.0;
};

// ---------------------------------------------------------------------------
// Q1: expected additional revenue from predicted purchase increases.
// ---------------------------------------------------------------------------

StatusOr<TimedResult> RunQ1Pip(const TpchData& data, uint64_t seed,
                               const SamplingOptions& options);
StatusOr<TimedResult> RunQ1SampleFirst(const TpchData& data,
                                       size_t num_worlds, uint64_t seed);
/// Closed form: sum over customers of lambda_c * avg_order_price_c.
double Q1Truth(const TpchData& data);

// ---------------------------------------------------------------------------
// Q2: expected latest delivery date across a Japanese order's parts.
// ---------------------------------------------------------------------------

StatusOr<TimedResult> RunQ2Pip(const TpchData& data, uint64_t seed,
                               const SamplingOptions& options,
                               size_t world_samples = 1000);
StatusOr<TimedResult> RunQ2SampleFirst(const TpchData& data,
                                       size_t num_worlds, uint64_t seed);

// ---------------------------------------------------------------------------
// Q3: expected profit lost to dissatisfied customers.
// ---------------------------------------------------------------------------

StatusOr<TimedResult> RunQ3Pip(const TpchData& data, uint64_t seed,
                               const SamplingOptions& options);
StatusOr<TimedResult> RunQ3SampleFirst(const TpchData& data,
                                       size_t num_worlds, uint64_t seed);
/// Closed form: sum over customers of lambda_c * avg_price_c * P[late_c].
double Q3Truth(const TpchData& data);
/// Average P[delivery > threshold] across customers (the query's
/// selectivity; ~0.1 with the default generator parameters).
double Q3AverageSelectivity(const TpchData& data);

// ---------------------------------------------------------------------------
// Q4: per-part expected demand in the extreme-popularity scenario.
// ---------------------------------------------------------------------------

/// `selectivity` sets the popularity threshold T = -ln(selectivity)
/// (popularity ~ Exponential(1), so P[pop > T] = selectivity).
StatusOr<SeriesResult> RunQ4Pip(const TpchData& data, double selectivity,
                                uint64_t seed,
                                const SamplingOptions& options);
StatusOr<SeriesResult> RunQ4SampleFirst(const TpchData& data,
                                        double selectivity,
                                        size_t num_worlds, uint64_t seed);
/// Closed form per part: lambda_p * (T + 1) (Poisson independent of the
/// memoryless exponential popularity).
std::vector<double> Q4Truth(const TpchData& data, double selectivity);

// ---------------------------------------------------------------------------
// Q5: per-part expected underproduction where demand exceeds supply.
// ---------------------------------------------------------------------------

StatusOr<SeriesResult> RunQ5Pip(const TpchData& data, double selectivity,
                                uint64_t seed,
                                const SamplingOptions& options);
StatusOr<SeriesResult> RunQ5SampleFirst(const TpchData& data,
                                        double selectivity,
                                        size_t num_worlds, uint64_t seed);
/// Closed form per part via the Poisson series (see Q5SupplyRate).
std::vector<double> Q5Truth(const TpchData& data, double selectivity);

/// Solves for the Exponential supply rate r making
/// P[demand > supply] = selectivity for Poisson(lambda) demand.
double Q5SupplyRate(double lambda, double selectivity);
/// P[Poisson(lambda) > Exponential(r)] (exact series).
double Q5Selectivity(double lambda, double rate);
/// E[demand - supply | demand > supply] (exact series).
double Q5ConditionalShortfall(double lambda, double rate);

}  // namespace workload
}  // namespace pip

#endif  // PIP_WORKLOAD_QUERIES_H_
