#include "src/sql/knobs.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace pip {
namespace sql {

namespace {

std::string ToUpperCopy(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

std::string RenderCount(size_t v) { return std::to_string(v); }

std::string RenderDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

StatusOr<size_t> AsCount(const std::string& name, double value) {
  if (value < 0 || value != std::floor(value)) {
    return Status::InvalidArgument("SET " + name +
                                   " expects a non-negative integer");
  }
  return static_cast<size_t>(value);
}

// The registry itself. Sorted by name; SHOW KNOBS renders it in this
// order.
const std::vector<KnobDef>& Registry() {
  static const std::vector<KnobDef>* knobs = new std::vector<KnobDef>{
      {"ADMISSION_TIMEOUT_MS",
       "max wait in the server admission gate before ERR OVERLOADED "
       "(0 = queue without bound)",
       [](const SamplingOptions& o) {
         return RenderCount(static_cast<size_t>(o.admission_timeout_ms));
       },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(size_t ms, AsCount("ADMISSION_TIMEOUT_MS", v));
         o->admission_timeout_ms = ms;
         return Status::OK();
       }},
      {"CHUNK_SAMPLES",
       "samples per shard chunk (determinism schedule; must be >= 1)",
       [](const SamplingOptions& o) { return RenderCount(o.chunk_samples); },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(size_t n, AsCount("CHUNK_SAMPLES", v));
         if (n == 0) {
           return Status::InvalidArgument(
               "SET CHUNK_SAMPLES expects a positive integer");
         }
         o->chunk_samples = n;
         return Status::OK();
       }},
      {"DELTA", "relative precision target for adaptive stopping",
       [](const SamplingOptions& o) { return RenderDouble(o.delta); },
       [](SamplingOptions* o, double v) {
         if (!(v > 0.0)) {
           return Status::InvalidArgument("SET DELTA expects a positive value");
         }
         o->delta = v;
         return Status::OK();
       }},
      {"EPSILON", "confidence parameter of the adaptive stopping rule",
       [](const SamplingOptions& o) { return RenderDouble(o.epsilon); },
       [](SamplingOptions* o, double v) {
         // (1 - epsilon) feeds ErfInv; outside (0, 1) the stopping rule
         // degenerates (negative or NaN z).
         if (!(v > 0.0 && v < 1.0)) {
           return Status::InvalidArgument(
               "SET EPSILON expects a value in (0, 1)");
         }
         o->epsilon = v;
         return Status::OK();
       }},
      {"FIXED_SAMPLES",
       "exact sample count (0 = adaptive epsilon/delta stopping)",
       [](const SamplingOptions& o) { return RenderCount(o.fixed_samples); },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(o->fixed_samples, AsCount("FIXED_SAMPLES", v));
         return Status::OK();
       }},
      {"INDEX_EAGER_BUILD",
       "materialize expectation-index entries at INSERT time (0/1)",
       [](const SamplingOptions& o) {
         return RenderCount(o.index_eager_build ? 1 : 0);
       },
       [](SamplingOptions* o, double v) {
         if (v != 0.0 && v != 1.0) {
           return Status::InvalidArgument(
               "SET INDEX_EAGER_BUILD expects 0 or 1");
         }
         o->index_eager_build = (v == 1.0);
         return Status::OK();
       }},
      {"INDEX_ENABLED",
       "serve repeated per-row queries from the expectation index (0/1)",
       [](const SamplingOptions& o) {
         return RenderCount(o.index_enabled ? 1 : 0);
       },
       [](SamplingOptions* o, double v) {
         if (v != 0.0 && v != 1.0) {
           return Status::InvalidArgument("SET INDEX_ENABLED expects 0 or 1");
         }
         o->index_enabled = (v == 1.0);
         return Status::OK();
       }},
      {"INDEX_MEMORY_BUDGET",
       "expectation-index LRU byte budget (0 = unlimited)",
       [](const SamplingOptions& o) {
         return RenderCount(o.index_memory_budget);
       },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(o->index_memory_budget,
                              AsCount("INDEX_MEMORY_BUDGET", v));
         return Status::OK();
       }},
      {"MAX_SAMPLES", "adaptive stopping sample ceiling",
       [](const SamplingOptions& o) { return RenderCount(o.max_samples); },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(o->max_samples, AsCount("MAX_SAMPLES", v));
         return Status::OK();
       }},
      {"MIN_SAMPLES", "adaptive stopping sample floor",
       [](const SamplingOptions& o) { return RenderCount(o.min_samples); },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(o->min_samples, AsCount("MIN_SAMPLES", v));
         return Status::OK();
       }},
      {"NUM_THREADS", "sampling worker threads (0 = hardware concurrency)",
       [](const SamplingOptions& o) { return RenderCount(o.num_threads); },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(o->num_threads, AsCount("NUM_THREADS", v));
         return Status::OK();
       }},
      {"SAMPLE_OFFSET",
       "offset into the deterministic sample-index space (fresh runs)",
       [](const SamplingOptions& o) {
         return RenderCount(static_cast<size_t>(o.sample_offset));
       },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(size_t offset, AsCount("SAMPLE_OFFSET", v));
         o->sample_offset = offset;
         return Status::OK();
       }},
      {"STATEMENT_TIMEOUT_MS",
       "per-statement deadline enforced at chunk barriers, ERR TIMEOUT "
       "(0 = no deadline)",
       [](const SamplingOptions& o) {
         return RenderCount(static_cast<size_t>(o.statement_timeout_ms));
       },
       [](SamplingOptions* o, double v) {
         PIP_ASSIGN_OR_RETURN(size_t ms, AsCount("STATEMENT_TIMEOUT_MS", v));
         o->statement_timeout_ms = ms;
         return Status::OK();
       }},
  };
  return *knobs;
}

}  // namespace

const std::vector<KnobDef>& KnobRegistry() { return Registry(); }

StatusOr<const KnobDef*> FindKnob(const std::string& name) {
  std::string upper = ToUpperCopy(name);
  for (const KnobDef& knob : Registry()) {
    if (knob.name == upper) return &knob;
  }
  return Status::NotFound("unknown knob '" + name + "'");
}

Status SetKnob(SamplingOptions* options, const std::string& name,
               double value) {
  PIP_ASSIGN_OR_RETURN(const KnobDef* knob, FindKnob(name));
  return knob->set(options, value);
}

Status SetKnobFromSpec(SamplingOptions* options, const std::string& spec) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
    return Status::InvalidArgument("knob spec '" + spec +
                                   "' is not NAME=VALUE");
  }
  const std::string name = spec.substr(0, eq);
  const std::string text = spec.substr(eq + 1);
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("knob value '" + text +
                                   "' is not a number");
  }
  return SetKnob(options, name, value);
}

}  // namespace sql
}  // namespace pip
