#include "src/sql/session.h"

#include <chrono>
#include <sstream>

#include "src/common/failpoints.h"
#include "src/common/thread_pool.h"
#include "src/sql/knobs.h"
#include "src/sql/lexer.h"

namespace pip {
namespace sql {

namespace {

using CE = ColExpr;

/// Function names with special meaning in target position.
enum class AggKind {
  kNone,
  kExpectedSum,
  kExpectedCount,
  kExpectedAvg,
  kExpectedMax,
  kExpectation,  // Per-row.
  kConf,         // Per-row.
};

AggKind AggKindFromName(const std::string& upper) {
  if (upper == "EXPECTED_SUM") return AggKind::kExpectedSum;
  if (upper == "EXPECTED_COUNT") return AggKind::kExpectedCount;
  if (upper == "EXPECTED_AVG") return AggKind::kExpectedAvg;
  if (upper == "EXPECTED_MAX") return AggKind::kExpectedMax;
  if (upper == "EXPECTATION") return AggKind::kExpectation;
  if (upper == "CONF") return AggKind::kConf;
  return AggKind::kNone;
}

bool IsTableWide(AggKind k) {
  return k == AggKind::kExpectedSum || k == AggKind::kExpectedCount ||
         k == AggKind::kExpectedAvg || k == AggKind::kExpectedMax;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

/// Scalar functions usable inside expressions.
std::optional<FuncKind> ScalarFunc(const std::string& upper) {
  if (upper == "EXP") return FuncKind::kExp;
  if (upper == "LOG") return FuncKind::kLog;
  if (upper == "SQRT") return FuncKind::kSqrt;
  if (upper == "ABS") return FuncKind::kAbs;
  if (upper == "MIN") return FuncKind::kMin;
  if (upper == "MAX") return FuncKind::kMax;
  if (upper == "POW") return FuncKind::kPow;
  return std::nullopt;
}

/// Column-kind classification of one deterministic value.
ColumnKind KindOfValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return ColumnKind::kNull;
    case ValueType::kBool:
      return ColumnKind::kBool;
    case ValueType::kInt:
    case ValueType::kDouble:
      return ColumnKind::kNumeric;
    case ValueType::kString:
      return ColumnKind::kText;
  }
  return ColumnKind::kMixed;
}

/// Folds a cell kind into a column's running kind (NULL cells defer to
/// the other cells; disagreement goes to kMixed; symbolic dominates).
ColumnKind MergeKind(ColumnKind column, ColumnKind cell) {
  if (column == ColumnKind::kSymbolic || cell == ColumnKind::kSymbolic) {
    return ColumnKind::kSymbolic;
  }
  if (column == ColumnKind::kNull) return cell;
  if (cell == ColumnKind::kNull) return column;
  return column == cell ? column : ColumnKind::kMixed;
}

std::vector<SqlColumn> ColumnsOf(const Table& t) {
  std::vector<SqlColumn> cols(t.schema().size());
  for (size_t c = 0; c < cols.size(); ++c) {
    cols[c].name = t.schema().name(c);
    for (const Row& row : t.rows()) {
      cols[c].kind = MergeKind(cols[c].kind, KindOfValue(row[c]));
    }
  }
  return cols;
}

std::vector<SqlColumn> ColumnsOf(const CTable& t) {
  std::vector<SqlColumn> cols(t.schema().size());
  for (size_t c = 0; c < cols.size(); ++c) {
    cols[c].name = t.schema().name(c);
    for (const CTableRow& row : t.rows()) {
      cols[c].kind = MergeKind(cols[c].kind,
                               row.cells[c]->IsConstant()
                                   ? KindOfValue(row.cells[c]->value())
                                   : ColumnKind::kSymbolic);
    }
  }
  return cols;
}

struct Target {
  AggKind agg = AggKind::kNone;
  ColExprPtr expr;  // Null for expected_count(*) / conf().
  std::string alias;
};

/// Recursive-descent parser for one statement.
class Parser {
 public:
  /// `options` points at the session's live options so SET persists
  /// across statements.
  Parser(std::vector<Token> tokens, Database* db, SamplingOptions* options)
      : tokens_(std::move(tokens)), db_(db), options_(options) {}

  StatusOr<SqlResult> ParseStatement() {
    if (Peek().Is("CREATE")) return ParseCreate();
    if (Peek().Is("INSERT")) return ParseInsert();
    if (Peek().Is("SELECT")) return ParseSelect();
    if (Peek().Is("SET")) return ParseSet();
    if (Peek().Is("SHOW")) return ParseShow();
    return Error("expected CREATE, INSERT, SELECT, SET or SHOW");
  }

 private:
  // -- Token plumbing ---------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& message) const {
    return Status::ParseError("SQL parse error at position " +
                              std::to_string(Peek().position) + ": " +
                              message);
  }

  /// Recognized-but-unsupported SQL constructs get the CAPABILITY wire
  /// code (distinct from PARSE: the statement is legal SQL the engine
  /// declines, so clients can branch on it).
  Status Capability(const std::string& feature) const {
    return Status::Unimplemented(feature + " is not supported");
  }

  Status ExpectKeyword(const std::string& upper) {
    if (!Peek().Is(upper)) return Error("expected " + upper);
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!Peek().IsSymbol(s)) return Error("expected '" + s + "'");
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected identifier");
    return Advance().text;
  }

  Status ExpectStatementEnd() {
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) return Error("trailing input");
    return Status::OK();
  }

  // -- Expressions -------------------------------------------------------

  StatusOr<ColExprPtr> ParseExpr() { return ParseAddSub(); }

  StatusOr<ColExprPtr> ParseAddSub() {
    PIP_ASSIGN_OR_RETURN(ColExprPtr left, ParseMulDiv());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      bool add = Advance().text == "+";
      PIP_ASSIGN_OR_RETURN(ColExprPtr right, ParseMulDiv());
      left = add ? CE::Add(left, right) : CE::Sub(left, right);
    }
    return left;
  }

  StatusOr<ColExprPtr> ParseMulDiv() {
    PIP_ASSIGN_OR_RETURN(ColExprPtr left, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      bool mul = Advance().text == "*";
      PIP_ASSIGN_OR_RETURN(ColExprPtr right, ParseUnary());
      left = mul ? CE::Mul(left, right) : CE::Div(left, right);
    }
    return left;
  }

  StatusOr<ColExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(ColExprPtr inner, ParseUnary());
      return CE::Neg(inner);
    }
    return ParsePrimary();
  }

  StatusOr<ColExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Advance();
      return CE::Literal(Value(t.number));
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return CE::Literal(Value(t.text));
    }
    if (t.IsSymbol("(")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(ColExprPtr inner, ParseExpr());
      PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      std::string name = Advance().text;
      if (Peek().IsSymbol("(")) return ParseCall(name);
      // Dotted column reference (table.column).
      if (Peek().IsSymbol(".")) {
        Advance();
        PIP_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return CE::Column(name + "." + col);
      }
      // Named variables (CREATE VARIABLE) resolve before columns.
      if (db_->HasNamedVariable(name)) {
        PIP_ASSIGN_OR_RETURN(VarRef var, db_->GetNamedVariable(name));
        return CE::Embed(Expr::Var(var));
      }
      return CE::Column(name);
    }
    return Error("expected expression");
  }

  /// Parses "(expr, ...)" — the argument list of any call.
  StatusOr<std::vector<ColExprPtr>> ParseArgList() {
    PIP_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ColExprPtr> args;
    if (!Peek().IsSymbol(")")) {
      while (true) {
        PIP_ASSIGN_OR_RETURN(ColExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
    return args;
  }

  /// Evaluates distribution-constructor arguments to numeric constants,
  /// validating the class name against the registry first.
  StatusOr<std::vector<double>> ConstParams(
      const std::string& name, const std::vector<ColExprPtr>& args) {
    auto dist = DistributionRegistry::Global().Lookup(name);
    if (!dist.ok()) {
      return Error("unknown function or distribution '" + name + "'");
    }
    std::vector<double> params;
    params.reserve(args.size());
    for (const auto& arg : args) {
      PIP_ASSIGN_OR_RETURN(ExprPtr bound, arg->Bind(Schema(), {}));
      if (!bound->IsConstant()) {
        return Error("distribution parameters must be constants");
      }
      PIP_ASSIGN_OR_RETURN(double v, bound->value().AsDouble());
      params.push_back(v);
    }
    return params;
  }

  /// A call in expression position: a scalar function or a distribution
  /// constructor. Distribution constructors require constant arguments and
  /// allocate one fresh random variable per syntactic occurrence — the
  /// paper's CREATE_VARIABLE inlined into values/targets.
  StatusOr<ColExprPtr> ParseCall(const std::string& name) {
    PIP_ASSIGN_OR_RETURN(std::vector<ColExprPtr> args, ParseArgList());
    std::string upper = ToUpper(name);
    if (auto func = ScalarFunc(upper)) {
      size_t expected = (upper == "MIN" || upper == "MAX" || upper == "POW")
                            ? 2
                            : 1;
      if (args.size() != expected) {
        return Error(name + " expects " + std::to_string(expected) +
                     " argument(s)");
      }
      return expected == 1 ? CE::Func(*func, args[0])
                           : CE::Func(*func, args[0], args[1]);
    }
    PIP_ASSIGN_OR_RETURN(std::vector<double> params, ConstParams(name, args));
    PIP_ASSIGN_OR_RETURN(VarRef var,
                         db_->CreateVariable(name, std::move(params)));
    return CE::Embed(Expr::Var(var));
  }

  StatusOr<CmpOp> ParseCmpOp() {
    const Token& t = Peek();
    if (t.IsSymbol("<")) {
      Advance();
      return CmpOp::kLt;
    }
    if (t.IsSymbol("<=")) {
      Advance();
      return CmpOp::kLe;
    }
    if (t.IsSymbol(">")) {
      Advance();
      return CmpOp::kGt;
    }
    if (t.IsSymbol(">=")) {
      Advance();
      return CmpOp::kGe;
    }
    if (t.IsSymbol("=")) {
      Advance();
      return CmpOp::kEq;
    }
    if (t.IsSymbol("<>") || t.IsSymbol("!=")) {
      Advance();
      return CmpOp::kNe;
    }
    return Error("expected comparison operator");
  }

  StatusOr<ColPredicate> ParseWhere() {
    ColPredicate pred;
    while (true) {
      PIP_ASSIGN_OR_RETURN(ColExprPtr lhs, ParseExpr());
      PIP_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      PIP_ASSIGN_OR_RETURN(ColExprPtr rhs, ParseExpr());
      pred.And(std::move(lhs), op, std::move(rhs));
      if (!Peek().Is("AND")) break;
      Advance();
    }
    return pred;
  }

  // -- Statements ---------------------------------------------------------

  /// SET knob = value: tunes the session's sampling options through the
  /// declarative knob registry (the paper's engine knobs surfaced at the
  /// SQL layer, PostgreSQL-GUC style).
  StatusOr<SqlResult> ParseSet() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("SET"));
    PIP_ASSIGN_OR_RETURN(std::string knob, ExpectIdent());
    PIP_RETURN_IF_ERROR(ExpectSymbol("="));
    bool negative = false;
    if (Peek().IsSymbol("-")) {
      Advance();
      negative = true;
    }
    if (Peek().kind != TokenKind::kNumber) return Error("expected a number");
    double value = Advance().number;
    if (negative) value = -value;
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());
    PIP_RETURN_IF_ERROR(SetKnob(options_, knob, value));
    return SqlResult::Ack("SET " + ToUpper(knob));
  }

  /// SHOW <topic>: introspection listings, one deterministic table each.
  StatusOr<SqlResult> ParseShow() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("SHOW"));
    if (Peek().Is("DISTRIBUTIONS")) {
      Advance();
      PIP_RETURN_IF_ERROR(ExpectStatementEnd());
      Table table(Schema({"distribution"}));
      for (const std::string& name : DistributionRegistry::Global().Names()) {
        PIP_RETURN_IF_ERROR(table.Append({Value(name)}));
      }
      return SqlResult::FromTable(std::move(table));
    }
    if (Peek().Is("FAILPOINTS")) {
      Advance();
      PIP_RETURN_IF_ERROR(ExpectStatementEnd());
      Table table(Schema({"site", "action", "fires"}));
      for (const failpoints::SiteInfo& site : failpoints::ActiveSites()) {
        PIP_RETURN_IF_ERROR(
            table.Append({Value(site.site), Value(site.action),
                          Value(static_cast<double>(site.fires))}));
      }
      return SqlResult::FromTable(std::move(table));
    }
    if (Peek().Is("KNOBS")) {
      Advance();
      PIP_RETURN_IF_ERROR(ExpectStatementEnd());
      Table table(Schema({"knob", "value", "description"}));
      for (const KnobDef& knob : KnobRegistry()) {
        PIP_RETURN_IF_ERROR(table.Append(
            {Value(knob.name), Value(knob.get(*options_)), Value(knob.help)}));
      }
      return SqlResult::FromTable(std::move(table));
    }
    if (Peek().Is("INDEX")) {
      Advance();
      PIP_RETURN_IF_ERROR(ExpectStatementEnd());
      const ExpectationIndex::Stats stats = db_->result_index_stats();
      Table table(Schema({"metric", "value"}));
      const std::pair<const char*, uint64_t> rows[] = {
          {"entries", stats.entries},
          {"bytes", stats.bytes},
          {"memory_budget", stats.memory_budget},
          {"hits", stats.hits},
          {"misses", stats.misses},
          {"inserts", stats.inserts},
          {"evictions", stats.evictions},
          {"invalidations", stats.invalidations},
          {"stale_rejects", stats.stale_rejects},
          {"insert_failures", stats.insert_failures},
      };
      for (const auto& [metric, value] : rows) {
        PIP_RETURN_IF_ERROR(table.Append(
            {Value(std::string(metric)), Value(static_cast<double>(value))}));
      }
      return SqlResult::FromTable(std::move(table));
    }
    if (Peek().Is("POOL")) {
      Advance();
      PIP_RETURN_IF_ERROR(ExpectStatementEnd());
      // Scheduler observability: the shared pool's cooperative-scheduling
      // counters (join-stealing + fractional budget splits), so
      // saturation is measurable over the wire, not assumed.
      ThreadPool& pool = ThreadPool::Shared();
      const ThreadPool::SchedulerStats stats = pool.scheduler_stats();
      Table table(Schema({"metric", "value"}));
      const std::pair<const char*, uint64_t> rows[] = {
          {"threads", pool.num_threads()},
          {"regions", stats.regions},
          {"inline_regions", stats.inline_regions},
          {"worker_tasks", stats.worker_tasks},
          {"joiner_tasks", stats.joiner_tasks},
          {"nested_tasks", stats.nested_tasks},
          {"steals", stats.steals},
          {"join_waits", stats.join_waits},
          {"join_wait_micros", stats.join_wait_micros},
      };
      for (const auto& [metric, value] : rows) {
        PIP_RETURN_IF_ERROR(table.Append(
            {Value(std::string(metric)), Value(static_cast<double>(value))}));
      }
      return SqlResult::FromTable(std::move(table));
    }
    if (Peek().Is("TABLES")) {
      Advance();
      PIP_RETURN_IF_ERROR(ExpectStatementEnd());
      Table table(Schema({"table"}));
      for (const std::string& name : db_->TableNames()) {
        PIP_RETURN_IF_ERROR(table.Append({Value(name)}));
      }
      return SqlResult::FromTable(std::move(table));
    }
    if (Peek().Is("VARIABLES")) {
      Advance();
      PIP_RETURN_IF_ERROR(ExpectStatementEnd());
      Table table(Schema({"variable", "distribution"}));
      for (const auto& [name, ref] : db_->NamedVariables()) {
        auto info = db_->pool()->Info(ref.var_id);
        PIP_RETURN_IF_ERROR(table.Append(
            {Value(name),
             Value(info.ok() ? info.value()->class_name : std::string("?"))}));
      }
      return SqlResult::FromTable(std::move(table));
    }
    return Error(
        "expected DISTRIBUTIONS, FAILPOINTS, INDEX, KNOBS, POOL, TABLES or "
        "VARIABLES");
  }

  StatusOr<SqlResult> ParseCreate() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    if (Peek().Is("VARIABLE")) return ParseCreateVariable();
    return ParseCreateTable();
  }

  StatusOr<SqlResult> ParseCreateTable() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    PIP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    PIP_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> columns;
    while (true) {
      PIP_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      columns.push_back(std::move(col));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());
    PIP_RETURN_IF_ERROR(
        db_->RegisterCTable(name, CTable(Schema(std::move(columns)))));
    return SqlResult::Ack("CREATE TABLE " + name);
  }

  /// CREATE VARIABLE name AS Dist(params): the paper's named
  /// CREATE_VARIABLE (§V-A). The variable lives in the Database and is
  /// usable by name in any later INSERT/SELECT expression of any
  /// session.
  StatusOr<SqlResult> ParseCreateVariable() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("VARIABLE"));
    PIP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    PIP_RETURN_IF_ERROR(ExpectKeyword("AS"));
    PIP_ASSIGN_OR_RETURN(std::string class_name, ExpectIdent());
    if (!Peek().IsSymbol("(")) return Error("expected '('");
    if (ScalarFunc(ToUpper(class_name))) {
      return Error("'" + class_name + "' is not a distribution");
    }
    PIP_ASSIGN_OR_RETURN(std::vector<ColExprPtr> args, ParseArgList());
    PIP_ASSIGN_OR_RETURN(std::vector<double> params,
                         ConstParams(class_name, args));
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());
    PIP_RETURN_IF_ERROR(
        db_->CreateNamedVariable(name, class_name, std::move(params))
            .status());
    return SqlResult::Ack("CREATE VARIABLE " + name);
  }

  StatusOr<SqlResult> ParseInsert() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    PIP_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    PIP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    PIP_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    if (!db_->HasTable(name)) {
      return Status::NotFound("no table named '" + name + "'");
    }

    std::vector<CTableRow> rows;
    while (true) {
      PIP_RETURN_IF_ERROR(ExpectSymbol("("));
      CTableRow row;
      while (true) {
        PIP_ASSIGN_OR_RETURN(ColExprPtr expr, ParseExpr());
        // INSERT expressions cannot reference columns.
        PIP_ASSIGN_OR_RETURN(ExprPtr bound, expr->Bind(Schema(), {}));
        row.cells.push_back(std::move(bound));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
      rows.push_back(std::move(row));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());
    size_t inserted = rows.size();
    // Atomic under the catalogue lock: concurrent INSERTs into one table
    // serialize instead of losing rows to a read-copy-update race.
    PIP_RETURN_IF_ERROR(db_->AppendRows(name, std::move(rows)));
    // AppendRows only honors the database-default eager-build knob; a
    // session that toggled INDEX_EAGER_BUILD warms the index itself,
    // under its own sampling options. The insert is already committed,
    // so a build failure only leaves the index cold.
    if (options_->index_eager_build) {
      Status build_status = db_->BuildIndex(name, *options_);
      (void)build_status;
    }
    return SqlResult::Ack("INSERT " + std::to_string(inserted));
  }

  StatusOr<Target> ParseTarget() {
    Target target;
    // Aggregate / per-row operator heads.
    if (Peek().kind == TokenKind::kIdent && Peek(1).IsSymbol("(")) {
      AggKind agg = AggKindFromName(ToUpper(Peek().text));
      if (agg != AggKind::kNone) {
        target.agg = agg;
        target.alias = ToUpper(Peek().text);
        Advance();
        Advance();  // '('
        if (Peek().IsSymbol("*")) {
          if (agg != AggKind::kExpectedCount) {
            return Error("'*' argument only valid for expected_count");
          }
          Advance();
        } else if (!Peek().IsSymbol(")")) {
          PIP_ASSIGN_OR_RETURN(target.expr, ParseExpr());
        }
        PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (Peek().Is("AS")) {
          Advance();
          PIP_ASSIGN_OR_RETURN(target.alias, ExpectIdent());
        }
        return target;
      }
    }
    PIP_ASSIGN_OR_RETURN(target.expr, ParseExpr());
    if (Peek().Is("AS")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(target.alias, ExpectIdent());
    } else if (target.expr->kind() == CE::Kind::kColumn) {
      target.alias = target.expr->column();
    } else {
      target.alias = "col" + std::to_string(++anonymous_targets_);
    }
    return target;
  }

  StatusOr<SqlResult> ParseSelect() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (Peek().Is("DISTINCT")) return Capability("SELECT DISTINCT");
    std::vector<Target> targets;
    bool select_star = false;
    if (Peek().IsSymbol("*")) {
      Advance();
      select_star = true;
    } else {
      while (true) {
        PIP_ASSIGN_OR_RETURN(Target t, ParseTarget());
        targets.push_back(std::move(t));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }

    PIP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    std::vector<std::string> tables;
    while (true) {
      PIP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      tables.push_back(std::move(name));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }

    ColPredicate predicate;
    if (Peek().Is("WHERE")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(predicate, ParseWhere());
    }
    // Recognized SQL clauses beyond the supported subset get the
    // CAPABILITY category rather than a generic parse error.
    for (const char* clause :
         {"GROUP", "ORDER", "HAVING", "LIMIT", "UNION", "JOIN"}) {
      if (Peek().Is(clause)) return Capability(std::string(clause));
    }
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());

    // Build the plan: FROM list as cross products, then WHERE.
    Query plan = Query::Scan(tables[0]);
    for (size_t i = 1; i < tables.size(); ++i) {
      plan = plan.CrossJoin(Query::Scan(tables[i]), tables[i]);
    }
    if (!predicate.empty()) plan = plan.Where(std::move(predicate));
    PIP_ASSIGN_OR_RETURN(CTable base, plan.Execute(*db_));

    // Classify the target list.
    bool any_table_wide = false, any_per_row = false, any_plain = false;
    for (const auto& t : targets) {
      if (IsTableWide(t.agg)) {
        any_table_wide = true;
      } else if (t.agg != AggKind::kNone) {
        any_per_row = true;
      } else {
        any_plain = true;
      }
    }
    if (any_table_wide && (any_per_row || any_plain)) {
      return Error(
          "cannot mix table-wide aggregates with per-row targets");
    }

    SamplingEngine engine = db_->MakeEngine(*options_);

    if (select_star || (!any_table_wide && !any_per_row)) {
      // Plain symbolic SELECT.
      if (select_star) {
        return SqlResult::FromCTable(std::move(base));
      }
      std::vector<NamedColExpr> cols;
      for (const auto& t : targets) cols.push_back({t.alias, t.expr});
      PIP_ASSIGN_OR_RETURN(CTable projected, Project(base, cols));
      return SqlResult::FromCTable(std::move(projected));
    }

    if (any_table_wide) {
      // Single-row deterministic aggregate result. Project each aggregate's
      // inner expression first so AggregateEvaluator sees one column each.
      std::vector<NamedColExpr> cols;
      for (size_t i = 0; i < targets.size(); ++i) {
        if (targets[i].expr != nullptr) {
          cols.push_back({"agg" + std::to_string(i), targets[i].expr});
        }
      }
      CTable projected = base;
      if (!cols.empty()) {
        PIP_ASSIGN_OR_RETURN(projected, Project(base, cols));
        // Conditions are preserved by Project; expected_count still works.
      }
      AggregateEvaluator agg(&engine);
      std::vector<std::string> names;
      Row row;
      for (size_t i = 0; i < targets.size(); ++i) {
        const Target& t = targets[i];
        names.push_back(t.alias);
        std::string col = "agg" + std::to_string(i);
        double value = 0;
        switch (t.agg) {
          case AggKind::kExpectedSum: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedSum(projected, col));
            break;
          }
          case AggKind::kExpectedCount: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedCount(projected));
            break;
          }
          case AggKind::kExpectedAvg: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedAvg(projected, col));
            break;
          }
          case AggKind::kExpectedMax: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedMax(projected, col));
            break;
          }
          default:
            return Error("unsupported aggregate");
        }
        row.push_back(Value(value));
      }
      Table out(Schema(std::move(names)));
      PIP_RETURN_IF_ERROR(out.Append(std::move(row)));
      return SqlResult::FromTable(std::move(out));
    }

    // Per-row mode: expectation(expr) / conf() mixed with deterministic
    // passthrough columns.
    std::vector<NamedColExpr> cols;
    AnalyzeSpec spec;
    spec.with_confidence = false;
    for (size_t i = 0; i < targets.size(); ++i) {
      const Target& t = targets[i];
      if (t.agg == AggKind::kConf) {
        spec.with_confidence = true;
        continue;
      }
      std::string col = t.alias;
      if (t.agg == AggKind::kExpectation) {
        cols.push_back({col, t.expr});
        spec.expectation_columns.push_back(col);
      } else {
        cols.push_back({col, t.expr});
        spec.passthrough_columns.push_back(col);
      }
    }
    CTable projected = base;
    if (!cols.empty()) {
      PIP_ASSIGN_OR_RETURN(projected, Project(base, cols));
    }
    PIP_ASSIGN_OR_RETURN(Table out, Analyze(projected, engine, spec));
    return SqlResult::FromTable(std::move(out));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Database* db_;
  SamplingOptions* options_;
  int anonymous_targets_ = 0;
};

}  // namespace

const char* WireErrorCodeName(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kNone:
      return "NONE";
    case WireErrorCode::kParse:
      return "PARSE";
    case WireErrorCode::kNotFound:
      return "NOT_FOUND";
    case WireErrorCode::kInvalidArg:
      return "INVALID_ARG";
    case WireErrorCode::kCapability:
      return "CAPABILITY";
    case WireErrorCode::kInternal:
      return "INTERNAL";
    case WireErrorCode::kTimeout:
      return "TIMEOUT";
    case WireErrorCode::kOverloaded:
      return "OVERLOADED";
  }
  return "INTERNAL";
}

StatusOr<WireErrorCode> WireErrorCodeFromName(const std::string& name) {
  for (WireErrorCode code :
       {WireErrorCode::kNone, WireErrorCode::kParse, WireErrorCode::kNotFound,
        WireErrorCode::kInvalidArg, WireErrorCode::kCapability,
        WireErrorCode::kInternal, WireErrorCode::kTimeout,
        WireErrorCode::kOverloaded}) {
    if (name == WireErrorCodeName(code)) return code;
  }
  return Status::NotFound("unknown wire error code '" + name + "'");
}

WireErrorCode WireErrorCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireErrorCode::kNone;
    case StatusCode::kParseError:
      return WireErrorCode::kParse;
    case StatusCode::kNotFound:
      return WireErrorCode::kNotFound;
    case StatusCode::kUnimplemented:
      return WireErrorCode::kCapability;
    case StatusCode::kInvalidArgument:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kTypeMismatch:
    case StatusCode::kInconsistent:
      return WireErrorCode::kInvalidArg;
    case StatusCode::kTimeout:
      return WireErrorCode::kTimeout;
    case StatusCode::kOverloaded:
      return WireErrorCode::kOverloaded;
    case StatusCode::kInternal:
    // Cancelled never reaches a client on its own — a deadline-expired
    // cancellation is reclassified kTimeout by Session::Execute, a
    // disconnect cancellation has nobody left to respond to, and a
    // cancelled batch row is shadowed by the earlier row's real error —
    // so a surfaced one is an engine invariant violation.
    case StatusCode::kCancelled:
      return WireErrorCode::kInternal;
  }
  return WireErrorCode::kInternal;
}

const char* ColumnKindName(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kNull:
      return "null";
    case ColumnKind::kNumeric:
      return "num";
    case ColumnKind::kText:
      return "text";
    case ColumnKind::kBool:
      return "bool";
    case ColumnKind::kMixed:
      return "mixed";
    case ColumnKind::kSymbolic:
      return "sym";
  }
  return "mixed";
}

SqlResult SqlResult::Ack(std::string message) {
  SqlResult result;
  result.kind = Kind::kAck;
  result.message = std::move(message);
  return result;
}

SqlResult SqlResult::FromTable(Table t) {
  SqlResult result;
  result.kind = Kind::kTable;
  result.columns = ColumnsOf(t);
  result.table = std::move(t);
  return result;
}

SqlResult SqlResult::FromCTable(CTable t) {
  SqlResult result;
  result.kind = Kind::kCTable;
  result.columns = ColumnsOf(t);
  result.ctable = std::move(t);
  return result;
}

SqlResult SqlResult::FromStatus(const Status& status) {
  PIP_CHECK_MSG(!status.ok(), "error result from OK status");
  SqlResult result;
  result.kind = Kind::kError;
  result.error.code = WireErrorCodeFor(status);
  result.error.message = status.message();
  return result;
}

std::string SqlResult::ToString() const {
  switch (kind) {
    case Kind::kAck:
      return message;
    case Kind::kCTable:
      return ctable.ToString();
    case Kind::kTable:
      return table.ToString();
    case Kind::kError:
      return std::string("ERROR ") + WireErrorCodeName(error.code) + ": " +
             error.message;
  }
  return "";
}

bool StatementMaySample(const std::string& statement) {
  auto tokens = Tokenize(statement);
  if (!tokens.ok()) return false;
  const std::vector<Token>& ts = tokens.value();
  for (size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != TokenKind::kIdent || !ts[i + 1].IsSymbol("(")) continue;
    std::string upper = ToUpper(ts[i].text);
    if (AggKindFromName(upper) != AggKind::kNone || upper == "ACONF") {
      return true;
    }
  }
  return false;
}

size_t EstimateSampleVolume(const Database& db, const std::string& statement,
                            const SamplingOptions& options) {
  if (!StatementMaySample(statement)) return 0;
  auto tokens = Tokenize(statement);
  if (!tokens.ok()) return 0;
  const std::vector<Token>& ts = tokens.value();
  // Lexical FROM scan: every table named after a FROM contributes its
  // current row count. Summing (rather than multiplying cross joins)
  // keeps the estimate cheap and stable; it only has to rank statements
  // against each other, not predict runtimes.
  size_t rows = 0;
  for (size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != TokenKind::kIdent || ToUpper(ts[i].text) != "FROM") {
      continue;
    }
    size_t j = i + 1;
    while (j < ts.size() && ts[j].kind == TokenKind::kIdent) {
      auto table = db.GetTable(ts[j].text);
      if (table.ok()) rows += table.value()->rows().size();
      if (j + 1 < ts.size() && ts[j + 1].IsSymbol(",")) {
        j += 2;
      } else {
        break;
      }
    }
    i = j;
  }
  // Per-row draw estimate: the pinned count in fixed mode, the adaptive
  // floor otherwise (the stopping rule draws at least that many).
  size_t per_row = options.fixed_samples > 0 ? options.fixed_samples
                                             : options.min_samples;
  if (per_row == 0) per_row = 1;
  if (rows == 0) rows = 1;
  return rows * per_row;
}

SqlResult Session::Execute(const std::string& statement) {
  auto tokens = Tokenize(statement);
  if (!tokens.ok()) {
    // Lexer failures are parse errors on the wire, whatever internal
    // category the tokenizer reported.
    return SqlResult::FromStatus(
        Status::ParseError(tokens.status().message()));
  }
  // Statement envelope: compose the session's resident cancel hook with
  // the external one (the server's disconnect probe) and, when
  // STATEMENT_TIMEOUT_MS is set, a steady-clock deadline. The deadline
  // is read once at statement start, so a SET inside this statement
  // takes effect from the next statement on. Cancellation decides
  // whether the statement finishes, never what it computes: every chunk
  // that does fold is bit-identical to an uncancelled run.
  const uint64_t timeout_ms = options_.statement_timeout_ms;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const std::function<bool()> saved = options_.cancel_check;
  const std::function<bool()> external = external_cancel_;
  if (external || timeout_ms > 0) {
    const bool has_deadline = timeout_ms > 0;
    const std::function<bool()> prior = saved;
    options_.cancel_check = [prior, external, has_deadline, deadline] {
      if (prior && prior()) return true;
      if (external && external()) return true;
      return has_deadline && std::chrono::steady_clock::now() >= deadline;
    };
  }
  Parser parser(std::move(tokens).value(), db_, &options_);
  auto result = parser.ParseStatement();
  options_.cancel_check = saved;
  if (!result.ok()) {
    Status status = result.status();
    if (status.code() == StatusCode::kCancelled) {
      // The engine reports generic cancellation; the cause is only known
      // here. A disconnect outranks the deadline — there is no one left
      // to deliver ERR TIMEOUT to.
      if (external && external()) {
        status = Status::Cancelled("statement cancelled: client disconnected");
      } else if (timeout_ms > 0 &&
                 std::chrono::steady_clock::now() >= deadline) {
        status = Status::Timeout("statement exceeded STATEMENT_TIMEOUT_MS=" +
                                 std::to_string(timeout_ms));
      }
    }
    return SqlResult::FromStatus(status);
  }
  return std::move(result).value();
}

}  // namespace sql
}  // namespace pip
