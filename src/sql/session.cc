#include "src/sql/session.h"

#include <sstream>

#include "src/sql/lexer.h"

namespace pip {
namespace sql {

namespace {

using CE = ColExpr;

/// Function names with special meaning in target position.
enum class AggKind {
  kNone,
  kExpectedSum,
  kExpectedCount,
  kExpectedAvg,
  kExpectedMax,
  kExpectation,  // Per-row.
  kConf,         // Per-row.
};

AggKind AggKindFromName(const std::string& upper) {
  if (upper == "EXPECTED_SUM") return AggKind::kExpectedSum;
  if (upper == "EXPECTED_COUNT") return AggKind::kExpectedCount;
  if (upper == "EXPECTED_AVG") return AggKind::kExpectedAvg;
  if (upper == "EXPECTED_MAX") return AggKind::kExpectedMax;
  if (upper == "EXPECTATION") return AggKind::kExpectation;
  if (upper == "CONF") return AggKind::kConf;
  return AggKind::kNone;
}

bool IsTableWide(AggKind k) {
  return k == AggKind::kExpectedSum || k == AggKind::kExpectedCount ||
         k == AggKind::kExpectedAvg || k == AggKind::kExpectedMax;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

/// Scalar functions usable inside expressions.
std::optional<FuncKind> ScalarFunc(const std::string& upper) {
  if (upper == "EXP") return FuncKind::kExp;
  if (upper == "LOG") return FuncKind::kLog;
  if (upper == "SQRT") return FuncKind::kSqrt;
  if (upper == "ABS") return FuncKind::kAbs;
  if (upper == "MIN") return FuncKind::kMin;
  if (upper == "MAX") return FuncKind::kMax;
  if (upper == "POW") return FuncKind::kPow;
  return std::nullopt;
}

struct Target {
  AggKind agg = AggKind::kNone;
  ColExprPtr expr;  // Null for expected_count(*) / conf().
  std::string alias;
};

/// Recursive-descent parser for one statement.
class Parser {
 public:
  /// `options` points at the session's live options so SET persists
  /// across statements.
  Parser(std::vector<Token> tokens, Database* db, SamplingOptions* options)
      : tokens_(std::move(tokens)), db_(db), options_(options) {}

  StatusOr<SqlResult> ParseStatement() {
    if (Peek().Is("CREATE")) return ParseCreateTable();
    if (Peek().Is("INSERT")) return ParseInsert();
    if (Peek().Is("SELECT")) return ParseSelect();
    if (Peek().Is("SET")) return ParseSet();
    if (Peek().Is("SHOW")) return ParseShow();
    return Error("expected CREATE, INSERT, SELECT, SET or SHOW");
  }

 private:
  // -- Token plumbing ---------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("SQL parse error at position " +
                                   std::to_string(Peek().position) + ": " +
                                   message);
  }

  Status ExpectKeyword(const std::string& upper) {
    if (!Peek().Is(upper)) return Error("expected " + upper);
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!Peek().IsSymbol(s)) return Error("expected '" + s + "'");
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected identifier");
    return Advance().text;
  }

  Status ExpectStatementEnd() {
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) return Error("trailing input");
    return Status::OK();
  }

  // -- Expressions -------------------------------------------------------

  StatusOr<ColExprPtr> ParseExpr() { return ParseAddSub(); }

  StatusOr<ColExprPtr> ParseAddSub() {
    PIP_ASSIGN_OR_RETURN(ColExprPtr left, ParseMulDiv());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      bool add = Advance().text == "+";
      PIP_ASSIGN_OR_RETURN(ColExprPtr right, ParseMulDiv());
      left = add ? CE::Add(left, right) : CE::Sub(left, right);
    }
    return left;
  }

  StatusOr<ColExprPtr> ParseMulDiv() {
    PIP_ASSIGN_OR_RETURN(ColExprPtr left, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      bool mul = Advance().text == "*";
      PIP_ASSIGN_OR_RETURN(ColExprPtr right, ParseUnary());
      left = mul ? CE::Mul(left, right) : CE::Div(left, right);
    }
    return left;
  }

  StatusOr<ColExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(ColExprPtr inner, ParseUnary());
      return CE::Neg(inner);
    }
    return ParsePrimary();
  }

  StatusOr<ColExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Advance();
      return CE::Literal(Value(t.number));
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return CE::Literal(Value(t.text));
    }
    if (t.IsSymbol("(")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(ColExprPtr inner, ParseExpr());
      PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      std::string name = Advance().text;
      if (Peek().IsSymbol("(")) return ParseCall(name);
      // Dotted column reference (table.column).
      if (Peek().IsSymbol(".")) {
        Advance();
        PIP_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return CE::Column(name + "." + col);
      }
      return CE::Column(name);
    }
    return Error("expected expression");
  }

  /// A call in expression position: a scalar function or a distribution
  /// constructor. Distribution constructors require constant arguments and
  /// allocate one fresh random variable per syntactic occurrence — the
  /// paper's CREATE_VARIABLE inlined into values/targets.
  StatusOr<ColExprPtr> ParseCall(const std::string& name) {
    PIP_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ColExprPtr> args;
    if (!Peek().IsSymbol(")")) {
      while (true) {
        PIP_ASSIGN_OR_RETURN(ColExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    PIP_RETURN_IF_ERROR(ExpectSymbol(")"));

    std::string upper = ToUpper(name);
    if (auto func = ScalarFunc(upper)) {
      size_t expected = (upper == "MIN" || upper == "MAX" || upper == "POW")
                            ? 2
                            : 1;
      if (args.size() != expected) {
        return Error(name + " expects " + std::to_string(expected) +
                     " argument(s)");
      }
      return expected == 1 ? CE::Func(*func, args[0])
                           : CE::Func(*func, args[0], args[1]);
    }

    // Distribution constructor.
    auto dist = DistributionRegistry::Global().Lookup(name);
    if (!dist.ok()) {
      return Error("unknown function or distribution '" + name + "'");
    }
    std::vector<double> params;
    params.reserve(args.size());
    for (const auto& arg : args) {
      PIP_ASSIGN_OR_RETURN(ExprPtr bound, arg->Bind(Schema(), {}));
      if (!bound->IsConstant()) {
        return Error("distribution parameters must be constants");
      }
      PIP_ASSIGN_OR_RETURN(double v, bound->value().AsDouble());
      params.push_back(v);
    }
    PIP_ASSIGN_OR_RETURN(VarRef var,
                         db_->CreateVariable(name, std::move(params)));
    return CE::Embed(Expr::Var(var));
  }

  StatusOr<CmpOp> ParseCmpOp() {
    const Token& t = Peek();
    if (t.IsSymbol("<")) {
      Advance();
      return CmpOp::kLt;
    }
    if (t.IsSymbol("<=")) {
      Advance();
      return CmpOp::kLe;
    }
    if (t.IsSymbol(">")) {
      Advance();
      return CmpOp::kGt;
    }
    if (t.IsSymbol(">=")) {
      Advance();
      return CmpOp::kGe;
    }
    if (t.IsSymbol("=")) {
      Advance();
      return CmpOp::kEq;
    }
    if (t.IsSymbol("<>") || t.IsSymbol("!=")) {
      Advance();
      return CmpOp::kNe;
    }
    return Error("expected comparison operator");
  }

  StatusOr<ColPredicate> ParseWhere() {
    ColPredicate pred;
    while (true) {
      PIP_ASSIGN_OR_RETURN(ColExprPtr lhs, ParseExpr());
      PIP_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      PIP_ASSIGN_OR_RETURN(ColExprPtr rhs, ParseExpr());
      pred.And(std::move(lhs), op, std::move(rhs));
      if (!Peek().Is("AND")) break;
      Advance();
    }
    return pred;
  }

  // -- Statements ---------------------------------------------------------

  /// SET knob = value: tunes the session's sampling options (the paper's
  /// engine knobs surfaced at the SQL layer, PostgreSQL-GUC style).
  StatusOr<SqlResult> ParseSet() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("SET"));
    PIP_ASSIGN_OR_RETURN(std::string knob, ExpectIdent());
    PIP_RETURN_IF_ERROR(ExpectSymbol("="));
    if (Peek().kind != TokenKind::kNumber) return Error("expected a number");
    double value = Advance().number;
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());

    std::string upper = ToUpper(knob);
    auto as_count = [&]() -> StatusOr<size_t> {
      if (value < 0 || value != std::floor(value)) {
        return Status::InvalidArgument(
            "SET " + upper + " expects a non-negative integer");
      }
      return static_cast<size_t>(value);
    };
    if (upper == "NUM_THREADS") {
      PIP_ASSIGN_OR_RETURN(options_->num_threads, as_count());
    } else if (upper == "FIXED_SAMPLES") {
      PIP_ASSIGN_OR_RETURN(options_->fixed_samples, as_count());
    } else if (upper == "MIN_SAMPLES") {
      PIP_ASSIGN_OR_RETURN(options_->min_samples, as_count());
    } else if (upper == "MAX_SAMPLES") {
      PIP_ASSIGN_OR_RETURN(options_->max_samples, as_count());
    } else if (upper == "SAMPLE_OFFSET") {
      PIP_ASSIGN_OR_RETURN(size_t offset, as_count());
      options_->sample_offset = offset;
    } else if (upper == "EPSILON") {
      // (1 - epsilon) feeds ErfInv; outside (0, 1) the stopping rule
      // degenerates (negative or NaN z).
      if (!(value > 0.0 && value < 1.0)) {
        return Status::InvalidArgument("SET EPSILON expects a value in (0, 1)");
      }
      options_->epsilon = value;
    } else if (upper == "DELTA") {
      if (!(value > 0.0)) {
        return Status::InvalidArgument("SET DELTA expects a positive value");
      }
      options_->delta = value;
    } else {
      return Error("unknown SET knob '" + knob + "'");
    }
    SqlResult result;
    result.message = "SET " + upper;
    return result;
  }

  /// SHOW DISTRIBUTIONS: the registered distribution classes (usable as
  /// constructors in INSERT/SELECT), one per row, sorted by name.
  StatusOr<SqlResult> ParseShow() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("SHOW"));
    PIP_RETURN_IF_ERROR(ExpectKeyword("DISTRIBUTIONS"));
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());
    SqlResult result;
    result.kind = SqlResult::Kind::kTable;
    result.table = Table(Schema({"distribution"}));
    for (const std::string& name : DistributionRegistry::Global().Names()) {
      PIP_RETURN_IF_ERROR(result.table.Append({Value(name)}));
    }
    return result;
  }

  StatusOr<SqlResult> ParseCreateTable() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    PIP_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    PIP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    PIP_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> columns;
    while (true) {
      PIP_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      columns.push_back(std::move(col));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());
    PIP_RETURN_IF_ERROR(
        db_->RegisterCTable(name, CTable(Schema(std::move(columns)))));
    SqlResult result;
    result.message = "CREATE TABLE " + name;
    return result;
  }

  StatusOr<SqlResult> ParseInsert() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    PIP_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    PIP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    PIP_RETURN_IF_ERROR(ExpectKeyword("VALUES"));

    PIP_ASSIGN_OR_RETURN(const CTable* existing, db_->GetTable(name));
    CTable updated = *existing;

    size_t inserted = 0;
    while (true) {
      PIP_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> cells;
      while (true) {
        PIP_ASSIGN_OR_RETURN(ColExprPtr expr, ParseExpr());
        // INSERT expressions cannot reference columns.
        PIP_ASSIGN_OR_RETURN(ExprPtr bound, expr->Bind(Schema(), {}));
        cells.push_back(std::move(bound));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
      PIP_RETURN_IF_ERROR(updated.Append(std::move(cells)));
      ++inserted;
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());
    db_->MaterializeView(name, std::move(updated));
    SqlResult result;
    result.message = "INSERT " + std::to_string(inserted);
    return result;
  }

  StatusOr<Target> ParseTarget() {
    Target target;
    // Aggregate / per-row operator heads.
    if (Peek().kind == TokenKind::kIdent && Peek(1).IsSymbol("(")) {
      AggKind agg = AggKindFromName(ToUpper(Peek().text));
      if (agg != AggKind::kNone) {
        target.agg = agg;
        target.alias = ToUpper(Peek().text);
        Advance();
        Advance();  // '('
        if (Peek().IsSymbol("*")) {
          if (agg != AggKind::kExpectedCount) {
            return Error("'*' argument only valid for expected_count");
          }
          Advance();
        } else if (!Peek().IsSymbol(")")) {
          PIP_ASSIGN_OR_RETURN(target.expr, ParseExpr());
        }
        PIP_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (Peek().Is("AS")) {
          Advance();
          PIP_ASSIGN_OR_RETURN(target.alias, ExpectIdent());
        }
        return target;
      }
    }
    PIP_ASSIGN_OR_RETURN(target.expr, ParseExpr());
    if (Peek().Is("AS")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(target.alias, ExpectIdent());
    } else if (target.expr->kind() == CE::Kind::kColumn) {
      target.alias = target.expr->column();
    } else {
      target.alias = "col" + std::to_string(++anonymous_targets_);
    }
    return target;
  }

  StatusOr<SqlResult> ParseSelect() {
    PIP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    std::vector<Target> targets;
    bool select_star = false;
    if (Peek().IsSymbol("*")) {
      Advance();
      select_star = true;
    } else {
      while (true) {
        PIP_ASSIGN_OR_RETURN(Target t, ParseTarget());
        targets.push_back(std::move(t));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }

    PIP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    std::vector<std::string> tables;
    while (true) {
      PIP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      tables.push_back(std::move(name));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }

    ColPredicate predicate;
    if (Peek().Is("WHERE")) {
      Advance();
      PIP_ASSIGN_OR_RETURN(predicate, ParseWhere());
    }
    PIP_RETURN_IF_ERROR(ExpectStatementEnd());

    // Build the plan: FROM list as cross products, then WHERE.
    Query plan = Query::Scan(tables[0]);
    for (size_t i = 1; i < tables.size(); ++i) {
      plan = plan.CrossJoin(Query::Scan(tables[i]), tables[i]);
    }
    if (!predicate.empty()) plan = plan.Where(std::move(predicate));
    PIP_ASSIGN_OR_RETURN(CTable base, plan.Execute(*db_));

    // Classify the target list.
    bool any_table_wide = false, any_per_row = false, any_plain = false;
    for (const auto& t : targets) {
      if (IsTableWide(t.agg)) {
        any_table_wide = true;
      } else if (t.agg != AggKind::kNone) {
        any_per_row = true;
      } else {
        any_plain = true;
      }
    }
    if (any_table_wide && (any_per_row || any_plain)) {
      return Error(
          "cannot mix table-wide aggregates with per-row targets");
    }

    SqlResult result;
    SamplingEngine engine = db_->MakeEngine(*options_);

    if (select_star || (!any_table_wide && !any_per_row)) {
      // Plain symbolic SELECT.
      if (select_star) {
        result.kind = SqlResult::Kind::kCTable;
        result.ctable = std::move(base);
        return result;
      }
      std::vector<NamedColExpr> cols;
      for (const auto& t : targets) cols.push_back({t.alias, t.expr});
      PIP_ASSIGN_OR_RETURN(result.ctable, Project(base, cols));
      result.kind = SqlResult::Kind::kCTable;
      return result;
    }

    if (any_table_wide) {
      // Single-row deterministic aggregate result. Project each aggregate's
      // inner expression first so AggregateEvaluator sees one column each.
      std::vector<NamedColExpr> cols;
      for (size_t i = 0; i < targets.size(); ++i) {
        if (targets[i].expr != nullptr) {
          cols.push_back({"agg" + std::to_string(i), targets[i].expr});
        }
      }
      CTable projected = base;
      if (!cols.empty()) {
        PIP_ASSIGN_OR_RETURN(projected, Project(base, cols));
        // Conditions are preserved by Project; expected_count still works.
      }
      AggregateEvaluator agg(&engine);
      std::vector<std::string> names;
      Row row;
      for (size_t i = 0; i < targets.size(); ++i) {
        const Target& t = targets[i];
        names.push_back(t.alias);
        std::string col = "agg" + std::to_string(i);
        double value = 0;
        switch (t.agg) {
          case AggKind::kExpectedSum: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedSum(projected, col));
            break;
          }
          case AggKind::kExpectedCount: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedCount(projected));
            break;
          }
          case AggKind::kExpectedAvg: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedAvg(projected, col));
            break;
          }
          case AggKind::kExpectedMax: {
            PIP_ASSIGN_OR_RETURN(value, agg.ExpectedMax(projected, col));
            break;
          }
          default:
            return Error("unsupported aggregate");
        }
        row.push_back(Value(value));
      }
      result.kind = SqlResult::Kind::kTable;
      result.table = Table(Schema(std::move(names)));
      PIP_RETURN_IF_ERROR(result.table.Append(std::move(row)));
      return result;
    }

    // Per-row mode: expectation(expr) / conf() mixed with deterministic
    // passthrough columns.
    std::vector<NamedColExpr> cols;
    AnalyzeSpec spec;
    spec.with_confidence = false;
    for (size_t i = 0; i < targets.size(); ++i) {
      const Target& t = targets[i];
      if (t.agg == AggKind::kConf) {
        spec.with_confidence = true;
        continue;
      }
      std::string col = t.alias;
      if (t.agg == AggKind::kExpectation) {
        cols.push_back({col, t.expr});
        spec.expectation_columns.push_back(col);
      } else {
        cols.push_back({col, t.expr});
        spec.passthrough_columns.push_back(col);
      }
    }
    CTable projected = base;
    if (!cols.empty()) {
      PIP_ASSIGN_OR_RETURN(projected, Project(base, cols));
    }
    PIP_ASSIGN_OR_RETURN(result.table, Analyze(projected, engine, spec));
    result.kind = SqlResult::Kind::kTable;
    return result;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Database* db_;
  SamplingOptions* options_;
  int anonymous_targets_ = 0;
};

}  // namespace

std::string SqlResult::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return message;
    case Kind::kCTable:
      return ctable.ToString();
    case Kind::kTable:
      return table.ToString();
  }
  return "";
}

StatusOr<SqlResult> Session::Execute(const std::string& statement) {
  PIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Parser parser(std::move(tokens), db_, &options_);
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace pip
