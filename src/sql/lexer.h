/// \file lexer.h
/// \brief Tokenizer for PIP's SQL subset.

#ifndef PIP_SQL_LEXER_H_
#define PIP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace pip {
namespace sql {

enum class TokenKind {
  kIdent,    ///< Identifiers and keywords (case-insensitive).
  kNumber,   ///< Numeric literal.
  kString,   ///< 'single-quoted' string literal.
  kSymbol,   ///< Punctuation / operators: ( ) , . * + - / < > <= >= = <> !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< Raw text (identifiers upper-cased separately).
  double number = 0;  ///< Value for kNumber.
  size_t position = 0;

  /// Case-insensitive keyword/identifier comparison.
  bool Is(const std::string& upper) const;
  /// Exact symbol comparison.
  bool IsSymbol(const std::string& s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Tokenizes `input`. InvalidArgument on malformed literals or characters.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace pip

#endif  // PIP_SQL_LEXER_H_
