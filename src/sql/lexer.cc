#include "src/sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace pip {
namespace sql {

namespace {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

bool Token::Is(const std::string& upper) const {
  if (kind != TokenKind::kIdent) return false;
  return ToUpper(text) == upper;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      token.kind = TokenKind::kIdent;
      token.text = input.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      token.kind = TokenKind::kNumber;
      token.text = input.substr(start, i - start);
      char* end = nullptr;
      token.number = std::strtod(token.text.c_str(), &end);
      if (end != token.text.c_str() + token.text.size()) {
        return Status::InvalidArgument("malformed number '" + token.text +
                                       "' at position " +
                                       std::to_string(start));
      }
    } else if (c == '\'') {
      size_t start = ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // Escaped quote.
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at position " +
                                       std::to_string(start - 1));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(value);
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.kind = TokenKind::kSymbol;
          token.text = two;
          i += 2;
          tokens.push_back(std::move(token));
          continue;
        }
      }
      static const std::string kSingles = "(),.*+-/<>=;";
      if (kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at position " +
                                       std::to_string(i));
      }
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace pip
