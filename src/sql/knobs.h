/// \file knobs.h
/// \brief Declarative registry of the session sampling knobs.
///
/// One table maps knob names to parse/validate/set/get behavior on
/// SamplingOptions. Every surface that tunes options goes through it:
/// the SQL `SET <knob> = <value>` statement, `SHOW KNOBS`, and the
/// pip-server `--set NAME=VALUE` startup flags — so a knob added here is
/// immediately available everywhere, with one validator.

#ifndef PIP_SQL_KNOBS_H_
#define PIP_SQL_KNOBS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sampling/expectation.h"

namespace pip {
namespace sql {

/// \brief One tunable knob on SamplingOptions.
struct KnobDef {
  std::string name;  ///< Canonical upper-case name, e.g. "NUM_THREADS".
  std::string help;  ///< One-line description for SHOW KNOBS.
  /// Current value rendered for SHOW KNOBS / diagnostics.
  std::string (*get)(const SamplingOptions&);
  /// Validates and applies `value`; error Status on rejection.
  Status (*set)(SamplingOptions*, double value);
};

/// The registry, sorted by name.
const std::vector<KnobDef>& KnobRegistry();

/// The definition of `name` (case-insensitive); NotFound for unknown
/// knobs.
StatusOr<const KnobDef*> FindKnob(const std::string& name);

/// Validates and applies one knob (case-insensitive name).
Status SetKnob(SamplingOptions* options, const std::string& name,
               double value);

/// Applies a "NAME=VALUE" spec (the server startup-flag form).
Status SetKnobFromSpec(SamplingOptions* options, const std::string& spec);

}  // namespace sql
}  // namespace pip

#endif  // PIP_SQL_KNOBS_H_
