/// \file session.h
/// \brief A SQL front-end for PIP, mirroring the paper's §V interface.
///
/// The paper exposes PIP through extended PostgreSQL SQL: CREATE VARIABLE
/// allocates random variables, overloaded operators let them mix freely
/// with constants in targets and WHERE clauses, and probability-removing
/// functions (expectation, conf, expected_sum, ...) terminate the symbolic
/// phase. This module provides the same surface on the in-memory engine:
///
///   CREATE TABLE orders (cust, ship_to, price);
///   INSERT INTO orders VALUES ('Joe', 'NY', Normal(120, 20));
///   SELECT price FROM orders WHERE cust = 'Joe';          -- c-table out
///   SELECT expected_sum(price), conf() FROM orders
///     WHERE ship_days >= 7;                               -- deterministic
///
/// Distribution constructors (any registered class name used as a function
/// in an INSERT or SELECT target) allocate a fresh variable per evaluated
/// row — the paper's CREATE_VARIABLE. Supported statements:
///
///   CREATE TABLE name (col [, col]*)
///   INSERT INTO name VALUES (expr, ...) [, (expr, ...)]*
///   SELECT targets FROM name [, name]* [WHERE conjunction]
///   SET knob = value        -- session sampling knobs, see below
///   SHOW DISTRIBUTIONS      -- registered distribution classes
///
/// SET tunes the session's SamplingOptions; supported knobs are
/// NUM_THREADS (0 = hardware concurrency), FIXED_SAMPLES, MIN_SAMPLES,
/// MAX_SAMPLES, EPSILON, DELTA and SAMPLE_OFFSET. New sessions inherit
/// the database's default_options(), so deployments can pin e.g. a
/// thread budget once at the Database level. NUM_THREADS caps both
/// parallel axes at once: batch operators (Analyze, aconf(), the
/// expected_* aggregates) fan their row loops across the pool and each
/// row's sample sharding then runs inline; single-row calls fan the
/// sample axis instead (see README "Threading model").
///
/// SHOW DISTRIBUTIONS returns a one-column deterministic table listing
/// DistributionRegistry::Global().Names() — every class name usable as a
/// constructor in INSERT/SELECT targets.
///
/// Targets: expressions with optional `AS alias`, or the aggregates
/// expected_sum(expr) / expected_count(*) / expected_avg(expr) /
/// expected_max(expr) / expectation(expr) / conf(). A SELECT containing an
/// aggregate returns a single-row deterministic Table; `expectation` and
/// `conf` are per-row operators returning one deterministic row per input
/// row; a plain SELECT returns the symbolic CTable.

#ifndef PIP_SQL_SESSION_H_
#define PIP_SQL_SESSION_H_

#include <string>

#include "src/engine/query.h"
#include "src/sampling/aggregates.h"

namespace pip {
namespace sql {

/// \brief Result of executing one statement.
struct SqlResult {
  enum class Kind {
    kNone,      ///< DDL/DML acknowledgement (see `message`).
    kCTable,    ///< Symbolic query result.
    kTable,     ///< Deterministic (probability-removed) result.
  };
  Kind kind = Kind::kNone;
  std::string message;
  CTable ctable;
  Table table;

  std::string ToString() const;
};

/// \brief Stateful SQL session against one Database.
class Session {
 public:
  /// Inherits the database's default sampling options.
  explicit Session(Database* db) : db_(db), options_(db->default_options()) {}
  Session(Database* db, SamplingOptions options)
      : db_(db), options_(options) {}

  /// Parses and executes one statement (trailing ';' optional).
  StatusOr<SqlResult> Execute(const std::string& statement);

  SamplingOptions* mutable_options() { return &options_; }

 private:
  Database* db_;
  SamplingOptions options_;
};

}  // namespace sql
}  // namespace pip

#endif  // PIP_SQL_SESSION_H_
