/// \file session.h
/// \brief A SQL front-end for PIP, mirroring the paper's §V interface.
///
/// The paper exposes PIP through extended PostgreSQL SQL: CREATE VARIABLE
/// allocates random variables, overloaded operators let them mix freely
/// with constants in targets and WHERE clauses, and probability-removing
/// functions (expectation, conf, expected_sum, ...) terminate the symbolic
/// phase. This module provides the same surface on the in-memory engine:
///
///   CREATE TABLE orders (cust, ship_to, price);
///   INSERT INTO orders VALUES ('Joe', 'NY', Normal(120, 20));
///   SELECT price FROM orders WHERE cust = 'Joe';          -- c-table out
///   SELECT expected_sum(price), conf() FROM orders
///     WHERE ship_days >= 7;                               -- deterministic
///
/// Distribution constructors (any registered class name used as a function
/// in an INSERT or SELECT target) allocate a fresh variable per evaluated
/// row — the paper's CREATE_VARIABLE inlined into expressions. The
/// explicit named form is also supported:
///
///   CREATE VARIABLE demand AS Poisson(140);
///   INSERT INTO products VALUES ('widget', 19.99, demand * 2);
///
/// Named variables are session-independent (they live in the Database)
/// and resolve before column names in expressions. Supported statements:
///
///   CREATE TABLE name (col [, col]*)
///   CREATE VARIABLE name AS Dist(params)
///   INSERT INTO name VALUES (expr, ...) [, (expr, ...)]*
///   SELECT targets FROM name [, name]* [WHERE conjunction]
///   SET knob = value        -- session sampling knobs (see knobs.h)
///   SHOW DISTRIBUTIONS | FAILPOINTS | INDEX | KNOBS | POOL | TABLES
///     | VARIABLES
///
/// SET tunes the session's SamplingOptions through the declarative knob
/// registry (src/sql/knobs.h) — the same registry behind `SHOW KNOBS`
/// and the pip-server `--set NAME=VALUE` startup flags. New sessions
/// inherit the database's default_options(), so deployments can pin e.g.
/// a thread budget once at the Database level. NUM_THREADS caps both
/// parallel axes at once (see README "Threading model").
///
/// Targets: expressions with optional `AS alias`, or the aggregates
/// expected_sum(expr) / expected_count(*) / expected_avg(expr) /
/// expected_max(expr) / expectation(expr) / conf(). A SELECT containing an
/// aggregate returns a single-row deterministic Table; `expectation` and
/// `conf` are per-row operators returning one deterministic row per input
/// row; a plain SELECT returns the symbolic CTable.
///
/// Execute() never "fails" at the call level: it always returns a
/// SqlResult, which is a tagged, wire-ready response — on error the
/// result carries a machine-readable WireErrorCode plus the message, so
/// clients (and the server codec in src/server/wire.h) never parse
/// prose.

#ifndef PIP_SQL_SESSION_H_
#define PIP_SQL_SESSION_H_

#include <string>
#include <vector>

#include "src/engine/query.h"
#include "src/sampling/aggregates.h"

namespace pip {
namespace sql {

/// \brief Stable machine-readable error categories of the client API.
///
/// This is the error surface clients program against; the server wire
/// codec and SqlResult::ToString() render exactly these names. Status
/// categories map onto it via WireErrorCodeFor.
enum class WireErrorCode {
  kNone = 0,    ///< Not an error.
  kParse,       ///< Statement text rejected by the parser.
  kNotFound,    ///< Named entity (table, variable, knob, column) missing.
  kInvalidArg,  ///< Well-formed statement with invalid content.
  kCapability,  ///< Recognized construct the engine does not support.
  kInternal,    ///< Engine-side invariant failure.
  kTimeout,     ///< Statement deadline (STATEMENT_TIMEOUT_MS) expired.
  kOverloaded,  ///< Admission control shed the statement; retry later
                ///< (with backoff) — nothing about the statement itself
                ///< is wrong, so this is distinct from INTERNAL.
};

/// Wire name, e.g. "PARSE", "NOT_FOUND". Stable across releases.
const char* WireErrorCodeName(WireErrorCode code);

/// Inverse of WireErrorCodeName; NotFound for unknown names.
StatusOr<WireErrorCode> WireErrorCodeFromName(const std::string& name);

/// Collapses a Status into the wire error category.
WireErrorCode WireErrorCodeFor(const Status& status);

/// \brief Column kind tags in result metadata.
enum class ColumnKind {
  kNull = 0,  ///< All cells NULL (or no rows).
  kNumeric,   ///< Int/double cells.
  kText,      ///< String cells.
  kBool,      ///< Boolean cells.
  kMixed,     ///< Heterogeneous deterministic cells.
  kSymbolic,  ///< At least one probabilistic (equation) cell.
};

const char* ColumnKindName(ColumnKind kind);

/// \brief One column of a result: name plus kind tag.
struct SqlColumn {
  std::string name;
  ColumnKind kind = ColumnKind::kNull;
};

/// \brief Machine-readable error payload of a failed statement.
struct SqlError {
  WireErrorCode code = WireErrorCode::kNone;
  std::string message;
};

/// \brief Wire-ready result of executing one statement.
///
/// A tagged union: acknowledgement (DDL/DML), deterministic table,
/// symbolic c-table, or error. Table-shaped results carry structured
/// column metadata so clients can consume them without sniffing cells.
struct SqlResult {
  enum class Kind {
    kAck,       ///< DDL/DML acknowledgement (see `message`).
    kTable,     ///< Deterministic (probability-removed) result.
    kCTable,    ///< Symbolic query result.
    kError,     ///< Failed statement (see `error`).
  };
  Kind kind = Kind::kAck;
  std::string message;              ///< Ack text, e.g. "INSERT 3".
  std::vector<SqlColumn> columns;   ///< Metadata for kTable/kCTable.
  Table table;
  CTable ctable;
  SqlError error;

  bool ok() const { return kind != Kind::kError; }

  static SqlResult Ack(std::string message);
  static SqlResult FromTable(Table t);
  static SqlResult FromCTable(CTable t);
  /// Error result from a non-OK status.
  static SqlResult FromStatus(const Status& status);

  /// Human rendering; errors render "ERROR <CODE>: <message>" using the
  /// same WireErrorCodeName the server codec emits.
  std::string ToString() const;
};

/// True when `statement` invokes a probability-removing function
/// (expected_*, expectation, conf, aconf) and hence runs Monte Carlo
/// sampling. The server's admission gate uses this to bound concurrent
/// heavy statements without parsing twice; lexer-accurate (string
/// literals cannot fake a match). Unparseable statements return false.
bool StatementMaySample(const std::string& statement);

/// Estimated Monte Carlo draw volume of `statement` against `db`'s
/// current catalogue: (row counts of the tables named after FROM) x
/// (per-row draws implied by `options` — fixed_samples when pinned,
/// else the adaptive floor min_samples). Returns 0 for statements that
/// cannot sample. The server's admission gate weights statements by
/// this so one table-sweep Analyze costs proportionally more of the
/// window than a single-row lookup.
size_t EstimateSampleVolume(const Database& db, const std::string& statement,
                            const SamplingOptions& options);

/// \brief Stateful SQL session against one Database.
///
/// Sessions are cheap; the server creates one per connection. Each
/// session owns a private SamplingOptions (seeded from the database
/// defaults) so SET is connection-local, while data, named variables,
/// the thread pool, and the plan cache are shared through the Database.
class Session {
 public:
  /// Inherits the database's default sampling options.
  explicit Session(Database* db) : db_(db), options_(db->default_options()) {}
  Session(Database* db, SamplingOptions options)
      : db_(db), options_(options) {}

  /// Parses and executes one statement (trailing ';' optional). Always
  /// returns a result; failures are tagged Kind::kError.
  SqlResult Execute(const std::string& statement);

  /// Installs a statement-independent cancellation hook — the server
  /// wires its peer-liveness probe here so an abandoned statement stops
  /// at the next chunk barrier. Execute composes it (with the
  /// STATEMENT_TIMEOUT_MS deadline) into the sampling cancel_check for
  /// every statement. May be polled from sampling worker threads, so the
  /// hook must be thread-safe; pass an empty function to clear.
  void set_external_cancel(std::function<bool()> cancel) {
    external_cancel_ = std::move(cancel);
  }

  SamplingOptions* mutable_options() { return &options_; }
  Database* database() { return db_; }

 private:
  Database* db_;
  SamplingOptions options_;
  std::function<bool()> external_cancel_;
};

}  // namespace sql
}  // namespace pip

#endif  // PIP_SQL_SESSION_H_
