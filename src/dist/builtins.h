/// \file builtins.h
/// \brief Internal wiring of the builtin distribution library.
///
/// Each family file registers its classes through one entry point;
/// RegisterBuiltinDistributions (registry.h) composes them. Client code
/// never includes this header — plugins are resolved by name through the
/// registry, keeping the engine independent of the concrete classes.

#ifndef PIP_DIST_BUILTINS_H_
#define PIP_DIST_BUILTINS_H_

#include <cmath>

#include "src/dist/distribution.h"
#include "src/dist/registry.h"

namespace pip {
namespace dist_internal {

Status RegisterContinuousBuiltins(DistributionRegistry* registry);
Status RegisterDiscreteBuiltins(DistributionRegistry* registry);
Status RegisterMultivariateBuiltins(DistributionRegistry* registry);

/// Shared parameter-validation helpers.
inline Status ExpectParamCount(const std::string& name,
                               const std::vector<double>& params, size_t n) {
  if (params.size() != n) {
    return Status::InvalidArgument(
        name + " expects " + std::to_string(n) + " parameter(s), got " +
        std::to_string(params.size()));
  }
  return Status::OK();
}

inline Status ExpectFinite(const std::string& name,
                           const std::vector<double>& params) {
  for (double p : params) {
    if (!std::isfinite(p)) {
      return Status::InvalidArgument(name + " parameters must be finite");
    }
  }
  return Status::OK();
}

inline Status ExpectPositive(const std::string& name, const char* what,
                             double value) {
  if (!(value > 0.0)) {
    return Status::InvalidArgument(name + ": " + what +
                                   " must be strictly positive");
  }
  return Status::OK();
}

inline bool IsInteger(double x) { return std::floor(x) == x; }

}  // namespace dist_internal
}  // namespace pip

#endif  // PIP_DIST_BUILTINS_H_
