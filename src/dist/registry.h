/// \file registry.h
/// \brief Name -> distribution-plugin resolution.
///
/// The registry is how SQL `INSERT ... VALUES (Normal(120, 20))` and
/// `Database::CreateVariable("Normal", {...})` find their implementation:
/// every distribution class — builtin or user-supplied — registers one
/// immutable instance under its class name. `Global()` is the process-wide
/// instance, pre-seeded with the standard library; isolated registries can
/// be constructed for tests or sandboxed sessions.

#ifndef PIP_DIST_REGISTRY_H_
#define PIP_DIST_REGISTRY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace pip {

class Distribution;

/// \brief A thread-safe map from class name to distribution plugin.
class DistributionRegistry {
 public:
  DistributionRegistry();
  ~DistributionRegistry();
  DistributionRegistry(const DistributionRegistry&) = delete;
  DistributionRegistry& operator=(const DistributionRegistry&) = delete;

  /// The process-wide registry, with builtins already registered. Safe to
  /// call (and to Register against) from any thread at any time.
  static DistributionRegistry& Global();

  /// Registers a plugin under `dist->name()`. AlreadyExists if the name is
  /// taken: re-registration is rejected rather than silently shadowing,
  /// so a plugin cannot hijack e.g. "Normal" for existing variables.
  Status Register(std::unique_ptr<Distribution> dist);

  /// Registers a plugin, replacing any existing entry of the same name —
  /// the explicit override path for plugin upgrades. The displaced
  /// instance is retained (not destroyed) so Lookup pointers and existing
  /// variables bound to it stay valid; only *new* resolutions see the
  /// replacement.
  Status RegisterOrReplace(std::unique_ptr<Distribution> dist);

  /// Monotone counter bumped by every successful Register /
  /// RegisterOrReplace. Caches keyed on resolved plugins (e.g. the
  /// sampling PlanCache) fold this into their keys so plugin churn
  /// invalidates stale entries.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Resolves a class name. NotFound lists the name; the pointer stays
  /// valid for the registry's lifetime (process lifetime for Global()).
  StatusOr<const Distribution*> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered class names, sorted (catalog introspection / SHOW).
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Distribution>> dists_;
  /// Plugins displaced by RegisterOrReplace, kept alive for old pointers.
  std::vector<std::unique_ptr<Distribution>> retired_;
  std::atomic<uint64_t> generation_{0};
};

/// Registers the standard library (Normal, Uniform, Exponential, Poisson,
/// Bernoulli, DiscreteUniform, Categorical, Gamma, Lognormal, MVNormal,
/// Beta, StudentT, Zipf, UniformSum, Tukey) into `registry`. Idempotence
/// is the caller's concern: registering into a non-empty registry that
/// already holds one of these names returns the first error.
Status RegisterBuiltinDistributions(DistributionRegistry* registry);

}  // namespace pip

#endif  // PIP_DIST_REGISTRY_H_
