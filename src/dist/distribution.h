/// \file distribution.h
/// \brief The distribution-plugin interface (paper §IV-B, §V-A).
///
/// PIP treats probability distributions as *plugins*: "integration,
/// inversion, or sampling functionality can be provided on a
/// per-distribution basis" and the sampling engine degrades gracefully
/// when a capability is missing (exact CDF integration -> inverse-CDF
/// constrained sampling -> rejection -> Metropolis). A plugin implements
/// `Generate` (mandatory) and whichever of PDF / CDF / inverse CDF /
/// moments it can supply, and advertises the set through a `Capabilities()`
/// bitmask. The engine never special-cases a distribution class: every
/// strategy decision is driven by capability queries, so user-registered
/// distributions participate in all optimizations automatically.
///
/// Distributions are stateless and parameterless singletons: parameters
/// travel with each call (the `VariablePool` stores them per variable),
/// which keeps one registry entry per *class* rather than per variable
/// and makes plugins trivially thread-safe.

#ifndef PIP_DIST_DISTRIBUTION_H_
#define PIP_DIST_DISTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/interval.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/dist/registry.h"

namespace pip {

/// \brief The shape of a distribution's domain.
enum class DomainKind {
  kContinuous,  ///< Absolutely continuous on (a subset of) the reals.
  kDiscrete,    ///< Supported on the integer lattice (possibly infinite).
};

/// \brief Capability bits advertised by a plugin (paper §IV-B).
///
/// `kGenerate` is mandatory — a distribution that cannot be sampled is
/// useless to a Monte Carlo engine. Everything else is optional and
/// unlocks a strategy tier:
///   - kCdf: exact single-variable probability computation.
///   - kCdf | kInverseCdf: constrained (windowed) quantile sampling.
///   - kPdf: Metropolis fallback and exact numeric integration (with kCdf).
///   - kFiniteDomain: possible-world enumeration (ExplodeDiscrete).
///   - kMoments: closed-form Mean/Variance (proposal scaling, short
///     circuits).
enum DistCapability : uint32_t {
  kGenerate = 1u << 0,
  kPdf = 1u << 1,
  kCdf = 1u << 2,
  kInverseCdf = 1u << 3,
  kMoments = 1u << 4,
  kFiniteDomain = 1u << 5,
};

/// \brief Coordinates of one deterministic draw.
///
/// PIP stores no sampler state: the value of variable `var_id` in sample
/// `sample_index` is a pure function of these coordinates and the pool
/// seed, so "multiple calls to Generate with the same seed value produce
/// the same sample" (§III-B). `attempt` decorrelates successive rejection
/// attempts (and doubles as a stream marker for auxiliary draws).
struct SampleContext {
  uint64_t seed = 0;
  uint64_t var_id = 0;
  uint64_t sample_index = 0;
  uint64_t attempt = 0;

  /// The derived stream seed shared by every component/sample of this
  /// (pool seed, attempt) pair. Batch kernels hoist it once per block.
  uint64_t MixedSeed() const {
    return MixBits(seed, attempt, 0x70697005ULL, 1);
  }

  /// The i.i.d. uniform stream for one component of this coordinate.
  RandomStream StreamFor(uint32_t component) const {
    return RandomStream(MixedSeed(), var_id, component, sample_index);
  }
};

/// \brief Abstract distribution plugin.
///
/// Implementations must be immutable after construction; one instance is
/// shared by every variable of the class across all threads. Optional
/// methods default to `Unimplemented` — override them together with the
/// matching `Capabilities()` bit. `component` selects a marginal of a
/// multivariate class and is always 0 for univariate ones.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Registry key, e.g. "Normal". Also the SQL constructor name.
  virtual const std::string& name() const = 0;

  virtual DomainKind domain() const = 0;

  /// Bitmask of DistCapability bits. Defaults to generate-only, the
  /// minimum viable plugin.
  virtual uint32_t Capabilities() const { return kGenerate; }

  bool HasPdf() const { return Capabilities() & kPdf; }
  bool HasCdf() const { return Capabilities() & kCdf; }
  bool HasInverseCdf() const { return Capabilities() & kInverseCdf; }
  bool HasMoments() const { return Capabilities() & kMoments; }
  bool HasFiniteDomain() const { return Capabilities() & kFiniteDomain; }

  /// Checks a parameter vector once at variable-creation time; the
  /// per-draw methods may assume validated parameters.
  virtual Status ValidateParams(const std::vector<double>& params) const = 0;

  /// Number of joint components for `params` (1 unless multivariate).
  virtual size_t NumComponents(const std::vector<double>& params) const {
    (void)params;
    return 1;
  }

  /// Draws all components jointly into `*out` (resized to NumComponents).
  /// Must consume randomness only through `ctx` streams so the draw is
  /// replayable from the coordinates alone.
  virtual Status GenerateJoint(const std::vector<double>& params,
                               const SampleContext& ctx,
                               std::vector<double>* out) const = 0;

  /// Draws `n` consecutive samples (sample indices ctx.sample_index ..
  /// ctx.sample_index + n - 1) into `out`, sample-major: sample s occupies
  /// out[s * NumComponents(params) .. (s + 1) * NumComponents(params)).
  /// The contract is strict bit-identity with the scalar path: for every s,
  /// the written values must equal what GenerateJoint would produce at
  /// sample index ctx.sample_index + s, which in turn requires each
  /// sample's per-component word consumption (count and order) to match the
  /// scalar code exactly. The default loops over GenerateJoint; hot
  /// builtins override with two-pass kernels (contiguous word fill, then a
  /// contiguous transform).
  virtual Status GenerateBatch(const std::vector<double>& params,
                               const SampleContext& ctx, uint64_t n,
                               double* out) const;

  /// Marginal density (continuous) or probability mass (discrete) of
  /// `component` at `x`. Requires kPdf.
  virtual StatusOr<double> Pdf(const std::vector<double>& params,
                               uint32_t component, double x) const;

  /// Marginal P[X_component <= x]. Requires kCdf.
  virtual StatusOr<double> Cdf(const std::vector<double>& params,
                               uint32_t component, double x) const;

  /// Marginal quantile: continuous classes return the x with CDF(x) = p;
  /// discrete classes return the smallest lattice point k with
  /// CDF(k) >= p. Requires kInverseCdf.
  virtual StatusOr<double> InverseCdf(const std::vector<double>& params,
                                      uint32_t component, double p) const;

  /// Closed-form marginal moments. Require kMoments.
  virtual StatusOr<double> Mean(const std::vector<double>& params,
                                uint32_t component) const;
  virtual StatusOr<double> Variance(const std::vector<double>& params,
                                    uint32_t component) const;

  /// The values of a finite discrete domain, ascending, zero-mass points
  /// omitted. Requires kFiniteDomain.
  virtual StatusOr<std::vector<double>> DomainValues(
      const std::vector<double>& params) const;

  /// |DomainValues(params)| without materializing the vector, so
  /// possible-world enumeration can reject over-budget domains (e.g. a
  /// 1e6-rank Zipf) before allocating them. The default derives it from
  /// DomainValues; finite builtins override with closed forms.
  virtual StatusOr<size_t> DomainSize(
      const std::vector<double>& params) const;

  /// Smallest closed interval containing the marginal's mass. Sound
  /// default: the whole line.
  virtual Interval Support(const std::vector<double>& params,
                           uint32_t component) const {
    (void)params;
    (void)component;
    return Interval::All();
  }

 protected:
  /// Shared error for optional methods the subclass did not provide.
  Status MissingCapability(const char* what) const;
};

}  // namespace pip

#endif  // PIP_DIST_DISTRIBUTION_H_
