#include "src/dist/variable_pool.h"

#include "src/common/failpoints.h"

namespace pip {

VariablePool::~VariablePool() {
  for (auto& slot : blocks_) {
    delete[] slot.load(std::memory_order_relaxed);
  }
}

StatusOr<VarRef> VariablePool::Create(const std::string& class_name,
                                      std::vector<double> params) {
  PIP_ASSIGN_OR_RETURN(const Distribution* dist,
                       registry_->Lookup(class_name));
  PIP_RETURN_IF_ERROR(dist->ValidateParams(params));
  size_t components = dist->NumComponents(params);
  if (components < 1 || components > (1u << 16)) {
    return Status::InvalidArgument(
        class_name + ": component count " + std::to_string(components) +
        " outside the VarRef subscript range");
  }
  VariableInfo info;
  info.class_name = class_name;
  info.dist = dist;
  info.params = std::move(params);
  info.num_components = static_cast<uint32_t>(components);
  std::lock_guard<std::mutex> lock(create_mu_);
  size_t idx = num_vars_.load(std::memory_order_relaxed);
  if (idx >= kMaxBlocks * kBlockSize) {
    return Status::OutOfRange("variable pool exhausted (" +
                              std::to_string(idx) + " variables)");
  }
  std::atomic<VariableInfo*>& slot = blocks_[idx >> kBlockBits];
  VariableInfo* block = slot.load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new VariableInfo[kBlockSize];
    slot.store(block, std::memory_order_release);
  }
  block[idx & (kBlockSize - 1)] = std::move(info);
  // Publish: readers that see the new count also see the block pointer
  // and the fully constructed entry.
  num_vars_.store(idx + 1, std::memory_order_release);
  return VarRef{static_cast<uint64_t>(idx + 1), 0};
}

StatusOr<const VariableInfo*> VariablePool::Info(uint64_t var_id) const {
  const VariableInfo* info = InfoOrNull(var_id);
  if (info == nullptr) {
    return Status::NotFound("no variable with id " + std::to_string(var_id));
  }
  return info;
}

StatusOr<const VariableInfo*> VariablePool::CheckedInfo(VarRef v) const {
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, Info(v.var_id));
  if (v.component >= info->num_components) {
    return Status::OutOfRange(
        "variable X" + std::to_string(v.var_id) + " ('" + info->class_name +
        "') has no component " + std::to_string(v.component));
  }
  return info;
}

StatusOr<VarRef> VariablePool::Component(VarRef base,
                                         uint32_t component) const {
  VarRef v{base.var_id, component};
  PIP_RETURN_IF_ERROR(CheckedInfo(v).status());
  return v;
}

bool VariablePool::HasPdf(VarRef v) const {
  const VariableInfo* info = InfoOrNull(v.var_id);
  return info != nullptr && info->dist->HasPdf();
}

bool VariablePool::HasCdf(VarRef v) const {
  const VariableInfo* info = InfoOrNull(v.var_id);
  return info != nullptr && info->dist->HasCdf();
}

bool VariablePool::HasInverseCdf(VarRef v) const {
  const VariableInfo* info = InfoOrNull(v.var_id);
  return info != nullptr && info->dist->HasInverseCdf();
}

bool VariablePool::IsFiniteDiscrete(uint64_t var_id) const {
  const VariableInfo* info = InfoOrNull(var_id);
  return info != nullptr && info->num_components == 1 &&
         info->dist->domain() == DomainKind::kDiscrete &&
         info->dist->HasFiniteDomain();
}

StatusOr<double> VariablePool::Pdf(VarRef v, double x) const {
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, CheckedInfo(v));
  return info->dist->Pdf(info->params, v.component, x);
}

StatusOr<double> VariablePool::Cdf(VarRef v, double x) const {
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, CheckedInfo(v));
  return info->dist->Cdf(info->params, v.component, x);
}

StatusOr<double> VariablePool::InverseCdf(VarRef v, double p) const {
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, CheckedInfo(v));
  return info->dist->InverseCdf(info->params, v.component, p);
}

StatusOr<double> VariablePool::Mean(VarRef v) const {
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, CheckedInfo(v));
  return info->dist->Mean(info->params, v.component);
}

StatusOr<double> VariablePool::Variance(VarRef v) const {
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, CheckedInfo(v));
  return info->dist->Variance(info->params, v.component);
}

Interval VariablePool::Support(VarRef v) const {
  const VariableInfo* info = InfoOrNull(v.var_id);
  if (info == nullptr || v.component >= info->num_components) {
    return Interval::All();
  }
  return info->dist->Support(info->params, v.component);
}

StatusOr<double> VariablePool::Generate(VarRef v, uint64_t sample_index,
                                        uint64_t attempt) const {
  PIP_RETURN_IF_ERROR(CheckedInfo(v).status());
  std::vector<double> joint;
  PIP_RETURN_IF_ERROR(GenerateJoint(v.var_id, sample_index, attempt, &joint));
  return joint[v.component];
}

Status VariablePool::GenerateJoint(uint64_t var_id, uint64_t sample_index,
                                   uint64_t attempt,
                                   std::vector<double>* out) const {
  // Chaos site: a slow or failing draw. Errors abort the statement —
  // they never alter a draw that does complete, so injection preserves
  // the determinism contract.
  if (PIP_FAILPOINT("dist.generate") == failpoints::ActionKind::kError) {
    return Status::Internal("injected draw failure (dist.generate)");
  }
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, Info(var_id));
  SampleContext ctx{seed_, var_id, sample_index, attempt};
  PIP_RETURN_IF_ERROR(info->dist->GenerateJoint(info->params, ctx, out));
  if (out->size() != info->num_components) {
    return Status::Internal(
        "distribution '" + info->class_name + "' generated " +
        std::to_string(out->size()) + " components, declared " +
        std::to_string(info->num_components));
  }
  return Status::OK();
}

Status VariablePool::GenerateBatch(uint64_t var_id, uint64_t sample_begin,
                                   uint64_t n, uint64_t attempt,
                                   std::vector<double>* out) const {
  if (PIP_FAILPOINT("dist.generate") == failpoints::ActionKind::kError) {
    return Status::Internal("injected draw failure (dist.generate)");
  }
  PIP_ASSIGN_OR_RETURN(const VariableInfo* info, Info(var_id));
  SampleContext ctx{seed_, var_id, sample_begin, attempt};
  out->resize(n * info->num_components);
  return info->dist->GenerateBatch(info->params, ctx, n, out->data());
}

}  // namespace pip
