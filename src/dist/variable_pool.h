/// \file variable_pool.h
/// \brief Per-database store of random variables (paper §III-B, §V-A).
///
/// A PIP random variable is (id, subscript, distribution class,
/// parameters). The pool owns the last two — the expression layer only
/// carries VarRef identities — and is the single point where the engine
/// resolves identity into behavior: capability queries, CDF evaluation,
/// and deterministic generation all go through here.
///
/// Determinism contract: the value of (variable, component) in sample
/// `sample_index` is a pure function of (pool seed, var_id, component,
/// sample_index, attempt). No sampler state exists, so "only the seed
/// value need be stored" to replay any world, and distinct
/// `sample_offset`s give statistically fresh but replayable runs.

#ifndef PIP_DIST_VARIABLE_POOL_H_
#define PIP_DIST_VARIABLE_POOL_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/interval.h"
#include "src/common/status.h"
#include "src/dist/distribution.h"
#include "src/expr/variable.h"

namespace pip {

/// \brief Everything the pool knows about one variable.
struct VariableInfo {
  std::string class_name;        ///< Registry name, e.g. "Normal".
  const Distribution* dist = nullptr;  ///< Resolved plugin (never null).
  std::vector<double> params;    ///< Validated constructor parameters.
  uint32_t num_components = 1;   ///< Joint dimensionality.
};

/// \brief Allocates VarRefs and mediates all distribution access.
///
/// Thread model: `Create` is internally synchronized and may run
/// concurrently with every read/query method; reads stay lock-free. The
/// store is a fixed two-level block table — blocks are allocated under
/// the create lock, never moved, and published with a release store of
/// the variable count, so a reader that passes the bounds check always
/// sees a fully constructed VariableInfo. This is what lets server
/// sessions INSERT (allocating variables) while other sessions sample.
class VariablePool {
 public:
  static constexpr uint64_t kDefaultSeed = 0x1cde2010ULL;

  /// `registry` resolves class names; defaults to the process registry,
  /// so runtime-registered plugins are visible to every pool.
  explicit VariablePool(uint64_t seed = kDefaultSeed,
                        const DistributionRegistry* registry = nullptr)
      : seed_(seed),
        registry_(registry != nullptr ? registry
                                      : &DistributionRegistry::Global()) {}
  ~VariablePool();
  VariablePool(const VariablePool&) = delete;
  VariablePool& operator=(const VariablePool&) = delete;

  uint64_t seed() const { return seed_; }
  size_t num_variables() const {
    return num_vars_.load(std::memory_order_acquire);
  }
  /// The registry this pool resolves class names against (plan caches key
  /// on its generation counter to observe plugin churn).
  const DistributionRegistry& registry() const { return *registry_; }

  /// CREATE_VARIABLE: resolves `class_name`, validates `params`, and
  /// allocates a fresh variable. The returned VarRef addresses component
  /// 0; use Component() for the other subscripts of multivariate classes.
  StatusOr<VarRef> Create(const std::string& class_name,
                          std::vector<double> params);

  /// Metadata lookup; NotFound for ids this pool never allocated.
  StatusOr<const VariableInfo*> Info(uint64_t var_id) const;

  /// The VarRef of another component of `base`'s variable; OutOfRange
  /// beyond the class's dimensionality.
  StatusOr<VarRef> Component(VarRef base, uint32_t component) const;

  // -- Capability queries (false for unknown variables). -----------------
  bool HasPdf(VarRef v) const;
  bool HasCdf(VarRef v) const;
  bool HasInverseCdf(VarRef v) const;
  /// Univariate, integer-lattice, finite-domain — i.e. possible-world
  /// enumerable (ExplodeDiscrete).
  bool IsFiniteDiscrete(uint64_t var_id) const;

  // -- Distribution access, parameterized per variable. ------------------
  StatusOr<double> Pdf(VarRef v, double x) const;
  StatusOr<double> Cdf(VarRef v, double x) const;
  StatusOr<double> InverseCdf(VarRef v, double p) const;
  StatusOr<double> Mean(VarRef v) const;
  StatusOr<double> Variance(VarRef v) const;
  /// Support interval of the marginal; All() for unknown variables (a
  /// sound over-approximation, so bound seeding stays safe).
  Interval Support(VarRef v) const;

  /// Deterministic draw of one component. Same (sample_index, attempt)
  /// always yields the same value — the c-table replay guarantee.
  StatusOr<double> Generate(VarRef v, uint64_t sample_index,
                            uint64_t attempt = 0) const;

  /// Deterministic joint draw of every component of `var_id` into `*out`
  /// (resized to the class's dimensionality).
  Status GenerateJoint(uint64_t var_id, uint64_t sample_index,
                       uint64_t attempt, std::vector<double>* out) const;

  /// Deterministic joint draws for `n` consecutive sample indices starting
  /// at `sample_begin`, sample-major into `*out` (resized to
  /// n * num_components). Bit-identical to n GenerateJoint calls; hot
  /// builtins run a batched kernel instead of the per-sample virtual loop.
  Status GenerateBatch(uint64_t var_id, uint64_t sample_begin, uint64_t n,
                       uint64_t attempt, std::vector<double>* out) const;

 private:
  /// Two-level store geometry: 512 variables per block, up to 8192
  /// blocks (4M variables). Block pointers are stable for the pool's
  /// lifetime once published.
  static constexpr size_t kBlockBits = 9;
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;
  static constexpr size_t kMaxBlocks = size_t{1} << 13;

  const VariableInfo* InfoOrNull(uint64_t var_id) const {
    if (var_id < 1 || var_id > num_vars_.load(std::memory_order_acquire)) {
      return nullptr;
    }
    size_t idx = static_cast<size_t>(var_id - 1);
    const VariableInfo* block =
        blocks_[idx >> kBlockBits].load(std::memory_order_acquire);
    return &block[idx & (kBlockSize - 1)];
  }
  /// Info plus component bounds check, as a Status for the Or-returning
  /// accessors.
  StatusOr<const VariableInfo*> CheckedInfo(VarRef v) const;

  uint64_t seed_;
  const DistributionRegistry* registry_;
  std::mutex create_mu_;
  std::atomic<size_t> num_vars_{0};
  std::array<std::atomic<VariableInfo*>, kMaxBlocks> blocks_{};
};

}  // namespace pip

#endif  // PIP_DIST_VARIABLE_POOL_H_
