#include "src/dist/registry.h"

#include <algorithm>

#include "src/dist/distribution.h"

namespace pip {

DistributionRegistry::DistributionRegistry() = default;
DistributionRegistry::~DistributionRegistry() = default;

DistributionRegistry& DistributionRegistry::Global() {
  // Leaked singleton: plugin pointers handed out by Lookup() must stay
  // valid through static destruction of client code.
  static DistributionRegistry* global = [] {
    auto* r = new DistributionRegistry();
    PIP_CHECK_MSG(RegisterBuiltinDistributions(r).ok(),
                  "builtin distribution registration failed");
    return r;
  }();
  return *global;
}

Status DistributionRegistry::Register(std::unique_ptr<Distribution> dist) {
  if (dist == nullptr) {
    return Status::InvalidArgument("cannot register a null distribution");
  }
  // Copy, not reference: a failed emplace below destroys *dist, and with
  // it any name storage the plugin owns.
  const std::string name = dist->name();
  if (name.empty()) {
    return Status::InvalidArgument("distribution name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = dists_.emplace(name, std::move(dist));
  if (!inserted) {
    return Status::AlreadyExists("distribution '" + name +
                                 "' is already registered");
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status DistributionRegistry::RegisterOrReplace(
    std::unique_ptr<Distribution> dist) {
  if (dist == nullptr) {
    return Status::InvalidArgument("cannot register a null distribution");
  }
  const std::string name = dist->name();
  if (name.empty()) {
    return Status::InvalidArgument("distribution name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dists_.find(name);
  if (it != dists_.end()) {
    retired_.push_back(std::move(it->second));
    it->second = std::move(dist);
  } else {
    dists_.emplace(name, std::move(dist));
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

StatusOr<const Distribution*> DistributionRegistry::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dists_.find(name);
  if (it == dists_.end()) {
    return Status::NotFound("no distribution named '" + name + "'");
  }
  return const_cast<const Distribution*>(it->second.get());
}

bool DistributionRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dists_.count(name) > 0;
}

std::vector<std::string> DistributionRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(dists_.size());
    for (const auto& [name, _] : dists_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t DistributionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dists_.size();
}

}  // namespace pip
