#include "src/dist/distribution.h"

#include <algorithm>

namespace pip {

Status Distribution::MissingCapability(const char* what) const {
  return Status::Unimplemented("distribution '" + name() +
                               "' does not provide " + what);
}

Status Distribution::GenerateBatch(const std::vector<double>& params,
                                   const SampleContext& ctx, uint64_t n,
                                   double* out) const {
  // Fallback: the scalar loop, which is bit-identical by definition.
  const size_t d = NumComponents(params);
  std::vector<double> joint;
  SampleContext sample = ctx;
  for (uint64_t s = 0; s < n; ++s) {
    sample.sample_index = ctx.sample_index + s;
    PIP_RETURN_IF_ERROR(GenerateJoint(params, sample, &joint));
    if (joint.size() != d) {
      return Status::Internal("GenerateJoint produced " +
                              std::to_string(joint.size()) +
                              " components, expected " + std::to_string(d));
    }
    std::copy(joint.begin(), joint.end(), out + s * d);
  }
  return Status::OK();
}

StatusOr<double> Distribution::Pdf(const std::vector<double>& params,
                                   uint32_t component, double x) const {
  (void)params;
  (void)component;
  (void)x;
  return MissingCapability("a PDF");
}

StatusOr<double> Distribution::Cdf(const std::vector<double>& params,
                                   uint32_t component, double x) const {
  (void)params;
  (void)component;
  (void)x;
  return MissingCapability("a CDF");
}

StatusOr<double> Distribution::InverseCdf(const std::vector<double>& params,
                                          uint32_t component,
                                          double p) const {
  (void)params;
  (void)component;
  (void)p;
  return MissingCapability("an inverse CDF");
}

StatusOr<double> Distribution::Mean(const std::vector<double>& params,
                                    uint32_t component) const {
  (void)params;
  (void)component;
  return MissingCapability("closed-form moments");
}

StatusOr<double> Distribution::Variance(const std::vector<double>& params,
                                        uint32_t component) const {
  (void)params;
  (void)component;
  return MissingCapability("closed-form moments");
}

StatusOr<std::vector<double>> Distribution::DomainValues(
    const std::vector<double>& params) const {
  (void)params;
  return MissingCapability("finite domain enumeration");
}

StatusOr<size_t> Distribution::DomainSize(
    const std::vector<double>& params) const {
  PIP_ASSIGN_OR_RETURN(std::vector<double> values, DomainValues(params));
  return values.size();
}

}  // namespace pip
