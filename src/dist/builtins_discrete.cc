/// \file builtins_discrete.cc
/// \brief Builtin discrete distributions on the integer lattice.
///
/// Discrete conventions (shared with the engine): Pdf is the probability
/// mass function and is 0 off-lattice; Cdf is right-continuous
/// P[X <= floor(x)]; InverseCdf(p) is the smallest lattice point k with
/// CDF(k) >= p. Finite-domain classes additionally enumerate DomainValues
/// (zero-mass points omitted), which unlocks possible-world enumeration.

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/common/special_math.h"
#include "src/dist/builtins.h"

namespace pip {
namespace dist_internal {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Batch word fill for univariate kernels: u[s] gets the first uniform of
/// sample s's component-0 stream, matching the scalar path's per-sample
/// stream construction exactly (see builtins_continuous.cc).
void FillFirstUniforms(const SampleContext& ctx, uint64_t n, double* u) {
  const uint64_t mixed_seed = ctx.MixedSeed();
  for (uint64_t s = 0; s < n; ++s) {
    RandomStream stream(mixed_seed, ctx.var_id, 0, ctx.sample_index + s);
    stream.FillUniforms(u + s, 1);
  }
}

// ---------------------------------------------------------------------------
// Poisson(lambda) — infinite lattice.
// ---------------------------------------------------------------------------

class PoissonDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Poisson";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kDiscrete; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 1));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    return ExpectPositive(name(), "lambda", p[0]);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, Quantile(p[0], stream.NextUniform()));
    return Status::OK();
  }
  Status GenerateBatch(const std::vector<double>& p, const SampleContext& ctx,
                       uint64_t n, double* out) const override {
    FillFirstUniforms(ctx, n, out);
    const double lambda = p[0];
    for (uint64_t s = 0; s < n; ++s) out[s] = Quantile(lambda, out[s]);
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (x < 0.0 || !IsInteger(x)) return 0.0;
    // Beyond long long the cast below is UB; the mass is 0 long before.
    if (x > 9e18) return 0.0;
    return std::exp(PoissonLogPmf(p[0], static_cast<long long>(x)));
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return PoissonCdf(p[0], x);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return Quantile(p[0], q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return p[0];
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    return p[0];
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval::AtLeast(0.0);
  }

 private:
  /// Smallest k with CDF(k) >= q. A normal-approximation starting point
  /// followed by a short lattice walk keeps this O(1) expected even for
  /// large lambda.
  static double Quantile(double lambda, double q) {
    if (q <= 0.0) return 0.0;
    if (q >= 1.0) return kInf;
    double guess =
        std::floor(lambda + std::sqrt(lambda) * NormalQuantile(q) + 0.5);
    double k = std::max(0.0, guess);
    while (PoissonCdf(lambda, k) < q) k += 1.0;
    while (k > 0.0 && PoissonCdf(lambda, k - 1.0) >= q) k -= 1.0;
    return k;
  }
};

// ---------------------------------------------------------------------------
// Bernoulli(p)
// ---------------------------------------------------------------------------

class BernoulliDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Bernoulli";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kDiscrete; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments | kFiniteDomain;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 1));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    if (p[0] < 0.0 || p[0] > 1.0) {
      return Status::InvalidArgument(name() + ": p must lie in [0, 1]");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, stream.NextUniform() < p[0] ? 1.0 : 0.0);
    return Status::OK();
  }
  Status GenerateBatch(const std::vector<double>& p, const SampleContext& ctx,
                       uint64_t n, double* out) const override {
    FillFirstUniforms(ctx, n, out);
    const double prob = p[0];
    for (uint64_t s = 0; s < n; ++s) out[s] = out[s] < prob ? 1.0 : 0.0;
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (x == 0.0) return 1.0 - p[0];
    if (x == 1.0) return p[0];
    return 0.0;
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (x < 0.0) return 0.0;
    if (x < 1.0) return 1.0 - p[0];
    return 1.0;
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    if (q <= 0.0) return 0.0;
    return q <= 1.0 - p[0] ? 0.0 : 1.0;
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return p[0];
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    return p[0] * (1.0 - p[0]);
  }
  StatusOr<std::vector<double>> DomainValues(
      const std::vector<double>& p) const override {
    std::vector<double> values;
    if (p[0] < 1.0) values.push_back(0.0);
    if (p[0] > 0.0) values.push_back(1.0);
    return values;
  }
  StatusOr<size_t> DomainSize(const std::vector<double>& p) const override {
    return static_cast<size_t>(p[0] < 1.0) + static_cast<size_t>(p[0] > 0.0);
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval(0.0, 1.0);
  }
};

// ---------------------------------------------------------------------------
// DiscreteUniform(lo, hi) — uniform on the integers lo..hi.
// ---------------------------------------------------------------------------

class DiscreteUniformDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "DiscreteUniform";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kDiscrete; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments | kFiniteDomain;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 2));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    if (!IsInteger(p[0]) || !IsInteger(p[1])) {
      return Status::InvalidArgument(name() + ": bounds must be integers");
    }
    if (p[0] > p[1]) {
      return Status::InvalidArgument(name() + ": requires lo <= hi");
    }
    if (p[1] - p[0] >= 1e15) {
      return Status::InvalidArgument(name() + ": range too wide");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    uint64_t n = static_cast<uint64_t>(p[1] - p[0]) + 1;
    out->assign(1, p[0] + static_cast<double>(stream.NextBounded(n)));
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (!IsInteger(x) || x < p[0] || x > p[1]) return 0.0;
    return 1.0 / (p[1] - p[0] + 1.0);
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (x < p[0]) return 0.0;
    if (x >= p[1]) return 1.0;
    return (std::floor(x) - p[0] + 1.0) / (p[1] - p[0] + 1.0);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    if (q <= 0.0) return p[0];
    double n = p[1] - p[0] + 1.0;
    double k = p[0] + std::ceil(q * n) - 1.0;
    return std::min(std::max(k, p[0]), p[1]);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return 0.5 * (p[0] + p[1]);
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    double n = p[1] - p[0] + 1.0;
    return (n * n - 1.0) / 12.0;
  }
  StatusOr<std::vector<double>> DomainValues(
      const std::vector<double>& p) const override {
    std::vector<double> values;
    values.reserve(static_cast<size_t>(p[1] - p[0]) + 1);
    for (double k = p[0]; k <= p[1]; k += 1.0) values.push_back(k);
    return values;
  }
  StatusOr<size_t> DomainSize(const std::vector<double>& p) const override {
    return static_cast<size_t>(p[1] - p[0]) + 1;
  }
  Interval Support(const std::vector<double>& p, uint32_t) const override {
    return Interval(p[0], p[1]);
  }
};

// ---------------------------------------------------------------------------
// Categorical(p0, ..., pk-1) — values are the indices 0..k-1.
// ---------------------------------------------------------------------------

/// Memoized prefix sums of one Categorical parameter vector (ROADMAP
/// hot-loop item). The memo key is the vector itself, so a lookup still
/// hashes O(k) doubles — what the table buys is replacing the branchy
/// accumulate-and-compare scans of Cdf/InverseCdf with one hash plus a
/// binary search, allocation-free on hits. The *per-attempt* sampler
/// hot path doesn't even pay the hash: the engine builds a per-plan
/// QuantileTable (src/sampling/expectation.cc) and never comes back
/// here. prefix[k] is the mass of categories 0..k-1 (prefix[0] = 0),
/// summed in index order so the values are bitwise identical to the
/// running accumulations they replace.
struct CategoricalTable {
  std::vector<double> prefix;

  /// Smallest category k with prefix[k+1] >= q and positive cumulative
  /// mass; the last positive-mass category for the rounding tail (q ~ 1).
  /// Matches the pre-table linear scan on boundary ties exactly.
  double Quantile(double q, const std::vector<double>& p) const {
    size_t n = p.size();
    auto it = std::lower_bound(prefix.begin() + 1, prefix.end(), q);
    if (it != prefix.end()) {
      // `prefix > 0` keeps q <= 0 (and leading zero-mass categories) from
      // resolving to a value the law never produces: advance to the first
      // positive-mass boundary, as the linear scan did.
      for (size_t k = static_cast<size_t>(it - prefix.begin()) - 1; k < n;
           ++k) {
        if (prefix[k + 1] > 0.0) return static_cast<double>(k);
      }
    }
    // Rounding tail (q ~ 1): the last positive-mass category.
    for (size_t k = n; k-- > 0;) {
      if (p[k] > 0.0) return static_cast<double>(k);
    }
    return 0.0;
  }

  /// Memoized per parameter vector; thread-local so lookups take no
  /// lock (same pattern as the Zipf table below).
  static std::shared_ptr<const CategoricalTable> For(
      const std::vector<double>& p) {
    struct KeyHash {
      size_t operator()(const std::vector<double>& key) const {
        size_t h = 0x811c9dc5ULL;
        for (double w : key) {
          h ^= std::hash<double>{}(w) + 0x9e3779b97f4a7c15ULL + (h << 6) +
               (h >> 2);
        }
        return h;
      }
    };
    static thread_local std::unordered_map<
        std::vector<double>, std::shared_ptr<const CategoricalTable>, KeyHash>
        cache;
    static thread_local size_t cached_elements = 0;
    auto it = cache.find(p);
    if (it != cache.end()) return it->second;
    auto table = std::make_shared<CategoricalTable>();
    table->prefix.resize(p.size() + 1);
    table->prefix[0] = 0.0;
    for (size_t k = 0; k < p.size(); ++k) {
      table->prefix[k + 1] = table->prefix[k] + p[k];
    }
    if (cached_elements + p.size() + 1 > (4u << 20)) {
      cache.clear();
      cached_elements = 0;
    }
    cached_elements += p.size() + 1;
    cache.emplace(p, table);
    return table;
  }
};

class CategoricalDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Categorical";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kDiscrete; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments | kFiniteDomain;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    if (p.empty()) {
      return Status::InvalidArgument(name() +
                                     ": requires at least one probability");
    }
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    double sum = 0.0;
    for (double w : p) {
      if (w < 0.0 || w > 1.0) {
        return Status::InvalidArgument(name() +
                                       ": probabilities must lie in [0, 1]");
      }
      sum += w;
    }
    if (std::fabs(sum - 1.0) > 1e-9) {
      return Status::InvalidArgument(name() + ": probabilities sum to " +
                                     std::to_string(sum) + ", expected 1");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    // Deliberately NOT table-backed: the early-exit scan stops at the
    // drawn category (expected O(E[k]) with no hashing), which beats the
    // memo lookup's full-vector hash for the small k typical of draws.
    // The table earns its keep in Cdf/InverseCdf, where the engine's
    // lattice integration makes O(k) scans per call quadratic.
    RandomStream stream = ctx.StreamFor(0);
    double u = stream.NextUniform();
    double acc = 0.0;
    for (size_t k = 0; k < p.size(); ++k) {
      acc += p[k];
      if (u < acc) {
        out->assign(1, static_cast<double>(k));
        return Status::OK();
      }
    }
    // Guard the accumulated-rounding tail: emit the last positive-mass
    // value.
    for (size_t k = p.size(); k-- > 0;) {
      if (p[k] > 0.0) {
        out->assign(1, static_cast<double>(k));
        return Status::OK();
      }
    }
    return Status::Internal("Categorical with no positive-mass value");
  }
  Status GenerateBatch(const std::vector<double>& p, const SampleContext& ctx,
                       uint64_t n, double* out) const override {
    // Batch draws DO use the memoized table: one hash amortized over the
    // whole block, then binary searches. The table's prefix sums are
    // accumulated in index order, so `u < prefix[k + 1]` is bitwise the
    // same predicate as the scalar scan's `u < acc`, and upper_bound
    // (first prefix strictly above u) lands on the identical category —
    // including skipping zero-mass entries, whose prefix step is flat.
    auto table = CategoricalTable::For(p);
    const std::vector<double>& prefix = table->prefix;
    double tail = -1.0;
    for (size_t k = p.size(); k-- > 0;) {
      if (p[k] > 0.0) {
        tail = static_cast<double>(k);
        break;
      }
    }
    if (tail < 0.0) {
      return Status::Internal("Categorical with no positive-mass value");
    }
    FillFirstUniforms(ctx, n, out);
    for (uint64_t s = 0; s < n; ++s) {
      auto it = std::upper_bound(prefix.begin() + 1, prefix.end(), out[s]);
      out[s] = it == prefix.end()
                   ? tail
                   : static_cast<double>(it - prefix.begin() - 1);
    }
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (!IsInteger(x) || x < 0.0 || x >= static_cast<double>(p.size())) {
      return 0.0;
    }
    return p[static_cast<size_t>(x)];
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    // Negated compare: NaN lands in the first return too. Empty p is
    // rejected by ValidateParams but guarded for direct plugin-API use.
    if (p.empty() || !(x >= 0.0)) return 0.0;
    size_t top = static_cast<size_t>(
        std::min(std::floor(x), static_cast<double>(p.size()) - 1.0));
    return std::min(CategoricalTable::For(p)->prefix[top + 1], 1.0);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return CategoricalTable::For(p)->Quantile(q, p);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    double mean = 0.0;
    for (size_t k = 0; k < p.size(); ++k) mean += static_cast<double>(k) * p[k];
    return mean;
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    double mean = 0.0, second = 0.0;
    for (size_t k = 0; k < p.size(); ++k) {
      double kd = static_cast<double>(k);
      mean += kd * p[k];
      second += kd * kd * p[k];
    }
    return second - mean * mean;
  }
  StatusOr<std::vector<double>> DomainValues(
      const std::vector<double>& p) const override {
    std::vector<double> values;
    for (size_t k = 0; k < p.size(); ++k) {
      if (p[k] > 0.0) values.push_back(static_cast<double>(k));
    }
    return values;
  }
  StatusOr<size_t> DomainSize(const std::vector<double>& p) const override {
    size_t n = 0;
    for (double w : p) n += (w > 0.0);
    return n;
  }
  Interval Support(const std::vector<double>& p, uint32_t) const override {
    return Interval(0.0, static_cast<double>(p.size()) - 1.0);
  }
};

// ---------------------------------------------------------------------------
// Zipf(s, n) — power law on ranks 1..n.
// ---------------------------------------------------------------------------

/// P[X = k] proportional to k^-s for k in 1..n: the canonical skewed-
/// popularity law for synthetic workloads (hot keys, word frequencies).
/// Probability calls go through a memoized prefix-sum table per (s, n) —
/// the engine's exact discrete integration evaluates the PMF across the
/// whole constrained lattice, which would be O(n^2) with on-demand sums.
class ZipfDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Zipf";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kDiscrete; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments | kFiniteDomain;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 2));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    if (p[0] < 0.0) {
      return Status::InvalidArgument(name() + ": exponent must be >= 0");
    }
    if (!IsInteger(p[1]) || p[1] < 1.0 || p[1] > 1e6) {
      return Status::InvalidArgument(
          name() + ": n must be an integer in [1, 1e6]");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, Table(p)->Quantile(stream.NextOpenUniform()));
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (!IsInteger(x) || x < 1.0 || x > p[1]) return 0.0;
    return std::pow(x, -p[0]) / Table(p)->norm;
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (x < 1.0) return 0.0;
    if (x >= p[1]) return 1.0;
    return Table(p)->CdfAt(std::floor(x));
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    if (q <= 0.0) return 1.0;
    return Table(p)->Quantile(q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return Table(p)->mean;
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    const auto table = Table(p);
    return table->second_moment - table->mean * table->mean;
  }
  StatusOr<std::vector<double>> DomainValues(
      const std::vector<double>& p) const override {
    std::vector<double> values;
    values.reserve(static_cast<size_t>(p[1]));
    for (double k = 1.0; k <= p[1]; k += 1.0) values.push_back(k);
    return values;
  }
  StatusOr<size_t> DomainSize(const std::vector<double>& p) const override {
    return static_cast<size_t>(p[1]);
  }
  Interval Support(const std::vector<double>& p, uint32_t) const override {
    return Interval(1.0, p[1]);
  }

 private:
  /// Prefix sums of k^-s plus derived moments. prefix[k] is the
  /// unnormalized mass of 1..k (prefix[0] = 0), so CDF and quantile are
  /// O(1) / O(log n) and always bitwise consistent with each other.
  struct ZipfTable {
    std::vector<double> prefix;
    double norm = 1.0;
    double mean = 0.0;
    double second_moment = 0.0;

    double CdfAt(double k) const {
      return prefix[static_cast<size_t>(k)] / norm;
    }
    /// Smallest k >= 1 with CDF(k) >= q, by bisection over the monotone
    /// prefix array using the same division as CdfAt.
    double Quantile(double q) const {
      size_t lo = 1, hi = prefix.size() - 1;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (prefix[mid] / norm >= q) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      return static_cast<double>(lo);
    }
  };

  /// Memoized per (s, n); thread-local so the draw path takes no lock.
  static std::shared_ptr<const ZipfTable> Table(
      const std::vector<double>& p) {
    using Key = std::pair<double, double>;
    struct KeyHash {
      size_t operator()(const Key& k) const {
        return std::hash<double>{}(k.first) ^
               (std::hash<double>{}(k.second) << 1);
      }
    };
    static thread_local std::unordered_map<
        Key, std::shared_ptr<const ZipfTable>, KeyHash>
        cache;
    static thread_local size_t cached_elements = 0;
    Key key{p[0], p[1]};
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    auto table = std::make_shared<ZipfTable>();
    size_t n = static_cast<size_t>(p[1]);
    table->prefix.resize(n + 1);
    table->prefix[0] = 0.0;
    double first = 0.0, second = 0.0;
    for (size_t k = 1; k <= n; ++k) {
      double kd = static_cast<double>(k);
      double mass = std::pow(kd, -p[0]);
      table->prefix[k] = table->prefix[k - 1] + mass;
      first += kd * mass;
      second += kd * kd * mass;
    }
    table->norm = table->prefix[n];
    table->mean = first / table->norm;
    table->second_moment = second / table->norm;
    // Size-weighted bound (~32 MB of prefix data per thread): a few big
    // tables evict as readily as many small ones.
    if (cached_elements + n + 1 > (4u << 20)) {
      cache.clear();
      cached_elements = 0;
    }
    cached_elements += n + 1;
    cache.emplace(key, table);
    return table;
  }
};

}  // namespace

Status RegisterDiscreteBuiltins(DistributionRegistry* registry) {
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<PoissonDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<BernoulliDist>()));
  PIP_RETURN_IF_ERROR(
      registry->Register(std::make_unique<DiscreteUniformDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<CategoricalDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<ZipfDist>()));
  return Status::OK();
}

}  // namespace dist_internal
}  // namespace pip
