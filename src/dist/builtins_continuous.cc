/// \file builtins_continuous.cc
/// \brief Builtin continuous univariate distributions.
///
/// Full-capability classes (Normal, Uniform, Exponential, Gamma,
/// Lognormal, Beta, StudentT) expose every engine tier; Tukey and
/// UniformSum deliberately omit capabilities to exercise the degradation
/// paths with real laws rather than mocks: Tukey's lambda distribution is
/// *defined* by its quantile function (no closed-form CDF or PDF exists),
/// and the Irwin-Hall sum has a piecewise-polynomial density impractical
/// past a few terms — generate-only is its honest contract.

#include <limits>

#include "src/common/special_math.h"
#include "src/dist/builtins.h"

namespace pip {
namespace dist_internal {
namespace {

using std::exp;
using std::log;
using std::sqrt;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fills u[s * per_sample + k] with word k of sample s's component-0
/// stream, for n consecutive samples starting at ctx.sample_index. Each
/// sample gets its own stream with the counter at zero — exactly how the
/// scalar path opens them — so the batch kernels below stay word-for-word
/// identical to the per-sample loop.
void FillComponentUniforms(const SampleContext& ctx, uint64_t n,
                           uint64_t per_sample, double* u) {
  const uint64_t mixed_seed = ctx.MixedSeed();
  for (uint64_t s = 0; s < n; ++s) {
    RandomStream stream(mixed_seed, ctx.var_id, 0, ctx.sample_index + s);
    stream.FillUniforms(u + s * per_sample, per_sample);
  }
}

// ---------------------------------------------------------------------------
// Normal(mu, sigma)
// ---------------------------------------------------------------------------

class NormalDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Normal";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 2));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    return ExpectPositive(name(), "sigma", p[1]);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, p[0] + p[1] * stream.NextGaussian());
    return Status::OK();
  }
  Status GenerateBatch(const std::vector<double>& p, const SampleContext& ctx,
                       uint64_t n, double* out) const override {
    // Two words per sample (Box-Muller, cosine branch, first uniform
    // clamped open) — the exact NextGaussian word schedule.
    std::vector<double> u(2 * n);
    FillComponentUniforms(ctx, n, 2, u.data());
    for (uint64_t s = 0; s < n; ++s) {
      double u1 = u[2 * s] > 0.0 ? u[2 * s] : 0x1.0p-53;
      out[s] = p[0] + p[1] * (sqrt(-2.0 * log(u1)) *
                              std::cos(2.0 * M_PI * u[2 * s + 1]));
    }
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return NormalPdf((x - p[0]) / p[1]) / p[1];
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return NormalCdf((x - p[0]) / p[1]);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return p[0] + p[1] * NormalQuantile(q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return p[0];
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    return p[1] * p[1];
  }
};

// ---------------------------------------------------------------------------
// Uniform(lo, hi)
// ---------------------------------------------------------------------------

class UniformDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Uniform";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 2));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    if (!(p[0] < p[1])) {
      return Status::InvalidArgument(name() + ": requires lo < hi");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, p[0] + (p[1] - p[0]) * stream.NextUniform());
    return Status::OK();
  }
  Status GenerateBatch(const std::vector<double>& p, const SampleContext& ctx,
                       uint64_t n, double* out) const override {
    FillComponentUniforms(ctx, n, 1, out);
    const double lo = p[0], w = p[1] - p[0];
    for (uint64_t s = 0; s < n; ++s) out[s] = lo + w * out[s];
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return (x >= p[0] && x <= p[1]) ? 1.0 / (p[1] - p[0]) : 0.0;
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (x <= p[0]) return 0.0;
    if (x >= p[1]) return 1.0;
    return (x - p[0]) / (p[1] - p[0]);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return p[0] + q * (p[1] - p[0]);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return 0.5 * (p[0] + p[1]);
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    double w = p[1] - p[0];
    return w * w / 12.0;
  }
  Interval Support(const std::vector<double>& p, uint32_t) const override {
    return Interval(p[0], p[1]);
  }
};

// ---------------------------------------------------------------------------
// Exponential(rate)
// ---------------------------------------------------------------------------

class ExponentialDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Exponential";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 1));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    return ExpectPositive(name(), "rate", p[0]);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, -std::log1p(-stream.NextUniform()) / p[0]);
    return Status::OK();
  }
  Status GenerateBatch(const std::vector<double>& p, const SampleContext& ctx,
                       uint64_t n, double* out) const override {
    FillComponentUniforms(ctx, n, 1, out);
    const double rate = p[0];
    for (uint64_t s = 0; s < n; ++s) out[s] = -std::log1p(-out[s]) / rate;
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return x < 0.0 ? 0.0 : p[0] * exp(-p[0] * x);
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return x <= 0.0 ? 0.0 : -std::expm1(-p[0] * x);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    if (q >= 1.0) return kInf;
    return -std::log1p(-q) / p[0];
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return 1.0 / p[0];
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    return 1.0 / (p[0] * p[0]);
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval::AtLeast(0.0);
  }
};

// ---------------------------------------------------------------------------
// Gamma(shape, scale)
// ---------------------------------------------------------------------------

class GammaDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Gamma";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 2));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    PIP_RETURN_IF_ERROR(ExpectPositive(name(), "shape", p[0]));
    return ExpectPositive(name(), "scale", p[1]);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    // Inverse transform keeps Generate exactly coherent with the CDF pair
    // (the quantile solver is Newton-safeguarded, ~4 iterations). The
    // uniform must stay off 0: InverseRegularizedGammaP diverges there.
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1,
                p[1] * InverseRegularizedGammaP(p[0], stream.NextOpenUniform()));
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    double k = p[0], theta = p[1];
    if (x < 0.0) return 0.0;
    if (x == 0.0) {
      if (k > 1.0) return 0.0;
      if (k == 1.0) return 1.0 / theta;
      return kInf;  // Integrable singularity; the engine falls back.
    }
    return exp((k - 1.0) * log(x) - x / theta - LogGamma(k) - k * log(theta));
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return x <= 0.0 ? 0.0 : RegularizedGammaP(p[0], x / p[1]);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return p[1] * InverseRegularizedGammaP(p[0], q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return p[0] * p[1];
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    return p[0] * p[1] * p[1];
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval::AtLeast(0.0);
  }
};

// ---------------------------------------------------------------------------
// Lognormal(mu, sigma) — log X ~ Normal(mu, sigma)
// ---------------------------------------------------------------------------

class LognormalDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Lognormal";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 2));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    return ExpectPositive(name(), "sigma", p[1]);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, exp(p[0] + p[1] * stream.NextGaussian()));
    return Status::OK();
  }
  Status GenerateBatch(const std::vector<double>& p, const SampleContext& ctx,
                       uint64_t n, double* out) const override {
    std::vector<double> u(2 * n);
    FillComponentUniforms(ctx, n, 2, u.data());
    for (uint64_t s = 0; s < n; ++s) {
      double u1 = u[2 * s] > 0.0 ? u[2 * s] : 0x1.0p-53;
      out[s] = exp(p[0] + p[1] * (sqrt(-2.0 * log(u1)) *
                                  std::cos(2.0 * M_PI * u[2 * s + 1])));
    }
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    if (x <= 0.0) return 0.0;
    return NormalPdf((log(x) - p[0]) / p[1]) / (x * p[1]);
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return x <= 0.0 ? 0.0 : NormalCdf((log(x) - p[0]) / p[1]);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return exp(p[0] + p[1] * NormalQuantile(q));
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return exp(p[0] + 0.5 * p[1] * p[1]);
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    double s2 = p[1] * p[1];
    return std::expm1(s2) * exp(2.0 * p[0] + s2);
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval::AtLeast(0.0);
  }
};

// ---------------------------------------------------------------------------
// Beta(alpha, beta)
// ---------------------------------------------------------------------------

class BetaDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Beta";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 2));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    PIP_RETURN_IF_ERROR(ExpectPositive(name(), "alpha", p[0]));
    return ExpectPositive(name(), "beta", p[1]);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    // Open uniform: InverseRegularizedBeta hits the support endpoints at
    // exactly 0/1, where alpha/beta < 1 densities are singular.
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1,
                InverseRegularizedBeta(p[0], p[1], stream.NextOpenUniform()));
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    double a = p[0], b = p[1];
    if (x < 0.0 || x > 1.0) return 0.0;
    if (x == 0.0) return a > 1.0 ? 0.0 : (a == 1.0 ? b : kInf);
    if (x == 1.0) return b > 1.0 ? 0.0 : (b == 1.0 ? a : kInf);
    return exp((a - 1.0) * log(x) + (b - 1.0) * std::log1p(-x) +
               LogGamma(a + b) - LogGamma(a) - LogGamma(b));
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    return RegularizedBeta(p[0], p[1], x);
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return InverseRegularizedBeta(p[0], p[1], q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return p[0] / (p[0] + p[1]);
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    double s = p[0] + p[1];
    return p[0] * p[1] / (s * s * (s + 1.0));
  }
  Interval Support(const std::vector<double>&, uint32_t) const override {
    return Interval(0.0, 1.0);
  }
};

// ---------------------------------------------------------------------------
// StudentT(nu)
// ---------------------------------------------------------------------------

class StudentTDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "StudentT";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 1));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    return ExpectPositive(name(), "nu", p[0]);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, Quantile(p[0], stream.NextOpenUniform()));
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    double nu = p[0];
    return exp(LogGamma(0.5 * (nu + 1.0)) - LogGamma(0.5 * nu) -
               0.5 * log(nu * M_PI) -
               0.5 * (nu + 1.0) * std::log1p(x * x / nu));
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t,
                       double x) const override {
    double nu = p[0];
    double w = RegularizedBeta(0.5 * nu, 0.5, nu / (nu + x * x));
    return x >= 0.0 ? 1.0 - 0.5 * w : 0.5 * w;
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return Quantile(p[0], q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    if (p[0] <= 1.0) {
      return Status::OutOfRange("StudentT mean undefined for nu <= 1");
    }
    return 0.0;
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    if (p[0] <= 2.0) {
      return Status::OutOfRange("StudentT variance undefined for nu <= 2");
    }
    return p[0] / (p[0] - 2.0);
  }

 private:
  static double Quantile(double nu, double q) {
    if (q <= 0.0) return -kInf;
    if (q >= 1.0) return kInf;
    if (q == 0.5) return 0.0;
    // Invert through the incomplete-beta representation of |T|.
    double w = InverseRegularizedBeta(0.5 * nu, 0.5,
                                      2.0 * std::min(q, 1.0 - q));
    double x = w > 0.0 ? sqrt(nu * (1.0 - w) / w) : kInf;
    return q < 0.5 ? -x : x;
  }
};

// ---------------------------------------------------------------------------
// Tukey(lambda) — quantile-only exemplar.
// ---------------------------------------------------------------------------

/// Tukey's lambda distribution is specified by its quantile function
/// Q(p) = (p^l - (1-p)^l) / l (and the logistic Q at l = 0); no
/// closed-form CDF or PDF exists. Capabilities: generation (by inverse
/// transform) and the inverse CDF itself — the engine therefore cannot
/// use exact CDF integration or CDF windows and degrades to rejection.
class TukeyDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "Tukey";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kInverseCdf | kMoments;
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 1));
    return ExpectFinite(name(), p);
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    out->assign(1, Quantile(p[0], stream.NextOpenUniform()));
    return Status::OK();
  }
  StatusOr<double> InverseCdf(const std::vector<double>& p, uint32_t,
                              double q) const override {
    return Quantile(p[0], q);
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    if (p[0] <= -1.0) {
      return Status::OutOfRange("Tukey mean undefined for lambda <= -1");
    }
    return 0.0;  // Symmetric about zero.
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    double l = p[0];
    if (l <= -0.5) {
      return Status::OutOfRange("Tukey variance undefined for lambda <= -1/2");
    }
    if (l == 0.0) return M_PI * M_PI / 3.0;  // Logistic limit.
    return (2.0 / (l * l)) *
           (1.0 / (1.0 + 2.0 * l) -
            exp(2.0 * LogGamma(l + 1.0) - LogGamma(2.0 * l + 2.0)));
  }
  Interval Support(const std::vector<double>& p, uint32_t) const override {
    return p[0] > 0.0 ? Interval(-1.0 / p[0], 1.0 / p[0]) : Interval::All();
  }

 private:
  static double Quantile(double l, double q) {
    if (q <= 0.0) return l > 0.0 ? -1.0 / l : -kInf;
    if (q >= 1.0) return l > 0.0 ? 1.0 / l : kInf;
    if (l == 0.0) return log(q / (1.0 - q));
    return (std::pow(q, l) - std::pow(1.0 - q, l)) / l;
  }
};

// ---------------------------------------------------------------------------
// UniformSum(n) — generate-only exemplar (Irwin-Hall).
// ---------------------------------------------------------------------------

/// Sum of n independent U(0,1). The density is an n-piece polynomial
/// spline that is numerically hopeless for large n, so the class honestly
/// advertises generation only: every query against it must go through
/// rejection sampling (and cannot switch to Metropolis, which needs a
/// PDF) — the deepest degradation tier of the engine.
class UniformSumDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "UniformSum";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override { return kGenerate | kMoments; }
  Status ValidateParams(const std::vector<double>& p) const override {
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 1));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    if (!IsInteger(p[0]) || p[0] < 1.0 || p[0] > 65536.0) {
      return Status::InvalidArgument(
          name() + ": n must be an integer in [1, 65536]");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    RandomStream stream = ctx.StreamFor(0);
    double sum = 0.0;
    for (long long i = 0; i < static_cast<long long>(p[0]); ++i) {
      sum += stream.NextUniform();
    }
    out->assign(1, sum);
    return Status::OK();
  }
  StatusOr<double> Mean(const std::vector<double>& p, uint32_t) const override {
    return 0.5 * p[0];
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t) const override {
    return p[0] / 12.0;
  }
  Interval Support(const std::vector<double>& p, uint32_t) const override {
    return Interval(0.0, p[0]);
  }
};

}  // namespace

Status RegisterContinuousBuiltins(DistributionRegistry* registry) {
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<NormalDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<UniformDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<ExponentialDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<GammaDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<LognormalDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<BetaDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<StudentTDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<TukeyDist>()));
  PIP_RETURN_IF_ERROR(registry->Register(std::make_unique<UniformSumDist>()));
  return Status::OK();
}

}  // namespace dist_internal
}  // namespace pip
