#include "src/dist/builtins.h"

namespace pip {

Status RegisterBuiltinDistributions(DistributionRegistry* registry) {
  if (registry == nullptr) {
    return Status::InvalidArgument("null registry");
  }
  PIP_RETURN_IF_ERROR(dist_internal::RegisterContinuousBuiltins(registry));
  PIP_RETURN_IF_ERROR(dist_internal::RegisterDiscreteBuiltins(registry));
  PIP_RETURN_IF_ERROR(dist_internal::RegisterMultivariateBuiltins(registry));
  return Status::OK();
}

}  // namespace pip
