/// \file builtins_mvnormal.cc
/// \brief Multivariate normal plugin.
///
/// The showcase for multi-component variables (paper §III-B: "a
/// subscript (for multi-variate distributions)"): one VariablePool entry
/// owns d correlated components, addressed as X[0], X[1], ... by VarRef
/// subscripts. Parameters are packed flat as
///   { d, mu_0..mu_{d-1}, cov_00, cov_01, ..., cov_{d-1,d-1} }.
/// Marginal CDF/PDF/moments use the covariance diagonal; the joint
/// inverse CDF is intentionally NOT provided — per-component quantile
/// sampling would silently break cross-component correlations, so the
/// capability mask steers the engine to joint generation instead.

#include <memory>
#include <unordered_map>

#include "src/common/special_math.h"
#include "src/dist/builtins.h"

namespace pip {
namespace dist_internal {
namespace {

/// In-place lower Cholesky factorization; false if the matrix is not
/// symmetric positive definite (within pivot tolerance).
bool CholeskyFactor(size_t d, std::vector<double>* m) {
  std::vector<double>& a = *m;
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * d + j];
      for (size_t k = 0; k < j; ++k) sum -= a[i * d + k] * a[j * d + k];
      if (i == j) {
        if (sum <= 0.0) return false;
        a[i * d + i] = std::sqrt(sum);
      } else {
        a[i * d + j] = sum / a[j * d + j];
      }
    }
  }
  // Zero the (unused) upper triangle so L is exactly lower-triangular.
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) a[i * d + j] = 0.0;
  }
  return true;
}

class MVNormalDist : public Distribution {
 public:
  const std::string& name() const override {
    static const std::string n = "MVNormal";
    return n;
  }
  DomainKind domain() const override { return DomainKind::kContinuous; }
  uint32_t Capabilities() const override {
    return kGenerate | kPdf | kCdf | kMoments;
  }
  size_t NumComponents(const std::vector<double>& params) const override {
    return params.empty() ? 1 : static_cast<size_t>(params[0]);
  }
  Status ValidateParams(const std::vector<double>& p) const override {
    if (p.empty() || !IsInteger(p[0]) || p[0] < 1.0 || p[0] > 4096.0) {
      return Status::InvalidArgument(
          name() + ": first parameter must be the dimension (integer >= 1)");
    }
    size_t d = static_cast<size_t>(p[0]);
    PIP_RETURN_IF_ERROR(ExpectParamCount(name(), p, 1 + d + d * d));
    PIP_RETURN_IF_ERROR(ExpectFinite(name(), p));
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i + 1; j < d; ++j) {
        if (std::fabs(Cov(p, d, i, j) - Cov(p, d, j, i)) > 1e-9) {
          return Status::InvalidArgument(name() +
                                         ": covariance must be symmetric");
        }
      }
    }
    std::vector<double> chol(p.begin() + 1 + d, p.end());
    if (!CholeskyFactor(d, &chol)) {
      return Status::InvalidArgument(
          name() + ": covariance must be positive definite");
    }
    return Status::OK();
  }
  Status GenerateJoint(const std::vector<double>& p, const SampleContext& ctx,
                       std::vector<double>* out) const override {
    size_t d = static_cast<size_t>(p[0]);
    PIP_ASSIGN_OR_RETURN(std::shared_ptr<const std::vector<double>> factor,
                         Factor(p, d));
    const std::vector<double>& chol = *factor;
    RandomStream stream = ctx.StreamFor(0);
    std::vector<double> z(d);
    for (size_t i = 0; i < d; ++i) z[i] = stream.NextGaussian();
    out->assign(d, 0.0);
    for (size_t i = 0; i < d; ++i) {
      double acc = Mu(p, i);
      for (size_t k = 0; k <= i; ++k) acc += chol[i * d + k] * z[k];
      (*out)[i] = acc;
    }
    return Status::OK();
  }
  StatusOr<double> Pdf(const std::vector<double>& p, uint32_t component,
                       double x) const override {
    PIP_RETURN_IF_ERROR(CheckComponent(p, component));
    size_t d = static_cast<size_t>(p[0]);
    double sigma = std::sqrt(Cov(p, d, component, component));
    return NormalPdf((x - Mu(p, component)) / sigma) / sigma;
  }
  StatusOr<double> Cdf(const std::vector<double>& p, uint32_t component,
                       double x) const override {
    PIP_RETURN_IF_ERROR(CheckComponent(p, component));
    size_t d = static_cast<size_t>(p[0]);
    double sigma = std::sqrt(Cov(p, d, component, component));
    return NormalCdf((x - Mu(p, component)) / sigma);
  }
  StatusOr<double> Mean(const std::vector<double>& p,
                        uint32_t component) const override {
    PIP_RETURN_IF_ERROR(CheckComponent(p, component));
    return Mu(p, component);
  }
  StatusOr<double> Variance(const std::vector<double>& p,
                            uint32_t component) const override {
    PIP_RETURN_IF_ERROR(CheckComponent(p, component));
    size_t d = static_cast<size_t>(p[0]);
    return Cov(p, d, component, component);
  }

 private:
  static double Mu(const std::vector<double>& p, size_t i) {
    return p[1 + i];
  }
  static double Cov(const std::vector<double>& p, size_t d, size_t i,
                    size_t j) {
    return p[1 + d + i * d + j];
  }
  Status CheckComponent(const std::vector<double>& p,
                        uint32_t component) const {
    if (component >= NumComponents(p)) {
      return Status::OutOfRange(name() + ": component " +
                                std::to_string(component) +
                                " out of range");
    }
    return Status::OK();
  }

  /// Cholesky factor of the covariance, memoized per parameter vector:
  /// GenerateJoint sits in the engine's innermost rejection loop, and
  /// refactoring an O(d^3) matrix per draw would dominate sampling time.
  ///
  /// The cache is thread-local (no lock on the draw path — the pool
  /// documents reads as lock-free and a future sampler thread pool must
  /// not serialize here) and keyed by the address of the pool-owned
  /// params vector, validated by a full equality compare against the
  /// stored copy so a recycled allocation can never alias a stale
  /// factor. The compare is O(d^2) contiguous reads versus O(d^3)
  /// refactorization.
  StatusOr<std::shared_ptr<const std::vector<double>>> Factor(
      const std::vector<double>& p, size_t d) const {
    struct CacheEntry {
      std::vector<double> params;
      std::shared_ptr<const std::vector<double>> factor;
    };
    static thread_local std::unordered_map<const double*, CacheEntry> cache;
    auto it = cache.find(p.data());
    if (it != cache.end() && it->second.params == p) {
      return it->second.factor;
    }
    auto chol =
        std::make_shared<std::vector<double>>(p.begin() + 1 + d, p.end());
    // Validated at creation time; an Internal error here means the pool
    // invariant was bypassed.
    if (!CholeskyFactor(d, chol.get())) {
      return Status::Internal(name() +
                              ": covariance lost positive definiteness");
    }
    std::shared_ptr<const std::vector<double>> factor = std::move(chol);
    // Bound the memo; distinct covariance matrices per process are few.
    if (cache.size() >= 256) cache.clear();
    cache[p.data()] = CacheEntry{p, factor};
    return factor;
  }
};

}  // namespace

Status RegisterMultivariateBuiltins(DistributionRegistry* registry) {
  return registry->Register(std::make_unique<MVNormalDist>());
}

}  // namespace dist_internal
}  // namespace pip
