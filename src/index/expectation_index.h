/// \file expectation_index.h
/// \brief Materialized per-row expectation/confidence summaries.
///
/// The PesTrie idea transplanted to probabilistic query answering: spend
/// bounded offline (or first-touch) work materializing a compressed
/// per-row summary so repeated online queries answer in near-constant
/// time instead of re-running Monte Carlo integration. Entries are keyed
/// by (table id, table generation, row id) — the write-invalidation
/// anchor stamped by the Database's copy-on-write catalogue — plus an
/// exact result key built by the sampling layer (operator tag, registry
/// generation, pool seed, options fingerprint, bit-exact expression and
/// condition serialization; see shape_key.h). Because the engine's draw
/// scheme is a pure function of (seed, var, sample, attempt), equal keys
/// imply bit-identical recomputation, so serving a hit is an exact
/// replay, not an approximation.
///
/// The index is a process-wide, internally synchronized LRU bounded by a
/// byte budget. Writers bump a table's generation through
/// BeginGeneration, which purges exactly that table's stale entries;
/// backfills racing a writer are rejected by generation (stale_rejects)
/// so a purged entry can never be resurrected by a reader holding an old
/// snapshot.
///
/// This layer deliberately knows nothing about the sampling engine: it
/// stores plain-data payloads (IndexedValue / IndexSummary) and opaque
/// key strings, so it sits below sampling in the dependency graph and
/// both the engine and the SQL surface can share one instance.

#ifndef PIP_INDEX_EXPECTATION_INDEX_H_
#define PIP_INDEX_EXPECTATION_INDEX_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pip {

/// \brief Distribution summary of one row's target cell: running moments
/// plus quantile and CDF tables (built by the eager indexer from a fixed
/// deterministic sample sweep).
struct IndexSummary {
  /// Running moments (count / mean / sum of squared deviations — the
  /// RunningStats representation, mergeable and numerically stable).
  uint64_t moment_count = 0;
  double mean = 0.0;
  double m2 = 0.0;

  /// quantiles[i] is the quantile_probs[i]-quantile of the sampled
  /// conditional distribution.
  std::vector<double> quantile_probs;
  std::vector<double> quantiles;

  /// Empirical CDF grid: P[X <= cdf_xs[i]] = cdf_ps[i].
  std::vector<double> cdf_xs;
  std::vector<double> cdf_ps;

  double variance() const {
    return moment_count > 1
               ? m2 / static_cast<double>(moment_count - 1)
               : 0.0;
  }

  /// Heap bytes of the vectors (for the index's byte accounting).
  size_t ByteSize() const {
    return sizeof(IndexSummary) +
           (quantile_probs.capacity() + quantiles.capacity() +
            cdf_xs.capacity() + cdf_ps.capacity()) *
               sizeof(double);
  }
};

/// \brief One materialized result: the exact replay payload of an
/// expectation / confidence / joint-confidence call, optionally with a
/// distribution summary attached by the eager builder.
struct IndexedValue {
  double expectation = 0.0;
  double probability = 1.0;
  uint64_t samples_used = 0;
  uint64_t attempts = 0;
  bool exact = false;
  /// Present only for eagerly built entries (summaries cost a bounded
  /// extra sample sweep that the lazy miss path must not pay).
  std::shared_ptr<const IndexSummary> summary;
};

/// \brief Thread-safe LRU index of materialized results with
/// generation-exact write invalidation.
class ExpectationIndex {
 public:
  /// Default byte budget (64 MiB). 0 means unlimited, mirroring the
  /// admission gate's capacity convention.
  static constexpr size_t kDefaultMemoryBudget = 64ull << 20;

  struct Stats {
    size_t entries = 0;
    size_t bytes = 0;
    size_t memory_budget = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;      ///< Entries dropped by the LRU budget.
    uint64_t invalidations = 0;  ///< Entries purged by generation bumps.
    uint64_t stale_rejects = 0;  ///< Backfills rejected as outdated.
    uint64_t insert_failures = 0;  ///< Backfills dropped by allocation
                                   ///< failure (real or injected). The
                                   ///< index stays cold but correct.
  };

  explicit ExpectationIndex(size_t memory_budget = kDefaultMemoryBudget)
      : memory_budget_(memory_budget) {}

  ExpectationIndex(const ExpectationIndex&) = delete;
  ExpectationIndex& operator=(const ExpectationIndex&) = delete;

  /// Cached value for the row under `result_key`, or nullopt (counted as
  /// hit/miss). A lookup from a snapshot older than the table's current
  /// generation can never match: its entries were purged when the
  /// generation advanced.
  std::optional<IndexedValue> Lookup(uint64_t table_id, uint64_t generation,
                                     uint64_t row_id,
                                     const std::string& result_key);

  /// Backfills one result. Rejected (stale_rejects) when `generation` is
  /// older than the table's current generation — a reader racing a
  /// writer must not resurrect purged entries. Re-inserting an existing
  /// key replaces its value (payloads for one key are bit-identical by
  /// construction; the eager builder uses this to attach summaries) and
  /// refreshes recency.
  void Insert(uint64_t table_id, uint64_t generation, uint64_t row_id,
              const std::string& result_key, IndexedValue value);

  /// Write-invalidation hook: advances `table_id`'s current generation
  /// and purges exactly that table's entries from older generations.
  void BeginGeneration(uint64_t table_id, uint64_t generation);

  /// Adjusts the byte budget, evicting LRU entries if now over it.
  void SetMemoryBudget(size_t bytes);
  size_t memory_budget() const;

  Stats stats() const;

  void Clear();

 private:
  struct Entry {
    uint64_t table_id = 0;
    uint64_t generation = 0;
    IndexedValue value;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  size_t EntryBytes(const std::string& full_key,
                    const IndexedValue& value) const;
  void EraseLocked(const std::string& full_key);
  void EvictToBudgetLocked();

  mutable std::mutex mu_;
  size_t memory_budget_;
  size_t bytes_ = 0;
  /// Front = most recently used; values are full keys into map_.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> map_;
  /// Exact-purge support: the full keys each table currently owns.
  std::unordered_map<uint64_t, std::unordered_set<std::string>> table_keys_;
  std::unordered_map<uint64_t, uint64_t> current_generation_;
  Stats stats_;
};

}  // namespace pip

#endif  // PIP_INDEX_EXPECTATION_INDEX_H_
