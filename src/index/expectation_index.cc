#include "src/index/expectation_index.h"

#include "src/common/failpoints.h"

namespace pip {

namespace {

/// Full map key: provenance prefix + the sampling layer's result key.
/// Generation is part of the key, so entries from different snapshots of
/// one table can coexist briefly (until the purge) without aliasing.
std::string FullKey(uint64_t table_id, uint64_t generation, uint64_t row_id,
                    const std::string& result_key) {
  std::string key;
  key.reserve(result_key.size() + 40);
  key += 'T';
  key += std::to_string(table_id);
  key += '.';
  key += std::to_string(generation);
  key += '.';
  key += std::to_string(row_id);
  key += '|';
  key += result_key;
  return key;
}

}  // namespace

size_t ExpectationIndex::EntryBytes(const std::string& full_key,
                                    const IndexedValue& value) const {
  // The key is stored twice (map key + LRU list node) plus hash-map and
  // list node overhead, approximated at 64 bytes.
  size_t bytes = 2 * full_key.size() + sizeof(Entry) + 64;
  if (value.summary != nullptr) bytes += value.summary->ByteSize();
  return bytes;
}

std::optional<IndexedValue> ExpectationIndex::Lookup(
    uint64_t table_id, uint64_t generation, uint64_t row_id,
    const std::string& result_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(FullKey(table_id, generation, row_id, result_key));
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void ExpectationIndex::Insert(uint64_t table_id, uint64_t generation,
                              uint64_t row_id, const std::string& result_key,
                              IndexedValue value) {
  std::lock_guard<std::mutex> lock(mu_);
  // Chaos site: allocation failure while materializing the entry. The
  // backfill is dropped — queries recompute, the index stays cold but
  // never serves a partial entry.
  if (PIP_FAILPOINT("index.insert_alloc") == failpoints::ActionKind::kError) {
    ++stats_.insert_failures;
    return;
  }
  auto gen_it = current_generation_.find(table_id);
  if (gen_it != current_generation_.end() && generation < gen_it->second) {
    // A writer advanced the table while this result was being computed
    // on the old snapshot; caching it would resurrect purged state.
    ++stats_.stale_rejects;
    return;
  }
  if (gen_it == current_generation_.end() || generation > gen_it->second) {
    current_generation_[table_id] = generation;
  }
  std::string full_key = FullKey(table_id, generation, row_id, result_key);
  auto it = map_.find(full_key);
  if (it != map_.end()) {
    // Concurrent backfills of one entry produce bit-identical replay
    // payloads, so replacing is safe; it also lets the eager builder
    // attach a summary to an entry the lazy path stored first.
    bytes_ -= it->second.bytes;
    it->second.bytes = EntryBytes(full_key, value);
    it->second.value = std::move(value);
    bytes_ += it->second.bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    EvictToBudgetLocked();
    return;
  }
  Entry entry;
  entry.table_id = table_id;
  entry.generation = generation;
  entry.bytes = EntryBytes(full_key, value);
  entry.value = std::move(value);
  lru_.push_front(full_key);
  entry.lru_it = lru_.begin();
  bytes_ += entry.bytes;
  table_keys_[table_id].insert(full_key);
  map_.emplace(std::move(full_key), std::move(entry));
  ++stats_.inserts;
  EvictToBudgetLocked();
}

void ExpectationIndex::BeginGeneration(uint64_t table_id,
                                       uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& current = current_generation_[table_id];
  if (generation > current) current = generation;
  auto tk = table_keys_.find(table_id);
  if (tk == table_keys_.end()) return;
  // Purge exactly this table's out-of-date entries; other tables' and
  // current-generation entries are untouched.
  std::vector<std::string> doomed;
  for (const std::string& key : tk->second) {
    auto it = map_.find(key);
    if (it != map_.end() && it->second.generation < current) {
      doomed.push_back(key);
    }
  }
  for (const std::string& key : doomed) {
    EraseLocked(key);
    ++stats_.invalidations;
  }
}

void ExpectationIndex::EraseLocked(const std::string& full_key) {
  auto it = map_.find(full_key);
  if (it == map_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  auto tk = table_keys_.find(it->second.table_id);
  if (tk != table_keys_.end()) {
    tk->second.erase(full_key);
    if (tk->second.empty()) table_keys_.erase(tk);
  }
  map_.erase(it);
}

void ExpectationIndex::EvictToBudgetLocked() {
  if (memory_budget_ == 0) return;  // Unlimited.
  while (bytes_ > memory_budget_ && !lru_.empty()) {
    std::string victim = lru_.back();
    EraseLocked(victim);
    ++stats_.evictions;
  }
}

void ExpectationIndex::SetMemoryBudget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  memory_budget_ = bytes;
  EvictToBudgetLocked();
}

size_t ExpectationIndex::memory_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_budget_;
}

ExpectationIndex::Stats ExpectationIndex::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.entries = map_.size();
  stats.bytes = bytes_;
  stats.memory_budget = memory_budget_;
  return stats;
}

void ExpectationIndex::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  table_keys_.clear();
  bytes_ = 0;
}

}  // namespace pip
