/// \file database.h
/// \brief The top-level PIP database: named tables plus the variable pool.
///
/// Plays the role of the modified-PostgreSQL host of the paper's §V: it
/// owns the catalogue of (c-)tables, the CREATE_VARIABLE entry point, and
/// hands out sampling engines configured against its variable pool.
///
/// Thread model (server mode): one Database is shared by every
/// connection's sql::Session. The catalogue and the named-variable map
/// are guarded by a shared_mutex — readers take snapshots
/// (shared_ptr<const CTable>), writers swap entries under the exclusive
/// lock — so concurrent DDL/DML/SELECT across sessions is safe, and a
/// long-running SELECT keeps sampling its snapshot even while another
/// session replaces the table. The variable pool is internally
/// synchronized (lock-free reads), and the plan cache handed to every
/// engine is one shared, internally synchronized instance.

#ifndef PIP_ENGINE_DATABASE_H_
#define PIP_ENGINE_DATABASE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/ctable/ctable.h"
#include "src/dist/variable_pool.h"
#include "src/index/expectation_index.h"
#include "src/sampling/expectation.h"

namespace pip {

/// \brief An in-memory probabilistic database.
class Database {
 public:
  explicit Database(uint64_t seed = VariablePool::kDefaultSeed)
      : pool_(seed),
        plan_cache_(std::make_shared<PlanCache>()),
        result_index_(std::make_shared<ExpectationIndex>()) {}

  VariablePool* pool() { return &pool_; }
  const VariablePool& pool() const { return pool_; }

  /// Database-wide sampling defaults, inherited by MakeEngine() and new
  /// SQL sessions. This is where deployment-level knobs (num_threads,
  /// fixed_samples, tolerances) are threaded down to the engine. Set
  /// these before serving traffic; the accessor returns a reference and
  /// is not synchronized against concurrent set_default_options.
  const SamplingOptions& default_options() const { return default_options_; }
  void set_default_options(SamplingOptions options) {
    default_options_ = options;
  }

  /// CREATE_VARIABLE(distribution, params): allocates a fresh random
  /// variable (paper §V-A).
  StatusOr<VarRef> CreateVariable(const std::string& distribution,
                                  std::vector<double> params) {
    return pool_.Create(distribution, std::move(params));
  }

  /// CREATE VARIABLE name AS Dist(params): allocates a fresh variable
  /// and binds it to `name` for reuse in later statements (paper §V-A's
  /// named form). AlreadyExists if the name is taken.
  StatusOr<VarRef> CreateNamedVariable(const std::string& name,
                                       const std::string& distribution,
                                       std::vector<double> params);

  /// The variable bound by CREATE VARIABLE `name`; NotFound otherwise.
  StatusOr<VarRef> GetNamedVariable(const std::string& name) const;
  bool HasNamedVariable(const std::string& name) const;
  /// (name, variable) pairs sorted by name — the SHOW VARIABLES listing.
  std::vector<std::pair<std::string, VarRef>> NamedVariables() const;

  /// Registers a deterministic table (lifted to a c-table with TRUE
  /// conditions).
  Status RegisterTable(const std::string& name, Table table);

  /// Registers a probabilistic table.
  Status RegisterCTable(const std::string& name, CTable table);

  /// Replaces a table if present, else registers it (view
  /// materialization: "intermediate query results or views may be
  /// materialized", §III-A).
  void MaterializeView(const std::string& name, CTable table);

  /// Appends rows to an existing table atomically (the SQL INSERT path).
  /// The read-copy-update runs under the exclusive catalogue lock, so
  /// concurrent INSERTs into one table never lose rows; concurrent
  /// readers keep their pre-insert snapshot.
  Status AppendRows(const std::string& name, std::vector<CTableRow> rows);

  /// Immutable snapshot of a table. The snapshot stays valid (and
  /// unchanged) for as long as the caller holds it, regardless of
  /// concurrent DDL/DML.
  StatusOr<std::shared_ptr<const CTable>> GetTable(
      const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// A sampling engine bound to this database's pool, using the
  /// database-wide default options.
  SamplingEngine MakeEngine() const { return MakeEngine(default_options_); }
  /// A sampling engine with explicit options (callers typically copy
  /// default_options() and tweak). All engines share the database's
  /// plan cache and result index; the options' index_memory_budget is
  /// applied to the shared index (last engine created wins).
  SamplingEngine MakeEngine(SamplingOptions options) const {
    result_index_->SetMemoryBudget(options.index_memory_budget);
    SamplingEngine engine(&pool_, options, plan_cache_);
    engine.set_result_index(result_index_);
    return engine;
  }

  /// Eagerly materializes expectation-index entries for every row of
  /// `name` under `options` (the INSERT path's INDEX_EAGER_BUILD hook;
  /// also callable directly to pre-warm a table). Runs on the caller's
  /// thread against the current snapshot, outside the catalogue lock.
  Status BuildIndex(const std::string& name, const SamplingOptions& options);

  /// Hit/miss counters of the database-wide plan cache.
  PlanCache::Stats plan_cache_stats() const { return plan_cache_->stats(); }

  /// The shared materialized-result index and its counters (the SHOW
  /// INDEX surface).
  ExpectationIndex* result_index() const { return result_index_.get(); }
  ExpectationIndex::Stats result_index_stats() const {
    return result_index_->stats();
  }

 private:
  /// Stamps catalogue provenance onto a table about to be published:
  /// assigns/keeps its table id, sets the new generation, re-stamps row
  /// ids, and purges the index's now-stale entries for that table. Must
  /// run under the exclusive catalogue lock.
  void StampForPublishLocked(CTable* table, uint64_t table_id,
                             uint64_t generation);

  VariablePool pool_;
  SamplingOptions default_options_;
  std::shared_ptr<PlanCache> plan_cache_;
  std::shared_ptr<ExpectationIndex> result_index_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const CTable>> tables_;
  std::unordered_map<std::string, VarRef> named_vars_;
  uint64_t next_table_id_ = 1;
};

}  // namespace pip

#endif  // PIP_ENGINE_DATABASE_H_
