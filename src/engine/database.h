/// \file database.h
/// \brief The top-level PIP database: named tables plus the variable pool.
///
/// Plays the role of the modified-PostgreSQL host of the paper's §V: it
/// owns the catalogue of (c-)tables, the CREATE_VARIABLE entry point, and
/// hands out sampling engines configured against its variable pool.

#ifndef PIP_ENGINE_DATABASE_H_
#define PIP_ENGINE_DATABASE_H_

#include <string>
#include <unordered_map>

#include "src/ctable/ctable.h"
#include "src/dist/variable_pool.h"
#include "src/sampling/expectation.h"

namespace pip {

/// \brief An in-memory probabilistic database.
class Database {
 public:
  explicit Database(uint64_t seed = VariablePool::kDefaultSeed)
      : pool_(seed) {}

  VariablePool* pool() { return &pool_; }
  const VariablePool& pool() const { return pool_; }

  /// Database-wide sampling defaults, inherited by MakeEngine() and new
  /// SQL sessions. This is where deployment-level knobs (num_threads,
  /// fixed_samples, tolerances) are threaded down to the engine.
  const SamplingOptions& default_options() const { return default_options_; }
  void set_default_options(SamplingOptions options) {
    default_options_ = options;
  }

  /// CREATE_VARIABLE(distribution, params): allocates a fresh random
  /// variable (paper §V-A).
  StatusOr<VarRef> CreateVariable(const std::string& distribution,
                                  std::vector<double> params) {
    return pool_.Create(distribution, std::move(params));
  }

  /// Registers a deterministic table (lifted to a c-table with TRUE
  /// conditions).
  Status RegisterTable(const std::string& name, Table table);

  /// Registers a probabilistic table.
  Status RegisterCTable(const std::string& name, CTable table);

  /// Replaces a table if present, else registers it (view
  /// materialization: "intermediate query results or views may be
  /// materialized", §III-A).
  void MaterializeView(const std::string& name, CTable table);

  StatusOr<const CTable*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// A sampling engine bound to this database's pool, using the
  /// database-wide default options.
  SamplingEngine MakeEngine() const {
    return SamplingEngine(&pool_, default_options_);
  }
  /// A sampling engine with explicit options (callers typically copy
  /// default_options() and tweak).
  SamplingEngine MakeEngine(SamplingOptions options) const {
    return SamplingEngine(&pool_, options);
  }

 private:
  VariablePool pool_;
  SamplingOptions default_options_;
  std::unordered_map<std::string, CTable> tables_;
};

}  // namespace pip

#endif  // PIP_ENGINE_DATABASE_H_
