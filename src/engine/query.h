/// \file query.h
/// \brief Composable logical query plans over c-tables.
///
/// The fluent builder mirrors the deterministic-SQL illusion of §V-A: users
/// write filters and targets over columns without distinguishing constants
/// from random variables; the executor performs the paper's rewriting
/// automatically — decidable predicate atoms filter rows, probabilistic
/// atoms migrate into the row conditions (the CTYPE columns of the Postgres
/// implementation), and conditions are threaded through every operator.

#ifndef PIP_ENGINE_QUERY_H_
#define PIP_ENGINE_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ctable/algebra.h"
#include "src/engine/database.h"

namespace pip {

/// \brief A lazily-executed relational query plan.
class Query {
 public:
  /// Leaf: scan a registered table by name.
  static Query Scan(std::string table_name);
  /// Leaf: inline c-table (e.g. freshly built data).
  static Query Values(CTable table);

  /// WHERE: conjunction of column-level comparisons. Probabilistic atoms
  /// become row conditions; deterministic atoms filter eagerly.
  Query Where(ColPredicate predicate) const;
  /// SELECT: generalized projection (targets may be arithmetic over
  /// columns and embedded random-variable equations).
  Query SelectCols(std::vector<NamedColExpr> targets) const;
  /// Cross product.
  Query CrossJoin(Query right, std::string rhs_prefix = "r") const;
  /// Theta join (product + where).
  Query JoinOn(Query right, ColPredicate predicate,
               std::string rhs_prefix = "r") const;
  /// Bag union.
  Query UnionAll(Query right) const;
  /// Duplicate coalescing (bag-encoded disjunction preserving).
  Query DistinctRows() const;
  /// Bag difference (Fig. 1 semantics).
  Query Except(Query right) const;
  /// Repair-key style explosion of finite discrete variables.
  Query Explode() const;

  /// Executes the plan against `db`, producing the symbolic result.
  StatusOr<CTable> Execute(const Database& db) const;

  /// Plan rendering for debugging/EXPLAIN.
  std::string ToString() const;

  /// Plan node; public for the executor, not for construction by users.
  struct Node;

 private:
  using NodePtr = std::shared_ptr<const Node>;

  explicit Query(NodePtr node) : node_(std::move(node)) {}

  NodePtr node_;
};

// ---------------------------------------------------------------------------
// Statistical result operators (the probability-removing functions).
// ---------------------------------------------------------------------------

/// \brief Per-row analysis of a probabilistic query result.
///
/// Maps each row of the c-table to deterministic outputs: the conditional
/// expectation of each requested column, plus (optionally) the row's
/// confidence. This is PIP's `expectation()` / `conf()` applied row-wise
/// (per-row sampling semantics, §IV-B).
struct AnalyzeSpec {
  /// Columns whose per-row conditional expectation is wanted.
  std::vector<std::string> expectation_columns;
  /// Emit a "conf" column with P[row condition].
  bool with_confidence = true;
  /// Columns to pass through verbatim (must be deterministic cells).
  std::vector<std::string> passthrough_columns;
};

/// Converts a c-table into a deterministic table per `spec`. Rows whose
/// condition is unsatisfiable are dropped (their confidence is 0).
StatusOr<Table> Analyze(const CTable& table, const SamplingEngine& engine,
                        const AnalyzeSpec& spec);

/// aconf() over a whole table: groups rows by identical data cells and
/// computes the joint probability of each group's disjunction of
/// conditions. Output schema: data columns + "aconf".
StatusOr<Table> AnalyzeJointConfidence(const CTable& table,
                                       const SamplingEngine& engine);

}  // namespace pip

#endif  // PIP_ENGINE_QUERY_H_
