#include "src/engine/database.h"

namespace pip {

Status Database::RegisterTable(const std::string& name, Table table) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, CTable::FromTable(table));
  return Status::OK();
}

Status Database::RegisterCTable(const std::string& name, CTable table) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

void Database::MaterializeView(const std::string& name, CTable table) {
  tables_.insert_or_assign(name, std::move(table));
}

StatusOr<const CTable*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace pip
