#include "src/engine/database.h"

#include <algorithm>

#include "src/sampling/index_ops.h"

namespace pip {

void Database::StampForPublishLocked(CTable* table, uint64_t table_id,
                                     uint64_t generation) {
  table->SetProvenance(table_id, generation);
  table->StampRowIds();
  // Advancing the generation purges exactly this table's stale index
  // entries and makes racing backfills against older snapshots
  // rejectable. Done before publication so no reader can hit a stale
  // entry through the new snapshot.
  result_index_->BeginGeneration(table_id, generation);
}

Status Database::RegisterTable(const std::string& name, Table table) {
  return RegisterCTable(name, CTable::FromTable(table));
}

Status Database::RegisterCTable(const std::string& name, CTable table) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  StampForPublishLocked(&table, next_table_id_++, 1);
  tables_.emplace(name, std::make_shared<const CTable>(std::move(table)));
  return Status::OK();
}

void Database::MaterializeView(const std::string& name, CTable table) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    // Replacement keeps the table id (readers of old snapshots see the
    // generation gap) and retires the previous generation's entries.
    StampForPublishLocked(&table, it->second->table_id(),
                          it->second->generation() + 1);
    it->second = std::make_shared<const CTable>(std::move(table));
    return;
  }
  StampForPublishLocked(&table, next_table_id_++, 1);
  tables_.emplace(name, std::make_shared<const CTable>(std::move(table)));
}

Status Database::AppendRows(const std::string& name,
                            std::vector<CTableRow> rows) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("no table named '" + name + "'");
    }
    CTable updated = *it->second;
    for (CTableRow& row : rows) {
      PIP_RETURN_IF_ERROR(updated.Append(std::move(row)));
    }
    StampForPublishLocked(&updated, it->second->table_id(),
                          it->second->generation() + 1);
    it->second = std::make_shared<const CTable>(std::move(updated));
  }
  // Knob-gated eager materialization under the database defaults,
  // outside the catalogue lock (it samples). Sessions with their own
  // options call BuildIndex separately; build failures must not undo a
  // committed insert, so they only leave the index cold.
  if (default_options_.index_eager_build) {
    Status build_status = BuildIndex(name, default_options_);
    (void)build_status;
  }
  return Status::OK();
}

Status Database::BuildIndex(const std::string& name,
                            const SamplingOptions& options) {
  if (!options.index_enabled) return Status::OK();
  PIP_ASSIGN_OR_RETURN(std::shared_ptr<const CTable> snapshot,
                       GetTable(name));
  // Sampling runs outside the catalogue lock on the immutable snapshot;
  // if a writer advances the table meanwhile, the index rejects the
  // stale backfills by generation.
  return EagerBuildIndex(*snapshot, MakeEngine(options));
}

StatusOr<std::shared_ptr<const CTable>> Database::GetTable(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

bool Database::HasTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<VarRef> Database::CreateNamedVariable(const std::string& name,
                                               const std::string& distribution,
                                               std::vector<double> params) {
  // Reserve the name before allocating so two racing CREATE VARIABLE x
  // statements cannot both succeed; losing the race to a bad parameter
  // set releases the reservation.
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (named_vars_.count(name)) {
      return Status::AlreadyExists("variable '" + name + "' already exists");
    }
    named_vars_.emplace(name, VarRef{0, 0});
  }
  auto created = pool_.Create(distribution, std::move(params));
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!created.ok()) {
    named_vars_.erase(name);
    return created.status();
  }
  named_vars_[name] = created.value();
  return created.value();
}

StatusOr<VarRef> Database::GetNamedVariable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = named_vars_.find(name);
  if (it == named_vars_.end() || it->second.var_id == 0) {
    return Status::NotFound("no variable named '" + name + "'");
  }
  return it->second;
}

bool Database::HasNamedVariable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = named_vars_.find(name);
  return it != named_vars_.end() && it->second.var_id != 0;
}

std::vector<std::pair<std::string, VarRef>> Database::NamedVariables() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<std::string, VarRef>> out;
  out.reserve(named_vars_.size());
  for (const auto& [name, ref] : named_vars_) {
    if (ref.var_id != 0) out.emplace_back(name, ref);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace pip
