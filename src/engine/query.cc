#include "src/engine/query.h"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "src/common/row_parallel.h"
#include "src/sampling/index_ops.h"

namespace pip {

struct Query::Node {
  enum class Kind {
    kScan,
    kValues,
    kWhere,
    kSelect,
    kProduct,
    kJoin,
    kUnion,
    kDistinct,
    kExcept,
    kExplode,
  };

  Kind kind;
  // Payloads (unused fields empty).
  std::string table_name;
  CTable inline_table;
  ColPredicate predicate;
  std::vector<NamedColExpr> targets;
  std::string rhs_prefix;
  std::vector<NodePtr> children;
};

Query Query::Scan(std::string table_name) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kScan;
  node->table_name = std::move(table_name);
  return Query(std::move(node));
}

Query Query::Values(CTable table) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kValues;
  node->inline_table = std::move(table);
  return Query(std::move(node));
}

Query Query::Where(ColPredicate predicate) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kWhere;
  node->predicate = std::move(predicate);
  node->children = {node_};
  return Query(std::move(node));
}

Query Query::SelectCols(std::vector<NamedColExpr> targets) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kSelect;
  node->targets = std::move(targets);
  node->children = {node_};
  return Query(std::move(node));
}

Query Query::CrossJoin(Query right, std::string rhs_prefix) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kProduct;
  node->rhs_prefix = std::move(rhs_prefix);
  node->children = {node_, right.node_};
  return Query(std::move(node));
}

Query Query::JoinOn(Query right, ColPredicate predicate,
                    std::string rhs_prefix) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kJoin;
  node->predicate = std::move(predicate);
  node->rhs_prefix = std::move(rhs_prefix);
  node->children = {node_, right.node_};
  return Query(std::move(node));
}

Query Query::UnionAll(Query right) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kUnion;
  node->children = {node_, right.node_};
  return Query(std::move(node));
}

Query Query::DistinctRows() const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kDistinct;
  node->children = {node_};
  return Query(std::move(node));
}

Query Query::Except(Query right) const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kExcept;
  node->children = {node_, right.node_};
  return Query(std::move(node));
}

Query Query::Explode() const {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kExplode;
  node->children = {node_};
  return Query(std::move(node));
}

namespace {

StatusOr<CTable> ExecuteNode(const Query::Node* node, const Database& db);

}  // namespace

StatusOr<CTable> Query::Execute(const Database& db) const {
  return ExecuteNode(node_.get(), db);
}

namespace {

StatusOr<CTable> ExecuteNode(const Query::Node* node, const Database& db) {
  using Kind = Query::Node::Kind;
  switch (node->kind) {
    case Kind::kScan: {
      PIP_ASSIGN_OR_RETURN(std::shared_ptr<const CTable> t,
                           db.GetTable(node->table_name));
      return *t;
    }
    case Kind::kValues:
      return node->inline_table;
    case Kind::kWhere: {
      PIP_ASSIGN_OR_RETURN(CTable in, ExecuteNode(node->children[0].get(), db));
      return Select(in, node->predicate);
    }
    case Kind::kSelect: {
      PIP_ASSIGN_OR_RETURN(CTable in, ExecuteNode(node->children[0].get(), db));
      return Project(in, node->targets);
    }
    case Kind::kProduct: {
      PIP_ASSIGN_OR_RETURN(CTable l, ExecuteNode(node->children[0].get(), db));
      PIP_ASSIGN_OR_RETURN(CTable r, ExecuteNode(node->children[1].get(), db));
      return Product(l, r, node->rhs_prefix);
    }
    case Kind::kJoin: {
      PIP_ASSIGN_OR_RETURN(CTable l, ExecuteNode(node->children[0].get(), db));
      PIP_ASSIGN_OR_RETURN(CTable r, ExecuteNode(node->children[1].get(), db));
      return Join(l, r, node->predicate, node->rhs_prefix);
    }
    case Kind::kUnion: {
      PIP_ASSIGN_OR_RETURN(CTable l, ExecuteNode(node->children[0].get(), db));
      PIP_ASSIGN_OR_RETURN(CTable r, ExecuteNode(node->children[1].get(), db));
      return Union(l, r);
    }
    case Kind::kDistinct: {
      PIP_ASSIGN_OR_RETURN(CTable in, ExecuteNode(node->children[0].get(), db));
      return Distinct(in);
    }
    case Kind::kExcept: {
      PIP_ASSIGN_OR_RETURN(CTable l, ExecuteNode(node->children[0].get(), db));
      PIP_ASSIGN_OR_RETURN(CTable r, ExecuteNode(node->children[1].get(), db));
      return Difference(l, r);
    }
    case Kind::kExplode: {
      PIP_ASSIGN_OR_RETURN(CTable in, ExecuteNode(node->children[0].get(), db));
      return ExplodeDiscrete(in, db.pool());
    }
  }
  return Status::Internal("unknown plan node");
}

std::string NodeToString(const Query::Node* node, int indent) {
  using Kind = Query::Node::Kind;
  std::string pad(indent * 2, ' ');
  std::ostringstream os;
  switch (node->kind) {
    case Kind::kScan:
      os << pad << "Scan(" << node->table_name << ")";
      break;
    case Kind::kValues:
      os << pad << "Values(" << node->inline_table.num_rows() << " rows)";
      break;
    case Kind::kWhere:
      os << pad << "Where(" << node->predicate.ToString() << ")";
      break;
    case Kind::kSelect: {
      os << pad << "Select(";
      for (size_t i = 0; i < node->targets.size(); ++i) {
        if (i) os << ", ";
        os << node->targets[i].name << " := " << node->targets[i].expr->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kProduct:
      os << pad << "CrossJoin";
      break;
    case Kind::kJoin:
      os << pad << "Join(" << node->predicate.ToString() << ")";
      break;
    case Kind::kUnion:
      os << pad << "UnionAll";
      break;
    case Kind::kDistinct:
      os << pad << "Distinct";
      break;
    case Kind::kExcept:
      os << pad << "Except";
      break;
    case Kind::kExplode:
      os << pad << "Explode";
      break;
  }
  for (const auto& c : node->children) {
    os << "\n" << NodeToString(c.get(), indent + 1);
  }
  return os.str();
}

}  // namespace

std::string Query::ToString() const { return NodeToString(node_.get(), 0); }

StatusOr<Table> Analyze(const CTable& table, const SamplingEngine& engine,
                        const AnalyzeSpec& spec) {
  std::vector<size_t> pass_idx, exp_idx;
  std::vector<std::string> out_columns;
  for (const auto& name : spec.passthrough_columns) {
    PIP_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(name));
    pass_idx.push_back(idx);
    out_columns.push_back(name);
  }
  for (const auto& name : spec.expectation_columns) {
    PIP_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(name));
    exp_idx.push_back(idx);
    out_columns.push_back("E[" + name + "]");
  }
  if (spec.with_confidence) out_columns.push_back("conf");

  Table out((Schema(out_columns)));
  // Row-parallel batch (the paper's headline Analyze workload): rows are
  // independent, so the row dimension is the outer parallel axis — each
  // row's engine calls run under the region's fractional budget share
  // (with fewer rows than threads their sample sharding fans out across
  // the leftover width) and the shape-keyed PlanCache is the
  // cross-thread amortization point: rows sharing a condition shape pay
  // planning once, whichever worker plans first. Per-row results land in
  // pre-sized slots and emitted rows fold in row order below, so the
  // output table is byte-identical to a serial row loop at every
  // num_threads.
  const auto& rows = table.rows();
  struct RowSlot {
    Row cells;
    bool emit = true;
  };
  std::vector<RowSlot> slots(rows.size());
  PIP_RETURN_IF_ERROR(ParallelRows(
      rows.size(), engine.options().num_threads,
      [&](size_t r, const RowBatchContext& ctx) -> Status {
        const auto& row = rows[r];
        RowSlot& slot = slots[r];
        // Long row bodies bail at the next chunk barrier once an earlier
        // row has failed (this row's slot is discarded either way).
        const SamplingEngine row_engine =
            engine.WithCancelCheck([ctx] { return ctx.Cancelled(); });
        // Catalogue provenance routes the engine calls through the
        // materialized expectation index: hits replay the exact cached
        // result, misses run the engine and backfill. Rows without
        // provenance go straight to the engine.
        RowProvenance prov = ProvenanceOf(table, r);
        slot.cells.reserve(out_columns.size());
        for (size_t idx : pass_idx) {
          if (!row.cells[idx]->IsConstant()) {
            return Status::InvalidArgument(
                "passthrough column '" + table.schema().name(idx) +
                "' holds a probabilistic value");
          }
          slot.cells.push_back(row.cells[idx]->value());
        }
        double confidence = 1.0;
        for (size_t i = 0; i < exp_idx.size(); ++i) {
          PIP_ASSIGN_OR_RETURN(
              ExpectationResult res,
              IndexedExpectation(row_engine, prov, row.cells[exp_idx[i]],
                                 row.condition,
                                 spec.with_confidence && i == 0));
          if (std::isnan(res.expectation) && res.probability == 0.0) {
            slot.emit = false;
            return Status::OK();
          }
          if (i == 0) confidence = res.probability;
          slot.cells.push_back(Value(res.expectation));
        }
        if (spec.with_confidence) {
          if (exp_idx.empty()) {
            PIP_ASSIGN_OR_RETURN(
                ExpectationResult res,
                IndexedConfidence(row_engine, prov, row.condition));
            if (res.probability <= 0.0) {
              slot.emit = false;
              return Status::OK();
            }
            confidence = res.probability;
          }
          slot.cells.push_back(Value(confidence));
        }
        return Status::OK();
      }));
  for (auto& slot : slots) {
    if (!slot.emit) continue;
    PIP_RETURN_IF_ERROR(out.Append(std::move(slot.cells)));
  }
  return out;
}

StatusOr<Table> AnalyzeJointConfidence(const CTable& table,
                                       const SamplingEngine& engine) {
  // Group rows by identical data cells (the bag-encoded disjunction
  // groups), then aconf() each group.
  struct Group {
    const CTableRow* exemplar;
    std::vector<Condition> disjuncts;
  };
  // Index anchor for the per-group aconf entries: the exemplar row of
  // each group (the key itself serializes the full disjunct list, so the
  // anchor only scopes invalidation).
  std::vector<Group> groups;
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  auto hash_cells = [](const std::vector<ExprPtr>& cells) {
    size_t h = 0x811c9dc5ULL;
    for (const auto& c : cells) {
      h ^= c->Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  };
  auto cells_equal = [](const std::vector<ExprPtr>& a,
                        const std::vector<ExprPtr>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i]->Equals(*b[i])) return false;
    }
    return true;
  };
  for (const auto& row : table.rows()) {
    size_t h = hash_cells(row.cells);
    auto& bucket = buckets[h];
    Group* group = nullptr;
    for (size_t gi : bucket) {
      if (cells_equal(groups[gi].exemplar->cells, row.cells)) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(groups.size());
      groups.push_back(Group{&row, {}});
      group = &groups.back();
    }
    group->disjuncts.push_back(row.condition);
  }

  std::vector<std::string> out_columns = table.schema().columns();
  out_columns.push_back("aconf");
  Table out((Schema(out_columns)));
  // Group-parallel aconf(): one JointConfidence call per distinct-row
  // group, fanned out like Analyze's rows (groups are the row axis
  // here). Probabilities land in per-group slots; rows fold in group
  // order, so the output matches the serial loop byte for byte.
  std::vector<double> probs(groups.size(), 0.0);
  PIP_RETURN_IF_ERROR(ParallelRows(
      groups.size(), engine.options().num_threads,
      [&](size_t g, const RowBatchContext& ctx) -> Status {
        for (const auto& cell : groups[g].exemplar->cells) {
          if (!cell->IsConstant()) {
            return Status::InvalidArgument(
                "aconf over probabilistic data cells is not supported; "
                "project to deterministic columns first");
          }
        }
        RowProvenance prov{table.table_id(), table.generation(),
                           groups[g].exemplar->row_id};
        const SamplingEngine group_engine =
            engine.WithCancelCheck([ctx] { return ctx.Cancelled(); });
        PIP_ASSIGN_OR_RETURN(
            probs[g],
            IndexedJointConfidence(group_engine, prov, groups[g].disjuncts));
        return Status::OK();
      }));
  for (size_t g = 0; g < groups.size(); ++g) {
    Row result;
    for (const auto& cell : groups[g].exemplar->cells) {
      result.push_back(cell->value());
    }
    result.push_back(Value(probs[g]));
    PIP_RETURN_IF_ERROR(out.Append(std::move(result)));
  }
  return out;
}

}  // namespace pip
