#include "src/constraints/independence.h"

#include <map>
#include <numeric>

namespace pip {

namespace {

/// Plain union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<VariableGroup> PartitionIndependent(const Condition& condition,
                                                const VarSet& target_vars) {
  // Dense-index the distinct variable *ids* (components of one variable
  // are inseparable, so the partition runs at id granularity).
  std::map<uint64_t, size_t> id_index;
  std::vector<VarSet> id_components;  // Components seen per id.
  auto intern = [&](const VarRef& v) {
    auto [it, inserted] = id_index.emplace(v.var_id, id_components.size());
    if (inserted) id_components.emplace_back();
    id_components[it->second].insert(v);
    return it->second;
  };

  std::vector<std::vector<size_t>> atom_ids(condition.atoms().size());
  for (size_t i = 0; i < condition.atoms().size(); ++i) {
    for (const VarRef& v : condition.atoms()[i].Variables()) {
      atom_ids[i].push_back(intern(v));
    }
  }
  std::vector<size_t> target_ids;
  for (const VarRef& v : target_vars) target_ids.push_back(intern(v));

  UnionFind uf(id_components.size());
  for (const auto& ids : atom_ids) {
    for (size_t i = 1; i < ids.size(); ++i) uf.Merge(ids[0], ids[i]);
  }

  // Collect groups in deterministic (first-seen root) order.
  std::map<size_t, size_t> root_to_group;
  std::vector<VariableGroup> groups;
  auto group_of = [&](size_t id) -> VariableGroup& {
    size_t root = uf.Find(id);
    auto [it, inserted] = root_to_group.emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    return groups[it->second];
  };

  for (size_t id = 0; id < id_components.size(); ++id) {
    VariableGroup& g = group_of(id);
    g.vars.insert(id_components[id].begin(), id_components[id].end());
  }
  for (size_t i = 0; i < atom_ids.size(); ++i) {
    if (atom_ids[i].empty()) continue;  // Variable-free atom: no group.
    group_of(atom_ids[i][0]).atom_indices.push_back(i);
  }
  for (size_t id : target_ids) group_of(id).touches_target = true;

  return groups;
}

}  // namespace pip
