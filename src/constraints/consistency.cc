#include "src/constraints/consistency.h"

#include <cmath>

namespace pip {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Decomposed view of an atom as `var = constant` / `var != constant`.
struct VarConstEq {
  VarRef var;
  double value;
};

/// Tries to view `atom` as (Var op Constant), flipping sides if needed.
std::optional<std::pair<VarRef, double>> AsVarConst(const ConstraintAtom& atom,
                                                    CmpOp* effective_op) {
  const Expr* var_side = nullptr;
  const Expr* const_side = nullptr;
  CmpOp op = atom.op();
  if (atom.lhs()->op() == ExprOp::kVar && atom.rhs()->IsConstant()) {
    var_side = atom.lhs().get();
    const_side = atom.rhs().get();
  } else if (atom.rhs()->op() == ExprOp::kVar && atom.lhs()->IsConstant()) {
    var_side = atom.rhs().get();
    const_side = atom.lhs().get();
    op = FlipCmp(op);
  } else {
    return std::nullopt;
  }
  auto d = const_side->value().AsDouble();
  if (!d.ok()) return std::nullopt;
  *effective_op = op;
  return std::make_pair(var_side->var(), d.value());
}

bool IsContinuous(const VariablePool& pool, VarRef v) {
  auto info = pool.Info(v.var_id);
  return info.ok() && info.value()->dist->domain() == DomainKind::kContinuous;
}

/// Interval of the linear form excluding `target`'s term, under `bounds`.
Interval RestInterval(const LinearForm& form, VarRef target,
                      const std::map<VarRef, Interval>& bounds) {
  Interval acc = Interval::Point(form.constant);
  for (const auto& [v, coef] : form.coefficients) {
    if (v == target) continue;
    auto it = bounds.find(v);
    Interval b = it == bounds.end() ? Interval::All() : it->second;
    acc = Add(acc, Mul(Interval::Point(coef), b));
    if (acc.IsAll()) return acc;  // No information can survive.
  }
  return acc;
}

}  // namespace

const char* ConsistencyVerdictName(ConsistencyVerdict v) {
  switch (v) {
    case ConsistencyVerdict::kInconsistent:
      return "Inconsistent";
    case ConsistencyVerdict::kConsistent:
      return "Consistent";
    case ConsistencyVerdict::kWeaklyConsistent:
      return "WeaklyConsistent";
  }
  return "?";
}

Interval Tighten1(const LinearForm& form, CmpOp op, VarRef target,
                  const std::map<VarRef, Interval>& bounds) {
  auto it = form.coefficients.find(target);
  if (it == form.coefficients.end() || it->second == 0.0) {
    return Interval::All();
  }
  double a = it->second;
  Interval rest = RestInterval(form, target, bounds);
  if (rest.IsEmpty()) return Interval::Empty();

  switch (op) {
    case CmpOp::kGt:
    case CmpOp::kGe:
      // a*X + R >= 0  =>  X >= -R_hi / a   (a > 0)
      //                   X <= -R_hi / a   (a < 0)
      if (std::isinf(rest.hi)) return Interval::All();
      return a > 0 ? Interval::AtLeast(-rest.hi / a)
                   : Interval::AtMost(-rest.hi / a);
    case CmpOp::kLt:
    case CmpOp::kLe:
      // a*X + R <= 0  =>  X <= -R_lo / a   (a > 0)
      //                   X >= -R_lo / a   (a < 0)
      if (std::isinf(rest.lo)) return Interval::All();
      return a > 0 ? Interval::AtMost(-rest.lo / a)
                   : Interval::AtLeast(-rest.lo / a);
    case CmpOp::kEq:
      // X = -R / a  ranges over the interval image.
      return Div(Neg(rest), Interval::Point(a));
    case CmpOp::kNe:
      return Interval::All();
  }
  return Interval::All();
}

namespace {

/// Degree-2 polynomial coefficients in at most one variable; the extractor
/// composes these bottom-up, failing on degree overflow or mixed variables.
struct QuadForm {
  std::optional<VarRef> var;
  double a = 0.0, b = 0.0, c = 0.0;

  bool CompatibleWith(const QuadForm& other) const {
    return !var || !other.var || *var == *other.var;
  }
};

std::optional<QuadForm> ExtractQuad(const ExprPtr& e) {
  switch (e->op()) {
    case ExprOp::kConst: {
      auto d = e->value().AsDouble();
      if (!d.ok()) return std::nullopt;
      QuadForm f;
      f.c = d.value();
      return f;
    }
    case ExprOp::kVar: {
      QuadForm f;
      f.var = e->var();
      f.b = 1.0;
      return f;
    }
    case ExprOp::kNeg: {
      auto f = ExtractQuad(e->children()[0]);
      if (!f) return std::nullopt;
      f->a = -f->a;
      f->b = -f->b;
      f->c = -f->c;
      return f;
    }
    case ExprOp::kAdd:
    case ExprOp::kSub: {
      auto l = ExtractQuad(e->children()[0]);
      auto r = ExtractQuad(e->children()[1]);
      if (!l || !r || !l->CompatibleWith(*r)) return std::nullopt;
      double sign = e->op() == ExprOp::kAdd ? 1.0 : -1.0;
      QuadForm f;
      f.var = l->var ? l->var : r->var;
      f.a = l->a + sign * r->a;
      f.b = l->b + sign * r->b;
      f.c = l->c + sign * r->c;
      return f;
    }
    case ExprOp::kMul: {
      auto l = ExtractQuad(e->children()[0]);
      auto r = ExtractQuad(e->children()[1]);
      if (!l || !r || !l->CompatibleWith(*r)) return std::nullopt;
      // Degree overflow: x^2 * x etc.
      if ((l->a != 0.0 && (r->a != 0.0 || r->b != 0.0)) ||
          (r->a != 0.0 && l->b != 0.0)) {
        return std::nullopt;
      }
      QuadForm f;
      f.var = l->var ? l->var : r->var;
      f.a = l->a * r->c + l->c * r->a + l->b * r->b;
      f.b = l->b * r->c + l->c * r->b;
      f.c = l->c * r->c;
      return f;
    }
    case ExprOp::kDiv: {
      auto l = ExtractQuad(e->children()[0]);
      auto r = ExtractQuad(e->children()[1]);
      if (!l || !r || r->var || r->c == 0.0) return std::nullopt;
      l->a /= r->c;
      l->b /= r->c;
      l->c /= r->c;
      return l;
    }
    case ExprOp::kFunc:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<UnivariateQuadratic> ToUnivariateQuadratic(const ExprPtr& e) {
  auto f = ExtractQuad(e);
  if (!f || !f->var || f->a == 0.0) return std::nullopt;
  return UnivariateQuadratic{*f->var, f->a, f->b, f->c};
}

Interval Tighten2(const UnivariateQuadratic& q, CmpOp op,
                  const Interval& current) {
  // Normalize to q(x) >= 0 (strictness collapses: boundary points carry no
  // mass for continuous variables, and over-inclusion stays sound for
  // discrete ones — the sampler still checks the atoms).
  double a = q.a, b = q.b, c = q.c;
  if (op == CmpOp::kLt || op == CmpOp::kLe) {
    a = -a;
    b = -b;
    c = -c;
  } else if (op != CmpOp::kGt && op != CmpOp::kGe) {
    return current;  // Equality shapes are handled elsewhere.
  }

  double disc = b * b - 4.0 * a * c;
  if (a > 0.0) {
    if (disc <= 0.0) return current;  // Parabola nonnegative everywhere.
    double sqrt_disc = std::sqrt(disc);
    double r1 = (-b - sqrt_disc) / (2.0 * a);
    double r2 = (-b + sqrt_disc) / (2.0 * a);
    // Solution set: (-inf, r1] U [r2, inf). Intersect each branch with the
    // current interval and hull what survives.
    Interval left = current.Intersect(Interval::AtMost(r1));
    Interval right = current.Intersect(Interval::AtLeast(r2));
    return left.Hull(right);
  }
  // a < 0: solution is the segment between the roots (empty if disc < 0).
  if (disc < 0.0) return Interval::Empty();
  double sqrt_disc = std::sqrt(disc);
  // Note the root order flips for negative leading coefficient.
  double r1 = (-b + sqrt_disc) / (2.0 * a);
  double r2 = (-b - sqrt_disc) / (2.0 * a);
  return current.Intersect(Interval(std::min(r1, r2), std::max(r1, r2)));
}

ConsistencyResult CheckConsistency(const Condition& condition,
                                   const VariablePool& pool,
                                   const ConsistencyOptions& options) {
  ConsistencyResult result;
  if (condition.IsKnownFalse()) {
    result.verdict = ConsistencyVerdict::kInconsistent;
    return result;
  }

  // Seed bounds with distribution supports.
  for (const VarRef& v : condition.Variables()) {
    result.bounds[v] =
        options.use_distribution_support ? pool.Support(v) : Interval::All();
  }

  bool skipped_any = false;
  // Discrete equality bookkeeping: var -> pinned value.
  std::map<VarRef, double> pinned;
  // Disequalities recorded for conflict with pins.
  std::multimap<VarRef, double> excluded;

  struct LinearAtom {
    LinearForm form;
    CmpOp op;
  };
  std::vector<LinearAtom> linear_atoms;
  struct QuadraticAtom {
    UnivariateQuadratic quad;
    CmpOp op;
  };
  std::vector<QuadraticAtom> quadratic_atoms;
  struct IntervalAtom {
    ExprPtr diff;  // Atom is (diff op 0).
    CmpOp op;
  };
  std::vector<IntervalAtom> interval_atoms;

  for (const auto& atom : condition.atoms()) {
    if (atom.IsDeterministic()) {
      auto decided = atom.EvalDeterministic();
      if (decided.ok()) {
        if (!decided.value()) {
          result.verdict = ConsistencyVerdict::kInconsistent;
          return result;
        }
        continue;
      }
      skipped_any = true;  // Incomparable constants.
      continue;
    }

    // Identity X = X / X != X.
    if (atom.lhs()->Equals(*atom.rhs())) {
      if (atom.op() == CmpOp::kNe || atom.op() == CmpOp::kLt ||
          atom.op() == CmpOp::kGt) {
        result.verdict = ConsistencyVerdict::kInconsistent;
        return result;
      }
      continue;  // X = X, X <= X, X >= X: always true.
    }

    // (Var op Const) special handling for discrete pins / continuous
    // zero-mass equalities.
    CmpOp effective_op;
    auto vc = AsVarConst(atom, &effective_op);
    if (vc && (effective_op == CmpOp::kEq || effective_op == CmpOp::kNe)) {
      VarRef v = vc->first;
      double c = vc->second;
      if (IsContinuous(pool, v)) {
        // Rule 3 (§III-C): zero mass — treat equality as inconsistent,
        // disequality as true.
        if (effective_op == CmpOp::kEq) {
          result.verdict = ConsistencyVerdict::kInconsistent;
          return result;
        }
        continue;
      }
      if (effective_op == CmpOp::kEq) {
        auto it = pinned.find(v);
        if (it != pinned.end() && it->second != c) {
          result.verdict = ConsistencyVerdict::kInconsistent;  // Rule 2.
          return result;
        }
        pinned[v] = c;
        auto range = excluded.equal_range(v);
        for (auto e = range.first; e != range.second; ++e) {
          if (e->second == c) {
            result.verdict = ConsistencyVerdict::kInconsistent;
            return result;
          }
        }
        result.bounds[v] = result.bounds[v].Intersect(Interval::Point(c));
        if (result.bounds[v].IsEmpty()) {
          result.verdict = ConsistencyVerdict::kInconsistent;
          return result;
        }
      } else {
        auto it = pinned.find(v);
        if (it != pinned.end() && it->second == c) {
          result.verdict = ConsistencyVerdict::kInconsistent;
          return result;
        }
        excluded.emplace(v, c);
      }
      continue;
    }

    // General equality involving continuous variables: zero mass.
    if (atom.op() == CmpOp::kEq || atom.op() == CmpOp::kNe) {
      bool any_continuous = false;
      for (const VarRef& v : atom.Variables()) {
        any_continuous = any_continuous || IsContinuous(pool, v);
      }
      if (any_continuous) {
        if (atom.op() == CmpOp::kEq) {
          result.verdict = ConsistencyVerdict::kInconsistent;
          return result;
        }
        continue;  // NE over continuous: probability 1, ignore.
      }
      skipped_any = true;  // Discrete-vs-discrete (dis)equality: not handled.
      continue;
    }

    ExprPtr diff = atom.NormalizedDiff();
    int degree = diff->PolynomialDegree();
    if (degree == 1) {
      auto form = diff->ToLinearForm();
      if (form.ok()) {
        linear_atoms.push_back({std::move(form).value(), atom.op()});
        continue;
      }
    }
    if (degree == 2) {
      // tighten2: univariate quadratics solve exactly via the quadratic
      // formula ("all polynomial equations may be handled using a similar
      // ... enumeration of coefficients").
      if (auto quad = ToUnivariateQuadratic(diff)) {
        quadratic_atoms.push_back({*quad, atom.op()});
        continue;
      }
    }
    // Remaining nonlinear (or non-polynomial) inequality: no tightening
    // defined (Alg. 3.2 line 11 "skip E"), but interval evaluation can
    // still refute it under the final bounds.
    interval_atoms.push_back({std::move(diff), atom.op()});
    skipped_any = true;
  }

  // Fixpoint propagation over the linear atoms (Alg. 3.2 lines 6-12).
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (const auto& la : linear_atoms) {
      for (const auto& [v, coef] : la.form.coefficients) {
        (void)coef;
        Interval implied = Tighten1(la.form, la.op, v, result.bounds);
        Interval current = result.bounds.count(v) ? result.bounds[v]
                                                  : Interval::All();
        Interval next = current.Intersect(implied);
        if (next.IsEmpty()) {
          result.verdict = ConsistencyVerdict::kInconsistent;
          return result;
        }
        bool improved =
            (next.lo > current.lo + options.min_progress ||
             next.hi < current.hi - options.min_progress) ||
            (std::isinf(current.lo) && !std::isinf(next.lo)) ||
            (std::isinf(current.hi) && !std::isinf(next.hi));
        if (improved) {
          result.bounds[v] = next;
          changed = true;
        }
      }
    }
    for (const auto& qa : quadratic_atoms) {
      const VarRef v = qa.quad.var;
      Interval current =
          result.bounds.count(v) ? result.bounds[v] : Interval::All();
      Interval next = Tighten2(qa.quad, qa.op, current);
      if (next.IsEmpty()) {
        result.verdict = ConsistencyVerdict::kInconsistent;
        return result;
      }
      bool improved =
          (next.lo > current.lo + options.min_progress ||
           next.hi < current.hi - options.min_progress) ||
          (std::isinf(current.lo) && !std::isinf(next.lo)) ||
          (std::isinf(current.hi) && !std::isinf(next.hi));
      if (improved) {
        result.bounds[v] = next;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Interval refutation of the skipped nonlinear atoms. EvalInterval
  // returns an enclosure of the true range, so an enclosure that cannot
  // satisfy the comparison is a sound inconsistency proof.
  auto lookup = [&](VarRef v) {
    auto it = result.bounds.find(v);
    return it == result.bounds.end() ? Interval::All() : it->second;
  };
  for (const auto& ia : interval_atoms) {
    Interval range = ia.diff->EvalInterval(lookup);
    if (range.IsEmpty()) {
      result.verdict = ConsistencyVerdict::kInconsistent;
      return result;
    }
    bool refuted = false;
    switch (ia.op) {
      case CmpOp::kGt:
        refuted = range.hi <= 0.0;
        break;
      case CmpOp::kGe:
        refuted = range.hi < 0.0;
        break;
      case CmpOp::kLt:
        refuted = range.lo >= 0.0;
        break;
      case CmpOp::kLe:
        refuted = range.lo > 0.0;
        break;
      default:
        break;
    }
    if (refuted) {
      result.verdict = ConsistencyVerdict::kInconsistent;
      return result;
    }
  }

  // Drop entries that carry no information beyond "anything".
  for (auto it = result.bounds.begin(); it != result.bounds.end();) {
    if (it->second.IsAll()) {
      it = result.bounds.erase(it);
    } else {
      ++it;
    }
  }

  result.verdict = skipped_any ? ConsistencyVerdict::kWeaklyConsistent
                               : ConsistencyVerdict::kConsistent;
  (void)kInf;
  return result;
}

}  // namespace pip
