/// \file independence.h
/// \brief Minimal independent subsets of constraints (paper §IV-A(c)).
///
/// "Prior to sampling, PIP subdivides constraint predicates into minimal
/// independent subsets; sets of predicates sharing no common variables ...
/// variables representing distinct values from a multivariate distribution
/// are treated as the set of all of their component variables."
///
/// Because input variables are independent across ids (dependence only
/// enters through shared ids / multivariate components), groups that share
/// no variable id are statistically independent and can be sampled — and
/// their acceptance probabilities multiplied — separately. Sampling fewer
/// variables per rejection loop both reduces the work lost to a rejection
/// and makes rejections rarer.

#ifndef PIP_CONSTRAINTS_INDEPENDENCE_H_
#define PIP_CONSTRAINTS_INDEPENDENCE_H_

#include <vector>

#include "src/expr/condition.h"

namespace pip {

/// \brief One minimal independent subset.
struct VariableGroup {
  /// Every variable component in the group.
  VarSet vars;
  /// Indices into the condition's atom list of the atoms constraining this
  /// group. Empty for groups induced only by the target expression.
  std::vector<size_t> atom_indices;
  /// True when at least one target-expression variable is in the group —
  /// Alg. 4.3 samples only these groups for the expectation itself; the
  /// others matter only for the row probability.
  bool touches_target = false;
};

/// Partitions the variables of `condition` (plus `target_vars`, the
/// variables of the expression being measured) into minimal independent
/// subsets. Components of one multivariate variable (same var_id) always
/// land in the same group.
std::vector<VariableGroup> PartitionIndependent(const Condition& condition,
                                                const VarSet& target_vars);

}  // namespace pip

#endif  // PIP_CONSTRAINTS_INDEPENDENCE_H_
