/// \file consistency.h
/// \brief Condition consistency checking (paper Alg. 3.2).
///
/// Conjoining contradictory atoms (selection, product, difference) can make
/// a row's condition unsatisfiable; such rows exist in no world and may be
/// removed. Deciding consistency in general is hard, so PIP detects the
/// straightforward cases (§III-C) and leaves the rest to the Monte Carlo
/// phase:
///   1. Variable-free conditions are decided outright (by Condition).
///   2. X = c1 AND X = c2 with c1 != c2 is inconsistent (discrete).
///   3. Equalities over continuous variables carry zero probability mass
///      and are treated as inconsistent; disequalities as true.
///   4. Linear atoms drive interval bound propagation to a fixpoint
///      (tighten1); an empty bound set is inconsistent. Nonlinear
///      polynomial atoms are refuted by interval evaluation when possible.
///
/// The verdict is *strong* when no atom had to be skipped and *weak*
/// otherwise — exactly the bold/italic distinction of Alg. 3.2. The bounds
/// map computed here is reused by the CDF-constrained sampler (Alg. 4.3
/// line 7 "save the bounds map S").

#ifndef PIP_CONSTRAINTS_CONSISTENCY_H_
#define PIP_CONSTRAINTS_CONSISTENCY_H_

#include <map>

#include "src/common/interval.h"
#include "src/dist/variable_pool.h"
#include "src/expr/condition.h"

namespace pip {

enum class ConsistencyVerdict {
  kInconsistent,        ///< No satisfying assignment (or zero mass). Strong.
  kConsistent,          ///< All atoms processed; no contradiction found. Strong
                        ///< in the Alg. 3.2 sense (still a semi-decision).
  kWeaklyConsistent,    ///< Some atoms skipped; no contradiction found.
};

const char* ConsistencyVerdictName(ConsistencyVerdict v);

/// \brief Outcome of a consistency check.
struct ConsistencyResult {
  ConsistencyVerdict verdict = ConsistencyVerdict::kConsistent;
  /// Refined per-variable bounds (only entries tighter than the variable's
  /// support are guaranteed to be present; missing = unconstrained).
  std::map<VarRef, Interval> bounds;

  bool inconsistent() const {
    return verdict == ConsistencyVerdict::kInconsistent;
  }

  /// Bounds for `v`, defaulting to the full line.
  Interval BoundsFor(VarRef v) const {
    auto it = bounds.find(v);
    return it == bounds.end() ? Interval::All() : it->second;
  }
};

/// \brief Options for CheckConsistency.
struct ConsistencyOptions {
  /// Fixpoint iteration cap (Alg. 3.2's while loop; each pass is O(atoms)).
  int max_iterations = 16;
  /// Minimum bound improvement that counts as progress.
  double min_progress = 1e-12;
  /// Seed the bounds map with each variable's distribution support
  /// (a sound strengthening of the paper's [-inf, inf] start).
  bool use_distribution_support = true;
};

/// Checks the consistency of a conjunction of atoms. `pool` resolves which
/// variables are discrete vs continuous and their supports.
ConsistencyResult CheckConsistency(const Condition& condition,
                                   const VariablePool& pool,
                                   const ConsistencyOptions& options = {});

/// tighten1 (Alg. 3.2): given a *linear* atom `diff (op) 0` in normal form
/// and current bounds for the other variables, returns the implied bound
/// interval for `target`. Returns All() when no information is derivable
/// (e.g. another variable is unbounded on the relevant side).
Interval Tighten1(const LinearForm& form, CmpOp op, VarRef target,
                  const std::map<VarRef, Interval>& bounds);

/// \brief A univariate quadratic a*x^2 + b*x + c in one variable.
struct UnivariateQuadratic {
  VarRef var;
  double a = 0.0, b = 0.0, c = 0.0;
};

/// Extracts a univariate quadratic from an expression that is polynomial
/// of degree <= 2 in exactly one variable. Returns nullopt for any other
/// shape (multi-variable, higher degree, non-polynomial).
std::optional<UnivariateQuadratic> ToUnivariateQuadratic(const ExprPtr& expr);

/// tighten2 (the paper's "similar, albeit more complex enumeration of
/// coefficients" for degree-2 atoms): the set of x in `current` satisfying
/// (a*x^2 + b*x + c) (op) 0, hulled into an interval. Returns Empty() when
/// the atom is unsatisfiable within `current` — a sound inconsistency
/// proof. Strict and non-strict operators are treated alike (closed
/// intervals; boundary points carry no mass for continuous variables).
Interval Tighten2(const UnivariateQuadratic& q, CmpOp op,
                  const Interval& current);

}  // namespace pip

#endif  // PIP_CONSTRAINTS_CONSISTENCY_H_
