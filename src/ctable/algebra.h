/// \file algebra.h
/// \brief Relational algebra on c-tables (paper Fig. 1).
///
/// Every operator is purely symbolic: no sampling, no reference to the
/// joint distribution p. Selection predicates whose atoms are decidable
/// (deterministic) filter rows immediately; atoms over random variables
/// are conjoined into the row's local condition. This is exactly the
/// "lossless symbolic phase" that lets PIP defer integration until the
/// full expression is known.

#ifndef PIP_CTABLE_ALGEBRA_H_
#define PIP_CTABLE_ALGEBRA_H_

#include <string>
#include <vector>

#include "src/ctable/col_expr.h"
#include "src/ctable/ctable.h"
#include "src/dist/variable_pool.h"

namespace pip {

/// sigma_psi(R): conjoins psi[r] onto each row's condition (Fig. 1).
/// Rows whose condition becomes decidably false are dropped.
StatusOr<CTable> Select(const CTable& in, const ColPredicate& pred);

/// pi_A(R): generalized projection — each target may be any column
/// expression, so this subsumes SQL target-clause arithmetic.
StatusOr<CTable> Project(const CTable& in,
                         const std::vector<NamedColExpr>& targets);

/// R x S: concatenates tuples and conjoins conditions (Fig. 1). Right-hand
/// columns colliding with left-hand names get `rhs_prefix.` prepended.
StatusOr<CTable> Product(const CTable& left, const CTable& right,
                         const std::string& rhs_prefix = "r");

/// Theta-join: Product followed by Select.
StatusOr<CTable> Join(const CTable& left, const CTable& right,
                      const ColPredicate& pred,
                      const std::string& rhs_prefix = "r");

/// R union S (bag union). Schemas must have equal arity; the left schema's
/// names win.
StatusOr<CTable> Union(const CTable& left, const CTable& right);

/// distinct(R): coalesces rows with identical data *and* identical
/// condition (phi OR phi = phi). Rows with identical data but different
/// conditions remain separate — they are the bag-encoded disjuncts of
/// Fig. 1's "OR of phi"; aconf() integrates such groups jointly.
StatusOr<CTable> Distinct(const CTable& in);

/// R - S (Fig. 1): for each distinct row r of R, conjoins the negation of
/// the conditions of all matching rows of S. Negations of conjunctions
/// expand to mutually exclusive DNF disjuncts, each emitted as its own row
/// (bag encoding).
StatusOr<CTable> Difference(const CTable& left, const CTable& right);

/// One group of a group-by partition.
struct CTableGroup {
  Row key;      ///< Values of the grouping columns.
  CTable rows;  ///< Member rows (full schema).
};

/// Partitions by deterministic grouping columns. InvalidArgument if any
/// grouping cell is probabilistic: "grouping by (continuously) uncertain
/// columns [is] of doubtful value" (paper §II-C) — explode finite discrete
/// variables first if needed.
StatusOr<std::vector<CTableGroup>> GroupBy(
    const CTable& in, const std::vector<std::string>& group_columns);

/// Repair-key style explosion (paper §III-C, footnote 2): rewrites each row
/// mentioning finite-domain discrete variables into one row per valuation,
/// substituting the value into the cells and guarding the row with
/// mutually exclusive (X = v) atoms. `max_expansion` bounds the blow-up
/// per row. After explosion, discrete-variable columns are constants and
/// deterministic optimizers can filter them early.
StatusOr<CTable> ExplodeDiscrete(const CTable& in, const VariablePool& pool,
                                 size_t max_expansion = 4096);

}  // namespace pip

#endif  // PIP_CTABLE_ALGEBRA_H_
