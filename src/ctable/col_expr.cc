#include "src/ctable/col_expr.h"

#include <sstream>

namespace pip {

ColExprPtr ColExpr::Make(Kind kind, std::vector<ColExprPtr> children) {
  auto e = std::shared_ptr<ColExpr>(new ColExpr());
  e->kind_ = kind;
  e->children_ = std::move(children);
  return e;
}

ColExprPtr ColExpr::Column(std::string name) {
  auto e = std::shared_ptr<ColExpr>(new ColExpr());
  e->kind_ = Kind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ColExprPtr ColExpr::Literal(Value v) {
  auto e = std::shared_ptr<ColExpr>(new ColExpr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ColExprPtr ColExpr::Embed(ExprPtr expr) {
  auto e = std::shared_ptr<ColExpr>(new ColExpr());
  e->kind_ = Kind::kEmbed;
  e->embedded_ = std::move(expr);
  return e;
}

ColExprPtr ColExpr::Add(ColExprPtr l, ColExprPtr r) {
  return Make(Kind::kAdd, {std::move(l), std::move(r)});
}
ColExprPtr ColExpr::Sub(ColExprPtr l, ColExprPtr r) {
  return Make(Kind::kSub, {std::move(l), std::move(r)});
}
ColExprPtr ColExpr::Mul(ColExprPtr l, ColExprPtr r) {
  return Make(Kind::kMul, {std::move(l), std::move(r)});
}
ColExprPtr ColExpr::Div(ColExprPtr l, ColExprPtr r) {
  return Make(Kind::kDiv, {std::move(l), std::move(r)});
}
ColExprPtr ColExpr::Neg(ColExprPtr x) {
  return Make(Kind::kNeg, {std::move(x)});
}

ColExprPtr ColExpr::Func(FuncKind f, ColExprPtr a) {
  auto e = std::shared_ptr<ColExpr>(new ColExpr());
  e->kind_ = Kind::kFunc;
  e->func_ = f;
  e->children_ = {std::move(a)};
  return e;
}

ColExprPtr ColExpr::Func(FuncKind f, ColExprPtr a, ColExprPtr b) {
  auto e = std::shared_ptr<ColExpr>(new ColExpr());
  e->kind_ = Kind::kFunc;
  e->func_ = f;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

StatusOr<ExprPtr> ColExpr::Bind(const Schema& schema,
                                const std::vector<ExprPtr>& cells) const {
  switch (kind_) {
    case Kind::kColumn: {
      PIP_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column_));
      return cells[idx];
    }
    case Kind::kLiteral:
      return Expr::Constant(literal_);
    case Kind::kEmbed:
      return embedded_;
    default:
      break;
  }
  std::vector<ExprPtr> bound;
  bound.reserve(children_.size());
  for (const auto& c : children_) {
    PIP_ASSIGN_OR_RETURN(ExprPtr b, c->Bind(schema, cells));
    bound.push_back(std::move(b));
  }
  switch (kind_) {
    case Kind::kAdd:
      return Expr::Add(bound[0], bound[1]);
    case Kind::kSub:
      return Expr::Sub(bound[0], bound[1]);
    case Kind::kMul:
      return Expr::Mul(bound[0], bound[1]);
    case Kind::kDiv:
      return Expr::Div(bound[0], bound[1]);
    case Kind::kNeg:
      return Expr::Neg(bound[0]);
    case Kind::kFunc:
      return bound.size() == 1 ? Expr::Func(func_, bound[0])
                               : Expr::Func(func_, bound[0], bound[1]);
    default:
      return Status::Internal("unexpected ColExpr kind");
  }
}

void ColExpr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == Kind::kColumn) {
    out->push_back(column_);
    return;
  }
  for (const auto& c : children_) c->CollectColumns(out);
}

std::string ColExpr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return column_;
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kEmbed:
      return embedded_->ToString();
    case Kind::kNeg:
      return "-(" + children_[0]->ToString() + ")";
    case Kind::kAdd:
      return "(" + children_[0]->ToString() + " + " + children_[1]->ToString() +
             ")";
    case Kind::kSub:
      return "(" + children_[0]->ToString() + " - " + children_[1]->ToString() +
             ")";
    case Kind::kMul:
      return "(" + children_[0]->ToString() + " * " + children_[1]->ToString() +
             ")";
    case Kind::kDiv:
      return "(" + children_[0]->ToString() + " / " + children_[1]->ToString() +
             ")";
    case Kind::kFunc: {
      std::string s = std::string(FuncKindName(func_)) + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) s += ", ";
        s += children_[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

StatusOr<ConstraintAtom> ColAtom::Bind(
    const Schema& schema, const std::vector<ExprPtr>& cells) const {
  PIP_ASSIGN_OR_RETURN(ExprPtr l, lhs->Bind(schema, cells));
  PIP_ASSIGN_OR_RETURN(ExprPtr r, rhs->Bind(schema, cells));
  return ConstraintAtom(std::move(l), op, std::move(r));
}

std::string ColAtom::ToString() const {
  return lhs->ToString() + " " + CmpOpName(op) + " " + rhs->ToString();
}

std::string ColPredicate::ToString() const {
  if (atoms_.empty()) return "TRUE";
  std::ostringstream os;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) os << " AND ";
    os << atoms_[i].ToString();
  }
  return os.str();
}

}  // namespace pip
