/// \file col_expr.h
/// \brief Column-level expressions: the plan language of queries.
///
/// Relational operators in the paper substitute row fields into predicates
/// ("psi[r] denotes psi with each reference to a column A of R replaced by
/// r.A", Fig. 1). A ColExpr is exactly such a column-referencing
/// expression: binding it against a c-table row substitutes the row's
/// (possibly symbolic) cells and yields an equation over random variables.
/// Selection predicates are conjunctions of ColAtoms.

#ifndef PIP_CTABLE_COL_EXPR_H_
#define PIP_CTABLE_COL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/expr/atom.h"
#include "src/expr/expr.h"
#include "src/types/schema.h"

namespace pip {

class ColExpr;
using ColExprPtr = std::shared_ptr<const ColExpr>;

/// \brief An expression over column references, literals and embedded
/// equations.
class ColExpr {
 public:
  enum class Kind { kColumn, kLiteral, kEmbed, kAdd, kSub, kMul, kDiv, kNeg, kFunc };

  // -- Builders ---------------------------------------------------------

  /// Reference to a column by name.
  static ColExprPtr Column(std::string name);
  /// A constant literal.
  static ColExprPtr Literal(Value v);
  static ColExprPtr Literal(double v) { return Literal(Value(v)); }
  static ColExprPtr Literal(int64_t v) { return Literal(Value(v)); }
  static ColExprPtr Literal(const char* v) { return Literal(Value(v)); }
  /// Embeds an already-built equation (e.g. a freshly created random
  /// variable introduced by the query's target clause).
  static ColExprPtr Embed(ExprPtr e);
  static ColExprPtr Add(ColExprPtr l, ColExprPtr r);
  static ColExprPtr Sub(ColExprPtr l, ColExprPtr r);
  static ColExprPtr Mul(ColExprPtr l, ColExprPtr r);
  static ColExprPtr Div(ColExprPtr l, ColExprPtr r);
  static ColExprPtr Neg(ColExprPtr e);
  static ColExprPtr Func(FuncKind f, ColExprPtr a);
  static ColExprPtr Func(FuncKind f, ColExprPtr a, ColExprPtr b);

  Kind kind() const { return kind_; }
  const std::string& column() const { return column_; }
  const Value& literal() const { return literal_; }
  const ExprPtr& embedded() const { return embedded_; }
  FuncKind func() const { return func_; }
  const std::vector<ColExprPtr>& children() const { return children_; }

  /// Substitutes the row's cells for column references, producing an
  /// equation. NotFound if a referenced column is missing from the schema.
  StatusOr<ExprPtr> Bind(const Schema& schema,
                         const std::vector<ExprPtr>& cells) const;

  /// Column names referenced (transitively).
  void CollectColumns(std::vector<std::string>* out) const;

  std::string ToString() const;

 private:
  ColExpr() = default;

  static ColExprPtr Make(Kind kind, std::vector<ColExprPtr> children);

  Kind kind_ = Kind::kLiteral;
  std::string column_;
  Value literal_;
  ExprPtr embedded_;
  FuncKind func_ = FuncKind::kExp;
  std::vector<ColExprPtr> children_;
};

/// \brief A named projection/map target.
struct NamedColExpr {
  std::string name;
  ColExprPtr expr;
};

/// \brief One comparison between two column expressions.
struct ColAtom {
  ColExprPtr lhs;
  CmpOp op;
  ColExprPtr rhs;

  /// Binds both sides against a row, yielding a constraint atom.
  StatusOr<ConstraintAtom> Bind(const Schema& schema,
                                const std::vector<ExprPtr>& cells) const;

  std::string ToString() const;
};

/// \brief A conjunction of column-level comparisons (a WHERE clause).
class ColPredicate {
 public:
  ColPredicate() = default;
  ColPredicate(std::initializer_list<ColAtom> atoms) : atoms_(atoms) {}

  ColPredicate& And(ColExprPtr lhs, CmpOp op, ColExprPtr rhs) {
    atoms_.push_back({std::move(lhs), op, std::move(rhs)});
    return *this;
  }
  ColPredicate& And(ColAtom atom) {
    atoms_.push_back(std::move(atom));
    return *this;
  }

  const std::vector<ColAtom>& atoms() const { return atoms_; }
  bool empty() const { return atoms_.empty(); }

  std::string ToString() const;

 private:
  std::vector<ColAtom> atoms_;
};

// Sugar for plan construction.
inline ColExprPtr operator+(ColExprPtr a, ColExprPtr b) {
  return ColExpr::Add(std::move(a), std::move(b));
}
inline ColExprPtr operator-(ColExprPtr a, ColExprPtr b) {
  return ColExpr::Sub(std::move(a), std::move(b));
}
inline ColExprPtr operator*(ColExprPtr a, ColExprPtr b) {
  return ColExpr::Mul(std::move(a), std::move(b));
}
inline ColExprPtr operator/(ColExprPtr a, ColExprPtr b) {
  return ColExpr::Div(std::move(a), std::move(b));
}
inline ColAtom operator<(ColExprPtr a, ColExprPtr b) {
  return {std::move(a), CmpOp::kLt, std::move(b)};
}
inline ColAtom operator<=(ColExprPtr a, ColExprPtr b) {
  return {std::move(a), CmpOp::kLe, std::move(b)};
}
inline ColAtom operator>(ColExprPtr a, ColExprPtr b) {
  return {std::move(a), CmpOp::kGt, std::move(b)};
}
inline ColAtom operator>=(ColExprPtr a, ColExprPtr b) {
  return {std::move(a), CmpOp::kGe, std::move(b)};
}
inline ColAtom operator==(ColExprPtr a, ColExprPtr b) {
  return {std::move(a), CmpOp::kEq, std::move(b)};
}
inline ColAtom operator!=(ColExprPtr a, ColExprPtr b) {
  return {std::move(a), CmpOp::kNe, std::move(b)};
}

}  // namespace pip

#endif  // PIP_CTABLE_COL_EXPR_H_
