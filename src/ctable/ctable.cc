#include "src/ctable/ctable.h"

#include <sstream>

namespace pip {

bool CTableRow::IsDeterministic() const {
  if (!condition.IsDeterministic()) return false;
  for (const auto& c : cells) {
    if (!c->IsDeterministic()) return false;
  }
  return true;
}

VarSet CTableRow::Variables() const {
  VarSet out;
  for (const auto& c : cells) c->CollectVariables(&out);
  condition.CollectVariables(&out);
  return out;
}

CTable CTable::FromTable(const Table& table) {
  CTable out(table.schema());
  for (const auto& row : table.rows()) {
    CTableRow crow;
    crow.cells.reserve(row.size());
    for (const auto& v : row) crow.cells.push_back(Expr::Constant(v));
    PIP_CHECK(out.Append(std::move(crow)).ok());
  }
  return out;
}

Status CTable::Append(CTableRow row) {
  if (row.cells.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.cells.size()) +
        " does not match schema " + schema_.ToString());
  }
  if (row.condition.IsKnownFalse()) return Status::OK();
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status CTable::Append(std::vector<ExprPtr> cells, Condition condition) {
  CTableRow row;
  row.cells = std::move(cells);
  row.condition = std::move(condition);
  return Append(std::move(row));
}

StatusOr<Table> CTable::Instantiate(const Assignment& a) const {
  Table out(schema_);
  for (const auto& row : rows_) {
    PIP_ASSIGN_OR_RETURN(bool present, row.condition.Eval(a));
    if (!present) continue;
    Row values;
    values.reserve(row.cells.size());
    for (const auto& cell : row.cells) {
      PIP_ASSIGN_OR_RETURN(Value v, cell->Eval(a));
      values.push_back(std::move(v));
    }
    PIP_RETURN_IF_ERROR(out.Append(std::move(values)));
  }
  return out;
}

VarSet CTable::Variables() const {
  VarSet out;
  for (const auto& row : rows_) {
    for (const auto& c : row.cells) c->CollectVariables(&out);
    row.condition.CollectVariables(&out);
  }
  return out;
}

std::string CTable::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " + condition\n";
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    os << "  (";
    for (size_t c = 0; c < rows_[r].cells.size(); ++c) {
      if (c) os << ", ";
      os << rows_[r].cells[c]->ToString();
    }
    os << ") | " << rows_[r].condition.ToString() << "\n";
  }
  if (shown < rows_.size()) {
    os << "  ... (" << rows_.size() - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace pip
