#include "src/ctable/algebra.h"

#include <unordered_map>

namespace pip {

namespace {

/// Structural fingerprint of a row's data cells (not its condition).
size_t HashCells(const std::vector<ExprPtr>& cells) {
  size_t h = 0x811c9dc5ULL;
  for (const auto& c : cells) {
    h ^= c->Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool CellsEqual(const std::vector<ExprPtr>& a, const std::vector<ExprPtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->Equals(*b[i])) return false;
  }
  return true;
}

}  // namespace

StatusOr<CTable> Select(const CTable& in, const ColPredicate& pred) {
  CTable out(in.schema());
  // Selection preserves row identity (rows are only filtered or get a
  // tighter condition), so index provenance carries through; the changed
  // condition is part of the index's exact result key, never of the row
  // identity.
  out.SetProvenance(in.table_id(), in.generation());
  for (const auto& row : in.rows()) {
    Condition cond = row.condition;
    bool dropped = false;
    for (const auto& atom : pred.atoms()) {
      PIP_ASSIGN_OR_RETURN(ConstraintAtom bound,
                           atom.Bind(in.schema(), row.cells));
      cond.AddAtom(std::move(bound));
      if (cond.IsKnownFalse()) {
        dropped = true;
        break;
      }
    }
    if (dropped) continue;
    CTableRow copy = row;
    copy.condition = std::move(cond);
    PIP_RETURN_IF_ERROR(out.Append(std::move(copy)));
  }
  return out;
}

StatusOr<CTable> Project(const CTable& in,
                         const std::vector<NamedColExpr>& targets) {
  std::vector<std::string> names;
  names.reserve(targets.size());
  for (const auto& t : targets) names.push_back(t.name);
  CTable out((Schema(std::move(names))));
  // Projection is row-preserving: provenance carries through so the
  // index can serve the projected cells' expectations.
  out.SetProvenance(in.table_id(), in.generation());
  for (const auto& row : in.rows()) {
    CTableRow projected;
    projected.condition = row.condition;
    projected.row_id = row.row_id;
    projected.cells.reserve(targets.size());
    for (const auto& t : targets) {
      PIP_ASSIGN_OR_RETURN(ExprPtr cell, t.expr->Bind(in.schema(), row.cells));
      projected.cells.push_back(std::move(cell));
    }
    PIP_RETURN_IF_ERROR(out.Append(std::move(projected)));
  }
  return out;
}

StatusOr<CTable> Product(const CTable& left, const CTable& right,
                         const std::string& rhs_prefix) {
  CTable out(left.schema().Concat(right.schema(), rhs_prefix));
  for (const auto& lrow : left.rows()) {
    for (const auto& rrow : right.rows()) {
      CTableRow combined;
      combined.cells = lrow.cells;
      combined.cells.insert(combined.cells.end(), rrow.cells.begin(),
                            rrow.cells.end());
      combined.condition = lrow.condition.And(rrow.condition);
      if (combined.condition.IsKnownFalse()) continue;
      PIP_RETURN_IF_ERROR(out.Append(std::move(combined)));
    }
  }
  return out;
}

StatusOr<CTable> Join(const CTable& left, const CTable& right,
                      const ColPredicate& pred,
                      const std::string& rhs_prefix) {
  PIP_ASSIGN_OR_RETURN(CTable prod, Product(left, right, rhs_prefix));
  return Select(prod, pred);
}

StatusOr<CTable> Union(const CTable& left, const CTable& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::InvalidArgument(
        "UNION arity mismatch: " + left.schema().ToString() + " vs " +
        right.schema().ToString());
  }
  CTable out(left.schema());
  for (const auto& row : left.rows()) PIP_RETURN_IF_ERROR(out.Append(row));
  for (const auto& row : right.rows()) PIP_RETURN_IF_ERROR(out.Append(row));
  return out;
}

StatusOr<CTable> Distinct(const CTable& in) {
  CTable out(in.schema());
  // Buckets of already-emitted rows by cell fingerprint; within a bucket,
  // rows with the same data AND same condition are coalesced (phi OR phi
  // = phi); same data with different conditions stay as bag-encoded
  // disjuncts.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (const auto& row : in.rows()) {
    size_t h = HashCells(row.cells);
    auto& bucket = buckets[h];
    bool duplicate = false;
    for (size_t idx : bucket) {
      const CTableRow& seen = out.row(idx);
      if (CellsEqual(seen.cells, row.cells) &&
          seen.condition.Equals(row.condition)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(out.num_rows());
    PIP_RETURN_IF_ERROR(out.Append(row));
  }
  return out;
}

StatusOr<CTable> Difference(const CTable& left, const CTable& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::InvalidArgument(
        "EXCEPT arity mismatch: " + left.schema().ToString() + " vs " +
        right.schema().ToString());
  }
  PIP_ASSIGN_OR_RETURN(CTable dl, Distinct(left));
  PIP_ASSIGN_OR_RETURN(CTable dr, Distinct(right));

  std::unordered_map<size_t, std::vector<size_t>> rhs_buckets;
  for (size_t i = 0; i < dr.num_rows(); ++i) {
    rhs_buckets[HashCells(dr.row(i).cells)].push_back(i);
  }

  CTable out(left.schema());
  for (const auto& lrow : dl.rows()) {
    std::vector<size_t> matches;
    auto it = rhs_buckets.find(HashCells(lrow.cells));
    if (it != rhs_buckets.end()) {
      for (size_t idx : it->second) {
        if (CellsEqual(dr.row(idx).cells, lrow.cells)) matches.push_back(idx);
      }
    }
    if (matches.empty()) {
      PIP_RETURN_IF_ERROR(out.Append(lrow));
      continue;
    }
    // Result condition: phi AND NOT(pi_1) AND ... AND NOT(pi_k). Each
    // NOT(pi_i) is a DNF of mutually exclusive disjuncts; their conjunction
    // expands as a cross product, each combination becoming one bag row.
    std::vector<Condition> partial = {lrow.condition};
    for (size_t idx : matches) {
      std::vector<Condition> negated = dr.row(idx).condition.NegateToDnf();
      if (negated.empty()) {
        // NOT(TRUE): the S row exists in every world; L row never survives.
        partial.clear();
        break;
      }
      std::vector<Condition> next;
      for (const auto& p : partial) {
        for (const auto& n : negated) {
          Condition combined = p.And(n);
          if (!combined.IsKnownFalse()) next.push_back(std::move(combined));
        }
      }
      partial = std::move(next);
      if (partial.empty()) break;
    }
    for (auto& cond : partial) {
      CTableRow row;
      row.cells = lrow.cells;
      row.condition = std::move(cond);
      PIP_RETURN_IF_ERROR(out.Append(std::move(row)));
    }
  }
  return out;
}

StatusOr<std::vector<CTableGroup>> GroupBy(
    const CTable& in, const std::vector<std::string>& group_columns) {
  std::vector<size_t> key_indices;
  key_indices.reserve(group_columns.size());
  for (const auto& name : group_columns) {
    PIP_ASSIGN_OR_RETURN(size_t idx, in.schema().IndexOf(name));
    key_indices.push_back(idx);
  }

  std::vector<CTableGroup> groups;
  std::unordered_map<size_t, std::vector<size_t>> index;  // hash -> groups
  for (const auto& row : in.rows()) {
    Row key;
    key.reserve(key_indices.size());
    for (size_t idx : key_indices) {
      const ExprPtr& cell = row.cells[idx];
      if (!cell->IsConstant()) {
        return Status::InvalidArgument(
            "group-by column '" + in.schema().name(idx) +
            "' holds a probabilistic value (" + cell->ToString() +
            "); explode discrete variables first");
      }
      key.push_back(cell->value());
    }
    size_t h = 0;
    for (const auto& v : key) h = h * 1099511628211ULL + v.Hash();
    auto& candidates = index[h];
    CTableGroup* group = nullptr;
    for (size_t gi : candidates) {
      if (groups[gi].key == key) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      candidates.push_back(groups.size());
      CTable members(in.schema());
      // Groups partition the input's rows, so each group keeps the
      // source provenance (rows carry their original ids).
      members.SetProvenance(in.table_id(), in.generation());
      groups.push_back(CTableGroup{std::move(key), std::move(members)});
      group = &groups.back();
    }
    PIP_RETURN_IF_ERROR(group->rows.Append(row));
  }
  return groups;
}

StatusOr<CTable> ExplodeDiscrete(const CTable& in, const VariablePool& pool,
                                 size_t max_expansion) {
  CTable out(in.schema());
  // Domains depend only on the variable, so materialize each at most once
  // for the whole table. The DomainSize probe rejects over-budget domains
  // first — for builtins with closed-form sizes (e.g. a 1e6-rank Zipf)
  // without ever building the vector; plugins on the default DomainSize
  // still materialize once to measure. An unusable entry (empty values)
  // marks "leave this variable symbolic".
  std::unordered_map<uint64_t, std::vector<double>> domain_cache;
  auto domain_for =
      [&](uint64_t var_id) -> const std::vector<double>& {
    auto it = domain_cache.find(var_id);
    if (it != domain_cache.end()) return it->second;
    std::vector<double> values;
    auto info = pool.Info(var_id);
    if (info.ok() && info.value()->num_components == 1) {
      auto size = info.value()->dist->DomainSize(info.value()->params);
      if (size.ok() && size.value() > 0 && size.value() <= max_expansion) {
        auto domain = info.value()->dist->DomainValues(info.value()->params);
        if (domain.ok()) values = std::move(domain).value();
      }
    }
    return domain_cache.emplace(var_id, std::move(values)).first->second;
  };
  for (const auto& row : in.rows()) {
    // Collect the univariate finite-discrete variables this row mentions.
    std::vector<VarRef> discrete;
    std::vector<const std::vector<double>*> domains;
    size_t total = 1;
    bool explodable = true;
    for (const VarRef& v : row.Variables()) {
      if (!pool.IsFiniteDiscrete(v.var_id)) continue;
      const std::vector<double>& domain = domain_for(v.var_id);
      if (domain.empty()) continue;
      if (total > max_expansion / domain.size()) {
        explodable = false;
        break;
      }
      total *= domain.size();
      discrete.push_back(v);
      domains.push_back(&domain);
    }
    if (!explodable || discrete.empty()) {
      PIP_RETURN_IF_ERROR(out.Append(row));
      continue;
    }
    // Enumerate the cartesian product of valuations.
    std::vector<size_t> cursor(discrete.size(), 0);
    while (true) {
      Assignment valuation;
      for (size_t i = 0; i < discrete.size(); ++i) {
        valuation.Set(discrete[i], (*domains[i])[cursor[i]]);
      }
      CTableRow exploded;
      exploded.cells.reserve(row.cells.size());
      for (const auto& cell : row.cells) {
        exploded.cells.push_back(Expr::Substitute(cell, valuation));
      }
      Condition cond;
      for (const auto& atom : row.condition.atoms()) {
        cond.AddAtom(ConstraintAtom(Expr::Substitute(atom.lhs(), valuation),
                                    atom.op(),
                                    Expr::Substitute(atom.rhs(), valuation)));
        if (cond.IsKnownFalse()) break;
      }
      if (!cond.IsKnownFalse()) {
        // Guard with mutually exclusive (X = v) atoms.
        for (size_t i = 0; i < discrete.size(); ++i) {
          cond.AddAtom(ConstraintAtom(
              Expr::Var(discrete[i]), CmpOp::kEq,
              Expr::Constant((*domains[i])[cursor[i]])));
        }
        exploded.condition = std::move(cond);
        PIP_RETURN_IF_ERROR(out.Append(std::move(exploded)));
      }
      // Advance the cursor.
      size_t d = 0;
      while (d < cursor.size()) {
        if (++cursor[d] < domains[d]->size()) break;
        cursor[d] = 0;
        ++d;
      }
      if (d == cursor.size()) break;
    }
  }
  return out;
}

}  // namespace pip
