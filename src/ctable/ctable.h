/// \file ctable.h
/// \brief Conditional tables: the symbolic representation of uncertain data.
///
/// A c-table is "a relational table extended by a column for holding a
/// local condition for each tuple" (paper §II-A). In PIP the data fields
/// hold equations (constants are the deterministic special case) and the
/// local condition is a conjunction of constraint atoms; disjunction is
/// encoded across rows with bag semantics (§III-B).

#ifndef PIP_CTABLE_CTABLE_H_
#define PIP_CTABLE_CTABLE_H_

#include <vector>

#include "src/expr/condition.h"
#include "src/expr/expr.h"
#include "src/types/table.h"

namespace pip {

/// \brief One row of a c-table: data cells plus the local condition.
struct CTableRow {
  std::vector<ExprPtr> cells;
  Condition condition;
  /// Provenance for the expectation index: position of this row in its
  /// base catalogue table (1-based; 0 = not from a catalogue table).
  /// Stamped by the Database on writes; carried through row-preserving
  /// operators (Select / Project / GroupBy), dropped by row-combining
  /// ones.
  uint64_t row_id = 0;

  /// True when every cell is a constant and the condition mentions no
  /// random variables.
  bool IsDeterministic() const;

  /// All random variables mentioned in cells or condition.
  VarSet Variables() const;
};

/// \brief A multiset of conditional rows under a schema.
class CTable {
 public:
  CTable() = default;
  explicit CTable(Schema schema) : schema_(std::move(schema)) {}

  /// Lifts a deterministic table: every cell becomes a constant equation
  /// and every condition TRUE.
  static CTable FromTable(const Table& table);

  const Schema& schema() const { return schema_; }

  // -- Provenance (expectation-index keying) ---------------------------
  // Catalogue identity of the snapshot these rows came from. table_id 0
  // means "not a catalogue table" (inline values, joins, unions, ...);
  // the index skips such rows. The generation counts the table's writes:
  // the Database bumps it on every AppendRows / MaterializeView, which
  // invalidates exactly this table's index entries.
  uint64_t table_id() const { return table_id_; }
  uint64_t generation() const { return generation_; }
  void SetProvenance(uint64_t table_id, uint64_t generation) {
    table_id_ = table_id;
    generation_ = generation;
  }
  /// Re-stamps every row's id with its (1-based) position. Positional
  /// ids are unique within one (table_id, generation), which is all the
  /// index requires — a generation bump retires the whole id space.
  void StampRowIds() {
    for (size_t i = 0; i < rows_.size(); ++i) rows_[i].row_id = i + 1;
  }

  size_t num_rows() const { return rows_.size(); }
  const CTableRow& row(size_t i) const { return rows_[i]; }
  CTableRow& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<CTableRow>& rows() const { return rows_; }

  /// Appends a row. Rows whose condition is already known FALSE are
  /// silently dropped (they exist in no possible world). InvalidArgument
  /// on arity mismatch.
  Status Append(CTableRow row);
  Status Append(std::vector<ExprPtr> cells, Condition condition = {});

  /// The deterministic table obtained under a complete assignment: rows
  /// whose condition evaluates true, with cells evaluated to values. This
  /// is the possible-world semantics theta(CR); tests use it to verify the
  /// algebra against world-by-world evaluation.
  StatusOr<Table> Instantiate(const Assignment& a) const;

  /// All random variables mentioned anywhere in the table.
  VarSet Variables() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<CTableRow> rows_;
  uint64_t table_id_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace pip

#endif  // PIP_CTABLE_CTABLE_H_
