#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pip {
namespace server {

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::Internal("client already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Internal(std::string("connect failed: ") +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }

  std::string greeting;
  auto more = ReadFrame(fd, &greeting);
  if (!more.ok() || !more.value()) {
    ::close(fd);
    return more.ok() ? Status::Internal("server closed before greeting")
                     : more.status();
  }
  const std::string version(kProtocolVersion);
  if (greeting.compare(0, version.size(), version) != 0 ||
      (greeting.size() > version.size() && greeting[version.size()] != ' ')) {
    ::close(fd);
    return Status::Internal("protocol version mismatch: server sent '" +
                            greeting + "', expected " + version);
  }
  fd_ = fd;
  greeting_ = std::move(greeting);
  return Status::OK();
}

StatusOr<WireResponse> Client::Execute(const std::string& statement) {
  if (fd_ < 0) return Status::Internal("client not connected");
  PIP_RETURN_IF_ERROR(WriteFrame(fd_, statement));
  std::string payload;
  PIP_ASSIGN_OR_RETURN(bool more, ReadFrame(fd_, &payload));
  if (!more) return Status::Internal("server closed the connection");
  return DecodeResponse(payload);
}

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

}  // namespace server
}  // namespace pip
