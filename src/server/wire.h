/// \file wire.h
/// \brief Framing and response codec of the pip-server client protocol.
///
/// Protocol version PIP1. Transport: length-prefixed frames — a 4-byte
/// big-endian payload length followed by that many bytes. On connect the
/// server sends one greeting frame ("PIP1 <feature list>"); clients must
/// check the leading token before issuing statements, which is how the
/// API surface stays versioned: an incompatible protocol revision changes
/// the token and old clients fail fast instead of misparsing.
///
/// Each request frame carries one SQL statement (UTF-8 text). Each
/// response frame is line-structured text:
///
///   ERR <CODE>\n<message>             -- failed statement
///   ACK <queue_us>\n<message>         -- DDL/DML acknowledgement
///   TBL <queue_us> <nrows> <ncols>\n  -- deterministic table
///     <kind>\t<name>        (x ncols: column metadata)
///     <cell>\t...\t<cell>   (x nrows: ncols cells)
///   CTB <queue_us> <nrows> <ncols>\n  -- symbolic c-table; rows carry
///     ...                                one extra trailing cell: the
///                                        row condition
///
/// <CODE> is a WireErrorCode name (PARSE, NOT_FOUND, INVALID_ARG,
/// CAPABILITY, INTERNAL) — the same names SqlResult::ToString() renders,
/// so scripted clients and humans read one vocabulary. <queue_us> is the
/// admission-gate queue wait in microseconds (0 when the statement never
/// queued). Cells escape backslash, tab and newline as \\, \t, \n; doubles
/// render with 17 significant digits so replayed results are bit-exact.

#ifndef PIP_SERVER_WIRE_H_
#define PIP_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sql/session.h"

namespace pip {
namespace server {

/// Greeting payload sent by the server after accept. The leading token
/// is the protocol version; the rest is a space-separated feature list.
inline constexpr char kProtocolVersion[] = "PIP1";

/// Frames larger than this are a protocol violation (guards both sides
/// against a corrupt or hostile length prefix).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// \brief A decoded response frame, mirroring sql::SqlResult across the
/// wire.
struct WireResponse {
  enum class Kind { kAck, kTable, kCTable, kError };
  Kind kind = Kind::kAck;
  sql::WireErrorCode code = sql::WireErrorCode::kNone;  ///< kError only.
  std::string message;            ///< Ack text or error message.
  uint64_t queue_us = 0;          ///< Admission queue wait.
  std::vector<sql::SqlColumn> columns;
  /// Decoded (unescaped) cell text; c-table rows have one extra trailing
  /// cell holding the row condition.
  std::vector<std::vector<std::string>> rows;

  bool ok() const { return kind != Kind::kError; }
};

/// Renders a statement result into a response payload. `queue_us` is the
/// admission wait the server measured for this statement.
std::string EncodeResponse(const sql::SqlResult& result, uint64_t queue_us);

/// Parses a response payload. InvalidArgument on malformed payloads.
StatusOr<WireResponse> DecodeResponse(const std::string& payload);

/// Writes one length-prefixed frame to `fd`. Handles partial writes;
/// Internal on socket errors.
Status WriteFrame(int fd, const std::string& payload);

/// Reads one frame into `*payload`. Returns false on clean EOF before
/// any length byte (peer closed between requests); Internal on socket
/// errors, truncated frames, or frames exceeding kMaxFrameBytes.
StatusOr<bool> ReadFrame(int fd, std::string* payload);

/// Escapes tab/newline/backslash for cell transport.
std::string EscapeCell(const std::string& cell);
std::string UnescapeCell(const std::string& cell);

/// Wire rendering of one deterministic value: doubles at 17 significant
/// digits (bit-exact replay), NULL as empty.
std::string RenderValue(const Value& v);

}  // namespace server
}  // namespace pip

#endif  // PIP_SERVER_WIRE_H_
